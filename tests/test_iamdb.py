"""IamDB public API: writes, reads, scans, snapshots, lifecycle."""

import random

import pytest

from repro.common.errors import ConfigError, StoreClosedError
from repro.db.iamdb import IamDB
from tests.conftest import ALL_ENGINES, make_tiny_db


def test_unknown_engine_rejected():
    with pytest.raises(ConfigError):
        IamDB("cassandra")


def test_put_get_roundtrip(any_engine_db):
    db = any_engine_db
    db.put(1, 100)
    db.put(2, b"hello")
    assert db.get(1) == 100
    assert db.get(2) == b"hello"
    assert db.get(3) is None


def test_overwrite_returns_newest(any_engine_db):
    db = any_engine_db
    db.put(1, 10)
    db.put(1, 20)
    assert db.get(1) == 20


def test_delete_hides_key(any_engine_db):
    db = any_engine_db
    db.put(1, 10)
    db.delete(1)
    assert db.get(1) is None
    db.put(1, 30)
    assert db.get(1) == 30


def test_delete_survives_flush(any_engine_db):
    db = any_engine_db
    db.put(1, 10)
    db.flush()
    db.delete(1)
    db.flush()
    assert db.get(1) is None


def test_scan_bounds_and_limit(any_engine_db):
    db = any_engine_db
    for k in range(0, 20, 2):
        db.put(k, k)
    assert db.scan(4, 10) == [(4, 4), (6, 6), (8, 8)]
    assert db.scan(None, 5) == [(0, 0), (2, 2), (4, 4)]
    assert db.scan(10, None) == [(10, 10), (12, 12), (14, 14), (16, 16), (18, 18)]
    assert db.scan(None, None, limit=2) == [(0, 0), (2, 2)]


def test_scan_sees_memtable_and_disk(any_engine_db):
    db = any_engine_db
    for k in range(50):
        db.put(k, 1)
    db.flush()
    db.put(100, 2)  # memtable only
    rows = db.scan(40, None)
    assert rows[-1] == (100, 2)
    assert len(rows) == 11


def test_snapshot_repeatable_reads():
    db = make_tiny_db("iam")
    db.put(1, 10)
    with db.snapshot() as snap:
        db.put(1, 20)
        db.delete(1)
        assert db.get(1, snap) == 10
        assert db.get(1) is None
        assert db.scan(None, None, snapshot=snap) == [(1, 10)]
    assert snap.released


def test_snapshot_pins_versions_across_compactions():
    db = make_tiny_db("iam")
    rng = random.Random(1)
    db.put(777, 1)
    snap = db.snapshot()
    for _ in range(4000):
        db.put(rng.randrange(1 << 30), 64)
    db.put(777, 2)
    db.quiesce()
    assert db.get(777, snap) == 1
    assert db.get(777) == 2
    snap.release()


def test_released_snapshot_allows_gc():
    db = make_tiny_db("iam")
    s1 = db.snapshot()
    s2 = db.snapshot()
    assert db._live_snapshots() == (0,)
    s1.release()
    assert db._live_snapshots() == (0,)  # s2 still pins
    s2.release()
    assert db._live_snapshots() == ()
    s2.release()  # idempotent


def test_snapshot_accepts_int():
    db = make_tiny_db("iam")
    db.put(1, 10)
    seq = db._seq
    db.put(1, 20)
    assert db.get(1, seq) == 10


def test_closed_db_rejects_operations():
    db = make_tiny_db("iam")
    db.put(1, 10)
    db.close()
    for op in (lambda: db.put(2, 2), lambda: db.get(1),
               lambda: db.scan(None, None), lambda: db.delete(1),
               lambda: db.flush()):
        with pytest.raises(StoreClosedError):
            op()


def test_flush_moves_memtable_to_engine():
    db = make_tiny_db("iam")
    db.put(1, 10)
    assert len(db.memtable) == 1
    db.flush()
    assert len(db.memtable) == 0
    assert db.get(1) == 10


def test_quiesce_finishes_background_work(any_engine_db):
    db = any_engine_db
    rng = random.Random(2)
    for _ in range(1500):
        db.put(rng.randrange(1 << 20), 64)
    db.quiesce()
    assert not db.runtime.pool.busy


def test_stats_and_amplification_accessors(any_engine_db):
    db = any_engine_db
    rng = random.Random(3)
    for _ in range(1000):
        db.put(rng.randrange(1 << 20), 64)
    db.flush()
    stats = db.stats()
    assert stats["engine"] == db.engine.name
    assert stats["write_amplification"] >= 0.0
    assert db.space_used_bytes() > 0
    per = db.per_level_write_amplification()
    assert per and sum(per.values()) == pytest.approx(db.write_amplification())


def test_latency_recorded_per_op_type(any_engine_db):
    db = any_engine_db
    db.put(1, 10)
    db.get(1)
    db.scan(None, None)
    lat = db.metrics.latency
    assert lat["insert"].count == 1
    assert lat["read"].count == 1
    assert lat["scan"].count == 1


def test_sim_clock_advances_with_work(any_engine_db):
    db = any_engine_db
    t0 = db.clock_now
    for k in range(200):
        db.put(k, 64)
    assert db.clock_now > t0
