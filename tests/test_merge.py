"""merge_runs: MVCC garbage collection during merges."""

from hypothesis import given, settings, strategies as st

from repro.common.records import (
    DELETE,
    KEY,
    KIND,
    PUT,
    SEQ,
    is_sorted_run,
    make_delete,
    make_put,
    sort_key,
)
from repro.table.merge import merge_runs


def test_empty_and_single_run():
    assert merge_runs([]) == []
    run = [make_put(1, 2, 8), make_put(2, 1, 8)]
    assert merge_runs([run]) == run


def test_newest_version_wins():
    a = [make_put(1, 5, 8)]
    b = [make_put(1, 9, 8)]
    out = merge_runs([a, b])
    assert len(out) == 1 and out[0][SEQ] == 9


def test_outdated_versions_removed_without_snapshots():
    run = [make_put(1, 9, 8), make_put(1, 5, 8), make_put(1, 2, 8)]
    out = merge_runs([run])
    assert [r[SEQ] for r in out] == [9]


def test_snapshot_preserves_needed_versions():
    run = [make_put(1, 9, 8), make_put(1, 5, 8), make_put(1, 2, 8)]
    out = merge_runs([run], snapshots=[6])
    assert [r[SEQ] for r in out] == [9, 5]
    out = merge_runs([run], snapshots=[2, 6])
    assert [r[SEQ] for r in out] == [9, 5, 2]
    out = merge_runs([run], snapshots=[1])
    assert [r[SEQ] for r in out] == [9]


def test_one_version_serves_adjacent_snapshots():
    run = [make_put(1, 5, 8)]
    out = merge_runs([run], snapshots=[6, 7, 8])
    assert len(out) == 1


def test_tombstone_kept_at_non_bottom():
    run = [make_delete(1, 9), make_put(1, 5, 8)]
    out = merge_runs([run], drop_tombstones=False)
    assert len(out) == 1 and out[0][KIND] == DELETE


def test_tombstone_dropped_at_bottom():
    run = [make_delete(1, 9), make_put(1, 5, 8)]
    out = merge_runs([run], drop_tombstones=True)
    assert out == []


def test_tombstone_kept_when_snapshot_preserves_older_version():
    """Dropping the tombstone here would resurrect seq 5 for the latest
    view -- it must stay until the snapshot releases (bottom level or not)."""
    run = [make_delete(1, 9), make_put(1, 5, 8)]
    out = merge_runs([run], drop_tombstones=True, snapshots=[5])
    assert [(r[SEQ], r[KIND]) for r in out] == [(9, DELETE), (5, PUT)]


def test_trailing_tombstones_stripped_at_bottom():
    run = [make_delete(1, 9), make_delete(1, 5)]
    out = merge_runs([run], drop_tombstones=True, snapshots=[5])
    assert out == []


def test_merged_size_records_counts_inputs():
    from repro.table.merge import merged_size_records
    assert merged_size_records([[make_put(1, 1, 8)], [], [make_put(2, 2, 8)] * 3]) == 4


def test_merge_many_runs_sorted_output():
    runs = [
        [make_put(1, 3, 8), make_put(5, 1, 8)],
        [make_put(2, 4, 8), make_put(5, 6, 8)],
        [make_put(0, 2, 8)],
    ]
    out = merge_runs(runs)
    assert is_sorted_run(out)
    assert [r[KEY] for r in out] == [0, 1, 2, 5]
    assert out[-1][SEQ] == 6


@st.composite
def runs_strategy(draw):
    n_versions = draw(st.integers(1, 60))
    versions = []
    seqs = draw(st.lists(st.integers(1, 10**6), min_size=n_versions,
                         max_size=n_versions, unique=True))
    for seq in seqs:
        key = draw(st.integers(0, 15))
        kind = draw(st.sampled_from([PUT, DELETE]))
        versions.append((key, seq, kind, 0 if kind == DELETE else 8))
    n_runs = draw(st.integers(1, 5))
    runs = [[] for _ in range(n_runs)]
    for v in versions:
        runs[draw(st.integers(0, n_runs - 1))].append(v)
    return [sorted(r, key=sort_key) for r in runs if r]


@settings(max_examples=80, deadline=None)
@given(runs_strategy(), st.lists(st.integers(0, 10**6), max_size=3),
       st.booleans())
def test_property_visibility_preserved(runs, snapshots, drop):
    """For every view (latest + each snapshot), the visible value of every
    key is identical before and after the merge."""
    out = merge_runs(runs, drop_tombstones=drop, snapshots=snapshots)
    assert is_sorted_run(out)
    all_recs = [r for run in runs for r in run]

    def visible(recs, key, snap):
        cands = [r for r in recs if r[KEY] == key
                 and (snap is None or r[SEQ] <= snap)]
        if not cands:
            return None
        best = max(cands, key=lambda r: r[SEQ])
        return None if best[KIND] == DELETE else best

    keys = {r[KEY] for r in all_recs}
    for snap in [None] + list(snapshots):
        for key in keys:
            assert visible(out, key, snap) == visible(all_recs, key, snap)


@settings(max_examples=40, deadline=None)
@given(runs_strategy())
def test_property_no_snapshot_keeps_one_version_per_key(runs):
    out = merge_runs(runs, drop_tombstones=False, snapshots=None)
    keys = [r[KEY] for r in out]
    assert len(keys) == len(set(keys))
