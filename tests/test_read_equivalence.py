"""Batched read path vs the frozen scalar references: state-identical.

The vectorized read kernels -- :meth:`repro.db.iamdb.IamDB.multi_get`
(two-phase plan/replay batch lookups) and the planned scan assembler in
:mod:`repro.table.scanplan` -- must be *indistinguishable* from the seed
scalar walks in :mod:`repro.bench.reference` at every observable level:
returned records, the simulated clock, Bloom counters, and the page-cache
trajectory (insertions, evictions, LRU order).  Hypothesis drives both
sides of each pair with randomized MVCC workloads across all three engine
families; pinned tests cover the edge cases batching is most likely to
get wrong (duplicate keys in one batch, snapshot boundaries, tombstones,
mid-flush memtable rotation, empty stores), and a 1-shard zero-cost
cluster proves the scatter-gather layer adds nothing.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.reference import (
    reference_cluster_read_loop,
    reference_multi_get,
    reference_scan,
)
from repro.cluster import ClusterDB, ClusterOptions, NetworkOptions
from tests.conftest import make_tiny_db, tiny_iam_options, tiny_storage_options

#: A fixed, spread-out key pool (arbitrary points in the 64-bit key space).
KEY_POOL = [(0x9E3779B97F4A7C15 * (i + 1)) % 2 ** 64 for i in range(24)]

#: A compact pool (small ints) -- exercises the composite-sort fast path.
SMALL_POOL = list(range(24))

ENGINES = ("iam", "lsa", "leveldb")


def _observable_state(db):
    """Everything a read is allowed to change, frozen for comparison."""
    m = db.metrics
    pc = db.runtime.cache
    return (
        db.runtime.clock.now,
        m.bloom_probes,
        m.bloom_negatives,
        m.cache_hits,
        m.cache_misses,
        m.query_seeks,
        pc.insertions,
        pc.evictions,
        list(pc._lru.keys()),
    )


def _twin_dbs(engine, ops, pool):
    """Two identically-built DBs after the same randomized workload."""
    dbs = (make_tiny_db(engine), make_tiny_db(engine))
    for op, key_i, size in ops:
        key = pool[key_i % len(pool)]
        for db in dbs:
            if op == "delete":
                db.delete(key)
            else:
                db.put(key, size)
    return dbs


workload = st.lists(
    st.tuples(st.sampled_from(["put", "put", "put", "delete"]),
              st.integers(0, 23),
              st.integers(1, 200)),
    max_size=120)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(engine=st.sampled_from(ENGINES), ops=workload,
       small_keys=st.booleans(), quiesce=st.booleans(),
       batch=st.lists(st.integers(0, 23), min_size=1, max_size=40),
       snap_back=st.one_of(st.none(), st.integers(0, 60)))
def test_multi_get_matches_scalar_reference(engine, ops, small_keys,
                                            quiesce, batch, snap_back):
    pool = SMALL_POOL if small_keys else KEY_POOL
    db_ref, db_opt = _twin_dbs(engine, ops, pool)
    if quiesce:
        db_ref.quiesce()
        db_opt.quiesce()
    snapshot = None
    if snap_back is not None and db_ref._seq > 0:
        snapshot = max(1, db_ref._seq - snap_back)
    keys = [pool[i] for i in batch]
    want = reference_multi_get(db_ref, keys, snapshot)
    got = db_opt.multi_get(keys, snapshot)
    assert got == want
    assert _observable_state(db_opt) == _observable_state(db_ref)
    db_ref.close()
    db_opt.close()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(engine=st.sampled_from(ENGINES), ops=workload,
       small_keys=st.booleans(), quiesce=st.booleans(),
       lo_i=st.integers(0, 23), span=st.one_of(st.none(), st.integers(0, 23)),
       limit=st.one_of(st.none(), st.integers(1, 40)),
       snap_back=st.one_of(st.none(), st.integers(0, 60)))
def test_scan_matches_scalar_reference(engine, ops, small_keys, quiesce,
                                       lo_i, span, limit, snap_back):
    pool = SMALL_POOL if small_keys else KEY_POOL
    db_ref, db_opt = _twin_dbs(engine, ops, pool)
    if quiesce:
        db_ref.quiesce()
        db_opt.quiesce()
    snapshot = None
    if snap_back is not None and db_ref._seq > 0:
        snapshot = max(1, db_ref._seq - snap_back)
    lo = pool[lo_i]
    hi = None if span is None else lo + sorted(pool)[span] + 1
    want = reference_scan(db_ref, lo, hi, limit=limit, snapshot=snapshot)
    got = db_opt.scan(lo, hi, limit=limit, snapshot=snapshot)
    assert got == want
    assert _observable_state(db_opt) == _observable_state(db_ref)
    db_ref.close()
    db_opt.close()


# ------------------------------------------------------------- pinned edges
def _loaded_pair(engine="iam", n=60, quiesce=True):
    db_ref, db_opt = make_tiny_db(engine), make_tiny_db(engine)
    for i in range(n):
        for db in (db_ref, db_opt):
            db.put(KEY_POOL[i % len(KEY_POOL)], 100 + i)
    if quiesce:
        db_ref.quiesce()
        db_opt.quiesce()
    return db_ref, db_opt


def _assert_batch_matches(db_ref, db_opt, keys, snapshot=None):
    want = reference_multi_get(db_ref, keys, snapshot)
    got = db_opt.multi_get(keys, snapshot)
    assert got == want
    assert _observable_state(db_opt) == _observable_state(db_ref)
    return got


def test_multi_get_duplicate_keys_in_batch():
    # The same key several times in one batch must produce one answer per
    # request slot -- and charge I/O exactly as many times as the scalar
    # walk would (the second lookup hits the warmed cache).
    db_ref, db_opt = _loaded_pair()
    k = KEY_POOL[3]
    got = _assert_batch_matches(db_ref, db_opt, [k, k, KEY_POOL[5], k, k])
    assert got[0] == got[1] == got[3] == got[4]
    db_ref.close()
    db_opt.close()


def test_multi_get_snapshot_boundary():
    # Exactly at the snapshot seq the version is visible; one below the
    # write it is not.  Run the same batch at seq, seq-1 and latest.
    db_ref, db_opt = make_tiny_db("iam"), make_tiny_db("iam")
    k = KEY_POOL[0]
    for db in (db_ref, db_opt):
        db.put(k, 111)
    seq_v1 = db_ref._seq
    for db in (db_ref, db_opt):
        db.put(k, 222)
        db.quiesce()
    for snap in (seq_v1, seq_v1 - 1, None):
        got = _assert_batch_matches(db_ref, db_opt, [k, k], snap)
        if snap == seq_v1:
            assert got == [111, 111]
        elif snap == seq_v1 - 1:
            assert got == [None, None]
        else:
            assert got == [222, 222]
    db_ref.close()
    db_opt.close()


def test_multi_get_tombstoned_keys():
    db_ref, db_opt = _loaded_pair(quiesce=False)
    dead = [KEY_POOL[2], KEY_POOL[7]]
    for db in (db_ref, db_opt):
        for k in dead:
            db.delete(k)
        db.quiesce()
    got = _assert_batch_matches(
        db_ref, db_opt, [dead[0], KEY_POOL[4], dead[1], KEY_POOL[9]])
    assert got[0] is None and got[2] is None
    assert got[1] is not None and got[3] is not None
    db_ref.close()
    db_opt.close()


def test_multi_get_mid_flush_rotation():
    # Keep writing until a memtable rotation is in flight (immutable
    # memtable present, flush not yet retired), then read through all
    # three tiers: active memtable, immutable, and on-disk sequences.
    db_ref, db_opt = _loaded_pair(quiesce=True)
    i = 0
    while db_ref.immutable is None and i < 4000:
        for db in (db_ref, db_opt):
            db.put(KEY_POOL[i % len(KEY_POOL)], 300 + i)
        i += 1
    assert db_ref.immutable is not None, "never caught a rotation in flight"
    assert db_opt.immutable is not None
    _assert_batch_matches(db_ref, db_opt, KEY_POOL)
    db_ref.close()
    db_opt.close()


def test_multi_get_empty_db_and_empty_batch():
    db_ref, db_opt = make_tiny_db("iam"), make_tiny_db("iam")
    assert db_opt.multi_get([]) == []
    got = _assert_batch_matches(db_ref, db_opt, KEY_POOL[:6])
    assert got == [None] * 6
    db_ref.close()
    db_opt.close()


def test_scan_empty_db():
    db_ref, db_opt = make_tiny_db("leveldb"), make_tiny_db("leveldb")
    assert db_opt.scan(KEY_POOL[0], None, limit=5) == \
        reference_scan(db_ref, KEY_POOL[0], None, limit=5) == []
    assert _observable_state(db_opt) == _observable_state(db_ref)
    db_ref.close()
    db_opt.close()


# ------------------------------------------------------ cluster scatter-gather
def _trivial_cluster_pair():
    cluster = ClusterDB(ClusterOptions(
        n_shards=1, n_replicas=1,
        engine_options=tiny_iam_options(),
        storage_options=tiny_storage_options(),
        network=NetworkOptions.zero()))
    bare = make_tiny_db("iam")
    return cluster, bare


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=workload, batch=st.lists(st.integers(0, 23), min_size=1,
                                    max_size=30))
def test_trivial_cluster_multi_get_equals_bare_db(ops, batch):
    # 1 shard, 1 replica, zero-cost fabric: the scatter-gather batch read
    # must return exactly the bare DB's values at the same simulated clock.
    cluster, bare = _trivial_cluster_pair()
    for op, key_i, size in ops:
        key = KEY_POOL[key_i]
        if op == "delete":
            cluster.delete(key)
            bare.delete(key)
        else:
            cluster.put(key, size)
            bare.put(key, size)
    keys = [KEY_POOL[i] for i in batch]
    assert cluster.multi_get(keys) == bare.multi_get(keys)
    assert cluster.clock.now == bare.runtime.clock.now
    cluster.close()
    bare.close()


def test_cluster_multi_get_matches_per_key_loop():
    # On a real (non-trivial) topology the batched scatter-gather must
    # return the same values as routing every key individually.
    opts = dict(engine_options=tiny_iam_options(),
                storage_options=tiny_storage_options())
    c_batch = ClusterDB(ClusterOptions(n_shards=4, n_replicas=2, **opts))
    c_loop = ClusterDB(ClusterOptions(n_shards=4, n_replicas=2, **opts))
    rng = random.Random(11)
    for _ in range(150):
        k = KEY_POOL[rng.randrange(len(KEY_POOL))]
        v = rng.randrange(1, 200)
        c_batch.put(k, v)
        c_loop.put(k, v)
    keys = [KEY_POOL[rng.randrange(len(KEY_POOL))] for _ in range(60)]
    keys += [2 ** 61 + 17]  # a key no one wrote
    assert c_batch.multi_get(keys) == reference_cluster_read_loop(c_loop, keys)
    c_batch.close()
    c_loop.close()
