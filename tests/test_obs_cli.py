"""CLI tracing surface: ``repro trace`` and ``--trace`` on workload runners."""

from __future__ import annotations

import json

from repro.cli import main
from repro.obs import validate_chrome_trace


def test_trace_command_writes_valid_chrome_trace(tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", "load", "--records", "3000",
                 "--out", str(out), "--validate"]) == 0
    printed = capsys.readouterr().out
    assert "trace schema ok" in printed
    assert "trace summary:" in printed
    assert "busiest background jobs" in printed
    trace = json.loads(out.read_text())
    assert validate_chrome_trace(trace) == []
    phases = {ev["ph"] for ev in trace["traceEvents"]}
    assert {"M", "i", "b", "e", "C"} <= phases


def test_trace_command_ycsb_jsonl(tmp_path, capsys):
    jsonl = tmp_path / "trace.jsonl"
    assert main(["trace", "ycsb-a", "--engine", "leveldb",
                 "--records", "3000", "--ops", "300",
                 "--jsonl", str(jsonl), "--validate"]) == 0
    printed = capsys.readouterr().out
    assert "trace schema ok" in printed
    lines = jsonl.read_text().splitlines()
    assert len(lines) > 10
    objs = [json.loads(line) for line in lines]
    assert all("ph" in obj for obj in objs)
    assert any(obj["ph"] == "sample" for obj in objs)
    begins = sum(1 for o in objs if o["ph"] == "b")
    ends = sum(1 for o in objs if o["ph"] == "e")
    assert begins == ends > 0


def test_trace_command_interval_controls_sampling(tmp_path, capsys):
    jsonl = tmp_path / "t.jsonl"
    assert main(["trace", "load", "--records", "3000",
                 "--interval", "0.0001", "--jsonl", str(jsonl)]) == 0
    objs = [json.loads(line) for line in jsonl.read_text().splitlines()]
    samples = [o for o in objs if o["ph"] == "sample"]
    assert len(samples) >= 2


def test_load_accepts_trace_flag(tmp_path, capsys):
    path = tmp_path / "load.json"
    assert main(["load", "--records", "2000", "--trace", str(path)]) == 0
    assert "wrote trace to" in capsys.readouterr().out
    assert validate_chrome_trace(json.loads(path.read_text())) == []


def test_ycsb_accepts_trace_flag_jsonl(tmp_path, capsys):
    path = tmp_path / "ycsb.jsonl"
    assert main(["ycsb", "--workload", "b", "--records", "2000",
                 "--ops", "200", "--trace", str(path)]) == 0
    assert "wrote trace to" in capsys.readouterr().out
    lines = path.read_text().splitlines()
    assert lines and all(json.loads(line) for line in lines)
