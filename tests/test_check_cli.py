"""The ``python -m repro check`` driver and the ``--sanitize`` CLI flag."""

from __future__ import annotations

import pytest

from repro.check import runner
from repro.check.sanitizer import default_options, set_default_options
from repro.check.typing_gate import GateResult
from repro.cli import main as cli_main


@pytest.fixture(autouse=True)
def reset_sanitizer_defaults():
    yield
    set_default_options(None)


def test_list_rules(capsys):
    assert runner.main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP001", "REP008"):
        assert rule_id in out


def test_unknown_rule_rejected(capsys):
    assert runner.main(["--rule", "REP999", "--skip-types",
                        "--skip-sanitizer"]) == 2


def test_full_check_passes_on_this_repo(capsys):
    # The acceptance gate: lint clean, types PASS-or-SKIP, sanitizer clean.
    assert runner.main([]) == 0
    out = capsys.readouterr().out
    assert "lint       PASS" in out
    assert "sanitizer  PASS" in out


def test_lint_failure_sets_exit_code(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    rc = runner.main([str(bad), "--skip-types", "--skip-sanitizer"])
    out = capsys.readouterr().out
    assert rc == 1
    assert "REP001" in out


def test_gate_result_status():
    assert GateResult(ok=True, skipped=True, output="").status == "SKIP"
    assert GateResult(ok=True, skipped=False, output="").status == "PASS"
    assert GateResult(ok=False, skipped=False, output="").status == "FAIL"


def test_cli_check_subcommand(capsys):
    assert cli_main(["check", "--list-rules"]) == 0
    assert "REP001" in capsys.readouterr().out


def test_cli_sanitize_flag_installs_defaults(capsys):
    assert default_options() is None
    rc = cli_main(["load", "--engine", "iam", "--records", "300", "--sanitize"])
    assert rc == 0
    assert default_options() is not None


def test_cli_load_without_flag_leaves_defaults(capsys):
    rc = cli_main(["load", "--engine", "iam", "--records", "300"])
    assert rc == 0
    assert default_options() is None
