"""Workload key distributions."""

import random

import pytest

from repro.common.errors import ConfigError
from repro.workloads.distributions import (
    LatestChooser,
    ScrambledZipfian,
    UniformChooser,
    ZipfianGenerator,
    permute64,
    zipfian_pmf_head,
)


def test_permute64_no_collisions_in_large_range():
    seen = {permute64(i) for i in range(100_000)}
    assert len(seen) == 100_000


def test_permute64_spreads_ordered_inputs():
    outs = [permute64(i) for i in range(1000)]
    assert outs != sorted(outs)  # hash load is unordered (§6.2)


def test_uniform_chooser_covers_space():
    rng = random.Random(1)
    c = UniformChooser(10, rng)
    samples = {c.sample() for _ in range(2000)}
    assert samples == set(range(10))
    with pytest.raises(ConfigError):
        UniformChooser(0, rng)


def test_zipfian_validation():
    rng = random.Random(2)
    with pytest.raises(ConfigError):
        ZipfianGenerator(0, rng)
    with pytest.raises(ConfigError):
        ZipfianGenerator(10, rng, theta=1.5)


def test_zipfian_rank_zero_is_hottest():
    rng = random.Random(3)
    z = ZipfianGenerator(1000, rng)
    counts = [0] * 1000
    for _ in range(20000):
        counts[min(z.sample(), 999)] += 1
    assert counts[0] == max(counts)
    # Head mass close to theory (YCSB theta=0.99).
    head = sum(counts[:10]) / 20000
    theory = zipfian_pmf_head(1000, 0.99, 10)
    assert head == pytest.approx(theory, rel=0.25)


def test_zipfian_samples_in_range():
    rng = random.Random(4)
    z = ZipfianGenerator(50, rng)
    assert all(0 <= z.sample() < 51 for _ in range(5000))


def test_scrambled_zipfian_spreads_hot_keys():
    rng = random.Random(5)
    s = ScrambledZipfian(1000, rng)
    samples = [s.sample() for _ in range(20000)]
    assert all(0 <= x < 1000 for x in samples)
    from collections import Counter
    top = Counter(samples).most_common(3)
    # hottest item no longer rank 0: scrambling moved it
    assert top[0][1] > 20000 / 1000  # still skewed
    assert len(set(samples)) > 300   # but spread across the space


def test_latest_chooser_prefers_recent():
    rng = random.Random(6)
    c = LatestChooser(1000, rng)
    samples = [c.sample() for _ in range(5000)]
    assert all(0 <= s < 1000 for s in samples)
    recent = sum(1 for s in samples if s >= 900)
    assert recent > 0.5 * len(samples)  # strongly recency-biased


def test_latest_chooser_advance_extends_range():
    rng = random.Random(7)
    c = LatestChooser(10, rng)
    for _ in range(5):
        c.advance()
    assert c.max_item == 15
    samples = {c.sample() for _ in range(3000)}
    assert max(samples) >= 10  # new items reachable


# ---------------------------------------------- chunked == scalar, same RNG
def test_uniform_sample_many_matches_scalar():
    a = UniformChooser(1000, random.Random(11))
    b = UniformChooser(1000, random.Random(11))
    assert a.sample_many(5000) == [b.sample() for _ in range(5000)]


@pytest.mark.parametrize("seed", [0, 1, 12345])
@pytest.mark.parametrize("n", [3, 100, 100_000])
def test_zipfian_sample_many_matches_scalar(seed, n):
    # The vectorized power transform must match the scalar IEEE-double path
    # bit for bit, including the rank-0 / rank-1 special cases.
    a = ZipfianGenerator(n, random.Random(seed))
    b = ZipfianGenerator(n, random.Random(seed))
    assert a.sample_many(4000) == [b.sample() for _ in range(4000)]


def test_scrambled_sample_many_matches_scalar():
    a = ScrambledZipfian(1000, random.Random(9))
    b = ScrambledZipfian(1000, random.Random(9))
    assert a.sample_many(4000) == [b.sample() for _ in range(4000)]


def test_latest_sample_many_matches_scalar():
    a = LatestChooser(1000, random.Random(4))
    b = LatestChooser(1000, random.Random(4))
    for _ in range(17):
        a.advance()
        b.advance()
    assert a.sample_many(4000) == [b.sample() for _ in range(4000)]


def test_permute64_many_matches_scalar():
    from repro.workloads.distributions import permute64_many
    items = [random.Random(2).randrange(2**63) for _ in range(100)]
    assert permute64_many(items) == [permute64(x) for x in items]
    assert permute64_many(range(10_000)) == [permute64(x) for x in range(10_000)]
