"""CLI surface: argument parsing and command execution."""

import pytest

from repro.cli import build_parser, main


def test_info_runs(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "REPRO_SCALE" in out
    assert "ssd-100g" in out


def test_load_small(capsys):
    assert main(["load", "--engine", "iam", "--records", "2000"]) == 0
    out = capsys.readouterr().out
    assert "hash load" in out
    assert "WA" in out


def test_load_sequential_lsa(capsys):
    assert main(["load", "--engine", "lsa", "--records", "2000",
                 "--sequential"]) == 0
    assert "fillseq" in capsys.readouterr().out


def test_ycsb_command(capsys):
    assert main(["ycsb", "--workload", "b", "--records", "2000",
                 "--ops", "200"]) == 0
    out = capsys.readouterr().out
    assert "YCSB-B" in out
    assert "read" in out


def test_compare_command(capsys):
    assert main(["compare", "--records", "2000",
                 "--engines", "L", "I-1t"]) == 0
    out = capsys.readouterr().out
    assert "I-1t" in out and "vs L" in out


def test_compare_rejects_unknown_config(capsys):
    assert main(["compare", "--records", "100", "--engines", "Z-9t"]) == 2


def test_experiment_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["experiment", "nope"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_lsmtrie_engine_via_cli(capsys):
    assert main(["load", "--engine", "lsmtrie", "--records", "2000"]) == 0
    assert "lsmtrie" in capsys.readouterr().out


def test_cluster_command(capsys):
    assert main(["cluster", "ycsb", "--shards", "3", "--replicas", "2",
                 "--records", "2000", "--ops", "200", "--clients", "2"]) == 0
    out = capsys.readouterr().out
    assert "cluster YCSB-A" in out
    assert "per-shard" in out
    assert "imbalance" in out


def test_cluster_load_mode(capsys):
    assert main(["cluster", "load", "--shards", "2", "--replicas", "1",
                 "--records", "2000"]) == 0
    assert "cluster hash load" in capsys.readouterr().out


def test_cluster_report_is_byte_identical(tmp_path, capsys):
    argv = ["cluster", "ycsb", "--shards", "3", "--replicas", "2",
            "--records", "2000", "--ops", "200",
            "--faults", "kill=1:100,rate=0.002,seed=5"]
    r1, r2 = tmp_path / "r1.json", tmp_path / "r2.json"
    assert main(argv + ["--report", str(r1)]) == 0
    assert main(argv + ["--report", str(r2)]) == 0
    capsys.readouterr()
    assert r1.read_bytes() == r2.read_bytes()
    import json
    stats = json.loads(r1.read_text())
    assert stats["failovers"][0]["shard"] == 1
    assert stats["failovers"][0]["recovered_seq"] >= \
        stats["failovers"][0]["acked_seq"]


def test_cluster_trace_validates(tmp_path, capsys):
    trace = tmp_path / "cluster.json"
    assert main(["cluster", "ycsb", "--shards", "2", "--replicas", "1",
                 "--records", "2000", "--ops", "100",
                 "--trace", str(trace), "--validate"]) == 0
    out = capsys.readouterr().out
    assert "trace schema ok" in out
    assert trace.exists()


# ------------------------------------------------------ scheduling flags

def test_scheduling_flags_parse_and_default():
    args = build_parser().parse_args(["load", "--engine", "leveldb"])
    assert args.scheduler == "fair"
    assert args.compaction_selector == "provider"
    assert args.legacy_gate is False
    args = build_parser().parse_args(
        ["load", "--engine", "leveldb", "--scheduler", "legacy",
         "--compaction-selector", "greedy-largest-debt", "--legacy-gate"])
    assert args.scheduler == "legacy"
    assert args.compaction_selector == "greedy-largest-debt"
    assert args.legacy_gate is True


def test_scheduling_flags_reject_unknown():
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["load", "--engine", "leveldb", "--scheduler", "bogus"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["load", "--engine", "leveldb", "--compaction-selector", "bogus"])


def test_legacy_gate_flag_reaches_engine(capsys):
    assert main(["load", "--engine", "leveldb", "--records", "2000",
                 "--legacy-gate"]) == 0
    capsys.readouterr()


def test_selector_flag_reaches_engine(capsys):
    assert main(["load", "--engine", "leveldb", "--records", "2000",
                 "--compaction-selector", "oldest-first"]) == 0
    capsys.readouterr()


def test_cluster_accepts_scheduling_flags(capsys):
    assert main(["cluster", "ycsb", "--shards", "2", "--replicas", "1",
                 "--records", "1000", "--ops", "50", "--legacy-gate"]) == 0
    capsys.readouterr()
