"""Unit tests for the simulated object store and the shared manifest log.

The store contract: immutable objects, one FIFO channel with per-request
latency, foreground requests advance the shared clock past queueing plus
service time, background reserves move only the channel horizon.  The log
contract: whole-entry appends, reachability-based GC, recovery from store
contents with an orphan sweep.
"""

import pytest

from repro.common.errors import ConfigError, InvariantViolation
from repro.common.options import SSD, StorageOptions
from repro.objstore import ObjStoreOptions, SharedManifestLog, SimObjectStore
from repro.objstore.manifestlog import entry_bytes
from repro.objstore.report import format_objstore_report, objstore_summary
from repro.storage.runtime import Runtime
from repro.storage.simdisk import SimClock


def _store(**kw):
    clock = SimClock()
    return clock, SimObjectStore(clock, ObjStoreOptions(**kw))


# ------------------------------------------------------------------- service
def test_service_time_is_latency_plus_transfer():
    _, store = _store(latency_s=1e-3, bandwidth=1e6, request_bytes=100)
    # 2 requests: 2 * 1ms latency + (1000 payload + 2*100 framing) / 1e6 B/s.
    assert store.service_time(1000, requests=2) == pytest.approx(
        2e-3 + 1200 / 1e6)


def test_options_validation():
    with pytest.raises(ConfigError):
        ObjStoreOptions(latency_s=-1.0)
    with pytest.raises(ConfigError):
        ObjStoreOptions(bandwidth=0.0)
    with pytest.raises(ConfigError):
        ObjStoreOptions(request_bytes=-1)


# ---------------------------------------------------------------- immutability
def test_put_of_existing_name_raises():
    _, store = _store()
    store.put("a", 100)
    with pytest.raises(InvariantViolation):
        store.put("a", 100)
    with pytest.raises(InvariantViolation):
        store.reserve_put("a", 50)


def test_get_and_delete_of_missing_name_raise():
    _, store = _store()
    with pytest.raises(InvariantViolation):
        store.get("nope")
    with pytest.raises(InvariantViolation):
        store.delete("nope")
    with pytest.raises(InvariantViolation):
        store.size_of("nope")


# ------------------------------------------------------------------- charging
def test_foreground_put_advances_the_clock():
    clock, store = _store(latency_s=1e-3, bandwidth=1e6, request_bytes=0)
    elapsed, queued = store.put("a", 1000)
    assert elapsed == pytest.approx(1e-3 + 1000 / 1e6)
    assert queued == 0.0
    assert clock.now == pytest.approx(elapsed)


def test_foreground_queues_fifo_behind_background_reserve():
    clock, store = _store(latency_s=1e-3, bandwidth=1e6, request_bytes=0)
    # Background upload reserves the channel without moving the clock.
    tail = store.reserve_put("big", 10_000)
    assert clock.now == 0.0
    assert tail == pytest.approx(1e-3 + 10_000 / 1e6)
    assert store.exists("big")  # visible immediately, lands at its tail
    # A later foreground get queues behind the in-flight upload.
    elapsed, queued = store.get("big")
    assert queued == pytest.approx(tail)
    assert elapsed == pytest.approx(tail + 1e-3 + 10_000 / 1e6)
    assert clock.now == pytest.approx(elapsed)


def test_zero_store_never_advances_the_clock():
    clock, store = _store(latency_s=0.0, bandwidth=float("inf"),
                          request_bytes=0)
    store.put("a", 10_000)
    store.reserve_put("b", 10_000)
    store.get("a")
    store.read_fill(4096, 3)
    store.list_prefix("")
    store.delete("a")
    store.reserve_delete("b")
    assert clock.now == 0.0
    assert store.requests == 9  # read_fill counts one get per ranged request


def test_counters_and_snapshot():
    _, store = _store()
    store.put("a", 100)
    store.reserve_put("b", 50)
    store.get("a")
    store.list_prefix("")
    store.delete("a")
    snap = store.snapshot()
    assert snap["puts"] == 2 and snap["gets"] == 1
    assert snap["lists"] == 1 and snap["deletes"] == 1
    assert snap["bytes_up"] == 150 and snap["bytes_down"] == 100
    assert snap["objects"] == 1 and snap["live_bytes"] == 50
    assert snap["requests"] == 5


# --------------------------------------------------------------- manifest log
def _rt_log(retain_cuts=3):
    rt = Runtime(StorageOptions(device=SSD, page_cache_bytes=4096,
                                block_size=256))
    store = SimObjectStore(rt.clock, ObjStoreOptions.zero())
    rt.attach_objstore(store)
    log = SharedManifestLog(store, "shard0/", retain_cuts=retain_cuts)
    return rt, store, log


def _cut(rt, log, seq, files=()):
    for name in files:
        if not log.store.exists(name):
            rt.objstore_reserve_put(name, 512)
    return log.append_cut(rt, seq=seq, state={"seq": seq},
                          files=tuple(files), tombstones=())


def test_append_retention_and_lookup():
    rt, store, log = _rt_log(retain_cuts=3)
    for seq in (10, 20, 30, 40, 50):
        _cut(rt, log, seq)
    assert [c.cut_id for c in log.cuts] == [3, 4, 5]
    assert log.latest_cut().seq == 50
    assert log.cut(4).seq == 40
    assert log.cut(1) is None  # aged out of the retention window
    # Entry objects of aged-out cuts stay in the store as dead segments.
    assert store.exists("shard0/log/00000001")
    assert log.snapshot() == {"prefix": "shard0/", "cuts": 3, "segments": 5,
                              "latest_cut_id": 5, "latest_seq": 50}


def test_entry_bytes_model():
    rt, store, log = _rt_log()
    cut = _cut(rt, log, 7, files=("shard0/n0/obj/00000001.512",))
    assert cut.entry_bytes == entry_bytes(1, 0)
    assert store.size_of(cut.log_object) == cut.entry_bytes


def test_gc_is_reachability_based():
    rt, store, log = _rt_log(retain_cuts=2)
    shared = "shard0/n0/obj/00000001.512"
    only_old = "shard0/n0/obj/00000002.512"
    _cut(rt, log, 10, files=(shared, only_old))
    _cut(rt, log, 20, files=(shared,))
    assert log.gc_candidates() == []  # both cuts still retained
    _cut(rt, log, 30, files=(shared,))  # cut 1 ages out
    # Dead: cut 1's entry object and the file only it referenced; the
    # shared file stays reachable from the retained cuts.
    assert log.gc_candidates() == ["shard0/log/00000001", only_old]
    assert log.cleanup(rt) == 2
    assert not store.exists(only_old)
    assert store.exists(shared)
    assert log.gc_candidates() == []
    assert log.verify() == []


def test_recover_rebuilds_cuts_and_sweeps_orphans():
    rt, store, log = _rt_log(retain_cuts=4)
    kept = "shard0/n0/obj/00000001.512"
    _cut(rt, log, 10, files=(kept,))
    _cut(rt, log, 20, files=(kept,))
    # A crash between upload and append: data landed, cut entry did not.
    orphan = "shard0/n0/obj/00000009.512"
    rt.objstore_reserve_put(orphan, 512)
    report = log.recover(rt)
    assert report == {"cuts": 2, "orphans_swept": 1}
    assert not store.exists(orphan)
    assert store.exists(kept)
    assert [c.seq for c in log.cuts] == [10, 20]
    assert log.verify() == []


def test_verify_reports_missing_objects():
    rt, store, log = _rt_log()
    cut = _cut(rt, log, 10, files=("shard0/n0/obj/00000001.512",))
    store.objects.pop("shard0/n0/obj/00000001.512")
    problems = log.verify()
    assert len(problems) == 1 and "missing object" in problems[0]
    store.objects.pop(cut.log_object)
    assert any("entry object missing" in p for p in log.verify())


# -------------------------------------------------------------------- report
def test_objstore_summary_and_report_format():
    rt, store, log = _rt_log()
    _cut(rt, log, 10, files=("shard0/n0/obj/00000001.512",))
    summary = objstore_summary(store.snapshot(), [log.snapshot()])
    assert summary["objects"] == 2
    assert summary["manifest_logs"][0]["latest_seq"] == 10
    text = format_objstore_report(summary)
    assert "object store:" in text and "log shard0/" in text
