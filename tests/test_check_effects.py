"""Fixture tests for the whole-program effects gate (REP100...REP105).

Each rule gets a positive fixture (minimal code that fires), a negative
fixture (the equivalent clean code), and a noqa round-trip.  Fixtures are
written as real mini-package trees named ``repro/...`` under ``tmp_path``
and pushed through the full pipeline -- call-graph build, fixpoint
inference, contract checks, suppression and baseline layers -- exactly as
``python -m repro check --gate effects`` would, just over a smaller root.

The second half covers the machinery around the analysis: the baseline
file (matching, --strict, stale entries), the JSON report, the identity
guarantee of the ``@effects`` / ``@observation_only`` decorators (they
must not change runtime behavior -- proven on a live smoke workload), and
the runner's gate aggregation (a raising gate reports ERROR and the
remaining gates still run).
"""

from __future__ import annotations

import json
import random
import types
from pathlib import Path

import pytest

from repro.check.effects.callgraph import CallGraph
from repro.check.effects.contracts import EFFECT_RULES, check_contracts
from repro.check.effects.gate import (
    BaselineEntry,
    load_baseline,
    run_effects_gate,
    write_report,
)
from repro.check.effects.infer import infer_effects
from repro.check.effects.registry import (
    ALL_EFFECTS,
    OBSERVATION_FORBIDDEN,
    effects,
    observation_only,
)


def build_tree(tmp_path: Path, files: "dict[str, str]") -> Path:
    """Materialize ``{relpath: source}`` under ``tmp_path/repro``."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        for parent in path.parents:
            if parent == root.parent:
                break
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return root


def analyze(tmp_path: Path, files: "dict[str, str]"):
    """(findings, effect table) of a fixture tree, pre-suppression."""
    root = build_tree(tmp_path, files)
    graph = CallGraph.build(root)
    table = infer_effects(graph)
    return check_contracts(graph, table), table


def gate(tmp_path: Path, files: "dict[str, str]", **kwargs):
    """Full gate run (noqa + baseline layers) over a fixture tree."""
    root = build_tree(tmp_path, files)
    kwargs.setdefault("baseline", tmp_path / "absent-baseline.json")
    return run_effects_gate(root, **kwargs)


def rules_of(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------- REP100
class TestRep100DeclarationExceeded:
    def test_fires_when_inference_exceeds_declaration(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            '@effects("STATE_MUTATE")\n'
            "def f(self, clock):\n"
            "    clock.now = 5.0\n"
            "    self.x = 1\n")})
        assert rules_of(findings) == ["REP100"]
        assert "CLOCK_ADVANCE" in findings[0].message

    def test_quiet_when_declaration_covers_inference(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            '@effects("CLOCK_ADVANCE", "STATE_MUTATE")\n'
            "def f(self, clock):\n"
            "    clock.now = 5.0\n"
            "    self.x = 1\n")})
        assert rules_of(findings) == []

    def test_effect_flows_through_a_callee(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "def helper(clock):\n"
            "    clock.advance(1.0)\n"
            "\n"
            '@effects("STATE_MUTATE")\n'
            "def f(self, clock):\n"
            "    self.x = 1\n"
            "    helper(clock)\n")})
        assert rules_of(findings) == ["REP100"]
        assert "helper" in findings[0].message  # witness chain names it

    def test_noqa_on_decorator_line_suppresses(self, tmp_path):
        result = gate(tmp_path, {"m.py": (
            '@effects("STATE_MUTATE")  # repro: noqa-REP100\n'
            "def f(self, clock):\n"
            "    clock.now = 5.0\n"
            "    self.x = 1\n")})
        assert result.findings == []
        assert result.n_suppressed == 1


# ----------------------------------------------------------------- REP101
class TestRep101ObservationPurity:
    def test_fires_on_clock_advance_in_observer(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "@observation_only\n"
            "def stats(self):\n"
            "    self.clock.advance(1.0)\n"
            "    return {}\n")})
        assert rules_of(findings) == ["REP101"]

    def test_fires_through_a_call_chain(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "import time\n"
            "def helper():\n"
            "    return time.time()\n"
            "\n"
            "@observation_only\n"
            "def stats(self):\n"
            "    return helper()\n")})
        # helper itself also draws REP105 (undeclared host time).
        assert "REP101" in rules_of(findings)

    def test_state_mutation_is_allowed_in_observers(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "@observation_only\n"
            "def stats(self):\n"
            "    self.rows.append(1)\n"
            "    self.cached = len(self.rows)\n"
            "    return self.cached\n")})
        assert rules_of(findings) == []

    def test_noqa_round_trip(self, tmp_path):
        result = gate(tmp_path, {"m.py": (
            "@observation_only  # repro: noqa-REP101\n"
            "def stats(self):\n"
            "    self.clock.advance(1.0)\n")})
        assert result.findings == []


# ----------------------------------------------------------------- REP102
class TestRep102RawDeviceCalls:
    def test_fires_outside_repro_storage(self, tmp_path):
        findings, _ = analyze(tmp_path, {"engine/m.py": (
            "def read(self, disk):\n"
            "    return disk.fg_io(4096)\n")})
        assert "REP102" in rules_of(findings)

    def test_quiet_inside_repro_storage(self, tmp_path):
        findings, _ = analyze(tmp_path, {"storage/m.py": (
            "def read(self, disk):\n"
            "    return disk.fg_io(4096)\n")})
        assert "REP102" not in rules_of(findings)

    def test_file_level_noqa(self, tmp_path):
        result = gate(tmp_path, {"engine/m.py": (
            "# repro: noqa-file-REP102\n"
            "def read(self, disk):\n"
            "    return disk.fg_io(4096)\n"
            "def drain(self, disk):\n"
            "    return disk.sync_drain(1.0)\n")})
        assert "REP102" not in rules_of(result.findings)


# ----------------------------------------------------------------- REP103
class TestRep103SeededRng:
    def test_fires_on_module_global_draw(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "import random\n"
            "def sample():\n"
            "    return random.random()\n")})
        assert "REP103" in rules_of(findings)

    def test_fires_on_unseeded_constructor(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "import random\n"
            "def make():\n"
            "    return random.Random()\n")})
        assert "REP103" in rules_of(findings)

    def test_quiet_on_seeded_instance_draw(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "import random\n"
            "def sample(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random()\n")})
        assert "REP103" not in rules_of(findings)

    def test_noqa_round_trip(self, tmp_path):
        result = gate(tmp_path, {"m.py": (
            "import random\n"
            "def sample():\n"
            "    return random.random()  # repro: noqa-REP103\n")})
        assert "REP103" not in rules_of(result.findings)


# ----------------------------------------------------------------- REP104
class TestRep104SpanBalance:
    def test_fires_on_unmatched_begin(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "def f(tracer):\n"
            '    tracer.begin("cat", "name", 1)\n')})
        assert rules_of(findings) == ["REP104"]

    def test_fires_on_early_return_leak(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "def f(tracer, cond):\n"
            '    tracer.begin("cat", "name", 1)\n'
            "    if cond:\n"
            "        return None\n"
            '    tracer.end("cat", "name", 1)\n')})
        assert rules_of(findings) == ["REP104"]

    def test_quiet_on_balanced_paths(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "def f(tracer, cond):\n"
            '    tracer.begin("cat", "name", 1)\n'
            "    if cond:\n"
            "        x = 1\n"
            "    else:\n"
            "        x = 2\n"
            '    tracer.end("cat", "name", 1)\n'
            "    return x\n")})
        assert rules_of(findings) == []

    def test_quiet_on_try_finally(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "def f(tracer, body):\n"
            '    tracer.begin("cat", "name", 1)\n'
            "    try:\n"
            "        body()\n"
            "    finally:\n"
            '        tracer.end("cat", "name", 1)\n')})
        assert rules_of(findings) == []

    def test_declared_half_span_is_exempt(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            '@effects("SPAN_BEGIN", "STATE_MUTATE")\n'
            "def activate(self, tracer, job):\n"
            '    tracer.begin("job", job, 1)\n'
            "    self.active = job\n")})
        assert rules_of(findings) == []

    def test_noqa_round_trip(self, tmp_path):
        result = gate(tmp_path, {"m.py": (
            "def f(tracer):  # repro: noqa-REP104\n"
            '    tracer.begin("cat", "name", 1)\n')})
        assert result.findings == []


# ----------------------------------------------------------------- REP105
class TestRep105DeclaredHostTime:
    def test_fires_on_undeclared_read(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "import time\n"
            "def f():\n"
            "    return time.perf_counter()\n")})
        assert rules_of(findings) == ["REP105"]

    def test_quiet_when_declared(self, tmp_path):
        findings, _ = analyze(tmp_path, {"m.py": (
            "import time\n"
            '@effects("HOST_TIME")\n'
            "def f():\n"
            "    return time.perf_counter()\n")})
        assert rules_of(findings) == []

    def test_caller_of_declared_reader_is_not_flagged(self, tmp_path):
        # HOST_TIME propagates for REP100/REP101 purposes, but REP105
        # anchors on the *direct* leaf only -- no cascade up the stack.
        findings, _ = analyze(tmp_path, {"m.py": (
            "import time\n"
            '@effects("HOST_TIME")\n'
            "def timer():\n"
            "    return time.perf_counter()\n"
            "\n"
            "def caller():\n"
            "    return timer()\n")})
        assert rules_of(findings) == []

    def test_noqa_round_trip(self, tmp_path):
        result = gate(tmp_path, {"m.py": (
            "import time\n"
            "def f():\n"
            "    return time.perf_counter()  # repro: noqa-REP105\n")})
        assert result.findings == []


# ----------------------------------------------------- inference mechanics
class TestInference:
    def test_fixpoint_closes_over_cycles(self, tmp_path):
        _, table = analyze(tmp_path, {"m.py": (
            "def a(clock, n):\n"
            "    clock.advance(1.0)\n"
            "    return b(clock, n - 1) if n else 0\n"
            "def b(clock, n):\n"
            "    return a(clock, n)\n")})
        assert "CLOCK_ADVANCE" in table["repro.m.a"].inferred
        assert "CLOCK_ADVANCE" in table["repro.m.b"].inferred

    def test_nested_def_charged_to_definer(self, tmp_path):
        _, table = analyze(tmp_path, {"m.py": (
            "def submit(pool, clock):\n"
            "    def job():\n"
            "        clock.advance(1.0)\n"
            "    pool.append(job)\n")})
        assert "CLOCK_ADVANCE" in table["repro.m.submit"].inferred

    def test_constructor_stores_are_not_effects(self, tmp_path):
        _, table = analyze(tmp_path, {"m.py": (
            "class SimClock:\n"
            "    def __init__(self):\n"
            "        self.now = 0.0\n"
            "    def advance(self, dt):\n"
            "        self.now = self.now + dt\n")})
        init = table["repro.m.SimClock.__init__"].inferred
        assert "CLOCK_ADVANCE" not in init
        assert "CLOCK_ADVANCE" in table["repro.m.SimClock.advance"].inferred

    def test_local_stores_are_not_state_mutation(self, tmp_path):
        _, table = analyze(tmp_path, {"m.py": (
            "def f():\n"
            "    acc = []\n"
            "    acc.append(1)\n"
            "    d = {}\n"
            "    d['k'] = 2\n"
            "    return d\n")})
        assert table["repro.m.f"].inferred == frozenset()


# ------------------------------------------------------------ baseline
class TestBaseline:
    FILES = {"m.py": ("import time\n"
                      "def f():\n"
                      "    return time.perf_counter()\n")}

    def write_baseline(self, tmp_path, entries):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(entries), encoding="utf-8")
        return path

    def test_matching_entry_moves_finding_to_baselined(self, tmp_path):
        path = self.write_baseline(tmp_path, [
            {"rule": "REP105", "function": "repro.m.f",
             "reason": "legacy host timer"}])
        result = gate(tmp_path, self.FILES, baseline=path)
        assert result.findings == []
        assert result.ok
        assert [e.reason for _, e in result.baselined] == ["legacy host timer"]

    def test_strict_fails_on_baselined_findings(self, tmp_path):
        path = self.write_baseline(tmp_path, [
            {"rule": "REP105", "function": "repro.m.f", "reason": "legacy"}])
        result = gate(tmp_path, self.FILES, baseline=path, strict=True)
        assert result.findings == []
        assert not result.ok

    def test_stale_entries_are_reported(self, tmp_path):
        path = self.write_baseline(tmp_path, [
            {"rule": "REP104", "function": "repro.m.gone", "reason": "old"}])
        result = gate(tmp_path, self.FILES, baseline=path)
        assert [e.function for e in result.stale_baseline] == ["repro.m.gone"]
        assert not result.ok  # the REP105 finding is not baselined

    def test_entry_matches_rule_and_function_exactly(self, tmp_path):
        path = self.write_baseline(tmp_path, [
            {"rule": "REP104", "function": "repro.m.f", "reason": "wrong"}])
        result = gate(tmp_path, self.FILES, baseline=path)
        assert rules_of(result.findings) == ["REP105"]

    def test_load_baseline_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []

    def test_committed_baseline_is_small_and_justified(self):
        entries = load_baseline()
        assert len(entries) <= 10
        for entry in entries:
            assert isinstance(entry, BaselineEntry)
            assert entry.reason.strip(), f"{entry.function} lacks a reason"


# ------------------------------------------------------------ JSON report
class TestReport:
    def test_report_round_trips_through_json(self, tmp_path):
        result = gate(tmp_path, {"m.py": (
            "import time\n"
            "def f():\n"
            "    return time.perf_counter()\n"
            '@effects("CLOCK_ADVANCE")\n'
            "def g(clock):\n"
            "    clock.advance(1.0)\n")})
        out = tmp_path / "report.json"
        write_report(result, str(out), root=tmp_path)
        data = json.loads(out.read_text(encoding="utf-8"))
        assert data["summary"]["violations"] == 1
        assert data["summary"]["ok"] is False
        assert data["findings"][0]["rule"] == "REP105"
        assert data["findings"][0]["path"] == str(Path("repro") / "m.py")
        assert data["declared_contracts"]["repro.m.g"]["declared"] == \
            ["CLOCK_ADVANCE"]
        assert data["effects"]["repro.m.g"] == ["CLOCK_ADVANCE"]

    def test_report_is_deterministic(self, tmp_path):
        files = {"m.py": "import time\ndef f():\n    return time.time()\n"}
        r1 = gate(tmp_path, files)
        out1, out2 = tmp_path / "r1.json", tmp_path / "r2.json"
        write_report(r1, str(out1), root=tmp_path)
        write_report(r1, str(out2), root=tmp_path)
        assert out1.read_bytes() == out2.read_bytes()


# ----------------------------------------------- decorators are identity
class TestDecoratorIdentity:
    def test_effects_returns_the_same_function_object(self):
        def fn():
            return 42
        marked = effects("CLOCK_ADVANCE")(fn)
        assert marked is fn
        assert fn.__effect_contract__ == frozenset({"CLOCK_ADVANCE"})
        assert fn() == 42

    def test_observation_only_returns_the_same_function_object(self):
        def fn():
            return "ok"
        assert observation_only(fn) is fn
        assert fn.__observation_only__ is True

    def test_unknown_effect_name_is_rejected(self):
        with pytest.raises(ValueError):
            effects("TIME_TRAVEL")

    def test_annotated_engine_methods_are_plain_functions(self):
        # No wrappers anywhere: the annotated methods must still be the
        # plain functions Python compiled, so dispatch cost and behavior
        # are untouched.
        from repro.db.iamdb import IamDB
        from repro.storage.runtime import Runtime

        assert isinstance(IamDB.stats, types.FunctionType)
        assert IamDB.stats.__observation_only__ is True
        assert isinstance(Runtime.fg_read_blocks, types.FunctionType)
        assert "DISK_CHARGE" in Runtime.fg_read_blocks.__effect_contract__

    def test_annotations_do_not_perturb_a_smoke_workload(self):
        # Two identically-seeded runs over the annotated engine must agree
        # byte-for-byte on every observable: records read, final stats and
        # the simulated clock.  Since @effects/@observation_only are
        # identity functions this also proves the annotated build equals
        # the unannotated one.
        from repro.common.options import IamOptions, SSD, StorageOptions
        from repro.db.iamdb import IamDB

        def run():
            opts = IamOptions(node_capacity=1024, fanout=3, key_size=8)
            storage = StorageOptions(device=SSD, page_cache_bytes=8 * 1024,
                                     block_size=256)
            db = IamDB("iam", engine_options=opts, storage_options=storage)
            rng = random.Random(7)
            reads = []
            for i in range(300):
                key = rng.randrange(128)
                if rng.random() < 0.6:
                    db.put(key, 48)
                else:
                    reads.append((key, db.get(key)))
            db.flush()
            db.quiesce()
            clock = db.engine.runtime.clock.now
            stats = repr(sorted(db.stats().items()))
            db.close()
            return reads, clock, stats

        assert run() == run()


# ------------------------------------------------- runner gate aggregation
class TestRunnerAggregation:
    def test_raising_gate_reports_error_and_others_still_run(
            self, monkeypatch, capsys):
        from repro.check import runner

        def boom(args):
            raise RuntimeError("gate exploded")

        def ok(args):
            return runner.GateOutcome("types", "PASS", detail="stubbed")

        monkeypatch.setitem(runner._GATE_RUNNERS, "lint", boom)
        monkeypatch.setitem(runner._GATE_RUNNERS, "types", ok)
        code = runner.main(["--gate", "lint", "--gate", "types"])
        out = capsys.readouterr().out
        assert code == 1
        assert "lint       ERROR" in out
        assert "RuntimeError: gate exploded" in out
        assert "types      PASS (stubbed)" in out
        assert "1/2 gates passed, 1 failed (lint)" in out

    def test_all_pass_summary_and_exit_zero(self, monkeypatch, capsys):
        from repro.check import runner

        monkeypatch.setitem(
            runner._GATE_RUNNERS, "lint",
            lambda args: runner.GateOutcome("lint", "PASS", detail="0 findings"))
        monkeypatch.setitem(
            runner._GATE_RUNNERS, "types",
            lambda args: runner.GateOutcome("types", "PASS"))
        code = runner.main(["--gate", "lint", "--gate", "types"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lint       PASS (0 findings)" in out
        assert "2/2 gates passed" in out

    def test_skip_flags_do_not_fail_the_run(self, monkeypatch, capsys):
        from repro.check import runner

        monkeypatch.setitem(
            runner._GATE_RUNNERS, "lint",
            lambda args: runner.GateOutcome("lint", "PASS"))
        code = runner.main(["--gate", "lint", "--gate", "types",
                            "--skip-types"])
        out = capsys.readouterr().out
        assert code == 0
        assert "types      SKIP (--skip-types)" in out
        assert "1 skipped" in out

    def test_failing_gate_does_not_short_circuit(self, monkeypatch, capsys):
        from repro.check import runner

        calls = []

        def fail(args):
            calls.append("lint")
            return runner.GateOutcome("lint", "FAIL", body="1 finding(s)")

        def ok(args):
            calls.append("types")
            return runner.GateOutcome("types", "PASS")

        monkeypatch.setitem(runner._GATE_RUNNERS, "lint", fail)
        monkeypatch.setitem(runner._GATE_RUNNERS, "types", ok)
        code = runner.main(["--gate", "lint", "--gate", "types"])
        assert code == 1
        assert calls == ["lint", "types"]  # second gate still ran


# ---------------------------------------------------------------- catalog
class TestCatalog:
    def test_effect_rule_catalog_is_complete(self):
        assert sorted(EFFECT_RULES) == [f"REP10{i}" for i in range(6)]

    def test_every_rule_has_an_explanation(self):
        from repro.check.effects.gate import EXPLANATIONS

        assert sorted(EXPLANATIONS) == sorted(EFFECT_RULES)

    def test_observation_forbidden_excludes_state_mutation(self):
        assert "STATE_MUTATE" in ALL_EFFECTS
        assert "STATE_MUTATE" not in OBSERVATION_FORBIDDEN

    def test_repo_corpus_is_clean(self):
        result = run_effects_gate()
        assert result.findings == [], \
            "\n".join(f.format() for f in result.findings)
        assert result.stale_baseline == []
        assert result.n_contracts >= 40
