"""Byte-identity proof for ``legacy_gate=True``.

The stability scheduler (fair pump, pluggable selector, token-bucket
pacing) must be a pure *addition*: with ``legacy_gate=True`` every engine
reproduces the pre-scheduler behavior bit for bit -- same records, same
simulated clock, same write amplification, same stall/gate-delay floats
(compared via ``float.hex``), same job counts.  The golden fixture in
``tests/data/legacy_gate_golden.json`` was generated on the pre-scheduler
tree by ``tests/legacy_golden.py``; these tests replay all eleven cases
(three engines x load/mixed, fault-injected variants included) against it.
"""

import json

import pytest

from tests.legacy_golden import CASES, GOLDEN_PATH, run_digest


@pytest.fixture(scope="module")
def golden():
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def test_golden_fixture_covers_all_cases(golden):
    assert sorted(golden) == sorted(CASES)


@pytest.mark.parametrize("case", sorted(CASES))
def test_legacy_gate_byte_identical(case, golden):
    assert run_digest(case) == golden[case], (
        f"legacy_gate=True diverged from the pre-scheduler tree on {case!r}")
