"""Tracing is deterministic and observation-only.

Two properties, mirroring the sanitizer-equivalence suite:

* **byte-identical traces** -- two runs with the same seed and options emit
  the exact same JSONL bytes (events and sampler rows), including across a
  crash/recovery cycle;
* **observation-only** -- a traced run's write amplification, tree shape,
  space and simulated clock are byte-identical to an untraced run.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from tests.conftest import tiny_iam_options, tiny_storage_options
from repro.db.iamdb import IamDB
from repro.obs import TraceConfig, attach_trace, validate_chrome_trace

# One mixed-workload step: (op, key, extra).
OPS = st.sampled_from(["put", "delete", "get", "scan"])
STEP = st.tuples(OPS, st.integers(min_value=0, max_value=255),
                 st.integers(min_value=16, max_value=96))

TRACE_CONFIG = TraceConfig(ring_capacity=1 << 14, sample_interval_s=0.00002)


def run_workload(engine: str, steps, *, trace: bool, crash_at=None):
    db = IamDB(engine, engine_options=tiny_iam_options(),
               storage_options=tiny_storage_options())
    session = attach_trace(db, TRACE_CONFIG) if trace else None
    reads = []
    for i, (op, key, extra) in enumerate(steps):
        if op == "put":
            db.put(key, extra)
        elif op == "delete":
            db.delete(key)
        elif op == "get":
            reads.append((key, db.get(key)))
        else:
            reads.append(tuple(db.scan(key, key + 16, limit=4)))
        if crash_at is not None and i == crash_at:
            db.flush()
            db.crash_and_recover()
    db.flush()
    db.quiesce()
    digest = {
        "wa": db.write_amplification(),
        "shape": db.engine.describe(),
        "space": db.space_used_bytes(),
        "clock": db.clock_now,
        "reads": reads,
    }
    jsonl = None
    if session is not None:
        session.finish()
        jsonl = session.to_jsonl()
        assert validate_chrome_trace(session.to_chrome()) == []
    db.close()
    return digest, jsonl


@settings(max_examples=10, deadline=None)
@given(steps=st.lists(STEP, min_size=40, max_size=160),
       engine=st.sampled_from(["iam", "lsa"]))
def test_same_seed_yields_byte_identical_jsonl(steps, engine):
    crash_at = len(steps) // 2
    digest_a, jsonl_a = run_workload(engine, steps, trace=True,
                                     crash_at=crash_at)
    digest_b, jsonl_b = run_workload(engine, steps, trace=True,
                                     crash_at=crash_at)
    assert jsonl_a is not None and jsonl_a == jsonl_b
    assert digest_a == digest_b


@settings(max_examples=10, deadline=None)
@given(steps=st.lists(STEP, min_size=40, max_size=160),
       engine=st.sampled_from(["iam", "lsa"]))
def test_traced_run_is_observation_only(steps, engine):
    crash_at = len(steps) // 2
    plain, _ = run_workload(engine, steps, trace=False, crash_at=crash_at)
    traced, jsonl = run_workload(engine, steps, trace=True, crash_at=crash_at)
    assert jsonl  # the traced run actually recorded something
    assert traced == plain


@settings(max_examples=8, deadline=None)
@given(steps=st.lists(STEP, min_size=30, max_size=120))
def test_span_balance_property(steps):
    """Every job begin has exactly one end after the pool fully drains."""
    db = IamDB("iam", engine_options=tiny_iam_options(),
               storage_options=tiny_storage_options())
    session = attach_trace(db, TRACE_CONFIG)
    for op, key, extra in steps:
        if op == "put":
            db.put(key, extra)
        elif op == "delete":
            db.delete(key)
        elif op == "get":
            db.get(key)
        else:
            list(db.scan(key, key + 16, limit=4))
    db.flush()
    db.quiesce()
    tracer = session.tracer
    assert tracer.spans_opened == tracer.spans_closed
    assert tracer.open_spans == {}
    db.close()
