"""Memtable: MVCC versions, ordering, size accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import InvariantViolation
from repro.common.records import (
    DELETE,
    KEY,
    PUT,
    SEQ,
    encoded_size,
    is_sorted_run,
    make_delete,
    make_put,
)
from repro.memtable import Memtable

KS = 8


def test_add_and_get_latest():
    mt = Memtable(KS)
    mt.add(make_put(1, 1, 10))
    mt.add(make_put(1, 2, 20))
    rec = mt.get(1)
    assert rec[SEQ] == 2 and rec[3] == 20


def test_get_with_snapshot_sees_old_version():
    mt = Memtable(KS)
    mt.add(make_put(1, 5, 10))
    mt.add(make_put(1, 9, 20))
    assert mt.get(1, snapshot=5)[SEQ] == 5
    assert mt.get(1, snapshot=8)[SEQ] == 5
    assert mt.get(1, snapshot=4) is None
    assert mt.get(2) is None


def test_tombstones_are_versions_too():
    mt = Memtable(KS)
    mt.add(make_put(7, 1, 10))
    mt.add(make_delete(7, 2))
    assert mt.get(7)[2] == DELETE
    assert mt.get(7, snapshot=1)[2] == PUT


def test_seq_must_increase_per_key():
    mt = Memtable(KS)
    mt.add(make_put(1, 5, 10))
    with pytest.raises(InvariantViolation):
        mt.add(make_put(1, 5, 10))
    with pytest.raises(InvariantViolation):
        mt.add(make_put(1, 4, 10))


def test_size_accounting():
    mt = Memtable(KS)
    recs = [make_put(i, i + 1, 32) for i in range(10)]
    for r in recs:
        mt.add(r)
    assert mt.nbytes == sum(encoded_size(r, KS) for r in recs)
    assert len(mt) == 10
    assert mt.n_keys == 10
    assert (mt.min_seq, mt.max_seq) == (1, 10)


def test_sorted_records_is_valid_run():
    mt = Memtable(KS)
    for key, seq in [(5, 1), (3, 2), (5, 3), (1, 4), (3, 5)]:
        mt.add(make_put(key, seq, 8))
    run = mt.sorted_records()
    assert is_sorted_run(run)
    assert [r[KEY] for r in run] == [1, 3, 3, 5, 5]
    assert len(run) == 5


def test_iter_range_bounds():
    mt = Memtable(KS)
    for k in [1, 3, 5, 7, 9]:
        mt.add(make_put(k, k, 8))
    assert [r[KEY] for r in mt.iter_range(3, 8)] == [3, 5, 7]
    assert [r[KEY] for r in mt.iter_range(None, 4)] == [1, 3]
    assert [r[KEY] for r in mt.iter_range(8, None)] == [9]
    assert [r[KEY] for r in mt.iter_range()] == [1, 3, 5, 7, 9]


def test_approximate_live_records_excludes_tombstoned():
    mt = Memtable(KS)
    mt.add(make_put(1, 1, 8))
    mt.add(make_put(2, 2, 8))
    mt.add(make_delete(1, 3))
    assert mt.approximate_live_records() == 1


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 30), st.booleans()), max_size=120))
def test_memtable_matches_dict_model(ops):
    """Memtable latest-read semantics == plain dict; snapshots == history."""
    mt = Memtable(KS)
    model = {}
    history = []
    seq = 0
    for key, is_delete in ops:
        seq += 1
        if is_delete:
            mt.add(make_delete(key, seq))
            model[key] = None
        else:
            mt.add(make_put(key, seq, 8))
            model[key] = seq
        history.append(dict(model))
    for key in range(31):
        rec = mt.get(key)
        if key not in model:
            assert rec is None
        elif model[key] is None:
            assert rec[2] == DELETE
        else:
            assert rec[SEQ] == model[key]
    # Snapshot at the midpoint matches mid-history.
    if history:
        mid = len(history) // 2
        snap_model = history[mid]
        for key in range(31):
            rec = mt.get(key, snapshot=mid + 1)
            if key not in snap_model:
                assert rec is None
            elif snap_model[key] is None:
                assert rec[2] == DELETE
            else:
                assert rec[SEQ] == snap_model[key]
    assert is_sorted_run(mt.sorted_records())
