"""Cross-checks of engine internals: eager vs lazy scan paths, pool edges."""

import random

import pytest

from repro.common.records import KEY
from repro.storage.background import BackgroundPool
from repro.storage.simdisk import SimDisk
from repro.common.options import DeviceProfile
from tests.conftest import make_tiny_db

PROFILE = DeviceProfile("t", 0.0, 0.0, 1e6, 1e6)


@pytest.mark.parametrize("engine", ["iam", "lsa", "leveldb", "flsm"])
def test_scan_runs_agree_with_cursors(engine):
    """The eager (scan_runs) and lazy (scan_cursors) paths must yield the
    same multiset of records over the same range."""
    db = make_tiny_db(engine)
    rng = random.Random(3)
    for _ in range(2500):
        db.put(rng.randrange(800), rng.randrange(10, 90))
    db.quiesce()
    lo, hi = 100, 600
    runs, _ = db.engine.scan_runs(lo, hi)
    eager = sorted(r for run in runs for r in run)
    lazy = sorted(r for cur in db.engine.scan_cursors(lo, hi) for r in cur)
    assert eager == lazy


def test_drain_queue_only_skips_provider():
    disk = SimDisk(PROFILE)
    pool = BackgroundPool(disk, 1)
    offered = []
    pool.set_provider(lambda: offered.append(1) or None)
    pool.submit("a", lambda: 1.0)
    pool.submit("b", lambda: 1.0)
    n_before = len(offered)
    pool.drain_queue_only()
    assert not pool.busy
    assert len(offered) == n_before  # provider never consulted
    # ... and the provider is restored afterwards.
    assert pool.provider is not None


def test_pool_handles_job_submitted_from_callback():
    """on_complete may submit follow-up work (the flush->checkpoint chain)."""
    disk = SimDisk(PROFILE)
    pool = BackgroundPool(disk, 1)
    done = []

    def chain():
        pool.submit("second", lambda: 1.0, on_complete=lambda: done.append(2))

    pool.submit("first", lambda: 1.0, on_complete=chain)
    pool.drain_all()
    assert done == [2]


@pytest.mark.parametrize("engine", ["iam", "leveldb"])
def test_describe_is_json_like(engine):
    import json
    db = make_tiny_db(engine)
    rng = random.Random(5)
    for _ in range(1500):
        db.put(rng.randrange(1 << 20), 64)
    db.flush()
    d = db.engine.describe()
    json.dumps(d)  # must be serializable (report-friendly)
    assert d["engine"] == db.engine.name


def test_leveldb_find_table_bisect():
    db = make_tiny_db("leveldb")
    for k in range(3000):
        db.put(k, 64)
    db.quiesce()
    eng = db.engine
    deep = max(lvl for lvl in range(1, eng.options.max_levels)
               if eng.levels[lvl])
    tables = eng.levels[deep]
    assert len(tables) >= 2
    for t in tables:
        assert eng._find_table(deep, t.min_key) is t
        assert eng._find_table(deep, t.max_key) is t
    below = tables[0].min_key - 1
    found = eng._find_table(deep, below)
    assert found is None or (found.min_key <= below <= found.max_key)


def test_lsm_split_records_never_splits_key_versions():
    db = make_tiny_db("leveldb")
    from repro.common.records import make_put
    recs = []
    seq = 1000
    for k in range(20):
        for _ in range(3):  # three versions per key
            recs.append(make_put(k, seq, 64))
            seq -= 1
    recs.sort(key=lambda r: (r[0], -r[1]))
    chunks = list(db.engine._split_records(recs, 300))
    assert len(chunks) > 1
    for a, b in zip(chunks, chunks[1:]):
        assert a[-1][KEY] != b[0][KEY]
    assert sum(len(c) for c in chunks) == len(recs)
