"""m/k tuner: Eq. (1) and (2), including the paper's own configuration."""

import pytest

from repro.common.errors import ConfigError
from repro.core.tuning import appended_sequences_bytes, tune_m_k

GB = 1 << 30


def test_eq1_appended_sequences_bytes():
    # S_{m,k} = D_m * (k-1) / t
    assert appended_sequences_bytes(1000, 1, 10) == 0.0
    assert appended_sequences_bytes(1000, 3, 10) == pytest.approx(200.0)
    with pytest.raises(ConfigError):
        appended_sequences_bytes(1000, 0, 10)


def test_everything_fits_gives_lsa_mode():
    sizes = {1: 100, 2: 200}
    m, k = tune_m_k(sizes, 2, memory_budget=10_000, fanout=10, k_max=5)
    assert m == 3  # beyond the deepest level: pure appends
    assert k == 1


def test_nothing_fits_gives_lsm_mode():
    sizes = {1: 100}
    m, k = tune_m_k(sizes, 1, memory_budget=0, fanout=10, k_max=5)
    # m=1 with the largest k whose appended sequences still fit (0 bytes
    # below L1); D_1*(k-1)/t must be <= 0 -> k=1.
    assert (m, k) == (1, 1)


def test_mixed_level_chosen_with_partial_fit():
    sizes = {1: 100, 2: 1000, 3: 10_000}
    # Budget covers L1+L2 but not L3 -> m=3; k from D_3*(k-1)/10 <= slack.
    m, k = tune_m_k(sizes, 3, memory_budget=1500, fanout=10, k_max=8)
    assert m == 3
    # slack = 1500 - 1100 = 400; 10000*(k-1)/10 <= 400 -> k <= 1.4 -> k=1
    assert k == 1
    m, k = tune_m_k(sizes, 3, memory_budget=4100, fanout=10, k_max=8)
    assert m == 3
    # slack = 3000 -> k-1 <= 3 -> k=4
    assert k == 4


def test_m_preferred_over_k():
    """§5.1.3: 'the largest m and k satisfying the inequality' -- m first."""
    sizes = {1: 100, 2: 1000}
    # Budget 1100 fits everything below L3 exactly -> m=3 (pure appends
    # through L2) even though a smaller m would allow a huge k.
    m, k = tune_m_k(sizes, 2, memory_budget=1100, fanout=10, k_max=8)
    assert m == 3


def test_paper_1tb_configuration():
    """§6.1/§5.1.3 at paper scale: 1 TB data, 64 GB RAM, M/2 budget.

    D1 ~ 640 MB, D2 ~ 6.4 GB, D3 ~ 64 GB, D4 ~ rest.  With a 32 GB budget
    the mixed level lands on L3 (as in Tables 3/4) and k ~ 4.
    """
    sizes = {1: int(0.64 * GB), 2: int(6.4 * GB), 3: 64 * GB, 4: 950 * GB}
    m, k = tune_m_k(sizes, 4, memory_budget=32 * GB, fanout=10, k_max=8)
    assert m == 3
    assert 3 <= k <= 5


def test_paper_100gb_configuration():
    """100 GB data, 16 GB RAM, M/2 = 8 GB budget -> m=3, k=1 (Table 3 uses
    fixed k = 1..3 as an ablation around this point)."""
    sizes = {1: int(0.64 * GB), 2: int(6.4 * GB), 3: 64 * GB, 4: 29 * GB}
    m, k = tune_m_k(sizes, 4, memory_budget=8 * GB, fanout=10, k_max=8)
    assert m == 3
    assert k == 1


def test_k_capped_by_k_max():
    sizes = {1: 10, 2: 100}
    m, k = tune_m_k(sizes, 2, memory_budget=95, fanout=10, k_max=3)
    assert m == 2
    assert k == 3


def test_empty_tree():
    assert tune_m_k({}, 0, memory_budget=100, fanout=10, k_max=5) == (1, 1)


def test_negative_budget_rejected():
    with pytest.raises(ConfigError):
        tune_m_k({1: 10}, 1, memory_budget=-1, fanout=10, k_max=5)
