"""Tiered merge kernel vs the frozen seed merge: record-identical outputs.

``repro.table.merge.merge_runs`` picks between a no-snapshot dedup pass, a
pairwise 2-way merge and the general heap merge; every tier must produce
exactly the records of :func:`repro.bench.reference.reference_merge_runs`
for any combination of run count, tombstones, live snapshots and
``drop_tombstones``.
"""

import random

from hypothesis import given, strategies as st

from repro.bench.reference import reference_merge_runs
from repro.common.records import DELETE, PUT, sort_key
from repro.table.merge import merge_runs


@st.composite
def runs_and_views(draw):
    n = draw(st.integers(0, 90))
    n_runs = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 2**31))
    rng = random.Random(seed)
    seqs = list(range(1, n + 1))
    rng.shuffle(seqs)  # globally unique seqs, randomly ordered
    runs = [[] for _ in range(n_runs)]
    for seq in seqs:
        key = rng.randrange(12)
        kind = DELETE if rng.random() < 0.25 else PUT
        vsize = 0 if kind == DELETE else rng.randrange(200)
        runs[rng.randrange(n_runs)].append((key, seq, kind, vsize))
    for run in runs:
        run.sort(key=sort_key)
    if draw(st.booleans()):
        snapshots = draw(st.lists(st.integers(0, n + 2), max_size=4))
    else:
        snapshots = None
    return runs, snapshots


@given(runs_and_views(), st.booleans())
def test_merge_matches_reference(data, drop_tombstones):
    runs, snapshots = data
    assert merge_runs(runs, drop_tombstones=drop_tombstones,
                      snapshots=snapshots) == \
        reference_merge_runs(runs, drop_tombstones=drop_tombstones,
                             snapshots=snapshots)


def test_empty_inputs():
    assert merge_runs([]) == reference_merge_runs([]) == []
    assert merge_runs([[]]) == reference_merge_runs([[]]) == []
    assert merge_runs([[], []]) == reference_merge_runs([[], []]) == []


def test_each_tier_exercised_explicitly():
    # One run (prev-key dedup), two runs (_merge2), four runs (heap), with
    # and without snapshots -- pinned examples beyond the random sweep.
    a = [(1, 9, PUT, 5), (1, 3, PUT, 5), (2, 4, DELETE, 0)]
    b = [(1, 7, PUT, 6), (3, 2, PUT, 6)]
    c = [(2, 8, PUT, 7)]
    d = [(0, 1, DELETE, 0)]
    for runs in ([a], [a, b], [a, b, c, d]):
        for snaps in (None, [], [3], [3, 7, 100]):
            for drop in (False, True):
                assert merge_runs(runs, drop_tombstones=drop,
                                  snapshots=snaps) == \
                    reference_merge_runs(runs, drop_tombstones=drop,
                                         snapshots=snaps)
