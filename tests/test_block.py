"""Sequence: block layout, point gets, range reads, lazy cursors."""

import pytest

from repro.common.errors import InvariantViolation
from repro.common.options import DeviceProfile, StorageOptions
from repro.common.records import KEY, SEQ, encoded_size, make_put
from repro.storage.runtime import Runtime
from repro.table.block import INDEX_ENTRY_BYTES, Sequence

KS = 8
BLOCK = 256

PROFILE = DeviceProfile("test", seek_time_s=0.01, bulk_seek_time_s=0.001,
                        read_bandwidth=1e6, write_bandwidth=1e6)


def make_runtime(cache_bytes=0):
    return Runtime(StorageOptions(device=PROFILE, page_cache_bytes=cache_bytes,
                                  block_size=BLOCK))


def make_seq(records, first_block=0):
    return Sequence(records, key_size=KS, block_size=BLOCK,
                    bloom_bits_per_key=14, first_block=first_block)


def records_of(n, vsize=64, seq_base=0):
    return [make_put(i, seq_base + n - i, vsize) for i in range(n)]


def test_empty_sequence_rejected():
    with pytest.raises(InvariantViolation):
        make_seq([])


def test_block_layout_and_sizes():
    recs = records_of(12, vsize=64)  # 85 bytes each -> 3 per 256B block
    s = make_seq(recs)
    per = encoded_size(recs[0], KS)
    assert s.nbytes == 12 * per
    assert s.n_blocks == 4
    assert s.block_start_idx == [0, 3, 6, 9]
    assert (s.min_key, s.max_key) == (0, 11)
    assert s.metadata_bytes == s.bloom.nbytes + 4 * INDEX_ENTRY_BYTES


def test_oversized_record_gets_own_block():
    recs = [make_put(0, 2, 500), make_put(1, 1, 10)]
    s = make_seq(recs)
    assert s.n_blocks == 2


def test_get_present_key():
    rt = make_runtime()
    s = make_seq(records_of(12))
    rec, lat = s.get(rt, 1, 5)
    assert rec[KEY] == 5
    assert lat > 0.0  # one block read
    assert rt.metrics.query_seeks == 1


def test_get_out_of_range_is_free():
    rt = make_runtime()
    s = make_seq(records_of(12))
    rec, lat = s.get(rt, 1, 99)
    assert rec is None and lat == 0.0
    assert rt.metrics.query_seeks == 0


def test_get_bloom_rejects_absent_key_without_io():
    rt = make_runtime()
    s = make_seq([make_put(k, 1, 64) for k in range(0, 1000, 7)])
    misses_free = 0
    for k in range(1, 1000, 7):  # keys not present but in range
        _, lat = s.get(rt, 1, k)
        if lat == 0.0:
            misses_free += 1
    # At 14 bits/key almost all absent keys are rejected by the filter.
    assert misses_free > 130


def test_get_with_snapshot_picks_visible_version():
    recs = [make_put(1, 9, 8), make_put(1, 4, 8), make_put(2, 7, 8)]
    s = make_seq(recs)
    rt = make_runtime()
    rec, _ = s.get(rt, 1, 1, snapshot=5)
    assert rec[SEQ] == 4
    rec, _ = s.get(rt, 1, 1, snapshot=3)
    assert rec is None
    rec, _ = s.get(rt, 1, 1)
    assert rec[SEQ] == 9


def test_read_range_inclusive_bounds():
    rt = make_runtime()
    s = make_seq(records_of(20))
    recs, lat = s.read_range(rt, 1, 5, 9)
    assert [r[KEY] for r in recs] == [5, 6, 7, 8, 9]
    assert lat > 0.0
    recs, _ = s.read_range(rt, 1, None, 2)
    assert [r[KEY] for r in recs] == [0, 1, 2]
    recs, lat = s.read_range(rt, 1, 50, 60)
    assert recs == [] and lat == 0.0


def test_read_all_charges_every_block():
    rt = make_runtime()
    s = make_seq(records_of(12))
    recs, _ = s.read_all(rt, 1)
    assert len(recs) == 12
    assert rt.metrics.cache_misses == s.n_blocks


def test_cursor_yields_range_in_order():
    rt = make_runtime(cache_bytes=100 * BLOCK)
    s = make_seq(records_of(30))
    got = [r[KEY] for r in s.cursor(rt, 1, 10, 19)]
    assert got == list(range(10, 20))


def test_cursor_charges_lazily_with_readahead():
    rt = make_runtime()
    s = make_seq(records_of(60))  # 20 blocks
    cur = s.cursor(rt, 1, None, None, readahead_blocks=4)
    next(cur)
    assert rt.metrics.cache_misses == 4  # first readahead window only
    for _ in range(3 * 4 - 1):  # finish the window's records (3/block)
        next(cur)
    next(cur)
    assert rt.metrics.cache_misses == 8


def test_cursor_consumed_fully_charges_all_blocks():
    rt = make_runtime()
    s = make_seq(records_of(30))
    list(s.cursor(rt, 1))
    assert rt.metrics.cache_misses == s.n_blocks


def test_cursor_empty_range_charges_nothing():
    rt = make_runtime()
    s = make_seq(records_of(10))
    assert list(s.cursor(rt, 1, 50, 60)) == []
    assert rt.metrics.cache_misses == 0


def test_blocks_numbered_from_first_block():
    s = make_seq(records_of(12), first_block=7)
    assert list(s.block_numbers()) == [7, 8, 9, 10]
