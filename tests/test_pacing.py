"""Property tests for the write-pacing math (repro.storage.pacing).

The clamp contract matters more than the exact values: a write gate that
returns a negative delay runs the clock backwards, zero-on-nonzero admits
writes at full speed exactly when the store is degraded, and NaN poisons
every downstream latency percentile.  Hypothesis sweeps the pathological
domain (huge byte counts near float overflow, subnormal fractions,
cancellation-prone bandwidths); a few pinned cases document the legacy
bit-identity and the bucket/estimator mechanics.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.pacing import (
    MAX_GATE_DELAY_S,
    MIN_GATE_DELAY_S,
    MIN_RATE_FRACTION,
    RateEstimator,
    TokenBucketPacer,
    degraded_extra_delay_s,
)

# ------------------------------------------------- degraded_extra_delay_s

nbytes_st = st.integers(min_value=-(10 ** 6), max_value=10 ** 400)
bandwidth_st = st.one_of(
    st.floats(min_value=1e-3, max_value=1e12, allow_nan=False),
    st.sampled_from([0.0, -1.0, 1e308, 5e-324]),
)
frac_st = st.one_of(
    st.floats(min_value=1e-12, max_value=2.0, allow_nan=False),
    st.sampled_from([0.0, -0.5, 1.0, 5e-324, 2 ** -1000]),
)


@settings(max_examples=400, deadline=None)
@given(nbytes=nbytes_st, bandwidth=bandwidth_st, frac=frac_st)
def test_delay_is_finite_clamped_and_never_negative(nbytes, bandwidth, frac):
    d = degraded_extra_delay_s(nbytes, bandwidth, frac)
    assert not math.isnan(d)
    assert 0.0 <= d <= MAX_GATE_DELAY_S
    if nbytes <= 0 or frac >= 1.0 or frac <= 0.0 or bandwidth <= 0.0:
        assert d == 0.0  # nothing to pace
    else:
        # Zero-on-nonzero is forbidden: a degraded gate must always bite
        # (a genuinely tiny positive delay is fine; exact zero is not).
        assert d > 0.0


def test_delay_matches_legacy_expression_on_realistic_domain():
    # The legacy gates computed exactly nbytes/(bw*frac) - nbytes/bw; the
    # clamped form must reproduce it bit for bit (legacy_gate identity).
    for nbytes, bw, frac in [(1000, 400e6, 0.25), (64, 100e6, 1 / 256),
                             (4096, 1.5e9, 0.5)]:
        assert degraded_extra_delay_s(nbytes, bw, frac) == \
            nbytes / (bw * frac) - nbytes / bw


def test_delay_saturates_on_float_overflow():
    huge = 10 ** 309  # float(huge) overflows
    assert degraded_extra_delay_s(huge, 400e6, 0.25) == MAX_GATE_DELAY_S


# ------------------------------------------------------- TokenBucketPacer

def test_bucket_starts_full_and_burst_is_free():
    p = TokenBucketPacer(1024.0, now=0.0)
    assert p.admit(1024, 0.0, 100.0) == 0.0
    assert p.tokens == 0.0


def test_deficit_delay_is_deficit_over_rate():
    p = TokenBucketPacer(100.0, now=0.0)
    assert p.admit(100, 0.0, 50.0) == 0.0  # drains the burst
    d = p.admit(25, 0.0, 50.0)
    assert d == pytest.approx(0.5)  # 25-byte deficit at 50 B/s
    # The caller's clock advance IS the refill: the bucket stays empty.
    assert p.tokens == 0.0
    assert p.last_now == pytest.approx(0.5)


def test_refill_caps_at_burst():
    p = TokenBucketPacer(100.0, now=0.0)
    p.admit(100, 0.0, 10.0)
    p.refill(1e9, 10.0)  # absurd idle time
    assert p.tokens == 100.0


def test_admit_composes_with_clock_advance():
    # admit -> advance(delay) -> admit must not double-count the delay.
    p = TokenBucketPacer(64.0, now=0.0)
    p.admit(64, 0.0, 100.0)
    d1 = p.admit(10, 0.0, 100.0)
    d2 = p.admit(10, 0.0 + d1, 100.0)
    assert d1 == pytest.approx(0.1)
    assert d2 == pytest.approx(0.1)  # no free refill from our own delay


@settings(max_examples=200, deadline=None)
@given(burst=st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
       writes=st.lists(st.integers(min_value=-10, max_value=10 ** 320),
                       max_size=20),
       rate=st.floats(min_value=0.0, max_value=1e12, allow_nan=False))
def test_bucket_delays_always_clamped(burst, writes, rate):
    p = TokenBucketPacer(burst, now=0.0)
    now = 0.0
    for nbytes in writes:
        d = p.admit(nbytes, now, rate)
        assert not math.isnan(d)
        assert 0.0 <= d <= MAX_GATE_DELAY_S
        now += d
        assert 0.0 <= p.tokens <= p.burst_bytes


# --------------------------------------------------------- RateEstimator

def test_estimator_defaults_to_bandwidth_without_data():
    est = RateEstimator(400.0, window_bytes=1000)
    assert est.rate() == 400.0
    est.observe(0.0, 0)
    assert est.rate() == 400.0


def test_estimator_measures_lambda_over_window():
    bw = 100.0
    est = RateEstimator(bw, window_bytes=1000)
    # 0.03 background-seconds per byte over 100 user bytes.
    est.observe(0.0, 0)
    est.observe(3.0, 100)
    lam = 3.0 / 100
    assert est.rate() == pytest.approx(1.0 / (lam + 1.0 / bw))


def test_estimator_clamps_to_floor_and_ceiling():
    bw = 100.0
    est = RateEstimator(bw, window_bytes=1000)
    est.observe(0.0, 0)
    est.observe(1e9, 10)  # catastrophic lambda
    assert est.rate() == bw * MIN_RATE_FRACTION
    est2 = RateEstimator(bw, window_bytes=1000)
    est2.observe(0.0, 0)
    est2.observe(1e-30, 10)  # near-zero lambda: ceiling is the device
    assert est2.rate() == bw


def test_estimator_window_slides():
    est = RateEstimator(100.0, window_bytes=100)
    est.observe(0.0, 0)
    est.observe(10.0, 100)   # heavy old epoch
    est.observe(10.0, 200)   # light new epoch (no extra debt)
    est.observe(10.0, 300)
    # The heavy anchor slid out: lambda over the trailing window is ~0.
    assert est.rate() == 100.0


@settings(max_examples=200, deadline=None)
@given(samples=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
              st.integers(min_value=0, max_value=10 ** 12)),
    max_size=30))
def test_estimator_rate_always_in_clamp_band(samples):
    bw = 400e6
    est = RateEstimator(bw, window_bytes=1 << 20)
    debt = 0.0
    nbytes = 0
    for d_debt, d_bytes in samples:
        debt += d_debt
        nbytes += d_bytes
        est.observe(debt, nbytes)
        assert bw * MIN_RATE_FRACTION <= est.rate() <= bw
