"""Leveled LSM engine: flushes, compaction, trivial moves, stall gates."""

import pytest

from repro.common.records import KEY, SEQ, make_put
from repro.db.iamdb import IamDB
from tests.conftest import make_tiny_db, tiny_lsm_options, tiny_storage_options

VAL = 64


def load_keys(db, keys, vsize=VAL):
    for k in keys:
        db.put(k, vsize)


def test_flush_lands_in_l0():
    db = make_tiny_db("leveldb")
    load_keys(db, range(40))  # > memtable capacity
    db.flush()
    eng = db.engine
    assert eng.flushes >= 1
    assert len(eng.levels[0]) >= 1
    for t in eng.levels[0]:
        assert t.n_sequences == 1


def test_l0_files_may_overlap_and_newest_wins():
    db = make_tiny_db("leveldb")
    load_keys(db, list(range(30)) + list(range(30)))  # second pass updates
    db.flush()
    assert db.get(5) == VAL
    rec, _ = db.engine.get(5)
    assert rec is not None


def test_compaction_triggers_and_deep_levels_sorted():
    db = make_tiny_db("leveldb")
    import random
    rng = random.Random(1)
    for _ in range(2000):
        db.put(rng.randrange(500), VAL)
    db.quiesce()
    eng = db.engine
    eng.check_invariants()
    assert eng.compactions > 0
    deep = [lvl for lvl in range(1, eng.options.max_levels) if eng.levels[lvl]]
    assert deep, "data should reach deeper levels"


def test_trivial_move_on_sequential_load():
    db = make_tiny_db("leveldb")
    load_keys(db, range(3000))
    db.quiesce()
    eng = db.engine
    assert eng.trivial_moves > 0
    # Sequential loads barely rewrite: WA stays near 1 (§6.6).
    assert db.write_amplification() < 1.6


def test_random_load_write_amplification_exceeds_sequential():
    seq_db = make_tiny_db("leveldb")
    load_keys(seq_db, range(2000))
    seq_db.quiesce()
    rnd_db = make_tiny_db("leveldb")
    import random
    rng = random.Random(2)
    seen = set()
    while len(seen) < 2000:
        k = rng.randrange(1 << 30)
        if k not in seen:
            seen.add(k)
            rnd_db.put(k, VAL)
    rnd_db.quiesce()
    assert rnd_db.write_amplification() > seq_db.write_amplification() + 1.0


def test_write_gate_stops_at_l0_limit():
    db = make_tiny_db("leveldb")
    import random
    rng = random.Random(3)
    for _ in range(3000):
        db.put(rng.randrange(1 << 30), VAL)
    stop = db.engine.options.l0_stop_trigger
    assert len(db.engine.levels[0]) <= stop + 1
    db.quiesce()
    db.check_invariants()


def test_rocksdb_debt_gate_counts_slowdowns():
    # The cliff-edge debt band only exists in legacy write admission; the
    # default gate paces the same pressure via the token bucket instead.
    db = make_tiny_db("rocksdb", pending_compaction_soft_bytes=1024,
                      legacy_gate=True)
    import random
    rng = random.Random(4)
    for _ in range(3000):
        db.put(rng.randrange(1 << 30), VAL)
    assert db.metrics.events.get("slowdown:debt", 0) > 0
    db.quiesce()
    db.check_invariants()


def test_default_gate_paces_debt_with_token_bucket():
    db = make_tiny_db("rocksdb", pending_compaction_soft_bytes=1024)
    import random
    rng = random.Random(4)
    for _ in range(3000):
        db.put(rng.randrange(1 << 30), VAL)
    assert db.metrics.events.get("slowdown:debt", 0) == 0
    assert db.metrics.events.get("pace:token-bucket", 0) > 0
    db.quiesce()
    db.check_invariants()


def test_get_checks_l0_newest_first():
    db = make_tiny_db("leveldb")
    load_keys(db, range(25))
    db.flush()
    db.put(3, 99)
    db.flush()  # second L0 file with the update
    assert db.get(3) == 99


def test_scan_cursors_cover_all_levels():
    db = make_tiny_db("leveldb")
    import random
    rng = random.Random(5)
    keys = set()
    for _ in range(1500):
        k = rng.randrange(3000)
        keys.add(k)
        db.put(k, VAL)
    db.quiesce()
    got = db.scan(None, None)
    assert [k for k, _ in got] == sorted(keys)


def test_level_data_bytes_reports_live_levels():
    db = make_tiny_db("leveldb")
    load_keys(db, range(500))
    db.quiesce()
    sizes = db.engine.level_data_bytes()
    assert sum(sizes.values()) > 0


def test_checkpoint_restore_roundtrip():
    db = make_tiny_db("leveldb")
    load_keys(db, range(600))
    db.quiesce()
    state = db.engine.checkpoint_state()
    desc_before = db.engine.describe()
    db.engine.restore_state(state)
    db.engine.check_invariants()
    assert db.engine.describe()["levels"] == desc_before["levels"]
    assert db.get(5) == VAL


def test_overflow_factors_under_write_pressure():
    """§6.2: levels exceed their thresholds while compaction lags (LevelDB),
    shrinking the effective adjacent-level size ratio below the nominal
    multiplier."""
    db = make_tiny_db("leveldb")
    import random
    rng = random.Random(8)
    for _ in range(4000):
        db.put(rng.randrange(1 << 30), VAL)
    over = db.engine.overflow_factors()
    assert over, "some level should hold data mid-load"
    assert max(over.values()) > 1.0  # at least one level overflowed
    ratios = db.engine.effective_size_ratios()
    mult = db.engine.options.level_size_multiplier
    if ratios:
        assert min(ratios.values()) < mult  # effective fan-out shrank
    db.quiesce()
    # After the tuning phase completes, overflows drain back to ~thresholds.
    drained = db.engine.overflow_factors()
    assert all(v <= max(over.values()) + 0.01 for v in drained.values())


def test_per_level_wa_attribution():
    db = make_tiny_db("leveldb")
    import random
    rng = random.Random(6)
    for _ in range(2000):
        db.put(rng.randrange(1 << 30), VAL)
    db.quiesce()
    per = db.per_level_write_amplification()
    assert 0 in per  # flush charged to L0
    assert per[0] == pytest.approx(1.0, abs=0.35)
    assert sum(per.values()) == pytest.approx(db.write_amplification())
