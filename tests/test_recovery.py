"""Crash recovery: WAL replay + manifest restore."""

import random

import pytest

from tests.conftest import ALL_ENGINES, make_tiny_db


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_recover_unflushed_memtable(engine):
    db = make_tiny_db(engine)
    db.put(1, 11)
    db.put(2, 22)
    assert len(db.memtable) == 2  # nothing flushed yet
    db.crash_and_recover()
    assert db.get(1) == 11
    assert db.get(2) == 22


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_recover_after_flushes(engine):
    db = make_tiny_db(engine)
    rng = random.Random(1)
    ref = {}
    for _ in range(1200):
        k = rng.randrange(300)
        v = rng.randrange(50, 90)
        db.put(k, v)
        ref[k] = v
    db.crash_and_recover()
    for k, v in ref.items():
        assert db.get(k) == v
    assert db.scan(None, None) == sorted(ref.items())


def test_recover_preserves_deletes():
    db = make_tiny_db("iam")
    db.put(1, 10)
    db.flush()
    db.delete(1)
    db.crash_and_recover()
    assert db.get(1) is None


def test_seq_continues_after_recovery():
    db = make_tiny_db("iam")
    db.put(1, 10)
    seq_before = db._seq
    db.crash_and_recover()
    db.put(2, 20)
    assert db._seq > seq_before
    assert db.get(1) == 10 and db.get(2) == 20


def test_repeated_crashes():
    db = make_tiny_db("lsa")
    rng = random.Random(2)
    ref = {}
    for round_no in range(4):
        for _ in range(400):
            k = rng.randrange(200)
            v = rng.randrange(10, 99)
            db.put(k, v)
            ref[k] = v
        db.crash_and_recover()
    for k, v in ref.items():
        assert db.get(k) == v


def test_recovery_drops_snapshots():
    db = make_tiny_db("iam")
    db.put(1, 10)
    db.snapshot()
    db.crash_and_recover()
    assert db._live_snapshots() == ()


def test_recovery_counts_event():
    db = make_tiny_db("iam")
    db.put(1, 10)
    db.crash_and_recover()
    assert db.metrics.events["recovery"] == 1


def test_writes_after_recovery_flush_cleanly():
    db = make_tiny_db("iam")
    rng = random.Random(3)
    for _ in range(600):
        db.put(rng.randrange(1 << 20), 64)
    db.crash_and_recover()
    for _ in range(600):
        db.put(rng.randrange(1 << 20), 64)
    db.quiesce()
    db.check_invariants()
