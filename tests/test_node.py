"""LSA node & level helpers: ranges, parenting, record partitioning."""

import pytest

from repro.common.errors import InvariantViolation
from repro.common.records import KEY, make_put
from repro.core.node import (
    LsaNode,
    children_of,
    children_slice,
    count_children,
    level_find_node,
    level_insert_sorted,
    level_overlapping,
    partition_records,
)


def node(lo, hi):
    return LsaNode(lo, hi)


def test_node_range_validation():
    with pytest.raises(InvariantViolation):
        LsaNode(5, 4)


def test_covers_and_overlaps():
    n = node(10, 20)
    assert n.covers(10) and n.covers(20) and not n.covers(21)
    assert n.overlaps(15, 30) and n.overlaps(0, 10)
    assert not n.overlaps(21, 30)


def test_extend_range():
    n = node(10, 20)
    n.extend_range(5, 25)
    assert (n.range_lo, n.range_hi) == (5, 25)
    n.extend_range(7, 24)  # never shrinks
    assert (n.range_lo, n.range_hi) == (5, 25)


def test_level_find_node():
    level = [node(0, 9), node(20, 29), node(40, 49)]
    assert level_find_node(level, 5) is level[0]
    assert level_find_node(level, 25) is level[1]
    assert level_find_node(level, 15) is None  # gap
    assert level_find_node(level, 60) is None


def test_level_insert_sorted_keeps_order_and_rejects_overlap():
    level = [node(0, 9), node(30, 39)]
    level_insert_sorted(level, node(10, 20))
    assert [n.range_lo for n in level] == [0, 10, 30]
    with pytest.raises(InvariantViolation):
        level_insert_sorted(level, node(5, 12))
    with pytest.raises(InvariantViolation):
        level_insert_sorted(level, node(25, 35))


def test_level_overlapping():
    level = [node(0, 9), node(20, 29), node(40, 49)]
    assert level_overlapping(level, 5, 25) == level[:2]
    assert level_overlapping(level, 10, 19) == []
    assert level_overlapping(level, None, None) == level
    assert level_overlapping(level, 29, None) == level[1:]


def test_children_slice_contains_lo_rule():
    parents = [node(0, 9), node(20, 29), node(40, 49)]
    kids = [node(0, 4), node(8, 15), node(21, 24), node(30, 35), node(45, 60)]
    # kid range_lo decides: 0,8 -> parent0; 21,30 -> parent1; 45 -> parent2
    assert children_of(parents, kids, 0) == kids[0:2]
    assert children_of(parents, kids, 1) == kids[2:4]
    assert children_of(parents, kids, 2) == kids[4:5]
    assert count_children(parents, kids, 1) == 2


def test_children_slice_kid_before_first_parent():
    parents = [node(10, 19), node(30, 39)]
    kids = [node(0, 5), node(12, 15), node(31, 33)]
    assert children_of(parents, kids, 0) == kids[0:2]


def test_partition_records_in_range():
    children = [node(0, 9), node(20, 29)]
    recs = [make_put(k, 1, 8) for k in [1, 5, 22]]
    parts = partition_records(recs, children, leaf=True)
    assert [r[KEY] for r in parts[0]] == [1, 5]
    assert [r[KEY] for r in parts[1]] == [22]


def test_partition_gap_records_leaf_closest_rule():
    """§4.2.1: a leaf gap record goes to the child with the closest range."""
    children = [node(0, 9), node(20, 29)]
    recs = [make_put(k, 1, 8) for k in [12, 17]]
    parts = partition_records(recs, children, leaf=True)
    assert [r[KEY] for r in parts[0]] == [12]  # closer to hi=9
    assert [r[KEY] for r in parts[1]] == [17]  # closer to lo=20


def test_partition_gap_records_internal_fewest_children_rule():
    """§4.2.1: internal gap records prefer the child with fewer children."""
    children = [node(0, 9), node(20, 29)]
    recs = [make_put(15, 1, 8)]
    parts = partition_records(recs, children, leaf=False, child_weights=[5, 2])
    assert parts[1] and not parts[0]
    parts = partition_records(recs, children, leaf=False, child_weights=[2, 5])
    assert parts[0] and not parts[1]
    parts = partition_records(recs, children, leaf=False, child_weights=[3, 3])
    assert parts[0]  # tie -> left


def test_partition_out_of_span_records_clamp_to_ends():
    children = [node(10, 19), node(30, 39)]
    recs = [make_put(k, 1, 8) for k in [2, 50]]
    parts = partition_records(recs, children, leaf=True)
    assert [r[KEY] for r in parts[0]] == [2]
    assert [r[KEY] for r in parts[1]] == [50]


def test_partition_single_child_takes_all():
    children = [node(0, 9)]
    recs = [make_put(k, 1, 8) for k in [1, 100]]
    parts = partition_records(recs, children, leaf=True)
    assert parts[0] == recs


def test_partition_requires_children():
    with pytest.raises(InvariantViolation):
        partition_records([make_put(1, 1, 8)], [], leaf=True)


def test_partition_preserves_order_and_total():
    children = [node(0, 9), node(15, 24), node(40, 59)]
    recs = [make_put(k, 1, 8) for k in range(0, 70, 3)]
    parts = partition_records(recs, children, leaf=True)
    flat = [r for p in parts for r in p]
    assert sorted(flat, key=lambda r: r[KEY]) == recs
    assert sum(len(p) for p in parts) == len(recs)
