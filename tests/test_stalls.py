"""Write gating: stalls, slowdowns, and bandwidth contention."""

import random

import pytest

from repro.common.options import LsmOptions
from tests.conftest import make_tiny_db, tiny_lsm_options


def _hammer(db, n=3000, seed=1):
    rng = random.Random(seed)
    for _ in range(n):
        db.put(rng.randrange(1 << 30), 64)


def test_memtable_rotation_stall_recorded():
    db = make_tiny_db("leveldb")
    _hammer(db)
    assert db.metrics.events.get("stall:memtable-rotation", 0) > 0


def test_leveldb_l0_slowdown_engages_under_pressure():
    db = make_tiny_db("leveldb", legacy_gate=True)
    _hammer(db, 4000)
    ev = db.metrics.events
    assert ev.get("slowdown:l0", 0) + ev.get("stall:l0-stop", 0) > 0


def test_token_pacing_engages_under_pressure():
    """The default gate paces the same L0 pressure via the token bucket."""
    db = make_tiny_db("leveldb")
    _hammer(db, 4000)
    ev = db.metrics.events
    assert ev.get("slowdown:l0", 0) == 0
    assert ev.get("pace:token-bucket", 0) > 0


def test_rocksdb_debt_slowdown_smoother_max_latency():
    """RocksDB's soft gate trades steady delays for fewer giant stalls."""
    lvl = make_tiny_db("leveldb", legacy_gate=True)
    _hammer(lvl, 5000, seed=2)
    rks = make_tiny_db("rocksdb", pending_compaction_soft_bytes=2048,
                       legacy_gate=True)
    _hammer(rks, 5000, seed=2)
    assert rks.metrics.events.get("slowdown:debt", 0) > 0


def test_slowdown_delay_is_rate_based():
    db = make_tiny_db("leveldb")
    eng = db.engine
    bw = db.runtime.disk.profile.write_bandwidth
    frac = eng.options.delayed_write_fraction
    d = eng._slowdown_delay(1000)
    assert d == pytest.approx(1000 / (bw * frac) - 1000 / bw)


def test_lsa_write_gate_never_delays():
    db = make_tiny_db("lsa")
    assert db.engine.write_gate(1000) == 0.0


def test_stalled_inserts_show_in_tail_latency():
    db = make_tiny_db("leveldb")
    _hammer(db, 4000, seed=3)
    ins = db.metrics.latency["insert"]
    # The maximum insert latency dwarfs the median (bursts & stalls, §6.2).
    assert ins.max > 50 * max(ins.percentile(50), 1e-9)


def test_append_trees_have_better_insert_p99_than_lsm():
    from tests.conftest import make_matched_db
    results = {}
    for engine in ("leveldb", "lsa"):
        db = make_matched_db(engine)
        _hammer(db, 6000, seed=4)
        results[engine] = db.metrics.latency["insert"].p99()
    assert results["lsa"] <= results["leveldb"]


def test_reads_queue_behind_compaction_traffic():
    """§1: compaction writes saturate bandwidth and block user queries."""
    db = make_tiny_db("leveldb", storage_kw=dict(page_cache_bytes=0))
    rng = random.Random(5)
    keys = [rng.randrange(1 << 30) for _ in range(2500)]
    for k in keys:
        db.put(k, 64)
    # Reads while compaction debt is outstanding...
    busy_read = db.metrics.latency["read"]
    for k in keys[:100]:
        db.get(k)
    busy_p50 = busy_read.percentile(50)
    db.quiesce()
    marks = busy_read.count
    for k in keys[100:200]:
        db.get(k)
    idle = busy_read.window_summary(marks)
    assert busy_p50 >= idle["p50"] * 0.99  # busy reads are no faster
