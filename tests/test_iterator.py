"""merge_visible: scan visibility semantics."""

from repro.common.records import make_delete, make_put, sort_key
from repro.db.iterator import merge_visible


def test_empty_streams():
    assert list(merge_visible([])) == []
    assert list(merge_visible([[], None])) == []


def test_single_stream_latest_versions():
    stream = [make_put(1, 5, 10), make_put(1, 2, 11), make_put(2, 3, 12)]
    assert list(merge_visible([stream])) == [(1, 10), (2, 12)]


def test_merges_across_streams_newest_wins():
    a = [make_put(1, 9, 1)]
    b = [make_put(1, 4, 2), make_put(3, 6, 3)]
    assert list(merge_visible([a, b])) == [(1, 1), (3, 3)]


def test_tombstones_hide_keys():
    a = [make_delete(1, 9)]
    b = [make_put(1, 4, 7), make_put(2, 5, 8)]
    assert list(merge_visible([a, b])) == [(2, 8)]


def test_snapshot_visibility():
    stream = [make_put(1, 9, 1), make_put(1, 4, 2)]
    assert list(merge_visible([stream], snapshot=5)) == [(1, 2)]
    assert list(merge_visible([stream], snapshot=3)) == []
    # A tombstone newer than the snapshot does not hide the old version.
    streams = [[make_delete(2, 9)], [make_put(2, 4, 5)]]
    assert list(merge_visible(streams, snapshot=5)) == [(2, 5)]


def test_hi_key_exclusive():
    stream = [make_put(k, 1, k) for k in range(5)]
    assert list(merge_visible([stream], hi_key=3)) == [(0, 0), (1, 1), (2, 2)]


def test_limit_counts_only_yielded_pairs():
    stream = sorted([make_delete(0, 9), make_put(1, 1, 1), make_put(2, 2, 2),
                     make_put(3, 3, 3)], key=sort_key)
    assert list(merge_visible([stream], limit=2)) == [(1, 1), (2, 2)]


def test_invisible_version_does_not_consume_key():
    # Newest version invisible at the snapshot; older visible one must win.
    stream = [make_put(1, 10, 99), make_put(1, 3, 42)]
    assert list(merge_visible([stream], snapshot=5)) == [(1, 42)]
