"""merge_visible: scan visibility semantics."""

from repro.common.records import make_delete, make_put, sort_key
from repro.db.iterator import merge_visible


def test_empty_streams():
    assert list(merge_visible([])) == []
    assert list(merge_visible([[], None])) == []


def test_single_stream_latest_versions():
    stream = [make_put(1, 5, 10), make_put(1, 2, 11), make_put(2, 3, 12)]
    assert list(merge_visible([stream])) == [(1, 10), (2, 12)]


def test_merges_across_streams_newest_wins():
    a = [make_put(1, 9, 1)]
    b = [make_put(1, 4, 2), make_put(3, 6, 3)]
    assert list(merge_visible([a, b])) == [(1, 1), (3, 3)]


def test_tombstones_hide_keys():
    a = [make_delete(1, 9)]
    b = [make_put(1, 4, 7), make_put(2, 5, 8)]
    assert list(merge_visible([a, b])) == [(2, 8)]


def test_snapshot_visibility():
    stream = [make_put(1, 9, 1), make_put(1, 4, 2)]
    assert list(merge_visible([stream], snapshot=5)) == [(1, 2)]
    assert list(merge_visible([stream], snapshot=3)) == []
    # A tombstone newer than the snapshot does not hide the old version.
    streams = [[make_delete(2, 9)], [make_put(2, 4, 5)]]
    assert list(merge_visible(streams, snapshot=5)) == [(2, 5)]


def test_hi_key_exclusive():
    stream = [make_put(k, 1, k) for k in range(5)]
    assert list(merge_visible([stream], hi_key=3)) == [(0, 0), (1, 1), (2, 2)]


def test_limit_counts_only_yielded_pairs():
    stream = sorted([make_delete(0, 9), make_put(1, 1, 1), make_put(2, 2, 2),
                     make_put(3, 3, 3)], key=sort_key)
    assert list(merge_visible([stream], limit=2)) == [(1, 1), (2, 2)]


def test_invisible_version_does_not_consume_key():
    # Newest version invisible at the snapshot; older visible one must win.
    stream = [make_put(1, 10, 99), make_put(1, 3, 42)]
    assert list(merge_visible([stream], snapshot=5)) == [(1, 42)]


def test_newest_invisible_across_streams_older_visible_wins():
    # The invisible newest version lives in a *different* stream than the
    # older visible one; the key must not be marked served too early.
    newer = [make_put(1, 10, 99)]
    older = [make_put(1, 3, 42)]
    assert list(merge_visible([newer, older], snapshot=5)) == [(1, 42)]
    # Same with a newer tombstone on another stream.
    tomb = [make_delete(2, 10)]
    put = [make_put(2, 3, 7)]
    assert list(merge_visible([tomb, put], snapshot=5)) == [(2, 7)]


def test_tombstone_exactly_at_snapshot_boundary():
    # A tombstone with seq == snapshot is visible and hides the key.
    streams = [[make_delete(1, 5)], [make_put(1, 3, 42)]]
    assert list(merge_visible(streams, snapshot=5)) == []
    # One past the snapshot it is invisible; the older put shows through.
    streams = [[make_delete(1, 6)], [make_put(1, 3, 42)]]
    assert list(merge_visible(streams, snapshot=5)) == [(1, 42)]
    # A put exactly at the snapshot is visible.
    assert list(merge_visible([[make_put(2, 5, 9)]], snapshot=5)) == [(2, 9)]


def test_hi_key_with_snapshot_and_limit():
    stream = sorted([make_put(0, 1, 10), make_put(1, 9, 91),  # 91 invisible
                     make_put(1, 2, 11), make_delete(2, 3),
                     make_put(3, 4, 13), make_put(4, 5, 14)], key=sort_key)
    # Invisible versions and tombstones consume neither limit nor bound.
    out = list(merge_visible([stream], snapshot=5, hi_key=4, limit=2))
    assert out == [(0, 10), (1, 11)]
    out = list(merge_visible([stream], snapshot=5, hi_key=4, limit=10))
    assert out == [(0, 10), (1, 11), (3, 13)]
    # hi_key cuts before the limit is reached.
    out = list(merge_visible([stream], snapshot=5, hi_key=1, limit=10))
    assert out == [(0, 10)]


def test_limit_zero_and_unsorted_duplicate_seqs():
    stream = [make_put(1, 2, 10)]
    assert list(merge_visible([stream], limit=0)) == [(1, 10)]  # limit<=0: cap after first
