"""IAM-tree: the append/merge policy and the mixed level (§5)."""

import random

import pytest

from repro.core.node import LsaNode
from tests.conftest import make_tiny_db

VAL = 64


def load_random(db, n, seed=0, keyspace=1 << 30):
    rng = random.Random(seed)
    seen = set()
    while len(seen) < n:
        k = rng.randrange(keyspace)
        if k not in seen:
            seen.add(k)
            db.put(k, VAL)
    return seen


class _FakeNode:
    def __init__(self, n_sequences, nbytes=0):
        self.n_sequences = n_sequences
        self.nbytes = nbytes


def test_policy_by_level_class():
    db = make_tiny_db("iam", fixed_m=2, fixed_k=3)
    eng = db.engine
    eng.n = 4
    assert eng.level_class(1) == "appending"
    assert eng.level_class(2) == "mixed"
    assert eng.level_class(3) == "merging"
    assert not eng._should_merge_internal(1, _FakeNode(10))
    assert not eng._should_merge_internal(2, _FakeNode(2))
    assert eng._should_merge_internal(2, _FakeNode(3))
    assert eng._should_merge_internal(3, _FakeNode(1))


def test_leaf_policy():
    db = make_tiny_db("iam", fixed_m=2, fixed_k=3)
    eng = db.engine
    ct = eng.options.node_capacity
    eng.n = 3  # leaf deeper than mixed -> merging class: always merge
    assert eng._should_merge_leaf(_FakeNode(1, 10))
    eng.n = 2  # leaf == mixed -> merge at k sequences or when full
    assert not eng._should_merge_leaf(_FakeNode(1, 10))
    assert eng._should_merge_leaf(_FakeNode(3, 10))
    assert eng._should_merge_leaf(_FakeNode(1, ct))
    eng.n = 1  # leaf above mixed -> LSA behaviour (merge only when full)
    assert not eng._should_merge_leaf(_FakeNode(5, 10))


def test_merging_levels_keep_single_sequences():
    db = make_tiny_db("iam", fixed_m=1, fixed_k=1)
    load_random(db, 4000, seed=1)
    db.quiesce()
    eng = db.engine
    # m=1: every level merges; nodes that received data hold one sequence.
    assert eng.max_sequences_per_node() <= 1 + 0  # moves can't add sequences here
    db.check_invariants()


def test_mixed_level_bounds_sequences_by_k():
    db = make_tiny_db("iam", fixed_m=1, fixed_k=3)
    load_random(db, 4000, seed=2)
    eng = db.engine
    for node in eng.levels[1]:
        assert node.n_sequences <= 3
    db.check_invariants()


def test_policy_debt_heals():
    db = make_tiny_db("iam", fixed_m=2, fixed_k=2)
    load_random(db, 5000, seed=3)
    debt_mid = db.engine.policy_debt()
    load_random(db, 3000, seed=4)
    # debt may exist transiently (move-downs) but must not explode
    assert db.engine.policy_debt() <= max(debt_mid, 5) + 10


def test_lsm_degenerate_has_higher_wa_than_lsa_degenerate():
    lsm_like = make_tiny_db("iam", fixed_m=1, fixed_k=1)
    load_random(lsm_like, 5000, seed=5)
    lsa_like = make_tiny_db("lsa")
    load_random(lsa_like, 5000, seed=5)
    assert lsm_like.write_amplification() > lsa_like.write_amplification() + 0.5


def test_larger_k_reduces_write_amplification():
    """Table 3's lever: more sequences at the mixed level, fewer merges."""
    was = {}
    for k in (1, 3):
        db = make_tiny_db("iam", fixed_m=1, fixed_k=k)
        load_random(db, 5000, seed=6)
        was[k] = db.write_amplification()
    assert was[3] < was[1]


def test_iam_between_lsa_and_lsm_in_wa():
    """Table 1: IAM's write amplification sits between LSA's and LSM-mode's."""
    results = {}
    for name, kw in [("lsa_mode", dict(fixed_m=10**9, fixed_k=1)),
                     ("iam", dict(fixed_m=2, fixed_k=2)),
                     ("lsm_mode", dict(fixed_m=1, fixed_k=1))]:
        db = make_tiny_db("iam", **kw)
        load_random(db, 6000, seed=7)
        results[name] = db.write_amplification()
    assert results["lsa_mode"] <= results["iam"] <= results["lsm_mode"]


def test_retune_runs_and_reports():
    db = make_tiny_db("iam", retune_interval=1)
    load_random(db, 3000, seed=8)
    eng = db.engine
    assert eng.m >= 1 and eng.k >= 1
    d = eng.describe()
    assert d["m"] == eng.m and d["k"] == eng.k
    assert set(d["level_classes"]) == set(range(1, eng.n + 1))


def test_bigger_cache_tunes_higher_m():
    small = make_tiny_db("iam", storage_kw=dict(page_cache_bytes=1024))
    load_random(small, 4000, seed=9)
    big = make_tiny_db("iam", storage_kw=dict(page_cache_bytes=1 << 22))
    load_random(big, 4000, seed=9)
    assert big.engine.m >= small.engine.m


def test_fixed_overrides_respected():
    db = make_tiny_db("iam", fixed_m=2, fixed_k=4, retune_interval=1)
    load_random(db, 3000, seed=10)
    assert (db.engine.m, db.engine.k) == (2, 4)


def test_forcible_caching_pins_appended_sequences():
    """§5.1.3: with pinning on, appended sequences stay memory-resident even
    under eviction pressure, so scans seek less."""
    pinned = make_tiny_db("iam", pin_appended_sequences=True, fixed_m=2,
                          fixed_k=3, storage_kw=dict(page_cache_bytes=8 * 1024))
    plain = make_tiny_db("iam", fixed_m=2, fixed_k=3,
                         storage_kw=dict(page_cache_bytes=8 * 1024))
    keys = load_random(pinned, 3000, seed=20)
    load_random(plain, 3000, seed=20)
    assert pinned.runtime.cache.pinned_blocks() > 0
    # Cold-ish scans: the pinned store needs no more seeks than the plain one.
    for db in (pinned, plain):
        db.quiesce()
    start = sorted(keys)[len(keys) // 2]
    seeks = {}
    for name, db in (("pinned", pinned), ("plain", plain)):
        before = db.metrics.query_seeks
        for _ in range(30):
            db.scan(start, None, limit=50)
        seeks[name] = db.metrics.query_seeks - before
    assert seeks["pinned"] <= seeks["plain"]


def test_pinning_released_when_sequences_merge():
    db = make_tiny_db("iam", pin_appended_sequences=True, fixed_m=1, fixed_k=2)
    load_random(db, 4000, seed=21)
    db.quiesce()
    cache = db.runtime.cache
    # Merges replaced appended sequences; pins must not accumulate without
    # bound (released on file invalidation).
    assert cache.pinned_blocks() * cache.block_size <= 4 * db.engine.options.node_capacity * 3


def test_reads_scans_correct_after_mixed_policy_churn():
    db = make_tiny_db("iam", fixed_m=1, fixed_k=2)
    rng = random.Random(11)
    ref = {}
    for _ in range(6000):
        k = rng.randrange(700)
        if rng.random() < 0.25:
            db.delete(k)
            ref.pop(k, None)
        else:
            v = rng.randrange(50, 90)
            db.put(k, v)
            ref[k] = v
    db.quiesce()
    for k in range(700):
        assert db.get(k) == ref.get(k)
    assert db.scan(None, None) == sorted(ref.items())
    db.check_invariants()
