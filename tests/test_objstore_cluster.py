"""Cluster integration of the shared-storage tier.

Pins the headline contracts of the objstore subsystem: follower bootstrap
costs the leader zero network bytes for the flushed prefix, time-travel
reads serve the exact historical state, leader failover recovers the tier
off the shared manifest log, the report surfaces store telemetry, and
compaction offload drains compaction device time on the shared disk.
"""

import pytest

from tests.conftest import tiny_iam_options, tiny_storage_options
from repro.cluster import ClusterDB, ClusterOptions
from repro.common.errors import ConfigError
from repro.objstore import ObjStoreOptions


def _cluster(*, replicas=2, store=None, **kw):
    return ClusterDB(ClusterOptions(
        n_shards=1, n_replicas=replicas,
        engine_options=tiny_iam_options(),
        storage_options=tiny_storage_options(),
        objstore=store if store is not None else ObjStoreOptions(),
        **kw))


KEYS = [(0x9E3779B97F4A7C15 * (i + 1)) % 2 ** 64 for i in range(40)]


def _load(cluster, model, n, base=0):
    for i in range(n):
        key = KEYS[i % len(KEYS)]
        value = base + 16 + (i % 50)
        cluster.put(key, value)
        model[key] = value


def _leader_link_bytes(cluster):
    leader = cluster.router.shards[0].group.leader.node_id
    return sum(v for (src, _dst), v in cluster.network.link_bytes.items()
               if src == leader)


def test_follower_bootstrap_ships_zero_leader_bytes_for_flushed_prefix():
    cluster = _cluster()
    model = {}
    _load(cluster, model, 150)
    cluster.flush()
    cluster.quiesce()
    before = _leader_link_bytes(cluster)
    boot = cluster.spawn_follower(0, mode="objstore")
    after = _leader_link_bytes(cluster)
    # Everything flushed came from shared storage, nothing from the leader.
    assert boot["mode"] == "objstore"
    assert boot["wal_tail_records"] == 0
    assert after == before
    assert boot["objects_fetched"] > 0
    assert boot["store_bytes_down"] > 0
    follower = cluster.router.shards[0].group.replicas[-1].db
    assert follower._seq == cluster.router.shards[0].group.leader.db._seq
    for key, want in sorted(model.items()):
        assert follower.get(key) == want
    cluster.check_invariants()
    cluster.close()


def test_follower_bootstrap_ships_only_the_unflushed_tail():
    cluster = _cluster()
    model = {}
    _load(cluster, model, 120)
    cluster.flush()
    cluster.quiesce()
    _load(cluster, model, 7, base=500)  # a small unflushed WAL tail
    # The tiny memtable may have flushed again mid-tail; whatever the
    # latest cut covers at spawn time is the flushed prefix.
    flushed_seq = cluster.manifest_logs[0].latest_cut().seq
    boot = cluster.spawn_follower(0, mode="objstore")
    assert boot["bootstrap_seq"] == flushed_seq
    assert boot["wal_tail_records"] == \
        cluster.router.shards[0].group.leader.db._seq - flushed_seq
    follower = cluster.router.shards[0].group.replicas[-1].db
    for key, want in sorted(model.items()):
        assert follower.get(key) == want
    cluster.close()


def test_time_travel_reads_serve_the_recorded_cut():
    cluster = _cluster(objstore_retain_cuts=64)
    model = {}
    _load(cluster, model, 150)
    cluster.flush()
    cluster.quiesce()
    frozen = dict(model)
    cut_id = cluster.manifest_logs[0].latest_cut().cut_id
    # Overwrite everything; the cut must still serve the old values.
    _load(cluster, model, 150, base=100)
    cluster.flush()
    cluster.quiesce()
    for key in sorted(frozen):
        assert cluster.get(key, as_of_cut=cut_id) == frozen[key]
        assert cluster.get(key) == model[key]
    assert model[KEYS[0]] != frozen[KEYS[0]]
    cluster.close()


def test_time_travel_requires_a_retained_cut():
    cluster = _cluster()
    model = {}
    _load(cluster, model, 30)
    cluster.flush()
    cluster.quiesce()
    with pytest.raises(ConfigError):
        cluster.get(KEYS[0], as_of_cut=10_000)
    plain = ClusterDB(ClusterOptions(
        n_shards=1, n_replicas=1,
        engine_options=tiny_iam_options(),
        storage_options=tiny_storage_options()))
    with pytest.raises(ConfigError):
        plain.get(KEYS[0], as_of_cut=1)
    plain.close()
    cluster.close()


def test_failover_recovers_the_tier_off_the_shared_log():
    cluster = _cluster(replicas=3)
    model = {}
    _load(cluster, model, 150)
    cluster.flush()
    cluster.quiesce()
    report = cluster.crash_leader(0)
    assert "objstore_recovery" in report
    recovery = report["objstore_recovery"]
    assert recovery["cuts"] > 0
    cluster.check_invariants()
    for key, want in sorted(model.items()):
        assert cluster.get(key) == want
    # The promoted leader mirrors under its own node tag: further
    # checkpoints keep appending to the same shared log.
    before = cluster.manifest_logs[0].latest_cut().cut_id
    _load(cluster, model, 80, base=2000)
    cluster.flush()
    cluster.quiesce()
    assert cluster.manifest_logs[0].latest_cut().cut_id > before
    cluster.check_invariants()
    cluster.close()


def test_stats_surface_the_objstore_section():
    cluster = _cluster()
    model = {}
    _load(cluster, model, 100)
    cluster.flush()
    cluster.quiesce()
    stats = cluster.stats()
    section = stats["objstore"]
    assert section["objects"] > 0
    assert section["bytes_up"] > 0
    assert section["manifest_logs"][0]["latest_cut_id"] >= 1
    assert section["compaction_offload"] is False
    cluster.close()


def test_compaction_offload_runs_and_uses_the_shared_disk():
    from tests.conftest import tiny_lsm_options

    # The leveldb engine compacts through background pool jobs, so its
    # compaction debt visibly lands on the shared offload disk.
    offloaded = ClusterDB(ClusterOptions(
        n_shards=1, n_replicas=2, engine="leveldb",
        engine_options=tiny_lsm_options(),
        storage_options=tiny_storage_options(),
        objstore=ObjStoreOptions(), compaction_offload=True))
    model = {}
    _load(offloaded, model, 300)
    offloaded.flush()
    offloaded.quiesce()
    assert offloaded.offload_disk is not None
    # Compaction device time drained on the shared disk, not the leader's.
    assert offloaded.offload_disk.busy_until > 0.0
    for key, want in sorted(model.items()):
        assert offloaded.get(key) == want
    offloaded.check_invariants()
    assert offloaded.stats()["objstore"]["compaction_offload"] is True
    offloaded.close()


def test_compaction_offload_requires_the_store():
    with pytest.raises(ConfigError):
        ClusterOptions(n_shards=1, n_replicas=1, compaction_offload=True)
