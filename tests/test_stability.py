"""Stability observatory: probes, digests, the gated BENCH_stability report.

Four properties:

* **digest identities** -- windowed-throughput math telescopes exactly
  (duration-weighted mean == global rate; no ops lost to zero-duration
  window edges), and the sampler's run-end ``finalize`` flushes the final
  partial window (the tail of every timeline);
* **pay-for-what-you-use** -- a probed run's simulated results are
  byte-identical to an unprobed run (hypothesis, digest style of
  ``test_obs_determinism``), and probed runs are deterministic per seed;
* **report gating** -- ``check_stability`` passes on the identical report,
  fails on an injected regression, a config mismatch, and a missing
  baseline;
* **prom exposition** -- deterministic bytes, cumulative buckets, ``+Inf``
  equals the count.
"""

from __future__ import annotations

import json

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from tests.conftest import make_tiny_db, tiny_iam_options, tiny_storage_options
from repro.db.iamdb import IamDB
from repro.obs.sampler import TimeseriesSampler
from repro.obs.stability import (
    StabilityProbe,
    downsample,
    percentile_timeline,
    stall_window,
    throughput_stats,
)

OPS = st.sampled_from(["put", "delete", "get", "scan"])
STEP = st.tuples(OPS, st.integers(min_value=0, max_value=255),
                 st.integers(min_value=16, max_value=96))


# ------------------------------------------------------------------- digests
def test_throughput_stats_mean_is_the_global_rate():
    rows = [{"ts": 0.0, "ops": 0}, {"ts": 1.0, "ops": 100},
            {"ts": 3.0, "ops": 150}, {"ts": 3.5, "ops": 400}]
    tp = throughput_stats(rows)
    assert tp["ops"] == 400.0
    assert tp["duration_s"] == 3.5
    assert tp["mean_ops_s"] == pytest.approx(400.0 / 3.5)
    assert tp["n_windows"] == 3.0
    assert tp["min_window_ops_s"] == pytest.approx(25.0)
    assert tp["max_window_ops_s"] == pytest.approx(500.0)
    assert tp["cv"] == pytest.approx(tp["std"] / tp["mean_ops_s"])


def test_throughput_stats_zero_duration_rows_keep_their_ops():
    """Run-end flush rows can share the last grid instant; ops must not
    fall on the floor (the bug this digest originally shipped with)."""
    rows = [{"ts": 0.0, "ops": 0}, {"ts": 1.0, "ops": 100},
            {"ts": 1.0, "ops": 101}]
    tp = throughput_stats(rows)
    assert tp["ops"] == 101.0
    assert tp["mean_ops_s"] == pytest.approx(101.0)
    # Leading zero-duration pair: ops carry forward into the next window.
    rows = [{"ts": 2.0, "ops": 10}, {"ts": 2.0, "ops": 12},
            {"ts": 4.0, "ops": 20}]
    tp = throughput_stats(rows)
    assert tp["ops"] == 10.0
    assert tp["mean_ops_s"] == pytest.approx(5.0)


def test_throughput_stats_degenerate_rows():
    assert throughput_stats([])["mean_ops_s"] == 0.0
    assert throughput_stats([{"ts": 1.0, "ops": 5}])["n_windows"] == 0.0
    same = [{"ts": 1.0, "ops": 5}, {"ts": 1.0, "ops": 9}]
    assert throughput_stats(same)["mean_ops_s"] == 0.0


def test_stall_window_diffs_cumulative_class_seconds():
    rows = [
        {"ts": 0.0, "stall_s_by_class": {"l0-stop": 0.1, "write-gate": 0.0}},
        {"ts": 2.0, "stall_s_by_class": {"l0-stop": 0.5, "write-gate": 0.3}},
    ]
    win = stall_window(rows)
    assert win["by_class"]["l0-stop"] == pytest.approx(0.4)
    assert win["by_class"]["write-gate"] == pytest.approx(0.3)
    assert win["total_s"] == pytest.approx(0.7)
    assert win["stall_fraction"] == pytest.approx(0.35)
    assert stall_window(rows[:1])["total_s"] == 0.0


def test_percentile_timeline_and_downsample():
    rows = [{"ts": float(i),
             "latency_window": {"get": {"p50": 1.0, "p99": 2.0,
                                        "p999": 3.0, "count": 10.0}}}
            for i in range(10)]
    rows.insert(3, {"ts": 2.5})  # histogram-less row: skipped
    points = percentile_timeline(rows, "get")
    assert len(points) == 10
    assert points[0] == {"ts": 0.0, "p50": 1.0, "p99": 2.0,
                         "p999": 3.0, "count": 10.0}
    assert percentile_timeline(rows, "scan") == []
    down = downsample(points, 4)
    assert len(down) == 4
    assert down[0] is points[0] and down[-1] is points[-1]
    assert downsample(points, 100) == points
    assert downsample(points, 1) == [points[-1]]


# ----------------------------------------------------------- sampler edges
def test_finalize_flushes_the_final_partial_window():
    db = make_tiny_db("iam")
    # Interval far beyond the run's sim time: without finalize the entire
    # run is one unflushed partial window and the timeline is empty.
    sampler = TimeseriesSampler(db, 1e6)
    db.runtime.attach_sampler(sampler)
    for i in range(300):
        db.put(i % 64, b"v" * 40)
    db.quiesce()
    assert sampler.rows == []          # never crossed a grid point
    sampler.finalize()
    assert len(sampler.rows) == 1
    total = sampler.rows[-1]["ops"]
    assert total >= 300
    # Idempotent: nothing advanced, so repeated finalize adds no row.
    sampler.finalize()
    assert len(sampler.rows) == 1
    # More ops then finalize again: one more row, cumulative ops grow.
    db.put(1, b"v" * 40)
    sampler.finalize()
    assert len(sampler.rows) == 2
    assert sampler.rows[-1]["ops"] > total
    db.close()


def test_finalize_row_completes_the_ops_timeline():
    db = make_tiny_db("iam")
    sampler = TimeseriesSampler(db, 0.0002)
    db.runtime.attach_sampler(sampler)
    for i in range(500):
        db.put(i % 100, b"v" * 48)
    db.quiesce()
    snap_total = sum(db.metrics.snapshot()["op_counts"].values())
    assert sampler.rows, "interval small enough to cross grid points"
    sampler.finalize()
    assert sampler.rows[-1]["ops"] == snap_total
    tp = throughput_stats([{"ts": 0.0, "ops": 0}] + list(sampler.rows))
    assert tp["ops"] == pytest.approx(snap_total, rel=1e-12)
    db.close()


# ------------------------------------------------------------------ probes
def _probe_run(n_ops: int = 400):
    db = make_tiny_db("iam")
    probe = StabilityProbe(db, interval_s=0.0005)
    mark = probe.mark()
    for i in range(n_ops):
        db.put(i % 128, b"v" * 40)
        if i % 7 == 0:
            db.get(i % 128)
    db.quiesce()
    report = probe.window_report(mark)
    db.close()
    return report


def test_probe_window_report_shape_and_identities():
    report = _probe_run()
    assert json.dumps(report)  # JSON-able end to end
    tp = report["throughput"]
    assert tp["mean_ops_s"] * tp["duration_s"] == pytest.approx(tp["ops"])
    assert tp["min_window_ops_s"] <= tp["mean_ops_s"] <= tp["max_window_ops_s"]
    assert 0.0 <= report["stalls"]["stall_fraction"] <= 1.0
    assert "put" in report["latency"]
    put = report["latency"]["put"]
    assert put["p50"] <= put["p99"] <= put["p999"] <= put["max"]
    assert report["timeline"]["throughput"]
    assert set(report["timeline"]["latency"]) == set(report["latency"])


def test_probe_reports_are_deterministic_per_seed():
    a, b = _probe_run(), _probe_run()
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def _digest_run(steps, *, probe: bool):
    db = IamDB("iam", engine_options=tiny_iam_options(),
               storage_options=tiny_storage_options())
    p = StabilityProbe(db, interval_s=0.00002) if probe else None
    mark = p.mark() if p else None
    reads = []
    for op, key, extra in steps:
        if op == "put":
            db.put(key, extra)
        elif op == "delete":
            db.delete(key)
        elif op == "get":
            reads.append((key, db.get(key)))
        else:
            reads.append(tuple(db.scan(key, key + 16, limit=4)))
    db.flush()
    db.quiesce()
    digest = {
        "wa": db.write_amplification(),
        "shape": db.engine.describe(),
        "space": db.space_used_bytes(),
        "clock": db.clock_now,
        "reads": reads,
    }
    report = p.window_report(mark) if p else None
    db.close()
    return digest, report


@settings(max_examples=10, deadline=None)
@given(steps=st.lists(STEP, min_size=40, max_size=160))
def test_probe_is_observation_only(steps):
    """Histograms + sampler enabled vs disabled: same simulated results."""
    plain, _ = _digest_run(steps, probe=False)
    probed, report = _digest_run(steps, probe=True)
    assert probed == plain
    assert report is not None and report["throughput"]["ops"] > 0


@settings(max_examples=8, deadline=None)
@given(steps=st.lists(STEP, min_size=40, max_size=160))
def test_probed_runs_are_identical_per_seed(steps):
    _, report_a = _digest_run(steps, probe=True)
    _, report_b = _digest_run(steps, probe=True)
    assert (json.dumps(report_a, sort_keys=True)
            == json.dumps(report_b, sort_keys=True))


# ----------------------------------------------------------- report gating
def _tiny_report():
    from repro.bench.stability import run_suite

    return run_suite(["iam"], records=1500, ops=400, interval_s=0.001)


def test_bench_report_deterministic_and_gated(tmp_path):
    from repro.bench.stability import check_stability, write_report

    report = _tiny_report()
    again = _tiny_report()
    assert (json.dumps(report, sort_keys=True)
            == json.dumps(again, sort_keys=True))

    baseline = tmp_path / "BENCH_stability.json"
    # Missing baseline is a failure, not a silent pass.
    assert check_stability(report, baseline) == [f"no baseline at {baseline}"]
    write_report(report, baseline)
    assert check_stability(report, baseline) == []

    # Injected regressions trip the gate.
    bad = json.loads(json.dumps(report))
    cell = bad["engines"]["iam"]["load"]
    cell["throughput"]["cv"] = cell["throughput"]["cv"] * 2.0 + 1.0
    failures = check_stability(bad, baseline)
    assert failures and "cv regressed" in failures[0]

    bad = json.loads(json.dumps(report))
    cell = bad["engines"]["iam"]["load"]
    cell["throughput"]["min_window_ops_s"] *= 0.5
    assert any("min_window_ops_s regressed" in f
               for f in check_stability(bad, baseline))

    bad = json.loads(json.dumps(report))
    cell = bad["engines"]["iam"]["load"]
    for op in cell["latency"]:
        cell["latency"][op]["p999"] *= 10.0
    assert any("p99.9 regressed" in f for f in check_stability(bad, baseline))

    bad = json.loads(json.dumps(report))
    cell = bad["engines"]["iam"]["load"]
    cell["stalls"]["stall_fraction"] = (
        cell["stalls"]["stall_fraction"] * 2.0 + 0.5)
    assert any("stall_fraction regressed" in f
               for f in check_stability(bad, baseline))

    # A config mismatch can never silently pass.
    bad = json.loads(json.dumps(report))
    bad["config"]["records"] += 1
    failures = check_stability(bad, baseline)
    assert failures and "config mismatch" in failures[0]
    assert "records" in failures[0]


def test_bench_main_flags(tmp_path):
    from repro.bench.stability import main

    out = tmp_path / "BENCH_stability.json"
    argv = ["--engine", "iam", "--records", "1500", "--ops", "400",
            "--out", str(out)]
    # --check without a baseline fails; --update then writes one.
    assert main(argv + ["--check"]) == 1
    assert main(argv + ["--update"]) == 0
    assert out.exists()
    assert main(argv + ["--check"]) == 0
    # Refuses to overwrite the baseline from a --quick run.
    assert main(argv + ["--quick", "--update"]) == 2


# -------------------------------------------------------------------- prom
def test_render_prom_deterministic_and_cumulative():
    db = make_tiny_db("iam")
    db.metrics.enable_histograms()
    for i in range(200):
        db.put(i % 50, b"v" * 40)
        if i % 3 == 0:
            db.get(i % 50)
    db.quiesce()
    text = db.metrics.render_prom(extra_gauges={
        "sim_time_seconds": db.runtime.clock.now})
    assert text == db.metrics.render_prom(extra_gauges={
        "sim_time_seconds": db.runtime.clock.now})
    assert "repro_user_bytes_total" in text
    assert "repro_sim_time_seconds" in text

    # Histogram buckets are cumulative and end at +Inf == count.
    put_buckets = []
    put_count = None
    for line in text.splitlines():
        if line.startswith("repro_op_latency_seconds_bucket{op=\"put\""):
            put_buckets.append(int(line.rsplit(" ", 1)[1]))
        if line.startswith("repro_op_latency_seconds_count{op=\"put\""):
            put_count = int(line.rsplit(" ", 1)[1])
    assert put_buckets == sorted(put_buckets)
    assert put_count is not None and put_buckets[-1] == put_count
    assert put_count == db.metrics.op_hist["put"].count
    db.close()


def test_trace_cli_prom_flag(tmp_path, capsys):
    from repro.cli import main as cli_main

    prom_path = tmp_path / "metrics.prom"
    rc = cli_main(["trace", "load", "--engine", "iam",
                   "--records", "2000", "--prom", str(prom_path)])
    assert rc == 0
    text = prom_path.read_text()
    assert "repro_op_latency_seconds_bucket" in text
    assert "repro_sim_time_seconds" in text
    out = capsys.readouterr().out
    assert "Prometheus text exposition" in out
