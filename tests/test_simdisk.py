"""Simulated device: time accounting, queueing, files and space."""

import pytest

from repro.common.errors import InvariantViolation
from repro.common.options import DeviceProfile
from repro.storage.simdisk import SimClock, SimDisk

PROFILE = DeviceProfile("test", seek_time_s=0.01, bulk_seek_time_s=0.001,
                        read_bandwidth=1000.0, write_bandwidth=500.0)


@pytest.fixture
def disk() -> SimDisk:
    return SimDisk(PROFILE)


def test_clock_advances_monotonically():
    c = SimClock()
    c.advance(1.5)
    assert c.now == 1.5
    with pytest.raises(InvariantViolation):
        c.advance(-0.1)


def test_io_time_components(disk):
    assert disk.io_time(nbytes_read=1000) == pytest.approx(1.0)
    assert disk.io_time(nbytes_write=500) == pytest.approx(1.0)
    assert disk.io_time(seeks=2) == pytest.approx(0.02)
    assert disk.io_time(bulk_seeks=3) == pytest.approx(0.003)
    assert disk.io_time(nbytes_read=1000, seeks=1) == pytest.approx(1.01)


def test_fg_io_advances_clock_and_counts(disk):
    lat = disk.fg_io(nbytes_read=1000, seeks=1)
    assert lat == pytest.approx(1.01)
    assert disk.clock.now == pytest.approx(1.01)
    assert disk.bytes_read == 1000
    assert disk.read_ops == 1
    assert disk.seeks == 1


def test_fg_io_queues_behind_busy_channel(disk):
    disk.busy_until = 5.0  # committed background work
    lat = disk.fg_io(nbytes_write=500)
    assert lat == pytest.approx(5.0 + 1.0)  # waits, then service
    assert disk.clock.now == pytest.approx(6.0)


def test_fg_stream_does_not_queue(disk):
    disk.busy_until = 5.0
    lat = disk.fg_stream(nbytes_write=500)
    assert lat == pytest.approx(1.0)
    assert disk.clock.now == pytest.approx(1.0)
    assert disk.busy_until == 5.0  # untouched


def test_bg_grant_respects_not_before_and_now(disk):
    disk.clock.now = 10.0
    granted = disk.bg_grant(not_before=4.0, want_s=100.0)
    assert granted == pytest.approx(6.0)  # [4, 10]
    assert disk.busy_until == pytest.approx(10.0)
    assert disk.bg_grant(not_before=0.0, want_s=1.0) == 0.0  # channel full


def test_bg_grant_lookahead_extends_horizon(disk):
    disk.clock.now = 1.0
    disk.busy_until = 1.0
    granted = disk.bg_grant(not_before=0.0, want_s=10.0, lookahead_s=0.5)
    assert granted == pytest.approx(0.5)
    assert disk.busy_until == pytest.approx(1.5)


def test_bg_grant_cannot_run_before_submission(disk):
    disk.clock.now = 10.0
    granted = disk.bg_grant(not_before=9.5, want_s=100.0)
    assert granted == pytest.approx(0.5)


def test_sync_drain_jumps_clock(disk):
    disk.clock.now = 2.0
    disk.busy_until = 3.0
    elapsed = disk.sync_drain(1.0)
    assert elapsed == pytest.approx(2.0)  # waited 1.0 + worked 1.0
    assert disk.clock.now == pytest.approx(4.0)
    with pytest.raises(InvariantViolation):
        disk.sync_drain(-1.0)


def test_file_lifecycle_and_space(disk):
    f = disk.create_file()
    f.grow(100)
    g = disk.create_file()
    g.grow(50)
    assert disk.live_bytes == 150
    disk.delete_file(f)
    assert disk.live_bytes == 50
    assert f.file_id not in disk.files
    disk.delete_file(f)  # idempotent
    assert disk.live_bytes == 50
    with pytest.raises(InvariantViolation):
        f.grow(10)


def test_file_ids_unique(disk):
    ids = {disk.create_file().file_id for _ in range(10)}
    assert len(ids) == 10
