"""LSA-tree behaviour: flush / split / combine / move-down (§4)."""

import random

import pytest

from repro.common.records import KEY, make_put
from repro.core.node import children_slice
from tests.conftest import make_tiny_db

VAL = 64


def load_random(db, n, keyspace=1 << 30, seed=0, unique=True):
    rng = random.Random(seed)
    seen = set()
    count = 0
    while count < n:
        k = rng.randrange(keyspace)
        if unique and k in seen:
            continue
        seen.add(k)
        db.put(k, VAL)
        count += 1
    return seen


def test_first_flush_creates_l1_node():
    db = make_tiny_db("lsa")
    load_random(db, 40, seed=1)
    db.flush()
    eng = db.engine
    assert len(eng.levels[1]) >= 1
    assert eng.n >= 1


def test_sequential_load_is_pure_move_down():
    """§4.2.1/§6.6: sequential writes are written to disk exactly once."""
    db = make_tiny_db("lsa")
    for k in range(4000):
        db.put(k, VAL)
    db.quiesce()
    eng = db.engine
    assert eng.move_downs > 0
    assert eng.merges == 0
    # Every user byte written once (plus metadata overhead).
    assert db.write_amplification() < 1.35
    db.check_invariants()


def test_tree_deepens_when_leaf_exceeds_threshold():
    db = make_tiny_db("lsa")
    load_random(db, 4000, seed=2)
    db.quiesce()
    eng = db.engine
    assert eng.n >= 2
    assert db.metrics.events.get("deepen", 0) >= 1


def test_ranges_stay_disjoint_under_random_load():
    db = make_tiny_db("lsa")
    load_random(db, 5000, seed=3)
    db.check_invariants()  # sorted, disjoint, ranges cover data
    # point-read correctness over a sample
    rng = random.Random(99)


def test_internal_level_node_counts_bounded():
    db = make_tiny_db("lsa")
    load_random(db, 5000, seed=4)
    db.flush()
    eng = db.engine
    t = eng.options.fanout
    for i in range(1, eng.n):
        # combines keep Ni at t^i; small transient slack allowed between
        # ingests (pre-processing runs at the *next* flush, §4.2.3).
        assert len(eng.levels[i]) <= t**i + t


def test_worst_write_case_avoided():
    """Table 2: no *flush* ever writes into more than ~2t children.

    (Instantaneous structural child counts can transiently exceed 2t between
    flushes -- leaf merges add Ct/5-sized nodes -- but the write fan-out,
    which is what makes appends degrade into random writes, is bounded by
    the split precondition, §4.2.2.)
    """
    db = make_tiny_db("lsa")
    load_random(db, 6000, seed=5)
    eng = db.engine
    t = eng.options.fanout
    assert eng.max_flush_fanout <= 2 * t + t
    assert eng.splits >= 0


def test_splits_triggered_by_skew():
    db = make_tiny_db("lsa")
    # Skewed inserts: one hot range keeps one parent's children growing.
    rng = random.Random(6)
    n = 0
    while db.engine.splits == 0 and n < 30000:
        db.put(rng.randrange(1 << 14), VAL)  # updates allowed: narrow space
        n += 1
    assert db.engine.splits > 0
    db.check_invariants()


def test_combines_keep_structure():
    db = make_tiny_db("lsa")
    load_random(db, 8000, seed=7)
    assert db.engine.combines > 0
    db.check_invariants()


def test_leaf_merge_splits_into_initial_size_nodes():
    """Figure 4: merging a full leaf child yields nodes of ~Ct/5."""
    db = make_tiny_db("lsa")
    load_random(db, 5000, seed=8)
    db.quiesce()
    eng = db.engine
    assert eng.merges > 0
    ct = eng.options.node_capacity
    leaf_nodes = eng.levels[eng.n]
    assert leaf_nodes
    # No leaf node wildly exceeds Ct (a child can briefly hold Ct plus one
    # partition's worth before the next flush merges it).
    assert max(nd.nbytes for nd in leaf_nodes) <= 3 * ct


def test_multiple_sequences_accumulate_in_nodes():
    """LSA nodes hold multiple sorted sequences (the append tree signature)."""
    db = make_tiny_db("lsa")
    load_random(db, 4000, seed=9)
    assert db.engine.max_sequences_per_node() >= 2


def test_flush_empties_node_but_keeps_range():
    db = make_tiny_db("lsa")
    load_random(db, 4000, seed=10)
    db.flush()
    eng = db.engine
    empties = [nd for lvl in eng.levels[1:eng.n] for nd in lvl if nd.is_empty]
    for nd in empties:
        assert nd.range_lo <= nd.range_hi  # keeps a valid range


def test_reads_after_heavy_load():
    db = make_tiny_db("lsa")
    keys = load_random(db, 3000, seed=11)
    sample = random.Random(12).sample(sorted(keys), 200)
    for k in sample:
        assert db.get(k) == VAL
    assert db.get(-1) is None


def test_scan_is_sorted_and_complete():
    db = make_tiny_db("lsa")
    keys = load_random(db, 2500, seed=13)
    got = db.scan(None, None)
    assert [k for k, _ in got] == sorted(keys)


def test_write_amplification_tracks_level_count():
    """Eq. (3): WA ~ n (appends write once per level)."""
    db = make_tiny_db("lsa")
    load_random(db, 6000, seed=14)
    db.flush()
    eng = db.engine
    wa = db.write_amplification()
    # within a loose band around n (metadata, leaf merges, splits add a bit)
    assert eng.n - 1.0 < wa < eng.n + 3.0


def test_balance_boundary_evens_child_counts():
    db = make_tiny_db("lsa")
    load_random(db, 6000, seed=15)
    eng = db.engine
    assert db.metrics.events.get("rebalance", 0) >= 0
    # After rebalances, verify the contains-lo partition is consistent.
    for level in range(1, eng.n):
        parents = eng.levels[level]
        kids = eng.levels[level + 1]
        covered = 0
        for idx in range(len(parents)):
            i, j = children_slice(parents, kids, idx)
            covered += j - i
        assert covered == len(kids)  # every kid has exactly one parent


def test_checkpoint_restore_roundtrip():
    db = make_tiny_db("lsa")
    keys = load_random(db, 2000, seed=16)
    db.quiesce()
    state = db.engine.checkpoint_state()
    db.engine.restore_state(state)
    db.check_invariants()
    k = next(iter(keys))
    assert db.get(k) == VAL
