"""Crash coverage for the shared-storage mirror path.

Three new sites extend the crash matrix
(:data:`repro.faults.crash.CRASH_SITES`): ``pre-objstore-log`` (data
objects uploaded, cut entry not appended), ``post-objstore-log`` (cut
durable, cleanup not run) and ``mid-objstore-cleanup`` (victims picked,
deletes not issued).  After any of them the log must sit on a whole-entry
boundary, recovery must sweep objects whose cut never landed, and the
local durability contract is untouched.  The default matrix
(:func:`run_crash_matrix`) has no tier attached, so the new sites are
unreachable there and the matrix stays green unchanged.
"""

import pytest

from tests.conftest import tiny_iam_options, tiny_storage_options
from repro.db.iamdb import IamDB
from repro.faults.crash import (
    CRASH_SITES,
    CrashPoints,
    CrashSpec,
    SimulatedCrash,
    run_crash_matrix,
)
from repro.objstore import ObjStoreOptions, ObjStoreTier, SharedManifestLog, SimObjectStore

NEW_SITES = ("pre-objstore-log", "post-objstore-log", "mid-objstore-cleanup")


def _mirrored_db(node_tag="n0", store=None, log=None):
    db = IamDB("iam", engine_options=tiny_iam_options(),
               storage_options=tiny_storage_options())
    if store is None:
        store = SimObjectStore(db.runtime.clock, ObjStoreOptions.zero())
    if log is None:
        log = SharedManifestLog(store, "shard0/")
    tier = ObjStoreTier(db, log, node_tag=node_tag, cleanup_interval=2)
    return db, store, log, tier


def _write_until_crash(db, limit=4000):
    """Drive puts until the armed crash point fires; returns ops applied."""
    for i in range(limit):
        try:
            db.put((0x9E3779B97F4A7C15 * (i + 1)) % 2 ** 64, 16 + (i % 50))
        except SimulatedCrash:
            return i
    raise AssertionError("armed crash point never fired")


def test_new_sites_are_registered():
    for site in NEW_SITES:
        assert site in CRASH_SITES


@pytest.mark.parametrize("site", NEW_SITES)
def test_crash_at_site_leaves_whole_entries_and_recovers(site):
    db, store, log, tier = _mirrored_db()
    occurrence = 2 if site != "mid-objstore-cleanup" else 1
    cp = CrashPoints(site, occurrence)
    db.runtime.arm_crash_points(cp)
    _write_until_crash(db)
    assert cp.fired
    # The log is on a whole-entry boundary right now: every retained cut
    # is a complete entry whose objects all exist.
    assert log.verify() == []
    # Recover the node, then resync the tier like the cluster layer does:
    # fresh mirror map under a new node tag, log resynced from the store.
    tier.detach()
    db.crash_and_recover(CrashSpec(torn_tail_records=0))
    tier2 = ObjStoreTier(db, log, node_tag="n1", cleanup_interval=2)
    report = tier2.recover()
    assert report["cuts"] == len(log.cuts)
    assert log.verify() == []
    if site == "pre-objstore-log":
        # Uploads landed but the cut never did: recovery swept them.
        assert report["orphans_swept"] > 0
    # Life goes on: more writes, a flush, a fresh durable cut.
    before = log.latest_cut().cut_id if log.latest_cut() else 0
    for i in range(40):
        db.put((0x9E3779B97F4A7C15 * (i + 1)) % 2 ** 64, 200 + i)
    db.flush()
    db.quiesce()
    cut = log.latest_cut()
    assert cut is not None and cut.cut_id > before
    assert cut.seq == db._seq
    assert log.verify() == []
    db.check_invariants()
    db.close()


def test_crash_between_upload_and_append_never_loses_local_writes():
    """The mirror is redundancy, not the write path: local durability holds."""
    db, store, log, tier = _mirrored_db()
    cp = CrashPoints("pre-objstore-log", 1)
    db.runtime.arm_crash_points(cp)
    model = {}
    applied = 0
    for i in range(4000):
        key = (0x9E3779B97F4A7C15 * (i + 1)) % 2 ** 64
        try:
            db.put(key, 16 + (i % 50))
        except SimulatedCrash:
            break
        model[key] = 16 + (i % 50)
        applied += 1
    assert cp.fired
    tier.detach()
    report = db.crash_and_recover(CrashSpec(torn_tail_records=0))
    # Untorn recovery: every acked write survives the mirror-path crash.
    assert report.recovered_seq >= applied
    for key, want in sorted(model.items()):
        assert db.get(key) == want
    db.check_invariants()
    db.close()


def test_default_crash_matrix_stays_green():
    """Without a tier the new sites are unreachable; the matrix is unchanged."""
    report = run_crash_matrix(engines=("iam",), n_ops=120, per_site=1,
                              seed=3, torn_variants=(0,))
    assert report["n_failures"] == 0
    assert report["n_cases"] > 0
    for site in NEW_SITES:
        assert report["sites"]["iam"].get(site, 0) == 0
