"""MSTable: multi-sequence nodes, newest-first reads, space accounting."""

import pytest

from repro.common.errors import InvariantViolation
from repro.common.options import DeviceProfile, StorageOptions
from repro.common.records import KEY, SEQ, make_put
from repro.storage.runtime import Runtime
from repro.table.mstable import MSTable

KS = 8
BLOCK = 256
PROFILE = DeviceProfile("test", seek_time_s=0.01, bulk_seek_time_s=0.001,
                        read_bandwidth=1e6, write_bandwidth=1e6)


def make_runtime(cache_bytes=0):
    return Runtime(StorageOptions(device=PROFILE, page_cache_bytes=cache_bytes,
                                  block_size=BLOCK))


def make_table(rt):
    return MSTable(rt, key_size=KS, bloom_bits_per_key=14)


def run(keys, seq):
    return [make_put(k, seq, 64) for k in sorted(keys)]


def test_append_sequence_accounting():
    rt = make_runtime()
    t = make_table(rt)
    seq, debt = t.append_sequence(run(range(10), 1), level=2)
    assert debt > 0.0
    assert t.n_sequences == 1
    assert t.data_bytes == seq.nbytes
    assert t.file.nbytes == seq.nbytes + seq.metadata_bytes
    assert rt.metrics.level_write_bytes[2] == t.file.nbytes
    assert t.n_records == 10


def test_appended_blocks_enter_cache():
    rt = make_runtime(cache_bytes=100 * BLOCK)
    t = make_table(rt)
    s1, _ = t.append_sequence(run(range(10), 1), level=1)
    s2, _ = t.append_sequence(run(range(10, 20), 2), level=1)
    assert s2.first_block == s1.n_blocks  # consecutive block numbering
    assert rt.cache.resident_blocks(t.file_id) == s1.n_blocks + s2.n_blocks
    assert t.resident_bytes() == (s1.n_blocks + s2.n_blocks) * BLOCK


def test_get_searches_newest_sequence_first():
    rt = make_runtime()
    t = make_table(rt)
    t.append_sequence(run([1, 2, 3], 1), level=1)
    t.append_sequence([make_put(2, 5, 64)], level=1)
    rec, _ = t.get(2)
    assert rec[SEQ] == 5
    rec, _ = t.get(2, snapshot=3)
    assert rec[SEQ] == 1
    rec, _ = t.get(1)
    assert rec[SEQ] == 1
    rec, _ = t.get(99)
    assert rec is None


def test_min_max_across_sequences():
    rt = make_runtime()
    t = make_table(rt)
    t.append_sequence(run([5, 9], 1), level=1)
    t.append_sequence(run([1, 7], 2), level=1)
    assert (t.min_key, t.max_key) == (1, 9)
    assert t.max_seq == 2


def test_read_range_returns_runs_newest_first():
    rt = make_runtime()
    t = make_table(rt)
    t.append_sequence(run([1, 2, 3], 1), level=1)
    t.append_sequence(run([2, 4], 5), level=1)
    runs, lat = t.read_range(2, 4)
    assert lat > 0.0
    assert [r[KEY] for r in runs[0]] == [2, 4]       # newest first
    assert [r[KEY] for r in runs[1]] == [2, 3]


def test_cursor_merges_sequences_sorted():
    rt = make_runtime(cache_bytes=100 * BLOCK)
    t = make_table(rt)
    t.append_sequence(run([1, 3, 5], 1), level=1)
    t.append_sequence(run([2, 3, 6], 7), level=1)
    out = list(t.cursor())
    keys = [r[KEY] for r in out]
    assert keys == [1, 2, 3, 3, 5, 6]
    # For the duplicate key, the newer version comes first.
    dup = [r for r in out if r[KEY] == 3]
    assert dup[0][SEQ] == 7 and dup[1][SEQ] == 1


def test_build_single_sequence_table():
    rt = make_runtime()
    t, debt = MSTable.build(rt, run(range(5), 1), key_size=KS,
                            bloom_bits_per_key=14, level=3)
    assert t.n_sequences == 1
    assert debt > 0.0


def test_delete_releases_file_and_space():
    rt = make_runtime(cache_bytes=100 * BLOCK)
    t = make_table(rt)
    t.append_sequence(run(range(10), 1), level=1)
    assert rt.space_used_bytes() > 0
    t.delete()
    assert rt.space_used_bytes() == 0
    assert rt.cache.resident_blocks(t.file_id) == 0
    t.delete()  # idempotent
    with pytest.raises(InvariantViolation):
        t.append_sequence(run([1], 2), level=1)


def test_compaction_read_debt_discounts_residency():
    rt = make_runtime(cache_bytes=0)
    t = make_table(rt)
    t.append_sequence(run(range(20), 1), level=1)
    cold = t.compaction_read_debt()
    assert cold > 0.0

    rt2 = make_runtime(cache_bytes=1000 * BLOCK)
    t2 = make_table(rt2)
    t2.append_sequence(run(range(20), 1), level=1)
    hot = t2.compaction_read_debt()  # blocks cached by the write
    assert hot == 0.0
