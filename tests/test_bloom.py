"""Bloom filters: no false negatives, bounded false positives."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConfigError
from repro.filters.bloom import BloomFilter


def test_validation():
    with pytest.raises(ConfigError):
        BloomFilter(-1, 14)
    with pytest.raises(ConfigError):
        BloomFilter(10, -1)


def test_no_false_negatives_basic():
    keys = list(range(0, 2000, 3))
    f = BloomFilter.build(keys, bits_per_key=14)
    assert all(f.might_contain(k) for k in keys)


def test_false_positive_rate_near_paper_bound():
    """14 bits/key -> ~0.2% FPR (§5.3.2); allow generous slack."""
    rng = random.Random(1)
    keys = [rng.getrandbits(60) for _ in range(5000)]
    f = BloomFilter.build(keys, bits_per_key=14)
    present = set(keys)
    trials = 20000
    fp = sum(1 for _ in range(trials)
             if (k := rng.getrandbits(60)) not in present and f.might_contain(k))
    assert fp / trials < 0.01


def test_zero_bits_admits_everything():
    f = BloomFilter.build([1, 2, 3], bits_per_key=0)
    assert f.n_hashes == 0
    assert f.might_contain(999)


def test_empty_filter():
    f = BloomFilter.build([], bits_per_key=14)
    # Implementation detail: minimum sizing; just must not crash.
    f.might_contain(1)


def test_nbytes_grows_with_keys():
    small = BloomFilter.build(list(range(100)), 14)
    large = BloomFilter.build(list(range(10000)), 14)
    assert large.nbytes > small.nbytes


def test_expected_fpr_formula():
    f = BloomFilter(1000, 14)
    fpr = f.expected_fpr(1000)
    assert 0.0 < fpr < 0.01


def test_hash_count_clamped():
    assert BloomFilter(10, 14).n_hashes == 10  # round(ln2 * 14)
    assert BloomFilter(10, 100).n_hashes == 30


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 2**63 - 1), min_size=1, max_size=200))
def test_property_no_false_negatives(keys):
    f = BloomFilter.build(keys, bits_per_key=10)
    for k in keys:
        assert f.might_contain(k)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 2**63 - 1), min_size=1, max_size=100),
       st.integers(0, 2**63 - 1))
def test_scalar_probe_matches_vector_build(keys, probe):
    """might_contain must agree with the vectorized insert positions: any
    key inserted via add_many is found by the scalar path."""
    f = BloomFilter(len(keys) + 1, 14)
    f.add_many(keys + [probe])
    assert f.might_contain(probe)
