"""A trivial cluster is record-identical to a bare IamDB.

The equivalence contract behind the cluster layer: a 1-shard, 1-replica
cluster on a zero-cost network (no latency, infinite bandwidth, no framing)
adds *no* simulated work and *no* behavioural difference -- every per-op
result, the final KV state, the sequence counter and the simulated clock
itself must match a bare :class:`~repro.db.iamdb.IamDB` driven with the
same operations.  Hypothesis drives both with randomized mixed workloads.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from tests.conftest import tiny_iam_options, tiny_storage_options
from repro.cluster import ClusterDB, ClusterOptions, NetworkOptions
from repro.db.iamdb import IamDB

#: (op code, key index, size/limit) triples over a small shared key pool.
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["put", "put", "put", "delete", "get", "scan"]),
              st.integers(0, 23),
              st.integers(1, 200)),
    max_size=80)

#: A fixed, spread-out key pool (arbitrary points in the 64-bit key space).
KEY_POOL = [(0x9E3779B97F4A7C15 * (i + 1)) % 2 ** 64 for i in range(24)]


def _pair():
    cluster = ClusterDB(ClusterOptions(
        n_shards=1, n_replicas=1,
        engine_options=tiny_iam_options(),
        storage_options=tiny_storage_options(),
        network=NetworkOptions.zero()))
    bare = IamDB("iam", engine_options=tiny_iam_options(),
                 storage_options=tiny_storage_options())
    return cluster, bare


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_trivial_cluster_equals_bare_db(ops):
    cluster, bare = _pair()
    for op, key_i, size in ops:
        key = KEY_POOL[key_i]
        if op == "put":
            cluster.put(key, size)
            bare.put(key, size)
        elif op == "delete":
            cluster.delete(key)
            bare.delete(key)
        elif op == "get":
            assert cluster.get(key) == bare.get(key)
        else:
            lo = KEY_POOL[size % len(KEY_POOL)]
            limit = 1 + size % 8
            assert (cluster.scan(lo, None, limit=limit)
                    == bare.scan(lo, None, limit=limit))
    # Identical final state: KV contents, sequence counter, sim clock,
    # amplification accounting, space.
    assert cluster.scan() == bare.scan()
    leader = cluster.router.shards[0].group.leader.db
    assert leader._seq == bare._seq
    assert cluster.clock.now == bare.runtime.clock.now
    assert cluster.write_amplification() == bare.write_amplification()
    assert cluster.space_used_bytes() == bare.space_used_bytes()
    cluster.close()
    bare.close()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_trivial_cluster_iterate_matches(ops):
    cluster, bare = _pair()
    for op, key_i, size in ops:
        key = KEY_POOL[key_i]
        if op in ("put", "scan", "get"):
            cluster.put(key, size)
            bare.put(key, size)
        else:
            cluster.delete(key)
            bare.delete(key)
    assert list(cluster.iterate()) == list(bare.iterate())
    cluster.close()
    bare.close()
