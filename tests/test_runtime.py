"""Runtime charging conventions: query reads, compaction I/O, files."""

import pytest

from repro.common.options import DeviceProfile, StorageOptions
from repro.storage.runtime import Runtime

PROFILE = DeviceProfile("test", seek_time_s=0.01, bulk_seek_time_s=0.001,
                        read_bandwidth=1000.0, write_bandwidth=1000.0)


def make_runtime(cache_bytes=10 * 256) -> Runtime:
    return Runtime(StorageOptions(device=PROFILE, page_cache_bytes=cache_bytes,
                                  block_size=256, io_chunk_bytes=256))


def test_fg_read_blocks_charges_one_seek_per_run():
    rt = make_runtime(cache_bytes=0)
    lat = rt.fg_read_blocks(1, [0, 1, 2])  # one consecutive run
    assert lat == pytest.approx(0.01 + 3 * 256 / 1000.0)
    assert rt.metrics.query_seeks == 1
    lat = rt.fg_read_blocks(1, [5, 7])  # two runs
    assert lat == pytest.approx(2 * 0.01 + 2 * 256 / 1000.0)
    assert rt.metrics.query_seeks == 3


def test_fg_read_blocks_cache_hits_are_free():
    rt = make_runtime()
    rt.cache.insert_range(1, 0, 3)
    lat = rt.fg_read_blocks(1, [0, 1, 2])
    assert lat == 0.0
    assert rt.metrics.cache_hits == 3
    assert rt.metrics.query_seeks == 0


def test_fg_read_blocks_partial_miss():
    rt = make_runtime()
    rt.cache.insert(1, 1)
    rt.fg_read_blocks(1, [0, 1, 2])
    assert rt.metrics.cache_hits == 1
    assert rt.metrics.cache_misses == 2
    assert rt.metrics.query_seeks == 2  # blocks 0 and 2 are separate runs
    # missed blocks are now resident
    assert rt.cache.contains(1, 0) and rt.cache.contains(1, 2)


def test_bg_write_run_accounting():
    rt = make_runtime()
    f = rt.create_file()
    debt = rt.bg_write_run(f, 512, level=3, first_block=0)
    assert debt == pytest.approx(0.001 + 512 / 1000.0)
    assert f.nbytes == 512
    assert rt.metrics.level_write_bytes[3] == 512
    assert rt.cache.contains(f.file_id, 0) and rt.cache.contains(f.file_id, 1)
    assert rt.bg_write_run(f, 0, level=3) == 0.0


def test_bg_write_run_explicit_cache_blocks():
    rt = make_runtime()
    f = rt.create_file()
    rt.bg_write_run(f, 1024, level=1, first_block=4, n_cache_blocks=2)
    assert rt.cache.contains(f.file_id, 4)
    assert rt.cache.contains(f.file_id, 5)
    assert not rt.cache.contains(f.file_id, 6)


def test_bg_read_run_resident_discount():
    rt = make_runtime()
    full = rt.bg_read_run(1, 1000)
    assert full == pytest.approx(0.001 + 1.0)
    none = rt.bg_read_run(1, 1000, resident_bytes=1000)
    assert none == 0.0
    part = rt.bg_read_run(1, 1000, resident_bytes=400)
    assert part == pytest.approx(0.001 + 0.6)
    assert rt.metrics.compaction_read_bytes == 3000


def test_delete_file_invalidates_cache():
    rt = make_runtime()
    f = rt.create_file()
    rt.bg_write_run(f, 512, level=1)
    assert rt.cache.resident_blocks(f.file_id) == 2
    rt.delete_file(f)
    assert rt.cache.resident_blocks(f.file_id) == 0
    assert rt.space_used_bytes() == 0


def test_stall_on_records_event():
    rt = make_runtime()
    job = rt.submit_job("j", lambda: 1.0)
    elapsed = rt.stall_on(job, "test")
    assert elapsed == pytest.approx(1.0)
    assert rt.metrics.events["stall:test"] == 1
    # waiting again is free and does not double count
    assert rt.stall_on(job, "test") == 0.0
    assert rt.metrics.events["stall:test"] == 1


def test_quiesce_drains_everything():
    rt = make_runtime()
    rt.submit_job("a", lambda: 2.0)
    rt.submit_job("b", lambda: 1.0)
    rt.quiesce()
    assert not rt.pool.busy
