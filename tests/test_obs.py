"""Tracer, sampler and exporter unit tests, plus the metrics satellites."""

from __future__ import annotations

import json

import pytest

from tests.conftest import ALL_ENGINES, make_tiny_db
from repro.metrics import MetricsRegistry, StallStat
from repro.obs import (
    NULL_TRACER,
    NullTracer,
    TraceConfig,
    TraceOptions,
    Tracer,
    attach_trace,
    chrome_trace,
    jsonl_lines,
    merge_chrome_traces,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.tracer import ClockLike, PH_BEGIN, PH_END, PH_INSTANT


def make_tracer(capacity: int = 64):
    clock = ClockLike()
    return clock, Tracer(clock, TraceOptions(ring_capacity=capacity))


# ------------------------------------------------------------------- tracer
def test_null_tracer_is_disabled_noop():
    assert NULL_TRACER.enabled is False
    assert NullTracer.enabled is False
    NULL_TRACER.instant("cat", "x", foo=1)
    NULL_TRACER.begin("cat", "x", 1)
    NULL_TRACER.end("cat", "x", 1)
    assert not hasattr(NULL_TRACER, "events")


def test_tracer_records_sim_time_events():
    clock, tracer = make_tracer()
    assert tracer.enabled is True
    clock.now = 0.25
    tracer.instant("compaction", "flush", records=3)
    clock.now = 0.5
    tracer.begin("job", "merge", 7, debt_s=0.1)
    clock.now = 0.75
    tracer.end("job", "merge", 7, debt_s=0.1)
    assert len(tracer) == 3
    (ts0, ph0, cat0, name0, sid0, args0) = tracer.events[0]
    assert (ts0, ph0, cat0, name0, sid0) == (0.25, PH_INSTANT, "compaction",
                                             "flush", None)
    assert args0 == {"records": 3}
    assert tracer.events[1][1] == PH_BEGIN
    assert tracer.events[2][1] == PH_END
    assert tracer.counts == {"flush": 1, "merge": 1}
    assert tracer.spans_opened == tracer.spans_closed == 1
    assert tracer.open_spans == {}


def test_tracer_ring_drops_oldest_and_counts():
    clock, tracer = make_tracer(capacity=4)
    for i in range(10):
        clock.now = float(i)
        tracer.instant("c", f"e{i}")
    assert len(tracer) == 4
    assert tracer.dropped == 6
    assert tracer.event_count() == 10
    # The ring keeps the most recent window.
    names = [ev[3] for ev in tracer.events]
    assert names == ["e6", "e7", "e8", "e9"]
    # Per-name counts survive eviction.
    assert sum(tracer.counts.values()) == 10


def test_open_span_tracking():
    _, tracer = make_tracer()
    tracer.begin("job", "flush", 1)
    tracer.begin("job", "compact", 2)
    assert tracer.open_spans == {1: ("job", "flush"), 2: ("job", "compact")}
    tracer.end("job", "flush", 1)
    assert tracer.open_spans == {2: ("job", "compact")}


# ---------------------------------------------------------------- exporters
def test_jsonl_lines_are_compact_sorted_json():
    clock, tracer = make_tracer()
    clock.now = 0.001
    tracer.instant("db", "memtable-rotation", records=5, nbytes=100)
    lines = jsonl_lines(tracer)
    assert len(lines) == 1
    obj = json.loads(lines[0])
    assert obj == {"ts": 0.001, "ph": "i", "cat": "db",
                   "name": "memtable-rotation",
                   "args": {"records": 5, "nbytes": 100}}
    # Deterministic rendering: keys sorted, no whitespace.
    assert lines[0] == json.dumps(obj, sort_keys=True, separators=(",", ":"))
    assert to_jsonl(tracer).endswith("\n")


def test_chrome_trace_shape_and_validation():
    clock, tracer = make_tracer()
    clock.now = 0.002
    tracer.instant("structure", "split", level=1)
    tracer.begin("job", "merge", 3)
    clock.now = 0.004
    tracer.end("job", "merge", 3)
    trace = chrome_trace(tracer, process_name="unit")
    assert validate_chrome_trace(trace) == []
    events = trace["traceEvents"]
    phases = [ev["ph"] for ev in events]
    assert phases.count("M") == 2 and "i" in phases
    instant = next(ev for ev in events if ev["ph"] == "i")
    assert instant["s"] == "t"
    assert instant["ts"] == pytest.approx(2000.0)  # microseconds


def test_chrome_trace_closes_inflight_spans():
    clock, tracer = make_tracer()
    tracer.begin("job", "compact", 9)
    clock.now = 0.01
    trace = chrome_trace(tracer)
    assert validate_chrome_trace(trace) == []
    end = [ev for ev in trace["traceEvents"] if ev["ph"] == PH_END]
    assert len(end) == 1
    assert end[0]["args"] == {"inflight": 1}


def test_validator_catches_bad_traces():
    assert validate_chrome_trace([]) == ["trace is not a JSON object"]
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    unbalanced = {"traceEvents": [
        {"ph": "b", "pid": 1, "ts": 0, "cat": "job", "name": "x", "id": 1}]}
    assert any("unbalanced" in p for p in validate_chrome_trace(unbalanced))
    bad_ph = {"traceEvents": [{"ph": "Z", "pid": 1, "ts": 0, "name": "x"}]}
    assert any("invalid ph" in p for p in validate_chrome_trace(bad_ph))
    bad_counter = {"traceEvents": [
        {"ph": "C", "pid": 1, "ts": 0, "name": "c", "args": {"v": "nan?"}}]}
    assert any("not numeric" in p for p in validate_chrome_trace(bad_counter))


def test_merge_chrome_traces_concatenates_events():
    _, t1 = make_tracer()
    _, t2 = make_tracer()
    t1.instant("a", "one")
    t2.instant("b", "two")
    merged = merge_chrome_traces([chrome_trace(t1, pid=1),
                                  chrome_trace(t2, pid=2)])
    assert validate_chrome_trace(merged) == []
    pids = {ev["pid"] for ev in merged["traceEvents"]}
    assert pids == {1, 2}


# ------------------------------------------------------- metrics satellites
def test_cache_hit_rate_zero_division_guard():
    m = MetricsRegistry()
    assert m.cache_hit_rate() == 0.0
    assert m.summary()["cache_hit_rate"] == 0.0
    m.add_query_io(seeks=1, hits=3, misses=1)
    assert m.cache_hit_rate() == pytest.approx(0.75)


def test_stall_stat_and_longest_stall():
    m = MetricsRegistry()
    assert m.total_stall_s == 0.0
    assert m.longest_stall() is None
    m.add_stall("l0-stop", 0.2)
    m.add_stall("l0-stop", 0.5)
    m.add_stall("memtable-rotation", 0.3)
    st = m.stalls["l0-stop"]
    assert isinstance(st, StallStat)
    assert st.count == 2
    assert st.total_s == pytest.approx(0.7)
    assert st.max_s == pytest.approx(0.5)
    assert m.total_stall_s == pytest.approx(1.0)
    assert m.longest_stall() == ("l0-stop", pytest.approx(0.5))


def test_metrics_snapshot_is_a_copy():
    m = MetricsRegistry()
    m.add_user_bytes(100)
    m.add_level_write(1, 50)
    m.bump("split")
    m.record_latency("read", 0.001)
    m.add_stall("x", 0.1)
    snap = m.snapshot()
    assert snap["user_bytes"] == 100
    assert snap["level_write_bytes"] == {1: 50}
    assert snap["events"] == {"split": 1}
    assert snap["op_counts"] == {"read": 1}
    assert snap["stalls"]["x"][0] == 1
    # Mutating the snapshot must not touch the registry.
    snap["level_write_bytes"][2] = 999
    snap["events"]["bogus"] = 7
    assert 2 not in m.level_write_bytes
    assert "bogus" not in m.events


def test_metrics_reset_zeroes_everything():
    m = MetricsRegistry()
    m.add_user_bytes(10)
    m.add_wal_bytes(5)
    m.add_level_write(0, 20)
    m.add_compaction_read(3)
    m.add_query_io(seeks=1, hits=1, misses=1)
    m.bump("merge")
    m.record_latency("insert", 0.01)
    m.add_stall("y", 0.2)
    m.reset()
    assert m.snapshot() == MetricsRegistry().snapshot()
    assert m.total_stall_s == 0.0
    assert m.write_amplification() == 0.0


def test_db_stats_expose_stall_and_cache_fields():
    db = make_tiny_db("iam")
    try:
        for i in range(300):
            db.put(i, 64)
        for i in range(50):
            db.get(i)
        db.flush()
        db.quiesce()
        stats = db.stats()
        assert 0.0 <= stats["cache_hit_rate"] <= 1.0
        assert stats["total_stall_s"] >= 0.0
        assert stats["longest_stall_s"] >= 0.0
        if stats["longest_stall_s"] > 0.0:
            assert isinstance(stats["longest_stall_reason"], str)
    finally:
        db.close()


# ---------------------------------------------------------- live DB tracing
@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_span_balance_after_quiesce(engine):
    """Every job begin has exactly one matching end once the pool drains."""
    db = make_tiny_db(engine)
    session = attach_trace(db, TraceConfig(sample_interval_s=0.001))
    try:
        for i in range(400):
            db.put(i, 64)
        for i in range(0, 400, 7):
            db.get(i)
        db.flush()
        db.quiesce()
        session.finish()
        assert session.tracer.spans_opened > 0
        assert session.tracer.spans_opened == session.tracer.spans_closed
        assert session.tracer.open_spans == {}
        trace = session.to_chrome()
        assert validate_chrome_trace(trace) == []
        assert len(session.sampler.rows) >= 1
        summary = session.summary()
        assert "busiest background jobs" in summary
    finally:
        db.close()


def test_sampler_rows_carry_fig8_columns():
    db = make_tiny_db("iam")
    session = attach_trace(db, TraceConfig(sample_interval_s=0.00001))
    try:
        for i in range(600):
            db.put(i, 64)
        db.flush()
        db.quiesce()
        session.finish()
        rows = session.sampler.rows
        assert len(rows) >= 2
        for key in ("ts", "level_data_bytes", "level_write_bytes",
                    "write_amplification", "read_amplification",
                    "space_amplification", "cache_hit_rate", "pending_debt_s",
                    "total_stall_s", "throughput_ops_s"):
            assert key in rows[0], key
        ts = [row["ts"] for row in rows]
        assert ts == sorted(ts)  # non-decreasing sample grid
        assert rows[-1]["ts"] <= db.clock_now
    finally:
        db.close()


def test_tracing_is_pay_for_what_you_use_by_default():
    """An untraced DB keeps the shared no-op sink and records nothing."""
    db = make_tiny_db("leveldb")
    try:
        assert db.runtime.tracer is NULL_TRACER
        assert db.runtime.pool.tracer is NULL_TRACER
        for i in range(200):
            db.put(i, 64)
        db.flush()
        db.quiesce()
        assert not hasattr(db.runtime.tracer, "events")
    finally:
        db.close()
