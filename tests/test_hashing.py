"""Shared 64-bit mixing."""

from hypothesis import given, strategies as st

from repro.common.hashing import MASK64, splitmix64


def test_known_values_stable():
    # Regression anchors: changing the mixer silently would re-key every
    # hash-loaded dataset and the LSM-trie layout.
    assert splitmix64(0) == 0xE220A8397B1DCDAF
    assert splitmix64(1) == 0x910A2DEC89025CC1


@given(st.integers(0, MASK64))
def test_output_in_range(x):
    assert 0 <= splitmix64(x) <= MASK64


@given(st.integers(0, MASK64), st.integers(0, MASK64))
def test_injective_on_samples(a, b):
    if a != b:
        assert splitmix64(a) != splitmix64(b)


def test_spreads_low_entropy_inputs():
    outs = [splitmix64(i) for i in range(1000)]
    # top byte roughly uniform
    tops = {o >> 56 for o in outs}
    assert len(tops) > 200


def test_splitmix64_many_matches_scalar_on_range():
    from repro.common.hashing import splitmix64_many
    xs = range(5000)
    assert splitmix64_many(xs) == [splitmix64(x) for x in xs]


@given(st.lists(st.integers(0, MASK64), max_size=300))
def test_splitmix64_many_matches_scalar(xs):
    from repro.common.hashing import splitmix64_many
    assert splitmix64_many(xs) == [splitmix64(x) for x in xs]


def test_splitmix64_array_matches_scalar():
    import numpy as np

    from repro.common.hashing import splitmix64_array
    xs = [0, 1, 2, MASK64, MASK64 - 1, 0x9E3779B97F4A7C15, 2**63, 2**63 - 1]
    arr = np.asarray(xs, dtype=np.uint64)
    assert splitmix64_array(arr).tolist() == [splitmix64(x) for x in xs]
