"""Closed-form amplification model (§5.3)."""

import pytest

from repro.analysis import (
    iam_read_amplification,
    iam_write_amplification,
    lsa_read_amplification,
    lsa_write_amplification,
    lsm_write_amplification,
    split_write_amplification,
    table1_summary,
)
from repro.common.errors import ConfigError


def test_lsm_write_amp_paper_value():
    # §2.1: "the write amplification of LSM is about 11 * (n - 1)"
    assert lsm_write_amplification(7, t=10) == 66
    assert lsm_write_amplification(1) == 0


def test_split_write_amp_small_for_t10():
    # Eq. (5): 2 * sum (2/t)^j -- well under 1 for t=10
    w = split_write_amplification(5, t=10)
    assert 0.4 < w < 0.5
    assert split_write_amplification(1) == 0.0


def test_lsa_write_amp_eq3():
    # Eq. (3): W = W_sp + n
    n = 5
    assert lsa_write_amplification(n) == pytest.approx(
        split_write_amplification(n) + n)


def test_iam_write_amp_eq4():
    n, m, k, t = 5, 3, 2, 10
    expected = split_write_amplification(n, t) + n + t / (2 * k) + (t / 2) * (n - m)
    assert iam_write_amplification(n, m, k, t) == pytest.approx(expected)


def test_iam_degenerates_to_lsa_when_m_exceeds_n():
    assert iam_write_amplification(4, 5, 1) == pytest.approx(lsa_write_amplification(4))


def test_larger_k_and_m_reduce_wa():
    assert iam_write_amplification(5, 3, 3) < iam_write_amplification(5, 3, 1)
    assert iam_write_amplification(5, 4, 2) < iam_write_amplification(5, 2, 2)


def test_read_amplifications():
    # §5.3.2: LSA ~ 0.5 t per uncached level, IAM/LSM 1 per uncached level.
    assert iam_read_amplification(5, 3) == 3
    assert lsa_read_amplification(5, 3) == 15
    assert lsa_read_amplification(5, 3) == 5 * iam_read_amplification(5, 3)


def test_table1_orderings():
    t1 = table1_summary(n=5, m=3, k=2)
    assert t1["lsa"].write < t1["iam"].write < t1["lsm"].write
    assert t1["iam"].read_scan == t1["lsm"].read_scan
    assert t1["lsa"].read_scan > t1["iam"].read_scan
    assert t1["lsa"].space == "high" and t1["iam"].space == "low"


def test_validation():
    with pytest.raises(ConfigError):
        lsm_write_amplification(0)
    with pytest.raises(ConfigError):
        iam_write_amplification(3, 1, 0)
