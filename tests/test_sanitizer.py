"""Runtime sanitizer tests: clean runs stay silent, corrupted state is caught,
and the shared diagnostic formatting is used across the engine."""

from __future__ import annotations

import random
from types import SimpleNamespace

import pytest

from tests.conftest import make_tiny_db, tiny_iam_options, tiny_storage_options
from repro.check.diagnostics import Diagnostic, diagnostic_of, invariant_error
from repro.check.sanitizer import Sanitizer, SanitizerOptions
from repro.common.errors import InvariantViolation
from repro.db.iamdb import IamDB
from repro.memtable import Memtable
from repro.storage.simdisk import SimClock


def make_sanitized_db(engine: str = "iam", **opt_kw) -> IamDB:
    options = SanitizerOptions(**opt_kw)
    return IamDB(engine, engine_options=tiny_iam_options(),
                 storage_options=tiny_storage_options(),
                 sanitizer_options=options)


def load(db: IamDB, n: int, seed: int = 7) -> None:
    rng = random.Random(seed)
    for _ in range(n):
        db.put(rng.randrange(n * 4), 64)


# ------------------------------------------------------------- clean runs
@pytest.mark.parametrize("engine", ["iam", "lsa"])
def test_clean_workload_has_no_violations(engine):
    db = make_sanitized_db(engine)
    load(db, 600)
    db.flush()
    db.crash_and_recover()
    load(db, 200, seed=11)
    db.quiesce()
    assert db.sanitizer is not None
    assert db.sanitizer.violations == []
    assert db.sanitizer.events_seen > 0
    assert db.sanitizer.checks_run > 0
    db.close()


def test_sanitizer_not_attached_by_default():
    db = make_tiny_db("iam")
    assert db.sanitizer is None
    assert db.engine.sanitizer is None
    db.close()


def test_check_every_skips_walks():
    db = make_sanitized_db("iam", check_every=3)
    s = db.sanitizer
    walks_before = s.checks_run
    for _ in range(6):
        s.after_structural_event(db.engine, "flush")
    assert s.events_seen == 6
    assert s.checks_run == walks_before + 2  # every 3rd event walks the tree
    db.close()


# ------------------------------------------------------- corrupted trees
def fresh_sanitizer(db: IamDB) -> Sanitizer:
    return Sanitizer(db, SanitizerOptions(halt_on_violation=False))


def checks_hit(sanitizer: Sanitizer) -> set:
    return {d.check for d in sanitizer.violations}


def loaded_engine_db():
    db = make_sanitized_db("iam")
    load(db, 800)
    db.quiesce()
    return db


def test_detects_unsorted_level():
    db = loaded_engine_db()
    engine = db.engine
    level = next(lvl for lvl in engine.levels[1:] if len(lvl) >= 2)
    level[0], level[1] = level[1], level[0]
    s = fresh_sanitizer(db)
    s.check_tree(engine)
    assert "level-sorted" in checks_hit(s)


def test_detects_range_not_covering_data():
    db = loaded_engine_db()
    engine = db.engine
    node = next(nd for lvl in engine.levels[1:] for nd in lvl if not nd.is_empty)
    node.range_hi = node.table.min_key  # shrink below the data
    s = fresh_sanitizer(db)
    s.check_tree(engine)
    assert "range-covers-data" in checks_hit(s)


def test_detects_unsorted_sequence_records():
    db = loaded_engine_db()
    engine = db.engine
    seq = next(sq for lvl in engine.levels[1:] for nd in lvl if not nd.is_empty
               for sq in nd.table.sequences if len(sq.records) >= 2)
    seq.records.reverse()
    s = fresh_sanitizer(db)
    s.check_tree(engine)
    assert "sequence-sorted" in checks_hit(s)


def test_detects_file_byte_mismatch():
    db = loaded_engine_db()
    engine = db.engine
    node = next(nd for lvl in engine.levels[1:] for nd in lvl if not nd.is_empty)
    node.table.file.nbytes += 7  # bypass grow(): accounting now disagrees
    s = fresh_sanitizer(db)
    s.check_tree(engine)
    hit = checks_hit(s)
    assert "node-file-agreement" in hit
    assert "space-accounting" in hit


def test_detects_nodes_beyond_leaf():
    db = loaded_engine_db()
    engine = db.engine
    node = next(nd for lvl in engine.levels[1:] for nd in lvl)
    engine.levels.append([node])
    s = fresh_sanitizer(db)
    s.check_tree(engine)
    assert "leaf-is-last" in checks_hit(s)


def test_detects_clock_regression():
    db = loaded_engine_db()
    s = fresh_sanitizer(db)
    s._last_clock = db.runtime.clock.now + 1.0
    s.check_tree(db.engine)
    assert "clock-monotonic" in checks_hit(s)


def test_halt_on_violation_raises():
    db = loaded_engine_db()
    engine = db.engine
    level = next(lvl for lvl in engine.levels[1:] if len(lvl) >= 2)
    level[0], level[1] = level[1], level[0]
    s = Sanitizer(db, SanitizerOptions(halt_on_violation=True))
    with pytest.raises(InvariantViolation) as err:
        s.check_tree(engine)
    assert diagnostic_of(err.value).check == "level-sorted"


# ------------------------------------------------------------- db checks
def test_detects_wal_memtable_divergence():
    db = make_sanitized_db("iam")
    for i in range(5):
        db.put(i, 32)
    db.wal._records.pop()  # lose a WAL record behind the memtable's back
    s = fresh_sanitizer(db)
    s.check_db("test")
    assert "wal-memtable-agreement" in checks_hit(s)


def test_detects_manifest_ahead_of_db():
    db = make_sanitized_db("iam")
    load(db, 300)
    db.flush()
    db.manifest.checkpoint({"engine": None, "seq": db._seq + 100})
    s = fresh_sanitizer(db)
    s.check_db("test")
    assert "manifest-agreement" in checks_hit(s)


def test_detects_stale_wal_records():
    db = make_sanitized_db("iam")
    load(db, 50)
    db.put(999_999, 32)  # guarantee the WAL holds at least one record
    state = db.manifest.restore()
    # Pretend the checkpoint already covers the WAL's newest record.
    newest = max(rec[1] for rec in db.wal._records)
    db.manifest.checkpoint({"engine": None if state is None else state["engine"],
                            "seq": newest})
    db._seq = max(db._seq, newest)
    s = fresh_sanitizer(db)
    s.check_db("test")
    assert "manifest-agreement" in checks_hit(s)


# ------------------------------------------------- mixed-level bound logic
def fake_engine(m, k, levels):
    """Duck-typed engine for the transition-tracking unit tests."""
    return SimpleNamespace(m=m, k=k, n=len(levels) - 1, levels=levels)


def fake_node(n_sequences):
    return SimpleNamespace(n_sequences=n_sequences)


def bound_checker():
    db = SimpleNamespace(runtime=SimpleNamespace(clock=SimClock()))
    return Sanitizer(db, SanitizerOptions(halt_on_violation=False))


def test_bound_violation_on_growth_at_mixed_level():
    node = fake_node(2)
    engine = fake_engine(m=1, k=2, levels=[[], [node]])
    s = bound_checker()
    s._check_policy_bounds(engine, "t")
    assert s.violations == []
    node.n_sequences = 3  # grew past k without a move-down
    s._check_policy_bounds(engine, "t")
    assert checks_hit(s) == {"mixed-level-bound"}


def test_move_down_carry_is_tolerated():
    node = fake_node(3)
    s = bound_checker()
    # Observed over-bound while at an appending level: fine.
    s._check_policy_bounds(fake_engine(m=2, k=2, levels=[[], [node], []]), "t")
    # Arrives at the mixed level still holding 3 sequences: carried debt.
    s._check_policy_bounds(fake_engine(m=2, k=2, levels=[[], [], [node]]), "t")
    assert s.violations == []
    # Healed on first merge.
    node.n_sequences = 1
    s._check_policy_bounds(fake_engine(m=2, k=2, levels=[[], [], [node]]), "t")
    assert s.violations == []


def test_carried_node_must_not_gain_sequences():
    node = fake_node(3)
    s = bound_checker()
    s._check_policy_bounds(fake_engine(m=2, k=2, levels=[[], [node], []]), "t")
    s._check_policy_bounds(fake_engine(m=2, k=2, levels=[[], [], [node]]), "t")
    node.n_sequences = 4  # appended to an over-bound node
    s._check_policy_bounds(fake_engine(m=2, k=2, levels=[[], [], [node]]), "t")
    assert checks_hit(s) == {"mixed-level-bound"}


def test_retune_resets_tracking():
    node = fake_node(2)
    s = bound_checker()
    s._check_policy_bounds(fake_engine(m=1, k=2, levels=[[], [node]]), "t")
    node.n_sequences = 4
    # m/k changed: the old observation no longer applies.
    s._check_policy_bounds(fake_engine(m=1, k=4, levels=[[], [node]]), "t")
    assert s.violations == []


# ------------------------------------------------------------ diagnostics
def test_invariant_error_carries_diagnostic():
    exc = invariant_error("some-check", "went wrong", a=1, b="x")
    assert isinstance(exc, InvariantViolation)
    assert exc.diagnostic == Diagnostic("some-check", "went wrong",
                                        {"a": 1, "b": "x"})
    assert str(exc) == "[some-check] went wrong | a=1 b='x'"


def test_diagnostic_of_synthesizes_for_plain_exceptions():
    diag = diagnostic_of(ValueError("boom"))
    assert diag.check == "unstructured"
    assert diag.message == "boom"


def test_memtable_raises_structured_diagnostic():
    mt = Memtable(8)
    mt.add((1, 5, 0, 16))
    with pytest.raises(InvariantViolation) as err:
        mt.add((1, 5, 0, 16))
    assert diagnostic_of(err.value).check == "memtable-seq-order"
    assert diagnostic_of(err.value).context["key"] == 1


def test_simclock_raises_structured_diagnostic():
    clock = SimClock()
    with pytest.raises(InvariantViolation) as err:
        clock.advance(-1.0)
    assert diagnostic_of(err.value).check == "clock-monotonic"
