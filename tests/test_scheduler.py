"""Fair background scheduling: per-class accounting, FIFO, selectors.

The stability scheduler's contract (tentpole of the stall-cliff fix):

* the pump attributes every drained device-second to its job's class
  (``flush`` vs ``compaction``) and to the cumulative ``bg_drained_s``
  counter the pacers read;
* weighted fair queueing offers idle time to the class with the least
  weighted consumption -- a burst of compaction debt cannot starve a
  flush -- while the *flush* class itself stays strictly FIFO, even when
  fault injection re-queues a flush mid-stream;
* with a single active job (the paper's single-threaded configurations)
  the fair pump is behaviorally identical to the legacy round-robin;
* the pluggable compaction selector reorders *eligible* levels only.
"""

import random

import pytest

from repro.common.options import DeviceProfile, FaultOptions
from repro.storage.background import CLASS_WEIGHTS, BackgroundPool
from repro.storage.simdisk import SimDisk
from tests.conftest import make_tiny_db

PROFILE = DeviceProfile("test", 0.0, 0.0, 1000.0, 1000.0)


def make_pool(threads=1):
    disk = SimDisk(PROFILE)
    return disk, BackgroundPool(disk, threads)


# ------------------------------------------------------- drain accounting

def test_pump_accounts_drained_seconds_per_class():
    disk, pool = make_pool(threads=2)
    pool.submit("compact", lambda: 3.0)
    pool.submit("flush", lambda: 2.0, high_priority=True)
    disk.clock.now = 100.0
    pool.pump()
    assert pool.class_drained_s["compaction"] == pytest.approx(3.0)
    assert pool.class_drained_s["flush"] == pytest.approx(2.0)
    assert pool.bg_drained_s == pytest.approx(5.0)


def test_sync_drains_account_too():
    disk, pool = make_pool()
    job = pool.submit("flush", lambda: 1.5, high_priority=True)
    pool.wait_for(job)
    assert pool.bg_drained_s == pytest.approx(1.5)
    assert pool.class_drained_s["flush"] == pytest.approx(1.5)


# --------------------------------------------------------- fair ordering

def test_fair_order_prefers_least_weighted_class():
    disk, pool = make_pool(threads=2)
    compact = pool.submit("compact", lambda: 5.0)
    flush = pool.submit("flush", lambda: 5.0, high_priority=True)
    # Pre-charge the flush class so compaction's virtual time is lower.
    pool.class_drained_s["flush"] = 10.0 * CLASS_WEIGHTS["flush"]
    order = pool._fair_order()
    assert order[0] is compact
    pool.class_drained_s["compaction"] = 20.0
    order = pool._fair_order()
    assert order[0] is flush


def test_fair_order_is_fifo_within_class():
    disk, pool = make_pool(threads=3)
    flushes = [pool.submit(f"flush{i}", lambda: 4.0, high_priority=True)
               for i in range(3)]
    order = [j for j in pool._fair_order() if j.high_priority]
    assert [j.seq for j in order] == sorted(j.seq for j in order)
    assert order == flushes


def test_fair_pump_equals_legacy_with_single_thread():
    # The paper's stability configurations are single-threaded: at most
    # one active job, so fair ordering degenerates to the legacy pump.
    results = {}
    for scheduler in ("fair", "legacy"):
        disk, pool = make_pool(threads=1)
        pool.scheduler = scheduler
        log = []
        for i in range(4):
            hp = i % 2 == 0
            pool.submit(f"j{i}", (lambda i=i: log.append(i) or 2.0),
                        high_priority=hp)
        disk.clock.now = 50.0
        pool.pump()
        results[scheduler] = (log, pool.completed_jobs,
                              disk.clock.now, pool.bg_drained_s)
    assert results["fair"] == results["legacy"]


def test_compaction_burst_cannot_starve_flush_share():
    # Ten compactions active alongside one flush: when idle time is too
    # small to finish everything, the flush must still see device share.
    disk, pool = make_pool(threads=11)
    for i in range(10):
        pool.submit(f"c{i}", lambda: 100.0)
    flush = pool.submit("flush", lambda: 1.0, high_priority=True)
    disk.clock.now = 30.0  # far less than the 1001s of total debt
    pool.pump()
    assert flush.done, "fair share must let the flush finish"


# --------------------------------------- flush FIFO under fault re-queues

def test_flush_fifo_survives_fault_requeues():
    """Fault-injected flush re-queues keep completion order == submit order."""
    from repro.db.iamdb import IamDB
    from tests.conftest import tiny_lsm_options, tiny_storage_options

    db = IamDB("leveldb", engine_options=tiny_lsm_options("leveldb"),
               storage_options=tiny_storage_options(),
               fault_options=FaultOptions(
                   seed=3, rate=0.35, max_retries=1,
                   backoff_base_s=1e-6, backoff_max_s=8e-6,
                   giveup_backoff_s=2e-5))
    pool = db.runtime.pool
    submit_order = {}
    refs = []  # keep jobs alive so id() stays unique
    retired = []
    orig_submit = pool.submit
    orig_retire = pool._retire

    def spy_submit(name, start_fn, **kw):
        job = orig_submit(name, start_fn, **kw)
        if kw.get("high_priority") and id(job) not in submit_order:
            refs.append(job)
            submit_order[id(job)] = len(submit_order)
        return job

    def spy_retire(job):
        if job.high_priority and not job.failed and id(job) in submit_order:
            retired.append(submit_order[id(job)])
        orig_retire(job)

    pool.submit = spy_submit
    pool._retire = spy_retire
    rng = random.Random(7)
    for _ in range(2500):
        db.put(rng.randrange(1 << 30), 64)
    db.quiesce()
    assert len(retired) >= 3
    assert db.metrics.events.get("fault:job-fault", 0) > 0, \
        "fault plan must actually re-queue jobs for this test to bite"
    assert retired == sorted(retired), \
        "flushes must retire in submission order despite re-queues"
    db.close()


def test_requeued_flush_does_not_overtake_earlier_flush():
    disk, pool = make_pool(threads=1)

    class Injector:
        class options:
            max_retries = 2
            backoff_base_s = 0.5
            backoff_max_s = 2.0
            giveup_backoff_s = 5.0

        def __init__(self):
            self.giveups = 0
            self.fail_next = False

        def job_attempt_fails(self, job):
            failing, self.fail_next = self.fail_next, False
            return failing

    pool.injector = Injector()
    done = []
    blocker = pool.submit("blocker", lambda: 10.0)
    pool.injector.fail_next = True  # first flush faults once, re-queues
    pool.submit("flushA", lambda: done.append("A") or 1.0, high_priority=True)
    pool.submit("flushB", lambda: done.append("B") or 1.0, high_priority=True)
    disk.clock.now = 100.0
    pool.pump()
    pool.drain_all()
    assert done == ["A", "B"], "re-queued flushA must still run before flushB"


# ------------------------------------------------------------- selectors

def _eligible(db):
    eng = db.engine
    return [(lvl, sc, eng._overdue_bytes(lvl))
            for sc, lvl in eng._scores() if sc >= 1.0]


def test_provider_selector_returns_none():
    db = make_tiny_db("leveldb")
    assert db.engine._select_level([(0, 2.0, 4096), (2, 1.5, 8192)]) is None
    db.close()


def test_greedy_selector_picks_largest_debt():
    db = make_tiny_db("leveldb", compaction_selector="greedy-largest-debt")
    eng = db.engine
    assert eng._select_level([(0, 2.0, 4096), (2, 1.5, 8192)]) == 2
    # Ties break on score, then lower level.
    assert eng._select_level([(1, 1.2, 4096), (3, 1.8, 4096)]) == 3
    assert eng._select_level([(1, 1.2, 4096), (3, 1.2, 4096)]) == 1
    db.close()


def test_oldest_first_selector_ages_eligibility():
    db = make_tiny_db("leveldb", compaction_selector="oldest-first")
    eng = db.engine
    assert eng._select_level([(2, 1.5, 100)]) == 2
    # Level 0 becomes eligible later: level 2 has seniority.
    assert eng._select_level([(0, 9.9, 999), (2, 1.5, 100)]) == 2
    # Level 2 drops below threshold, then re-crosses: it lost its age.
    assert eng._select_level([(0, 9.9, 999)]) == 0
    assert eng._select_level([(0, 9.9, 999), (2, 1.5, 100)]) == 0
    db.close()


def test_selector_state_resets_on_restore():
    db = make_tiny_db("leveldb", compaction_selector="oldest-first")
    eng = db.engine
    eng._select_level([(2, 1.5, 100)])
    assert eng._eligible_since
    for k in range(400):
        db.put(k, 64)
    db.quiesce()
    state = eng.checkpoint_state()
    eng._select_level([(3, 1.5, 100)])
    eng.restore_state(state)
    assert not eng._eligible_since
    db.close()


def test_selector_runs_load_to_completion():
    # End-to-end sanity: both non-default selectors keep the engine sound.
    for selector in ("oldest-first", "greedy-largest-debt"):
        db = make_tiny_db("leveldb", compaction_selector=selector)
        rng = random.Random(11)
        for _ in range(2000):
            db.put(rng.randrange(1 << 30), 64)
        db.quiesce()
        db.check_invariants()
        assert db.engine.compactions > 0
        db.close()
