"""Log-linear latency histograms: percentile semantics, merge identity.

Pins the two percentile conventions of ``repro.metrics.latency`` (linear
interpolation vs nearest rank), the histogram's bucket geometry, and the
property that makes cluster tails honest: a merged histogram's percentiles
are *identical* to the percentiles of the histogram built from the
concatenated sample stream, for any sharding of the stream.
"""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    HIST_SUBBUCKETS,
    LatencyHistogram,
    merge_histogram_snapshots,
    merge_snapshots,
    percentile,
    percentile_nearest_rank,
)
from repro.metrics.latency import bucket_bounds, bucket_index

#: Worst-case ratio of a bucket's upper bound to its lower bound (bottom of
#: an octave): (0.5 + 1/(2*S)) / 0.5.
_BUCKET_RATIO = 1.0 + 1.0 / HIST_SUBBUCKETS


# ------------------------------------------------------ percentile semantics
def test_percentile_conventions_differ_and_are_documented():
    samples = [1.0, 2.0, 3.0, 4.0]
    # Linear interpolation may return a value that never occurred...
    assert percentile(samples, 50.0) == pytest.approx(2.5)
    # ...nearest rank is always a real sample.
    assert percentile_nearest_rank(samples, 50.0) == 2.0
    assert percentile_nearest_rank(samples, 50.1) == 3.0
    for q in (0.0, 50.0, 99.0, 100.0):
        assert percentile_nearest_rank(samples, q) in samples


def test_percentile_empty_returns_zero_never_raises():
    assert percentile([], 99.0) == 0.0
    assert percentile_nearest_rank([], 99.0) == 0.0
    h = LatencyHistogram()
    assert h.percentile(99.0) == 0.0
    assert h.percentiles() == {
        "p50": 0.0, "p99": 0.0, "p999": 0.0,
        "max": 0.0, "mean": 0.0, "count": 0.0}
    assert h.min == 0.0 and h.max == 0.0


def test_nearest_rank_extremes():
    samples = [5.0, 1.0, 3.0]
    assert percentile_nearest_rank(samples, 0.0) == 1.0    # rank clamps to 1
    assert percentile_nearest_rank(samples, 100.0) == 5.0  # rank n


# -------------------------------------------------------------------- buckets
@given(st.floats(min_value=1e-12, max_value=1e6,
                 allow_nan=False, allow_infinity=False))
def test_bucket_index_bounds_roundtrip(value):
    idx = bucket_index(value)
    low, high = bucket_bounds(idx)
    assert low <= value <= high
    # Bucket width bounds the relative resolution of every percentile.
    assert high / low <= _BUCKET_RATIO + 1e-12


def test_bucket_indices_are_monotone_in_value():
    values = sorted(random.Random(3).uniform(1e-9, 10.0) for _ in range(200))
    indices = [bucket_index(v) for v in values]
    assert indices == sorted(indices)


def test_zero_latencies_get_their_own_bucket():
    h = LatencyHistogram()
    for _ in range(99):
        h.record(0.0)
    h.record(1.0)
    assert h.count == 100
    assert h.percentile(50.0) == 0.0   # the zero bucket holds the median
    assert h.percentile(99.9) == 1.0   # clamped to the exact max
    assert h.min == 0.0 and h.max == 1.0


def test_histogram_percentile_tracks_nearest_rank_within_a_bucket():
    rng = random.Random(11)
    samples = [rng.lognormvariate(-9.0, 1.5) for _ in range(5000)]
    h = LatencyHistogram()
    for s in samples:
        h.record(s)
    for q in (50.0, 90.0, 99.0, 99.9):
        exact = percentile_nearest_rank(samples, q)
        approx = h.percentile(q)
        # Upper bound within one bucket's width, clamped to the true max.
        assert exact <= approx <= min(exact * _BUCKET_RATIO, max(samples))
    assert h.percentile(100.0) == max(samples)
    assert h.max == max(samples)
    assert h.total == pytest.approx(sum(samples))


# ---------------------------------------------------------------------- merge
@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=10.0,
                          allow_nan=False), min_size=1, max_size=300),
       st.integers(min_value=1, max_value=8))
def test_merged_percentiles_equal_concatenated_stream(latencies, n_shards):
    """The merge identity, over arbitrary sharding of the sample stream."""
    whole = LatencyHistogram()
    for v in latencies:
        whole.record(v)
    shards = [LatencyHistogram() for _ in range(n_shards)]
    for i, v in enumerate(latencies):
        shards[i % n_shards].record(v)
    merged = LatencyHistogram.merged(shards)
    assert merged.count == whole.count
    assert merged.max == whole.max
    assert merged.min == whole.min
    for q in (0.0, 50.0, 90.0, 99.0, 99.9, 100.0):
        assert merged.percentile(q) == whole.percentile(q)
    # Bucket counts (the mergeable state) are exactly equal; only the float
    # sum is order-sensitive (non-associative addition).
    ws, ms = whole.snapshot(), merged.snapshot()
    assert ms["buckets"] == ws["buckets"]
    assert ms["zero"] == ws["zero"]
    assert ms["sum"] == pytest.approx(ws["sum"], rel=1e-12, abs=1e-15)


def test_merge_histogram_snapshots_roundtrips_through_json_keys():
    import json

    a, b = LatencyHistogram(), LatencyHistogram()
    for v in (0.001, 0.002, 0.0):
        a.record(v)
    for v in (0.004, 0.008):
        b.record(v)
    # Snapshot keys are strings, so a JSON round trip is the identity.
    snaps = [json.loads(json.dumps(h.snapshot())) for h in (a, b)]
    merged = merge_histogram_snapshots(snaps)
    direct = LatencyHistogram.merged([a, b])
    assert merged == direct.snapshot()


def test_delta_since_equals_tail_histogram():
    rng = random.Random(5)
    head = [rng.uniform(0.0, 0.01) for _ in range(300)]
    tail = [rng.uniform(0.0, 0.01) for _ in range(200)]
    h = LatencyHistogram()
    for v in head:
        h.record(v)
    snap = h.snapshot()
    for v in tail:
        h.record(v)
    delta = h.delta_since(snap)
    fresh = LatencyHistogram()
    for v in tail:
        fresh.record(v)
    assert delta.count == fresh.count
    assert delta.snapshot()["buckets"] == fresh.snapshot()["buckets"]
    for q in (50.0, 99.0, 99.9):
        # Window max is approximated by the top occupied bucket's bound, so
        # quantiles match the fresh histogram to within that clamp.
        assert delta.percentile(q) == pytest.approx(fresh.percentile(q),
                                                    rel=1.0 / HIST_SUBBUCKETS)


# -------------------------------------------------- registry-level snapshots
def test_registry_merge_snapshots_carries_hist_and_gate_delays():
    from repro.metrics import MetricsRegistry

    regs = [MetricsRegistry() for _ in range(3)]
    all_samples = []
    rng = random.Random(9)
    for i, m in enumerate(regs):
        m.enable_histograms()
        for _ in range(50):
            v = rng.uniform(0.0, 0.005)
            m.observe("get", v)
            all_samples.append(v)
        m.add_gate_delay("slowdown:l0", 0.001 * (i + 1))
    merged = merge_snapshots([m.snapshot() for m in regs])

    hist = LatencyHistogram.from_snapshot(merged["latency_hist"]["get"])
    whole = LatencyHistogram()
    for v in all_samples:
        whole.record(v)
    assert hist.count == 150
    for q in (50.0, 99.0, 99.9):
        assert hist.percentile(q) == whole.percentile(q)

    count, total, worst = merged["gate_delays"]["slowdown:l0"]
    assert count == 3
    assert total == pytest.approx(0.006)
    assert worst == pytest.approx(0.003)
    assert merged["total_gate_delay_s"] == pytest.approx(0.006)


def test_registry_observe_disabled_is_a_noop():
    from repro.metrics import MetricsRegistry

    m = MetricsRegistry()
    m.observe("get", 0.001)   # histograms not enabled: swallowed
    assert m.op_hist == {}
    snap = m.snapshot()
    assert "latency_hist" not in snap
    m.enable_histograms()
    m.observe("get", 0.001)
    assert m.op_hist["get"].count == 1
    assert "latency_hist" in m.snapshot()
