"""Write-ahead log and manifest."""

import pytest

from repro.common.options import StorageOptions
from repro.common.records import encoded_size, make_delete, make_put
from repro.storage.manifest import EDIT_BYTES, Manifest
from repro.storage.runtime import Runtime
from repro.storage.wal import WriteAheadLog

KEY_SIZE = 8


@pytest.fixture
def runtime() -> Runtime:
    return Runtime(StorageOptions(page_cache_bytes=0, block_size=256))


def test_append_accounts_bytes_and_advances_clock(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    rec = make_put(1, 1, 100)
    lat = wal.append(rec)
    assert lat > 0.0
    assert wal.nbytes == encoded_size(rec, KEY_SIZE)
    assert runtime.metrics.wal_bytes == wal.nbytes
    assert len(wal) == 1


def test_wal_bytes_excluded_from_write_amplification(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    runtime.metrics.add_user_bytes(100)
    wal.append(make_put(1, 1, 100))
    assert runtime.metrics.write_amplification() == 0.0
    assert runtime.metrics.write_amplification(include_wal=True) > 0.0


def test_truncate_through_drops_prefix(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    for seq in range(1, 6):
        wal.append(make_put(seq, seq, 10))
    wal.truncate_through(3)
    remaining = wal.replay()
    assert [r[1] for r in remaining] == [4, 5]
    assert wal.nbytes == sum(encoded_size(r, KEY_SIZE) for r in remaining)


def test_replay_preserves_order_and_kinds(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    recs = [make_put(5, 1, 10), make_delete(5, 2), make_put(1, 3, 20)]
    for r in recs:
        wal.append(r)
    assert wal.replay() == recs


def test_truncate_frees_space(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    for seq in range(1, 11):
        wal.append(make_put(seq, seq, 100))
    before = runtime.space_used_bytes()
    wal.truncate_through(10)
    assert runtime.space_used_bytes() < before
    assert wal.replay() == []


def test_append_many_single_run(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    recs = [make_put(i, i + 1, 50) for i in range(10)]
    ops_before = runtime.disk.write_ops
    lat = wal.append_many(recs)
    assert lat > 0.0
    assert runtime.disk.write_ops == ops_before + 1  # one device run
    assert wal.replay() == recs
    assert wal.append_many([]) == 0.0


def test_manifest_checkpoint_roundtrip(runtime):
    m = Manifest(runtime)
    assert m.restore() is None
    state = {"levels": [1, 2, 3]}
    m.checkpoint(state)
    assert m.restore() == state


def test_manifest_edit_accounting(runtime):
    m = Manifest(runtime)
    m.log_edit()
    m.log_edit()
    assert m.edits == 2
    assert m.nbytes == 2 * EDIT_BYTES
