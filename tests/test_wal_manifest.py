"""Write-ahead log and manifest."""

import pytest

from repro.common.options import StorageOptions
from repro.common.records import encoded_size, make_delete, make_put
from repro.storage.manifest import EDIT_BYTES, Manifest
from repro.storage.runtime import Runtime
from repro.storage.wal import WriteAheadLog

KEY_SIZE = 8


@pytest.fixture
def runtime() -> Runtime:
    return Runtime(StorageOptions(page_cache_bytes=0, block_size=256))


def test_append_accounts_bytes_and_advances_clock(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    rec = make_put(1, 1, 100)
    lat = wal.append(rec)
    assert lat > 0.0
    assert wal.nbytes == encoded_size(rec, KEY_SIZE)
    assert runtime.metrics.wal_bytes == wal.nbytes
    assert len(wal) == 1


def test_wal_bytes_excluded_from_write_amplification(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    runtime.metrics.add_user_bytes(100)
    wal.append(make_put(1, 1, 100))
    assert runtime.metrics.write_amplification() == 0.0
    assert runtime.metrics.write_amplification(include_wal=True) > 0.0


def test_truncate_through_drops_prefix(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    for seq in range(1, 6):
        wal.append(make_put(seq, seq, 10))
    wal.truncate_through(3)
    remaining = wal.replay()
    assert [r[1] for r in remaining] == [4, 5]
    assert wal.nbytes == sum(encoded_size(r, KEY_SIZE) for r in remaining)


def test_replay_preserves_order_and_kinds(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    recs = [make_put(5, 1, 10), make_delete(5, 2), make_put(1, 3, 20)]
    for r in recs:
        wal.append(r)
    assert wal.replay() == recs


def test_truncate_frees_space(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    for seq in range(1, 11):
        wal.append(make_put(seq, seq, 100))
    before = runtime.space_used_bytes()
    wal.truncate_through(10)
    assert runtime.space_used_bytes() < before
    assert wal.replay() == []


def test_append_many_single_run(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    recs = [make_put(i, i + 1, 50) for i in range(10)]
    ops_before = runtime.disk.write_ops
    lat = wal.append_many(recs)
    assert lat > 0.0
    assert runtime.disk.write_ops == ops_before + 1  # one device run
    assert wal.replay() == recs
    assert wal.append_many([]) == 0.0


def test_manifest_checkpoint_roundtrip(runtime):
    m = Manifest(runtime)
    assert m.restore() is None
    state = {"levels": [1, 2, 3]}
    m.checkpoint(state)
    assert m.restore() == state


def test_manifest_edit_accounting(runtime):
    m = Manifest(runtime)
    m.log_edit()
    m.log_edit()
    assert m.edits == 2
    assert m.nbytes == 2 * EDIT_BYTES


def test_truncate_charges_suffix_rewrite(runtime):
    # Regression: the suffix rewrite used to be free I/O -- bytes moved to a
    # fresh file with no device time and no WAL-byte accounting.
    wal = WriteAheadLog(runtime, KEY_SIZE)
    for seq in range(1, 6):
        wal.append(make_put(seq, seq, 10))
    bytes_before = runtime.metrics.wal_bytes
    ops_before = runtime.disk.write_ops
    clock_before = runtime.clock.now
    lat = wal.truncate_through(3)
    remaining = sum(encoded_size(r, KEY_SIZE) for r in wal.replay())
    assert remaining > 0
    assert lat > 0.0
    assert runtime.clock.now == pytest.approx(clock_before + lat)
    assert runtime.metrics.wal_bytes == bytes_before + remaining
    assert runtime.disk.write_ops == ops_before + 1


def test_truncate_to_empty_charges_nothing(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    for seq in range(1, 4):
        wal.append(make_put(seq, seq, 10))
    bytes_before = runtime.metrics.wal_bytes
    clock_before = runtime.clock.now
    assert wal.truncate_through(3) == 0.0
    assert runtime.metrics.wal_bytes == bytes_before
    assert runtime.clock.now == clock_before
    assert wal.replay() == []


def test_tear_snaps_to_group_commit_boundary(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    wal.append(make_put(1, 1, 10))
    wal.append(make_put(2, 2, 10))
    wal.append_many([make_put(10 + i, 3 + i, 10) for i in range(4)])  # seqs 3-6
    # Tearing one record may not split the batch: the whole group goes.
    dropped = wal.tear(1)
    assert dropped == 4
    assert [r[1] for r in wal.replay()] == [1, 2]


def test_tear_is_uncharged_and_bounded(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    for seq in range(1, 6):
        wal.append(make_put(seq, seq, 10))
    bytes_before = runtime.metrics.wal_bytes
    clock_before = runtime.clock.now
    assert wal.tear(0) == 0
    assert wal.tear(100) == 5  # over-asking drops everything there is
    assert wal.replay() == []
    assert wal.tear(1) == 0  # nothing left
    assert runtime.metrics.wal_bytes == bytes_before  # crash writes nothing
    assert runtime.clock.now == clock_before
    assert wal.nbytes == 0


def test_tear_then_append_keeps_boundaries(runtime):
    wal = WriteAheadLog(runtime, KEY_SIZE)
    wal.append_many([make_put(i, 1 + i, 10) for i in range(3)])  # seqs 1-3
    wal.append(make_put(9, 4, 10))
    wal.tear(1)  # drops seq 4, keeps the batch
    wal.append(make_put(10, 4, 10))  # reissued seq
    assert wal.tear(1) == 1  # the new record tears off alone
    assert [r[1] for r in wal.replay()] == [1, 2, 3]


def test_manifest_checkpoint_is_immune_to_later_mutation():
    # The checkpoint contract: engines hand over *owned* pure-data
    # snapshots, so structural churn after the checkpoint must not leak
    # into what restore() returns.
    from tests.conftest import make_tiny_db

    db = make_tiny_db("iam")
    for i in range(400):
        db.put(i % 150, 40)
    db.flush()

    def shape(state):
        nodes = []
        for level in state["engine"]["levels"]:
            nodes.append([(lo, hi, None if snap is None else
                           (snap[2], len(snap[3]))) for lo, hi, snap in level])
        return (state["seq"], state["engine"]["n"], nodes)

    held = db.manifest.restore()
    before = shape(held)
    for i in range(3000):  # splits, combines, merges, more checkpoints
        db.put((i * 7) % 800, 40)
    db.quiesce()
    assert shape(held) == before
