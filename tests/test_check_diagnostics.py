"""Direct coverage for :mod:`repro.check.diagnostics`.

The invariant-violation side (Diagnostic, invariant_error) and the shared
static-check plumbing (noqa parsing, path relativization, deterministic
finding order) are exercised here without going through the lint or the
effects gate, so a regression in the shared layer is pinned to this file.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.check.diagnostics import (
    Diagnostic,
    NoqaIndex,
    diagnostic_of,
    finding_sort_key,
    format_violations,
    invariant_error,
    parse_noqa,
    relativize_path,
    sort_findings,
)
from repro.common.errors import InvariantViolation


@dataclass(frozen=True)
class FakeFinding:
    rule: str
    path: str
    line: int
    col: int


class TestDiagnostic:
    def test_format_without_context(self):
        d = Diagnostic(check="clock-monotonic", message="went backwards")
        assert d.format() == "[clock-monotonic] went backwards"

    def test_format_with_context_preserves_key_order(self):
        d = Diagnostic(check="k-bound", message="too many levels",
                       context={"k": 5, "limit": 3})
        assert d.format() == "[k-bound] too many levels | k=5 limit=3"

    def test_invariant_error_round_trip(self):
        exc = invariant_error("cache-pins", "pin leaked", file_id=7)
        assert isinstance(exc, InvariantViolation)
        assert diagnostic_of(exc).check == "cache-pins"
        assert diagnostic_of(exc).context == {"file_id": 7}
        assert "[cache-pins]" in str(exc)

    def test_diagnostic_of_foreign_exception(self):
        d = diagnostic_of(ValueError("boom"))
        assert d.check == "unstructured"
        assert d.message == "boom"

    def test_format_violations_one_per_line(self):
        ds = [Diagnostic(check="a", message="x"),
              Diagnostic(check="b", message="y")]
        assert format_violations(ds) == "[a] x\n[b] y"


class TestNoqaParsing:
    def test_line_markers_indexed_by_line(self):
        index = parse_noqa("x = 1\ny = 2  # repro: noqa-REP001\n")
        assert index.is_suppressed("REP001", 2)
        assert not index.is_suppressed("REP001", 1)
        assert not index.is_suppressed("REP002", 2)

    def test_multiple_markers_on_one_line(self):
        src = "z = 3  # repro: noqa-REP001  # repro: noqa-REP104\n"
        index = parse_noqa(src)
        assert index.is_suppressed("REP001", 1)
        assert index.is_suppressed("REP104", 1)

    def test_file_marker_suppresses_every_line(self):
        index = parse_noqa("# repro: noqa-file-REP104\nx = 1\ny = 2\n")
        assert index.is_suppressed("REP104", 1)
        assert index.is_suppressed("REP104", 999)
        assert not index.is_suppressed("REP105", 1)

    def test_file_marker_not_double_counted_as_line_marker(self):
        index = parse_noqa("# repro: noqa-file-REP104\n")
        assert index.lines == {}
        assert index.file_rules == {"REP104"}

    def test_extra_lines_widen_the_match_window(self):
        # The effects gate anchors a finding at the def but accepts a
        # marker anywhere in the decorator block via extra_lines.
        index = parse_noqa("# repro: noqa-REP104\nx = 1\n")
        assert not index.is_suppressed("REP104", 2)
        assert index.is_suppressed("REP104", 2, extra_lines=(1,))

    def test_round_trip_through_index_type(self):
        index = parse_noqa("a  # repro: noqa-REP001\n")
        assert isinstance(index, NoqaIndex)
        rebuilt = NoqaIndex(lines=dict(index.lines),
                            file_rules=set(index.file_rules))
        assert rebuilt.is_suppressed("REP001", 1)


class TestPathsAndOrdering:
    def test_relativize_under_root(self, tmp_path):
        target = tmp_path / "pkg" / "mod.py"
        target.parent.mkdir()
        target.write_text("")
        assert relativize_path(str(target), tmp_path) == \
            str(Path("pkg") / "mod.py")

    def test_relativize_outside_root_is_identity(self, tmp_path):
        assert relativize_path("/nonexistent/elsewhere.py", tmp_path) == \
            "/nonexistent/elsewhere.py"

    def test_sort_is_path_line_col_rule(self):
        findings = [
            FakeFinding("REP105", "b.py", 1, 0),
            FakeFinding("REP100", "a.py", 9, 4),
            FakeFinding("REP104", "a.py", 9, 2),
            FakeFinding("REP101", "a.py", 2, 0),
        ]
        ordered = sort_findings(findings)
        assert [(f.path, f.line, f.col, f.rule) for f in ordered] == [
            ("a.py", 2, 0, "REP101"),
            ("a.py", 9, 2, "REP104"),
            ("a.py", 9, 4, "REP100"),
            ("b.py", 1, 0, "REP105"),
        ]

    def test_rule_breaks_full_ties(self):
        a = FakeFinding("REP101", "a.py", 1, 1)
        b = FakeFinding("REP100", "a.py", 1, 1)
        assert sort_findings([a, b])[0].rule == "REP100"

    def test_sort_key_shape(self):
        key = finding_sort_key(FakeFinding("REP100", "p.py", 3, 7))
        assert key == ("p.py", 3, 7, "REP100")
