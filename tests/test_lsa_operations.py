"""Surgical tests of LSA's structural operations on hand-built trees.

Builds the paper's Figure 3 configuration directly and exercises combine
candidate selection (Tcn rule), splits, move-downs and boundary rebalancing
at the operation level rather than through workloads.
"""

import pytest

from repro.common.options import IamOptions, StorageOptions
from repro.common.records import make_put
from repro.core.lsa import LsaTree
from repro.core.node import LsaNode, children_slice
from repro.db.iamdb import IamDB
from repro.storage.runtime import Runtime

KS = 8


def build_tree(fanout=10, node_capacity=4096) -> LsaTree:
    opts = IamOptions(node_capacity=node_capacity, fanout=fanout, key_size=KS)
    runtime = Runtime(StorageOptions(page_cache_bytes=64 * 1024, block_size=256))
    tree = LsaTree(opts, runtime)
    return tree


def filled_node(tree, lo, hi, keys, level):
    node = LsaNode(lo, hi)
    table = node.ensure_table(tree.runtime, key_size=KS, bloom_bits_per_key=14)
    recs = [make_put(k, i + 1, 64) for i, k in enumerate(sorted(keys))]
    table.append_sequence(recs, level=level)
    return node


def make_figure3_tree() -> LsaTree:
    """The paper's Figure 3: Lx = {3,999}; Lx+1 = {9,99},{120,225},{231,305},
    {885,998}; Lx+2 children with the stated counts (5, 10, 8, ...)."""
    tree = build_tree()
    tree.n = 3
    tree.levels = [[], [], [], []]
    tree.levels[1] = [LsaNode(3, 999)]
    tree.levels[2] = [LsaNode(9, 99), LsaNode(120, 225), LsaNode(231, 305),
                      LsaNode(885, 998)]
    # Lx+2: 5 kids under {9,99}, 10 under {120,225}, 8 under {231,305},
    # 4 under {885,998}.
    kids = []
    for lo in (12, 36, 60, 75, 88):
        kids.append(LsaNode(lo, lo + 8))
    for i in range(10):
        kids.append(LsaNode(121 + 10 * i, 121 + 10 * i + 5))
    for i in range(8):
        kids.append(LsaNode(232 + 9 * i, 232 + 9 * i + 4))
    for lo in (890, 910, 950, 980):
        kids.append(LsaNode(lo, lo + 5))
    tree.levels[3] = kids
    return tree


def test_figure3_child_counts():
    tree = make_figure3_tree()
    counts = []
    for idx in range(4):
        i, j = children_slice(tree.levels[2], tree.levels[3], idx)
        counts.append(j - i)
    assert counts == [5, 10, 8, 4]


def test_figure3_tcn_of_middle_nodes():
    """Tcn of {120,225} = children covered by {9,305} = 5 + 10 + 8 = 23-24
    (the paper's example computes 24 with its own counts)."""
    tree = make_figure3_tree()
    lst, kids = tree.levels[2], tree.levels[3]
    i0, _ = children_slice(lst, kids, 0)
    _, j1 = children_slice(lst, kids, 2)
    tcn_120 = j1 - i0
    assert tcn_120 == 23
    i0, _ = children_slice(lst, kids, 1)
    _, j1 = children_slice(lst, kids, 3)
    tcn_231 = j1 - i0
    assert tcn_231 == 22


def test_combine_picks_smallest_tcn_candidate():
    tree = make_figure3_tree()
    # Force a combine at level 2: threshold exceeded artificially.
    before = list(tree.levels[2])
    tree._combine_one(2)
    # Candidates are the two middle nodes; {231,305} has the smaller Tcn.
    assert len(tree.levels[2]) == 3
    gone = set(before) - set(tree.levels[2])
    assert len(gone) == 1
    assert gone.pop().range_lo == 231


def test_combine_neighbors_adopt_children():
    tree = make_figure3_tree()
    tree._combine_one(2)
    # Every level-3 node still has exactly one level-2 parent.
    lst, kids = tree.levels[2], tree.levels[3]
    total = 0
    for idx in range(len(lst)):
        i, j = children_slice(lst, kids, idx)
        total += j - i
    assert total == len(kids)
    tree.check_invariants()


def test_move_down_when_no_overlap():
    tree = build_tree()
    tree.n = 2
    tree.levels = [[], [], []]
    node = filled_node(tree, 100, 200, range(100, 200, 10), level=1)
    tree.levels[1] = [node]
    tree.levels[2] = [LsaNode(300, 400)]  # disjoint -> pure metadata move
    debt = tree._flush_node(1, node)
    assert debt == 0.0
    assert tree.levels[1] == []
    assert node in tree.levels[2]
    assert tree.move_downs == 1


def test_flush_into_overlapping_children_appends():
    tree = build_tree()
    tree.n = 2
    tree.levels = [[], [], []]
    parent = filled_node(tree, 0, 100, range(0, 100, 5), level=1)
    child = filled_node(tree, 0, 120, range(0, 120, 7), level=2)
    tree.levels[1] = [parent]
    tree.levels[2] = [child]
    debt = tree._flush_node(1, parent)
    assert debt > 0.0
    assert parent.is_empty
    assert parent in tree.levels[1]  # node persists, emptied
    assert child.n_sequences == 2   # got an appended sequence
    tree.check_invariants()


def test_split_node_halves_children():
    tree = build_tree(fanout=3)  # split threshold 2t = 6
    tree.n = 2
    tree.levels = [[], [], []]
    parent = filled_node(tree, 0, 700, range(0, 700, 25), level=1)
    tree.levels[1] = [parent]
    tree.levels[2] = [LsaNode(100 * i, 100 * i + 50) for i in range(7)]
    assert tree._count_children_of(1, parent) == 7
    tree._split_node(1, parent)
    assert len(tree.levels[1]) == 2
    a, b = tree.levels[1]
    assert a.range_hi < b.range_lo
    ca = tree._count_children_of(1, a)
    cb = tree._count_children_of(1, b)
    assert abs(ca - cb) <= 1
    assert ca + cb == 7
    # Records redistributed without loss.
    assert (a.table.n_records if a.table else 0) + \
           (b.table.n_records if b.table else 0) == 28
    assert tree.splits == 1
    tree.check_invariants()


def test_split_with_left_hanging_children_falls_back_safely():
    """The first node of a level owns every kid to its left (contains-lo
    rule); a split must never cut at a boundary outside the node's range."""
    tree = build_tree(fanout=3)
    tree.n = 2
    tree.levels = [[], [], []]
    parent = filled_node(tree, 500, 700, range(500, 700, 10), level=1)
    tree.levels[1] = [parent]
    # All children hang left of the parent's range_lo except one inside.
    tree.levels[2] = [LsaNode(10 * i, 10 * i + 5) for i in range(6)] + \
                     [LsaNode(600, 620)]
    tree._split_node(1, parent)
    tree.check_invariants()
    for nd in tree.levels[1]:
        assert nd.range_lo <= nd.range_hi


def test_split_with_no_valid_boundary_flushes_instead():
    tree = build_tree(fanout=3)
    tree.n = 2
    tree.levels = [[], [], []]
    parent = filled_node(tree, 500, 700, range(500, 700, 10), level=1)
    tree.levels[1] = [parent]
    # Every child strictly left of the parent's range: no cut point exists.
    tree.levels[2] = [LsaNode(10 * i, 10 * i + 5) for i in range(7)]
    tree._split_node(1, parent)
    assert tree.splits == 0           # fell back
    assert parent.is_empty or parent not in tree.levels[1]
    tree.check_invariants()


def test_balance_boundary_moves_children():
    tree = build_tree()
    tree.n = 2
    tree.levels = [[], [], []]
    left = LsaNode(0, 99)          # empty, 6 kids
    right = LsaNode(200, 400)      # empty, 1 kid
    tree.levels[1] = [left, right]
    tree.levels[2] = [LsaNode(10 * i, 10 * i + 5) for i in range(6)] + \
                     [LsaNode(300, 320)]
    tree._balance_boundary(1, 0, 1)
    ca = tree._count_children_of(1, left)
    cb = tree._count_children_of(1, right)
    assert abs(ca - cb) <= 1
    tree.check_invariants()


def test_balance_boundary_respects_data_spans():
    tree = build_tree()
    tree.n = 2
    tree.levels = [[], [], []]
    left = filled_node(tree, 0, 99, [90, 95], level=1)  # data near its hi
    right = LsaNode(200, 400)
    tree.levels[1] = [left, right]
    tree.levels[2] = [LsaNode(10 * i, 10 * i + 5) for i in range(6)] + \
                     [LsaNode(300, 320)]
    tree._balance_boundary(1, 0, 1)
    # Whatever happened, left's range still covers its records.
    left.check_range_covers_data()
    tree.check_invariants()


def test_ensure_structure_deepens():
    tree = build_tree(fanout=3)
    tree.n = 1
    tree.levels = [[], []]
    tree.levels[1] = [LsaNode(i * 100, i * 100 + 50) for i in range(3)]
    tree._ensure_structure()
    assert tree.n == 2
    assert tree.levels[2] == []
