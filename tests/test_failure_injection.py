"""Failure injection: crashes at adversarial points in the write pipeline."""

import random

import pytest

from tests.conftest import ALL_ENGINES, make_tiny_db


def _fill_to_rotation_boundary(db, seed=1):
    """Write until the memtable has just rotated (flush job in flight)."""
    rng = random.Random(seed)
    ref = {}
    rotations = 0
    last_mem = 0
    while rotations < 2:
        k = rng.randrange(1 << 16)
        v = rng.randrange(10, 99)
        db.put(k, v)
        ref[k] = v
        if db.memtable.nbytes < last_mem:  # rotation happened
            rotations += 1
        last_mem = db.memtable.nbytes
    return ref


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_crash_with_flush_in_flight(engine):
    db = make_tiny_db(engine)
    ref = _fill_to_rotation_boundary(db)
    # The previous flush may still be paying its device debt.
    db.crash_and_recover()
    for k, v in ref.items():
        assert db.get(k) == v, (engine, k)


@pytest.mark.parametrize("engine", ["iam", "leveldb"])
def test_crash_with_compaction_backlog(engine):
    db = make_tiny_db(engine)
    rng = random.Random(2)
    ref = {}
    for _ in range(3000):
        k = rng.randrange(600)
        v = rng.randrange(10, 99)
        db.put(k, v)
        ref[k] = v
    assert db.runtime.pool.busy or True  # backlog likely outstanding
    db.crash_and_recover()
    for k in range(600):
        assert db.get(k) == ref.get(k)
    db.check_invariants()


def test_crash_immediately_after_delete_of_flushed_key():
    db = make_tiny_db("iam")
    db.put(5, 55)
    db.flush()
    db.delete(5)  # tombstone only in memtable/WAL
    db.crash_and_recover()
    assert db.get(5) is None


def test_crash_between_batch_and_read():
    db = make_tiny_db("lsa")
    with db.write_batch() as b:
        for i in range(30):
            b.put(i, i)
    db.crash_and_recover()
    assert db.scan(None, None) == [(i, i) for i in range(30)]


def test_crash_storm_interleaved_with_snapshots():
    db = make_tiny_db("iam")
    rng = random.Random(3)
    model = {}
    for round_no in range(3):
        snap = db.snapshot()  # snapshots do not survive crashes
        for _ in range(700):
            k = rng.randrange(300)
            if rng.random() < 0.2:
                db.delete(k)
                model.pop(k, None)
            else:
                v = rng.randrange(100)
                db.put(k, v)
                model[k] = v
        db.crash_and_recover()
        assert db._live_snapshots() == ()
        for k in range(0, 300, 7):
            assert db.get(k) == model.get(k)
    db.quiesce()
    assert db.scan(None, None) == sorted(model.items())


@pytest.mark.parametrize("engine", ["iam", "leveldb"])
def test_post_recovery_structures_accept_heavy_load(engine):
    db = make_tiny_db(engine)
    rng = random.Random(4)
    for _ in range(1500):
        db.put(rng.randrange(1 << 20), 64)
    db.crash_and_recover()
    for _ in range(2500):
        db.put(rng.randrange(1 << 20), 64)
    db.quiesce()
    db.check_invariants()
