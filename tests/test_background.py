"""Background pool: activation order, provider, pumping, stalls."""

import pytest

from repro.common.errors import InvariantViolation
from repro.common.options import DeviceProfile
from repro.storage.background import BackgroundJob, BackgroundPool
from repro.storage.simdisk import SimDisk

PROFILE = DeviceProfile("test", 0.0, 0.0, 1000.0, 1000.0)


def make_pool(threads=1):
    disk = SimDisk(PROFILE)
    return disk, BackgroundPool(disk, threads)


def test_submit_activates_when_thread_free():
    disk, pool = make_pool()
    ran = []
    job = pool.submit("a", lambda: ran.append("a") or 1.0)
    assert ran == ["a"]          # structural effect at activation
    assert not job.done          # debt unpaid
    assert pool.pending_debt_s == pytest.approx(1.0)


def test_zero_debt_job_completes_immediately():
    disk, pool = make_pool()
    done = []
    job = pool.submit("move", lambda: 0.0, on_complete=lambda: done.append(1))
    assert job.done
    assert done == [1]


def test_second_job_queues_until_first_retires():
    disk, pool = make_pool(threads=1)
    ran = []
    pool.submit("a", lambda: ran.append("a") or 1.0)
    pool.submit("b", lambda: ran.append("b") or 1.0)
    assert ran == ["a"]          # b waits for the single thread
    disk.clock.now = 10.0
    pool.pump()                  # a's debt paid from idle time, b activates
    assert ran == ["a", "b"]


def test_high_priority_jumps_queue():
    disk, pool = make_pool(threads=1)
    ran = []
    pool.submit("a", lambda: ran.append("a") or 5.0)
    pool.submit("b", lambda: ran.append("b") or 1.0)
    pool.submit("flush", lambda: ran.append("flush") or 1.0, high_priority=True)
    disk.clock.now = 100.0
    pool.pump()
    assert ran == ["a", "flush", "b"]


def test_multiple_threads_progress_concurrently():
    disk, pool = make_pool(threads=2)
    pool.submit("a", lambda: 4.0)
    pool.submit("b", lambda: 4.0)
    assert len(pool.active) == 2
    disk.clock.now = 5.0
    pool.pump()
    # Only 5 seconds of device time exist; split across both jobs.
    total_left = pool.pending_debt_s
    assert total_left == pytest.approx(8.0 - 5.0)


def test_provider_consulted_when_idle():
    disk, pool = make_pool(threads=1)
    offered = []

    def provider():
        if len(offered) < 2:
            offered.append(1)
            return BackgroundJob(f"p{len(offered)}", lambda: 1.0)
        return None

    pool.set_provider(provider)
    disk.clock.now = 10.0
    pool.pump()
    assert len(offered) == 2
    assert pool.completed_jobs == 2


def test_provider_not_consulted_while_queue_nonempty():
    disk, pool = make_pool(threads=1)
    calls = []
    pool.set_provider(lambda: calls.append(1) or None)
    pool.submit("a", lambda: 1.0)
    pool.submit("b", lambda: 1.0)
    # queue non-empty -> provider skipped during fill
    n_before = len(calls)
    disk.clock.now = 0.0
    pool.pump()
    assert len(calls) == n_before


def test_wait_for_active_job_drains_synchronously():
    disk, pool = make_pool(threads=1)
    job = pool.submit("a", lambda: 3.0)
    elapsed = pool.wait_for(job)
    assert job.done
    assert elapsed == pytest.approx(3.0)
    assert disk.clock.now == pytest.approx(3.0)


def test_wait_for_queued_job_drains_predecessors():
    disk, pool = make_pool(threads=1)
    pool.submit("a", lambda: 2.0)
    job_b = pool.submit("b", lambda: 1.0)
    elapsed = pool.wait_for(job_b)
    assert elapsed == pytest.approx(3.0)
    assert pool.completed_jobs == 2


def test_wait_for_done_job_is_free():
    disk, pool = make_pool()
    job = pool.submit("a", lambda: 0.0)
    assert pool.wait_for(job) == 0.0


def test_drain_all_finishes_everything():
    disk, pool = make_pool(threads=2)
    for i in range(5):
        pool.submit(f"j{i}", lambda: 1.0)
    pool.drain_all()
    assert not pool.busy
    assert pool.completed_jobs == 5
    assert disk.clock.now == pytest.approx(5.0)


def test_step_drain_one_at_a_time():
    disk, pool = make_pool(threads=1)
    pool.submit("a", lambda: 1.0)
    pool.submit("b", lambda: 2.0)
    assert pool.step_drain() == pytest.approx(1.0)
    assert pool.step_drain() == pytest.approx(2.0)
    assert pool.step_drain() == 0.0


def test_negative_debt_rejected():
    disk, pool = make_pool()
    with pytest.raises(InvariantViolation):
        pool.submit("bad", lambda: -1.0)


def test_threads_validation():
    disk = SimDisk(PROFILE)
    with pytest.raises(InvariantViolation):
        BackgroundPool(disk, 0)


def test_pump_respects_lookahead():
    disk, pool = make_pool(threads=1)
    pool.lookahead_s = 0.25
    pool.submit("a", lambda: 10.0)
    # now == 0: only the lookahead window is grantable
    pool.pump()
    assert pool.pending_debt_s == pytest.approx(10.0 - 0.25)
    assert disk.busy_until == pytest.approx(0.25)


def test_high_priority_fifo_within_class():
    # Regression: appendleft-style insertion ran queued flushes LIFO -- a
    # later memtable flushing before an earlier one.  High-priority jobs
    # must stay FIFO among themselves (ahead of normal jobs).
    disk, pool = make_pool(threads=1)
    ran = []
    pool.submit("long", lambda: ran.append("long") or 50.0)
    pool.submit("compact", lambda: ran.append("compact") or 1.0)
    pool.submit("flush1", lambda: ran.append("flush1") or 1.0, high_priority=True)
    pool.submit("flush2", lambda: ran.append("flush2") or 1.0, high_priority=True)
    disk.clock.now = 1000.0
    pool.pump()
    assert ran == ["long", "flush1", "flush2", "compact"]


def test_high_priority_fifo_under_drain():
    disk, pool = make_pool(threads=1)
    ran = []
    blocker = pool.submit("blocker", lambda: 10.0)
    for n in ("f1", "f2", "f3"):
        pool.submit(n, lambda n=n: ran.append(n) or 0.0, high_priority=True)
    pool.wait_for(blocker)
    pool.drain_all()
    assert ran == ["f1", "f2", "f3"]


def test_abandon_all_clears_pool():
    disk, pool = make_pool(threads=1)
    a = pool.submit("a", lambda: 5.0)
    b = pool.submit("b", lambda: 5.0)
    n = pool.abandon_all()
    assert n == 2
    assert a.done and a.failed and b.done and b.failed
    assert not pool.active and not pool.queue
    assert pool.pending_debt_s == 0.0
