"""Fixture tests for the determinism lint: every REP rule fires on minimal
bad code, stays quiet on the equivalent good code, and respects per-line
``# repro: noqa-REPxxx`` suppressions."""

from __future__ import annotations

import pytest

from repro.check.lint import RULES, Finding, lint_repo, lint_source


def rules_of(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------- REP001
class TestRep001WallClock:
    def test_fires_on_time_time(self):
        assert rules_of(lint_source("import time\nt = time.time()\n")) == ["REP001"]

    def test_fires_on_perf_counter(self):
        assert "REP001" in rules_of(lint_source("import time\nt = time.perf_counter()\n"))

    def test_fires_on_datetime_now(self):
        src = "import datetime\nt = datetime.datetime.now()\n"
        assert "REP001" in rules_of(lint_source(src))

    def test_fires_on_from_import(self):
        assert "REP001" in rules_of(lint_source("from time import monotonic\n"))

    def test_quiet_on_simulated_clock(self):
        src = ("from repro.storage.simdisk import SimClock\n"
               "clock = SimClock()\nnow = clock.now\n")
        assert rules_of(lint_source(src)) == []

    def test_quiet_on_time_sleep_name(self):
        # Only *reading* the clock is banned; unrelated time attrs pass.
        assert rules_of(lint_source("import time\ntime.struct_time\n")) == []


# ----------------------------------------------------------------- REP002
class TestRep002UnseededRng:
    def test_fires_on_global_random(self):
        assert rules_of(lint_source("import random\nx = random.random()\n")) == ["REP002"]

    def test_fires_on_global_shuffle(self):
        assert "REP002" in rules_of(lint_source("import random\nrandom.shuffle([1])\n"))

    def test_fires_on_seedless_random_instance(self):
        assert "REP002" in rules_of(lint_source("import random\nr = random.Random()\n"))

    def test_fires_on_seedless_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert "REP002" in rules_of(lint_source(src))

    def test_fires_on_numpy_global(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert "REP002" in rules_of(lint_source(src))

    def test_fires_on_from_import(self):
        assert "REP002" in rules_of(lint_source("from random import randint\n"))

    def test_quiet_on_seeded_instance(self):
        src = ("import random\nr = random.Random(42)\nx = r.random()\n")
        assert rules_of(lint_source(src)) == []

    def test_quiet_on_seeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert rules_of(lint_source(src)) == []


# ----------------------------------------------------------------- REP003
class TestRep003SetIteration:
    def test_fires_on_set_display_for(self):
        assert rules_of(lint_source("for x in {1, 2, 3}:\n    pass\n")) == ["REP003"]

    def test_fires_on_set_constructor(self):
        src = "for x in set([3, 1]):\n    pass\n"
        assert "REP003" in rules_of(lint_source(src))

    def test_fires_in_comprehension(self):
        assert "REP003" in rules_of(lint_source("out = [x for x in {1, 2}]\n"))

    def test_quiet_on_sorted_set(self):
        assert rules_of(lint_source("for x in sorted({1, 2}):\n    pass\n")) == []

    def test_quiet_on_membership_test(self):
        assert rules_of(lint_source("ok = 1 in {1, 2}\n")) == []


# ----------------------------------------------------------------- REP004
class TestRep004FloatTimeEquality:
    def test_fires_on_debt_eq(self):
        assert rules_of(lint_source("if job.debt_s == 0.0:\n    pass\n")) == ["REP004"]

    def test_fires_on_now_neq(self):
        assert "REP004" in rules_of(lint_source("bad = clock.now != t0\n"))

    def test_quiet_on_inequality(self):
        assert rules_of(lint_source("if job.debt_s <= 0.0:\n    pass\n")) == []

    def test_quiet_on_none_comparison(self):
        assert rules_of(lint_source("if job.not_before == None:\n    pass\n")) == []

    def test_quiet_on_unrelated_attr(self):
        assert rules_of(lint_source("if job.name == 'flush':\n    pass\n")) == []


# ----------------------------------------------------------------- REP005
class TestRep005MutableDefault:
    def test_fires_on_list_default(self):
        assert rules_of(lint_source("def f(x=[]):\n    pass\n")) == ["REP005"]

    def test_fires_on_dict_call_default(self):
        assert "REP005" in rules_of(lint_source("def f(x=dict()):\n    pass\n"))

    def test_fires_on_kwonly_default(self):
        assert "REP005" in rules_of(lint_source("def f(*, x={}):\n    pass\n"))

    def test_quiet_on_none_default(self):
        assert rules_of(lint_source("def f(x=None):\n    x = x or []\n")) == []

    def test_quiet_on_tuple_default(self):
        assert rules_of(lint_source("def f(x=()):\n    pass\n")) == []


# ----------------------------------------------------------------- REP006
class TestRep006FrozenReference:
    def test_fires_on_module_attribute_assignment(self):
        src = ("from repro.bench import reference\n"
               "reference.permute64 = lambda x: x\n")
        assert rules_of(lint_source(src)) == ["REP006"]

    def test_fires_on_imported_class_monkeypatch(self):
        src = ("from repro.bench.reference import ReferenceMemtable\n"
               "ReferenceMemtable.add = None\n")
        assert "REP006" in rules_of(lint_source(src))

    def test_fires_on_del(self):
        src = ("from repro.bench import reference\n"
               "del reference.permute64\n")
        assert "REP006" in rules_of(lint_source(src))

    def test_quiet_on_instance_use(self):
        src = ("from repro.bench.reference import ReferenceMemtable\n"
               "m = ReferenceMemtable(8)\n"
               "m.whatever = 1\n")
        assert rules_of(lint_source(src)) == []

    def test_quiet_inside_reference_module_itself(self):
        src = "from repro.bench import reference\nreference.x = 1\n"
        assert rules_of(lint_source(src, "src/repro/bench/reference.py")) == []


# ----------------------------------------------------------------- REP007
class TestRep007BareExcept:
    def test_fires_on_bare_except(self):
        src = "try:\n    pass\nexcept:\n    pass\n"
        assert rules_of(lint_source(src)) == ["REP007"]

    def test_quiet_on_typed_except(self):
        src = "try:\n    pass\nexcept ValueError:\n    pass\n"
        assert rules_of(lint_source(src)) == []


# ----------------------------------------------------------------- REP008
class TestRep008AssertInEngine:
    def test_fires_on_assert(self):
        assert rules_of(lint_source("assert x > 0\n")) == ["REP008"]

    def test_quiet_on_invariant_violation(self):
        src = ("from repro.common.errors import InvariantViolation\n"
               "def f(x):\n"
               "    if x <= 0:\n"
               "        raise InvariantViolation('x must be positive')\n")
        assert rules_of(lint_source(src)) == []


# ------------------------------------------------------------- suppression
class TestSuppression:
    def test_noqa_suppresses_matching_rule(self):
        src = "import time\nt = time.time()  # repro: noqa-REP001\n"
        assert rules_of(lint_source(src)) == []

    def test_noqa_is_per_rule(self):
        src = "import time\nt = time.time()  # repro: noqa-REP002\n"
        assert rules_of(lint_source(src)) == ["REP001"]

    def test_noqa_is_per_line(self):
        src = ("import time\n"
               "a = time.time()  # repro: noqa-REP001\n"
               "b = time.time()\n")
        findings = lint_source(src)
        assert rules_of(findings) == ["REP001"]
        assert findings[0].line == 3

    def test_rule_filter(self):
        src = "import time\nassert time.time()\n"
        assert rules_of(lint_source(src, rules={"REP008"})) == ["REP008"]

    def test_file_level_noqa_suppresses_everywhere(self):
        src = ("# repro: noqa-file-REP001\n"
               "import time\n"
               "a = time.time()\n"
               "b = time.perf_counter()\n")
        assert rules_of(lint_source(src)) == []

    def test_file_level_noqa_is_per_rule(self):
        src = ("# repro: noqa-file-REP001\n"
               "import time, random\n"
               "a = time.time()\n"
               "b = random.random()\n")
        assert rules_of(lint_source(src)) == ["REP002"]

    def test_file_level_marker_does_not_leak_to_line_form(self):
        # noqa-file-REP001 on line 1 must not read as a line-level
        # noqa-REP001 for whatever happens to sit on line 1.
        src = ("import time  # repro: noqa-file-REP002\n"
               "a = time.time()\n")
        findings = lint_source(src)
        assert rules_of(findings) == ["REP001"]

    def test_decorated_def_accepts_noqa_on_any_decorator_line(self):
        # A finding anchored at the def line is suppressed by a marker on
        # the decorator above it (the visible top of the statement).
        src = ("import functools\n"
               "@functools.lru_cache  # repro: noqa-REP005\n"
               "def f(xs=[]):\n"
               "    return xs\n")
        assert rules_of(lint_source(src)) == []

    def test_decorated_def_noqa_still_requires_matching_rule(self):
        src = ("import functools\n"
               "@functools.lru_cache  # repro: noqa-REP001\n"
               "def f(xs=[]):\n"
               "    return xs\n")
        assert rules_of(lint_source(src)) == ["REP005"]


# ------------------------------------------------------------------ corpus
class TestRepoCorpus:
    def test_rule_catalog_is_complete(self):
        assert sorted(RULES) == [f"REP00{i}" for i in range(1, 9)]

    def test_findings_format(self):
        f = Finding(rule="REP001", path="x.py", line=3, col=7, message="m")
        assert f.format() == "x.py:3:7: REP001 m"

    @pytest.mark.slow
    def test_src_repro_is_clean(self):
        findings = lint_repo()
        assert findings == [], "\n".join(f.format() for f in findings)
