"""Property-based scan semantics across engines."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from tests.conftest import ALL_ENGINES, make_tiny_db


def _build(engine, tape):
    db = make_tiny_db(engine)
    model = {}
    for key, val, is_del in tape:
        if is_del:
            db.delete(key)
            model.pop(key, None)
        else:
            db.put(key, val)
            model[key] = val
    return db, model


@st.composite
def tapes(draw):
    n = draw(st.integers(10, 150))
    return [(draw(st.integers(0, 99)), draw(st.integers(1, 50)),
             draw(st.booleans())) for _ in range(n)]


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tapes(), st.integers(0, 99), st.integers(0, 99))
@pytest.mark.parametrize("engine", ["iam", "leveldb"])
def test_scan_range_matches_model(engine, tape, a, b):
    lo, hi = min(a, b), max(a, b)
    db, model = _build(engine, tape)
    expected = sorted((k, v) for k, v in model.items() if lo <= k < hi)
    assert db.scan(lo, hi) == expected


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tapes(), st.integers(1, 10))
@pytest.mark.parametrize("engine", ["lsa", "flsm"])
def test_scan_limit_is_prefix_of_full_scan(engine, tape, limit):
    db, model = _build(engine, tape)
    full = db.scan(None, None)
    assert db.scan(None, None, limit=limit) == full[:limit]
    assert full == sorted(model.items())


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_scan_with_flush_boundary_in_middle(engine):
    db = make_tiny_db(engine)
    for k in range(0, 100, 2):
        db.put(k, 1)
    db.flush()
    for k in range(1, 100, 2):
        db.put(k, 2)
    rows = db.scan(None, None)
    assert [k for k, _ in rows] == list(range(100))


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_scan_empty_db(engine):
    db = make_tiny_db(engine)
    assert db.scan(None, None) == []
    assert db.scan(5, 10) == []


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_scan_charges_io_only_for_consumed_range(engine):
    """A tiny limited scan must not read the whole store (lazy cursors)."""
    db = make_tiny_db(engine, storage_kw=dict(page_cache_bytes=0))
    rng = random.Random(1)
    seen = set()
    while len(seen) < 3000:
        k = rng.randrange(1 << 28)
        if k not in seen:
            seen.add(k)
            db.put(k, 64)
    db.quiesce()
    before = db.metrics.cache_misses
    db.scan(min(seen), None, limit=5)
    small = db.metrics.cache_misses - before
    before = db.metrics.cache_misses
    db.scan(None, None)  # full scan
    full = db.metrics.cache_misses - before
    assert small < full / 5


@pytest.mark.parametrize("engine", ["iam", "lsa", "leveldb"])
def test_scan_during_pending_background_work(engine):
    db = make_tiny_db(engine)
    rng = random.Random(2)
    keys = set()
    for _ in range(2500):
        k = rng.randrange(500)
        keys.add(k)
        db.put(k, 64)
    # No quiesce: scan must be correct with compaction debt outstanding.
    rows = db.scan(None, None)
    assert [k for k, _ in rows] == sorted(keys)
