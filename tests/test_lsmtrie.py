"""LSM-trie baseline: hash trie behaviour and its Table 2 properties."""

import random

import pytest

from repro.common.options import IamOptions, StorageOptions
from repro.db.iamdb import IamDB
from repro.lsm.lsmtrie import (
    MAX_DEPTH,
    TRIE_FANOUT,
    ScansUnsupportedError,
    _child_index,
    trie_key,
)
from tests.conftest import tiny_iam_options, tiny_storage_options


def make_trie_db(**kw) -> IamDB:
    return IamDB("lsmtrie", engine_options=tiny_iam_options(**kw),
                 storage_options=tiny_storage_options())


def test_child_index_uses_top_bits():
    tkey = 0b101_110_000 << 55  # top bits 101, then 110
    assert _child_index(tkey, 0) == 0b101
    assert _child_index(tkey, 1) == 0b110


def test_trie_key_deterministic_and_spread():
    assert trie_key(42) == trie_key(42)
    keys = {trie_key(i) >> 61 for i in range(200)}
    assert len(keys) == TRIE_FANOUT  # ordered input spreads over all children


def test_put_get_delete_roundtrip():
    db = make_trie_db()
    rng = random.Random(1)
    ref = {}
    for _ in range(3000):
        k = rng.randrange(400)
        if rng.random() < 0.2:
            db.delete(k)
            ref.pop(k, None)
        else:
            v = rng.randrange(20, 90)
            db.put(k, v)
            ref[k] = v
    db.quiesce()
    for k in range(400):
        assert db.get(k) == ref.get(k)
    db.check_invariants()


def test_scans_unsupported():
    db = make_trie_db()
    db.put(1, 1)
    db.flush()
    with pytest.raises(ScansUnsupportedError):
        db.scan(None, None)


def test_fanout_bounded_by_construction():
    db = make_trie_db()
    rng = random.Random(2)
    for _ in range(5000):
        db.put(rng.randrange(1 << 30), 64)
    eng = db.engine
    assert eng.max_children() <= TRIE_FANOUT
    assert eng.spills > 0
    db.check_invariants()


def test_sequential_writes_gain_nothing():
    """Table 2: hashing scatters ordered input -- same WA as random input."""
    seq_db = make_trie_db()
    for k in range(4000):
        seq_db.put(k, 64)
    seq_db.quiesce()
    rnd_db = make_trie_db()
    rng = random.Random(3)
    seen = set()
    while len(seen) < 4000:
        k = rng.randrange(1 << 30)
        if k not in seen:
            seen.add(k)
            rnd_db.put(k, 64)
    rnd_db.quiesce()
    assert seq_db.write_amplification() == pytest.approx(
        rnd_db.write_amplification(), rel=0.2)
    # Unlike LSA/LSM, sequential WA is well above 1 (no metadata-only moves).
    assert seq_db.write_amplification() > 1.5


def test_snapshot_reads():
    db = make_trie_db()
    db.put(7, 10)
    snap = db.snapshot()
    db.put(7, 20)
    db.flush()
    assert db.get(7) == 20
    assert db.get(7, snap) == 10
    snap.release()


def test_recovery():
    db = make_trie_db()
    rng = random.Random(4)
    ref = {}
    for _ in range(1500):
        k = rng.randrange(300)
        v = rng.randrange(10, 99)
        db.put(k, v)
        ref[k] = v
    db.crash_and_recover()
    for k, v in ref.items():
        assert db.get(k) == v


def test_level_bytes_and_describe():
    db = make_trie_db()
    rng = random.Random(5)
    for _ in range(4000):
        db.put(rng.randrange(1 << 30), 64)
    db.flush()
    d = db.engine.describe()
    assert d["engine"] == "lsmtrie"
    assert d["max_children"] <= TRIE_FANOUT
    assert sum(db.engine.level_data_bytes().values()) > 0


def test_byte_accounting_matches_regular_records():
    """A trie record must cost exactly what the original record costs."""
    db = make_trie_db()
    db.put(123, 100)
    db.flush()
    # user bytes = key + value + overhead; flush wrote ~ the same + metadata
    flushed = sum(db.metrics.level_write_bytes.values())
    assert flushed >= db.metrics.user_bytes
    assert flushed < db.metrics.user_bytes + 600  # metadata only


def test_depth_bounded():
    assert MAX_DEPTH * 3 <= 64
