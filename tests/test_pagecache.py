"""Page-cache model: LRU behaviour and mincore-style residency."""

import pytest
from hypothesis import given, strategies as st

from repro.bench.reference import ReferencePageCache
from repro.common.errors import ConfigError
from repro.storage.pagecache import PageCache


def test_validation():
    with pytest.raises(ConfigError):
        PageCache(-1, 10)
    with pytest.raises(ConfigError):
        PageCache(10, 0)


def test_insert_and_contains():
    c = PageCache(1024, 256)
    c.insert(1, 0)
    assert c.contains(1, 0)
    assert not c.contains(1, 1)
    assert len(c) == 1
    assert c.used_bytes == 256


def test_capacity_zero_caches_nothing():
    c = PageCache(0, 256)
    c.insert(1, 0)
    assert not c.contains(1, 0)
    assert len(c) == 0


def test_lru_eviction_order():
    c = PageCache(4 * 256, 256)
    for b in range(4):
        c.insert(1, b)
    c.touch(1, 0)        # 0 becomes most recent
    c.insert(1, 4)       # evicts block 1 (the LRU)
    assert c.contains(1, 0)
    assert not c.contains(1, 1)
    assert c.contains(1, 4)
    assert c.evictions == 1


def test_touch_returns_hit_status():
    c = PageCache(1024, 256)
    assert not c.touch(1, 0)
    c.insert(1, 0)
    assert c.touch(1, 0)


def test_resident_bytes_per_file():
    c = PageCache(10 * 256, 256)
    c.insert_range(1, 0, 3)
    c.insert_range(2, 0, 2)
    assert c.resident_bytes(1) == 3 * 256
    assert c.resident_bytes(2) == 2 * 256
    assert c.resident_bytes(99) == 0
    assert c.total_resident_bytes() == 5 * 256


def test_invalidate_file_drops_all_blocks():
    c = PageCache(10 * 256, 256)
    c.insert_range(1, 0, 3)
    c.insert_range(2, 0, 2)
    assert c.invalidate_file(1) == 3
    assert c.resident_bytes(1) == 0
    assert not c.contains(1, 0)
    assert c.contains(2, 1)
    assert c.invalidate_file(1) == 0


def test_reinsert_refreshes_without_double_count():
    c = PageCache(10 * 256, 256)
    c.insert(1, 0)
    c.insert(1, 0)
    assert c.resident_blocks(1) == 1
    assert len(c) == 1


def test_eviction_updates_per_file_residency():
    c = PageCache(2 * 256, 256)
    c.insert(1, 0)
    c.insert(1, 1)
    c.insert(2, 0)  # evicts (1, 0)
    assert c.resident_blocks(1) == 1
    assert c.resident_blocks(2) == 1


def test_pinned_blocks_survive_eviction_pressure():
    c = PageCache(4 * 256, 256)
    c.pin_range(1, 0, 2)
    for b in range(50):
        c.insert(2, b)
    assert c.contains(1, 0) and c.contains(1, 1)
    assert c.pinned_blocks() == 2
    assert len(c) <= c.max_blocks


def test_unpin_makes_blocks_evictable():
    c = PageCache(4 * 256, 256)
    c.pin_range(1, 0, 2)
    c.unpin_file(1)
    for b in range(10):
        c.insert(2, b)
    assert not c.contains(1, 0)
    assert c.pinned_blocks() == 0


def test_invalidate_releases_pins():
    c = PageCache(4 * 256, 256)
    c.pin_range(1, 0, 2)
    c.invalidate_file(1)
    assert c.pinned_blocks() == 0
    assert not c.contains(1, 0)


def test_all_pinned_cache_does_not_livelock():
    c = PageCache(2 * 256, 256)
    c.pin_range(1, 0, 2)  # cache is entirely pinned
    c.insert(2, 0)        # must not loop forever; pins survive
    assert c.contains(1, 0) and c.contains(1, 1)


def test_pins_may_exceed_capacity_like_mlock():
    # Pinned pages cannot be evicted, so (as with mlock'd memory) the cache
    # can be pushed past its target size by pins.
    c = PageCache(2 * 256, 256)
    c.pin_range(1, 0, 10)
    assert len(c) == 10
    assert c.pinned_blocks() == 10


@given(st.lists(st.tuples(st.integers(1, 5), st.integers(0, 20)), max_size=200))
def test_residency_accounting_consistent(ops):
    """Sum of per-file residency always equals total cached blocks."""
    c = PageCache(8 * 64, 64)
    for file_id, block in ops:
        c.insert(file_id, block)
        total = sum(c.resident_blocks(f) for f in range(1, 6))
        assert total == len(c)
        assert len(c) <= c.max_blocks


@given(st.lists(st.tuples(st.integers(1, 3), st.integers(0, 10)), max_size=100),
       st.integers(1, 3))
def test_invalidate_then_empty(ops, victim):
    c = PageCache(16 * 64, 64)
    for file_id, block in ops:
        c.insert(file_id, block)
    c.invalidate_file(victim)
    assert c.resident_blocks(victim) == 0
    assert all(key[0] != victim for key in c._lru)


# --------------------------------------------------- fully pinned, cache full
def test_insert_into_fully_pinned_full_cache_overcommits():
    # All resident blocks pinned AND at capacity: the eviction scan is
    # bounded (one pass over the pins), and the new block is admitted over
    # capacity -- mlock-style overcommit, not a drop and not a livelock.
    c = PageCache(2 * 256, 256)
    c.pin_range(1, 0, 2)
    assert len(c) == c.max_blocks == 2
    c.insert(2, 0)
    assert c.contains(2, 0)
    assert c.contains(1, 0) and c.contains(1, 1)
    assert len(c) == 3           # over capacity by the unpinned newcomer
    assert c.evictions == 0
    # The overcommitted block is the next admission's eviction victim.
    c.insert(2, 1)
    assert not c.contains(2, 0)
    assert c.contains(2, 1)
    assert c.evictions == 1


def test_unpinning_lets_cache_shrink_back_to_capacity():
    c = PageCache(2 * 256, 256)
    c.pin_range(1, 0, 2)
    c.insert(2, 0)               # overcommitted to 3 blocks
    c.unpin_file(1)
    c.insert(2, 1)               # eviction now drains back under capacity
    assert len(c) == c.max_blocks


def test_insert_many_into_fully_pinned_full_cache_overcommits():
    c = PageCache(2 * 256, 256)
    c.pin_range(1, 0, 2)
    c.insert_many(2, [0, 1, 2])
    assert c.contains(1, 0) and c.contains(1, 1)
    # Each admission evicts the previous overcommitted unpinned block.
    assert c.contains(2, 2)
    assert len(c) == 3


# ------------------------------------------- batch ops vs per-block reference
_batch_ops = st.lists(
    st.tuples(st.sampled_from(["insert", "insert_many", "insert_range",
                               "touch", "touch_many", "touch_range",
                               "pin_range"]),
              st.integers(0, 3),                              # file_id
              st.lists(st.integers(0, 12), max_size=8),       # block list
              st.integers(0, 10),                             # first_block
              st.integers(0, 5)),                             # n_blocks
    max_size=60)


@given(_batch_ops, st.integers(1, 8))
def test_batch_ops_state_identical_to_reference(ops, cap_blocks):
    """insert_many/touch_many/etc. leave the exact per-block-loop state.

    LRU order, residency, counters and return values must all match the
    seed cache driven one block at a time.
    """
    new = PageCache(cap_blocks * 64, 64)
    ref = ReferencePageCache(cap_blocks * 64, 64)
    for kind, f, blocks, first, n in ops:
        if kind == "insert":
            for b in blocks:
                new.insert(f, b)
                ref.insert(f, b)
        elif kind == "insert_many":
            new.insert_many(f, blocks)
            for b in blocks:
                ref.insert(f, b)
        elif kind == "insert_range":
            new.insert_range(f, first, n)
            ref.insert_range(f, first, n)
        elif kind == "touch":
            for b in blocks:
                assert new.touch(f, b) == ref.touch(f, b)
        elif kind == "touch_many":
            misses = new.touch_many(f, blocks)
            assert misses == [b for b in blocks if not ref.touch(f, b)]
        elif kind == "touch_range":
            hits = new.touch_range(f, first, n)
            ref_hits = sum(ref.touch(f, b) for b in range(first, first + n))
            assert hits == ref_hits
        else:
            new.pin_range(f, first, n)
            ref.pin_range(f, first, n)
        assert list(new._lru) == list(ref._lru)
        assert new.insertions == ref.insertions
        assert new.evictions == ref.evictions
    for f in range(4):
        assert new.resident_blocks(f) == ref.resident_blocks(f)
