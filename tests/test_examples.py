"""Smoke tests: the shipped examples must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "get(1)      -> b'hello'" in out
    assert "after crash, get(3) -> b'durable?'" in out
    assert "write amplification" in out


def test_crash_recovery_example():
    out = run_example("crash_recovery.py")
    assert "0 mismatches" in out
    assert "recoveries performed: 3" in out


def test_compare_policies_small():
    out = run_example("compare_compaction_policies.py", "5000")
    assert "A-1t" in out and "I-1t" in out


def test_ycsb_example_small():
    out = run_example("ycsb_benchmark.py", "B", "iam", "ssd", "300")
    assert "YCSB-B" in out
    assert "throughput" in out


@pytest.mark.slow
def test_tune_mixed_level_example():
    out = run_example("tune_mixed_level.py")
    assert "LSM mode" in out and "LSA mode" in out
