"""Smoke tests: the shipped examples must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "get(1)      -> b'hello'" in out
    assert "after crash, get(3) -> b'durable?'" in out
    assert "write amplification" in out


def test_crash_recovery_example():
    out = run_example("crash_recovery.py")
    assert "0 mismatches" in out
    assert "recoveries performed: 3" in out


def test_compare_policies_small():
    out = run_example("compare_compaction_policies.py", "5000")
    assert "A-1t" in out and "I-1t" in out


def test_ycsb_example_small():
    out = run_example("ycsb_benchmark.py", "B", "iam", "ssd", "300")
    assert "YCSB-B" in out
    assert "throughput" in out


def test_trace_compaction_example(tmp_path):
    out = tmp_path / "side.json"
    stdout = run_example("trace_compaction.py", "5000", str(out))
    assert "wrote merged trace" in stdout
    assert "L " in stdout and "I-1t" in stdout
    import json

    from repro.obs import validate_chrome_trace
    trace = json.loads(out.read_text())
    assert validate_chrome_trace(trace) == []
    assert {ev["pid"] for ev in trace["traceEvents"]} == {1, 2}


@pytest.mark.slow
def test_tune_mixed_level_example():
    out = run_example("tune_mixed_level.py")
    assert "LSM mode" in out and "LSA mode" in out
