"""Fast, tiny-scale versions of the paper's amplification shapes.

The full-scale versions live in benchmarks/; these keep the core claims
under continuous test at unit-test cost.
"""

import random

import pytest

from tests.conftest import make_matched_db

VAL = 64


def _unique_load(db, n, seed):
    rng = random.Random(seed)
    seen = set()
    while len(seen) < n:
        k = rng.randrange(1 << 30)
        if k not in seen:
            seen.add(k)
            db.put(k, VAL)


@pytest.fixture(scope="module")
def loaded():
    out = {}
    for engine in ("lsa", "iam", "leveldb", "rocksdb", "flsm"):
        db = make_matched_db(engine)
        _unique_load(db, 8000, seed=42)
        out[engine] = db
    return out


def test_table1_write_ordering(loaded):
    wa = {e: db.write_amplification() for e, db in loaded.items()}
    assert wa["lsa"] < wa["iam"] < wa["leveldb"]
    assert wa["lsa"] < wa["rocksdb"]


def test_lsa_per_level_wa_near_one(loaded):
    per = loaded["lsa"].per_level_write_amplification()
    internal_levels = sorted(per)[:-1]
    for lvl in internal_levels:
        assert per[lvl] < 2.0


def test_lsm_flush_level_near_one(loaded):
    per = loaded["leveldb"].per_level_write_amplification()
    assert per[0] == pytest.approx(1.0, abs=0.4)


def test_space_usage_similar_without_updates(loaded):
    sizes = {e: db.space_used_bytes() for e, db in loaded.items()}
    lo, hi = min(sizes.values()), max(sizes.values())
    assert hi < 1.5 * lo  # no updates -> all trees hold ~the same data


def test_load_throughput_ordering(loaded):
    """Simulated time to absorb the same load: append trees are faster."""
    t = {e: db.clock_now for e, db in loaded.items()}
    assert t["lsa"] < t["leveldb"]
    assert t["iam"] < t["leveldb"] * 1.05


def test_scan_seeks_lsa_worst():
    """§5.3.2 with a cold cache: LSA's multi-sequence nodes cost scans more
    random reads than the single-sequence structures."""
    seeks = {}
    rng = random.Random(7)
    starts = [rng.randrange(1 << 30) for _ in range(40)]
    for e in ("lsa", "leveldb"):
        db = make_matched_db(e, storage_kw=dict(page_cache_bytes=0))
        _unique_load(db, 8000, seed=43)
        db.quiesce()
        before = db.metrics.query_seeks
        for s in starts:
            db.scan(s, None, limit=30)
        seeks[e] = db.metrics.query_seeks - before
    assert seeks["lsa"] > seeks["leveldb"]
