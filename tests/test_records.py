"""Record model: layout, encoding sizes, sort order."""

import pytest
from hypothesis import given, strategies as st

from repro.common.records import (
    DELETE,
    KEY,
    KIND,
    PUT,
    RECORD_OVERHEAD,
    Record,
    SEQ,
    VALUE,
    encoded_size,
    encoded_size_many,
    is_sorted_run,
    make_delete,
    make_put,
    sort_key,
    value_nbytes,
)


def test_make_put_layout():
    rec = make_put(42, 7, 100)
    assert rec[KEY] == 42
    assert rec[SEQ] == 7
    assert rec[KIND] == PUT
    assert rec[VALUE] == 100


def test_make_delete_is_tombstone_with_empty_value():
    rec = make_delete(1, 5)
    assert rec[KIND] == DELETE
    assert rec[VALUE] == 0


def test_record_namedtuple_is_layout_compatible():
    rec = Record(key=3, seq=9, kind=PUT, value=64)
    assert rec == (3, 9, PUT, 64)
    assert not rec.is_tombstone
    assert Record(1, 1, DELETE, 0).is_tombstone


def test_encoded_size_synthetic_value():
    rec = make_put(1, 1, 100)
    assert encoded_size(rec, key_size=16) == 16 + 100 + RECORD_OVERHEAD


def test_encoded_size_bytes_value():
    rec = make_put(1, 1, b"hello")
    assert encoded_size(rec, key_size=8) == 8 + 5 + RECORD_OVERHEAD


def test_value_nbytes():
    assert value_nbytes(123) == 123
    assert value_nbytes(b"abc") == 3


def test_encoded_size_many_matches_sum():
    recs = [make_put(i, i + 1, 10 * i) for i in range(5)]
    assert encoded_size_many(recs, 8) == sum(encoded_size(r, 8) for r in recs)


def test_tombstone_encodes_smaller_than_put():
    assert encoded_size(make_delete(1, 1), 8) < encoded_size(make_put(1, 1, 64), 8)


def test_sort_key_orders_newest_first_within_key():
    recs = [make_put(1, 5, 0), make_put(1, 9, 0), make_put(0, 1, 0)]
    out = sorted(recs, key=sort_key)
    assert [r[KEY] for r in out] == [0, 1, 1]
    assert out[1][SEQ] == 9  # newest version of key 1 first


def test_is_sorted_run_accepts_valid():
    run = [make_put(1, 9, 0), make_put(1, 4, 0), make_put(2, 7, 0)]
    assert is_sorted_run(run)


def test_is_sorted_run_rejects_key_disorder():
    assert not is_sorted_run([make_put(2, 1, 0), make_put(1, 2, 0)])


def test_is_sorted_run_rejects_seq_ascending_within_key():
    assert not is_sorted_run([make_put(1, 1, 0), make_put(1, 2, 0)])


def test_is_sorted_run_rejects_duplicate_key_seq():
    assert not is_sorted_run([make_put(1, 3, 0), make_put(1, 3, 0)])


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 1000)), max_size=50))
def test_sorted_by_sort_key_is_valid_run(pairs):
    seen = set()
    recs = []
    for key, seq in pairs:
        if (key, seq) in seen:
            continue
        seen.add((key, seq))
        recs.append(make_put(key, seq, 1))
    assert is_sorted_run(sorted(recs, key=sort_key))
