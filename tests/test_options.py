"""Options validation and derived values."""

import pytest

from repro.common.errors import ConfigError
from repro.common.options import (
    DeviceProfile,
    HDD,
    IamOptions,
    LsaOptions,
    LsmOptions,
    SCALE_BYTES,
    SSD,
    StorageOptions,
    paper_bytes,
)


def test_paper_bytes_scales():
    assert paper_bytes(4096) == 1
    assert paper_bytes(128 * 1024 * 1024) == int(128 * 1024 * 1024 * SCALE_BYTES)


def test_device_profile_validation():
    with pytest.raises(ConfigError):
        DeviceProfile("bad", -1.0, 0.0, 1.0, 1.0)
    with pytest.raises(ConfigError):
        DeviceProfile("bad", 0.0, 0.0, 0.0, 1.0)


def test_builtin_profiles_sane():
    assert SSD.seek_time_s < HDD.seek_time_s
    assert SSD.bulk_seek_time_s < SSD.seek_time_s
    assert HDD.read_bandwidth == HDD.write_bandwidth


def test_storage_options_validation():
    with pytest.raises(ConfigError):
        StorageOptions(page_cache_bytes=-1)
    with pytest.raises(ConfigError):
        StorageOptions(block_size=0)


def test_lsm_level_targets_multiply():
    opts = LsmOptions(level1_bytes=1000, level_size_multiplier=10,
                      memtable_bytes=100, file_bytes=100)
    assert opts.level_target_bytes(1) == 1000
    assert opts.level_target_bytes(3) == 100_000
    with pytest.raises(ConfigError):
        opts.level_target_bytes(0)


def test_lsm_l0_trigger_ordering_enforced():
    with pytest.raises(ConfigError):
        LsmOptions(l0_compaction_trigger=8, l0_slowdown_trigger=4)


def test_lsm_styles():
    assert LsmOptions.leveldb().style == "leveldb"
    rocks = LsmOptions.rocksdb()
    assert rocks.style == "rocksdb"
    assert rocks.pending_compaction_soft_bytes > 0
    with pytest.raises(ConfigError):
        LsmOptions(style="cassandra")


def test_lsa_options_derived():
    opts = LsaOptions(node_capacity=1000, fanout=10, leaf_split_factor=5)
    assert opts.split_children_threshold == 20
    assert opts.leaf_initial_bytes == 200
    assert opts.level_node_threshold(3) == 1000
    with pytest.raises(ConfigError):
        opts.level_node_threshold(0)


def test_lsa_options_validation():
    with pytest.raises(ConfigError):
        LsaOptions(node_capacity=0)
    with pytest.raises(ConfigError):
        LsaOptions(fanout=1)


def test_iam_options_validation():
    with pytest.raises(ConfigError):
        IamOptions(fixed_m=0)
    with pytest.raises(ConfigError):
        IamOptions(k_max=0)
    with pytest.raises(ConfigError):
        IamOptions(memory_budget_fraction=0.0)


def test_iam_degenerate_configs():
    base = IamOptions()
    lsa = base.as_lsa()
    assert lsa.fixed_m > 100  # mixed level beyond any real tree
    lsm = base.as_lsm()
    assert (lsm.fixed_m, lsm.fixed_k) == (1, 1)


def test_delayed_write_fraction_validation():
    with pytest.raises(ConfigError):
        LsmOptions(delayed_write_fraction=0.0)
    with pytest.raises(ConfigError):
        LsmOptions(delayed_write_fraction=1.5)


def test_tree_options_validation():
    with pytest.raises(ConfigError):
        LsaOptions(key_size=0)
    with pytest.raises(ConfigError):
        LsaOptions(background_threads=0)
    with pytest.raises(ConfigError):
        LsaOptions(bloom_bits_per_key=-1)
