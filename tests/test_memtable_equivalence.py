"""Two-tier memtable vs the frozen seed memtable: record-identical behaviour.

The optimized :class:`repro.memtable.Memtable` replaces per-record
``bisect.insort`` with a lazily consolidated delta tier; these property
tests drive both it and :class:`repro.bench.reference.ReferenceMemtable`
with the same randomized MVCC workloads and require identical observable
state: sorted runs, range scans, snapshot reads, size accounting and
error behaviour.
"""

import pytest
from hypothesis import given, strategies as st

from repro.bench.reference import ReferenceMemtable
from repro.common.errors import InvariantViolation
from repro.common.records import DELETE, PUT
from repro.memtable import Memtable

KEY_SIZE = 16

#: (key, kind, value-size) triples; the global index supplies the seq, so
#: per-key sequence numbers are automatically increasing.
ops_strategy = st.lists(
    st.tuples(st.integers(0, 15),
              st.sampled_from([PUT, PUT, PUT, DELETE]),
              st.integers(0, 300)),
    max_size=120)


def _records(ops):
    return [(key, i + 1, kind, 0 if kind == DELETE else vsize)
            for i, (key, kind, vsize) in enumerate(ops)]


def _loaded(ops):
    recs = _records(ops)
    ref = ReferenceMemtable(KEY_SIZE)
    new = Memtable(KEY_SIZE)
    for rec in recs:
        ref.add(rec)
        new.add(rec)
    return ref, new


def _assert_same_accounting(ref, new):
    assert new.nbytes == ref.nbytes
    assert new.n_records == ref.n_records
    assert new.n_keys == ref.n_keys
    assert new.min_seq == ref.min_seq
    assert new.max_seq == ref.max_seq
    assert len(new) == len(ref)


@given(ops_strategy)
def test_sorted_records_identical(ops):
    ref, new = _loaded(ops)
    assert new.sorted_records() == ref.sorted_records()
    _assert_same_accounting(ref, new)
    assert new.approximate_live_records() == ref.approximate_live_records()


@given(ops_strategy, st.integers(-1, 17), st.integers(-1, 17))
def test_iter_range_identical(ops, lo, hi):
    ref, new = _loaded(ops)
    assert list(new.iter_range(lo, hi)) == list(ref.iter_range(lo, hi))
    assert list(new.iter_range(None, hi)) == list(ref.iter_range(None, hi))
    assert list(new.iter_range(lo, None)) == list(ref.iter_range(lo, None))


@given(ops_strategy, st.integers(0, 130))
def test_snapshot_gets_identical(ops, snapshot):
    ref, new = _loaded(ops)
    for key in range(16):
        assert new.get(key) == ref.get(key)
        assert new.get(key, snapshot) == ref.get(key, snapshot)


@given(ops_strategy, st.lists(st.integers(0, 120), max_size=4))
def test_add_many_equals_sequential_add(ops, cut_points):
    recs = _records(ops)
    ref, _ = _loaded(ops)
    new = Memtable(KEY_SIZE)
    cuts = sorted({c for c in cut_points if c < len(recs)})
    start = 0
    for cut in cuts + [len(recs)]:
        new.add_many(recs[start:cut])
        start = cut
    assert new.sorted_records() == ref.sorted_records()
    _assert_same_accounting(ref, new)


@given(ops_strategy)
def test_interleaved_reads_do_not_disturb_writes(ops):
    # Consolidation happens on read; reading mid-stream must not change
    # what later reads see.
    recs = _records(ops)
    ref = ReferenceMemtable(KEY_SIZE)
    new = Memtable(KEY_SIZE)
    for i, rec in enumerate(recs):
        ref.add(rec)
        new.add(rec)
        if i % 7 == 0:
            assert new.sorted_records() == ref.sorted_records()
    assert list(new.iter_range()) == list(ref.iter_range())


def test_non_increasing_seq_raises_and_state_matches():
    recs = [(1, 5, PUT, 10), (2, 6, PUT, 20), (1, 5, PUT, 30)]
    ref = ReferenceMemtable(KEY_SIZE)
    with pytest.raises(InvariantViolation):
        for rec in recs:
            ref.add(rec)
    new = Memtable(KEY_SIZE)
    with pytest.raises(InvariantViolation):
        new.add_many(recs)
    # Both stop at the bad record with the first two fully applied.
    assert new.sorted_records() == ref.sorted_records()
    _assert_same_accounting(ref, new)
