"""Introspection surfaces: describe(), stats(), level accounting."""

import random

import pytest

from tests.conftest import ALL_ENGINES, make_tiny_db


def _load(db, n=2500, seed=1):
    rng = random.Random(seed)
    for _ in range(n):
        db.put(rng.randrange(1 << 22), 64)
    db.flush()


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_level_data_bytes_sum_close_to_space(engine):
    db = make_tiny_db(engine)
    _load(db)
    level_sum = sum(db.engine.level_data_bytes().values())
    space = db.space_used_bytes()
    # space = data + table metadata + wal/manifest remnants
    assert 0 < level_sum <= space


def test_lsa_level_node_counts():
    db = make_tiny_db("lsa")
    _load(db, 4000)
    counts = db.engine.level_node_counts()
    assert set(counts) == set(range(1, db.engine.n + 1))
    assert all(v >= 0 for v in counts.values())


def test_lsa_max_sequences_per_node_reports():
    db = make_tiny_db("lsa")
    _load(db, 3000)
    assert db.engine.max_sequences_per_node() >= 1


def test_stats_include_simulated_time(any_engine_db):
    db = any_engine_db
    _load(db, 800)
    s = db.stats()
    assert s["sim_time_s"] > 0
    assert s["memtable_bytes"] >= 0
    assert "space_used_bytes" in s


def test_describe_counters_move():
    db = make_tiny_db("iam")
    _load(db, 3000, seed=2)
    d1 = db.engine.describe()
    _load(db, 3000, seed=3)
    d2 = db.engine.describe()
    assert d2["flushes"] > d1["flushes"]
    assert d2["appends"] >= d1["appends"]


def test_wal_and_manifest_grow_with_writes():
    db = make_tiny_db("leveldb")
    db.put(1, 64)
    assert db.wal.nbytes > 0
    _load(db, 1000, seed=4)
    assert db.manifest.restore() is not None  # checkpoints written
