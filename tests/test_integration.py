"""Cross-engine integration: every engine implements the same KV semantics."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from tests.conftest import ALL_ENGINES, make_tiny_db


@st.composite
def op_sequences(draw):
    n = draw(st.integers(20, 250))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["put", "put", "put", "delete"]))
        key = draw(st.integers(0, 60))
        val = draw(st.integers(10, 80))
        ops.append((kind, key, val))
    return ops


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(op_sequences())
@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_engine_matches_dict_model(engine, ops):
    db = make_tiny_db(engine)
    model = {}
    for kind, key, val in ops:
        if kind == "put":
            db.put(key, val)
            model[key] = val
        else:
            db.delete(key)
            model.pop(key, None)
    db.flush()
    for key in range(61):
        assert db.get(key) == model.get(key), (engine, key)
    assert db.scan(None, None) == sorted(model.items())
    db.check_invariants()


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_heavy_churn_with_snapshots(engine):
    db = make_tiny_db(engine)
    rng = random.Random(42)
    model = {}
    snaps = []  # (snapshot, frozen model)
    for i in range(5000):
        k = rng.randrange(250)
        if rng.random() < 0.2:
            db.delete(k)
            model.pop(k, None)
        else:
            v = rng.randrange(30, 120)
            db.put(k, v)
            model[k] = v
        if i in (1200, 3100):
            snaps.append((db.snapshot(), dict(model)))
    db.quiesce()
    for k in range(250):
        assert db.get(k) == model.get(k)
    for snap, frozen in snaps:
        sample = rng.sample(range(250), 60)
        for k in sample:
            assert db.get(k, snap) == frozen.get(k), (engine, k)
        assert db.scan(50, 150, snapshot=snap) == sorted(
            (k, v) for k, v in frozen.items() if 50 <= k < 150)
        snap.release()
    db.check_invariants()


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_all_engines_agree_pairwise(engine):
    """Same op tape -> byte-identical read results across engines."""
    rng = random.Random(7)
    tape = [(rng.randrange(150), rng.randrange(20, 90), rng.random() < 0.15)
            for _ in range(3000)]
    db = make_tiny_db(engine)
    model = {}
    for key, val, is_del in tape:
        if is_del:
            db.delete(key)
            model.pop(key, None)
        else:
            db.put(key, val)
            model[key] = val
    db.quiesce()
    assert db.scan(None, None) == sorted(model.items())


@pytest.mark.parametrize("engine", ["iam", "lsa", "leveldb"])
def test_read_your_writes_always(engine):
    db = make_tiny_db(engine)
    rng = random.Random(8)
    for i in range(2500):
        k = rng.randrange(1 << 16)
        db.put(k, i % 200 + 1)
        assert db.get(k) == i % 200 + 1


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_invariants_hold_at_every_flush_boundary(engine):
    db = make_tiny_db(engine)
    rng = random.Random(9)
    for i in range(4000):
        db.put(rng.randrange(1 << 24), 64)
        if i % 500 == 499:
            db.check_invariants()
    db.quiesce()
    db.check_invariants()
