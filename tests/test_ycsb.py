"""YCSB workload specs and the operation stream."""

import random

import pytest

from repro.common.errors import ConfigError
from repro.workloads.runner import run_ycsb
from repro.workloads.ycsb import YCSB_WORKLOADS, YcsbSpec, build_op_stream
from tests.conftest import make_tiny_db


def test_paper_workload_mixes():
    assert YCSB_WORKLOADS["A"].read == 0.5 and YCSB_WORKLOADS["A"].update == 0.5
    assert YCSB_WORKLOADS["B"].read == 0.95
    assert YCSB_WORKLOADS["C"].read == 1.0
    assert YCSB_WORKLOADS["D"].distribution == "latest"
    assert YCSB_WORKLOADS["E"].scan == 0.95 and YCSB_WORKLOADS["E"].max_scan_len == 100
    assert YCSB_WORKLOADS["F"].rmw == 0.5
    assert YCSB_WORKLOADS["G"].max_scan_len == 10_000


def test_spec_validation():
    with pytest.raises(ConfigError):
        YcsbSpec("bad", read=0.5)  # does not sum to 1
    with pytest.raises(ConfigError):
        YcsbSpec("bad", read=1.0, distribution="gaussian")
    with pytest.raises(ConfigError):
        YcsbSpec("bad", scan=1.0, max_scan_len=0)


def _loaded_db(n=300):
    from repro.workloads.distributions import permute64
    db = make_tiny_db("iam")
    for i in range(n):
        db.put(permute64(i), 64)
    return db


def test_run_ycsb_reports():
    db = _loaded_db()
    rep = run_ycsb(db, YCSB_WORKLOADS["A"], 300, 300, value_size=64)
    assert rep.ops == 300
    assert rep.throughput > 0
    assert "read" in rep.latency and "insert" in rep.latency


def test_op_mix_ratios_statistical():
    db = _loaded_db()
    reads_before = db.metrics.latency["read"].count
    run_ycsb(db, YCSB_WORKLOADS["B"], 1000, 300, value_size=64)
    reads = db.metrics.latency["read"].count - reads_before
    assert 900 <= reads <= 990  # ~95%


def test_insert_workload_grows_keyspace():
    db = _loaded_db()
    rep = run_ycsb(db, YCSB_WORKLOADS["D"], 600, 300, value_size=64)
    inserts = rep.latency.get("insert", {}).get("count", 0)
    assert inserts > 0


def test_scan_workload_runs_scans():
    db = _loaded_db()
    rep = run_ycsb(db, YCSB_WORKLOADS["E"], 200, 300, value_size=64)
    assert rep.latency["scan"]["count"] > 150


def test_rmw_reads_then_writes():
    db = _loaded_db()
    rep = run_ycsb(db, YCSB_WORKLOADS["F"], 400, 300, value_size=64)
    assert rep.latency["read"]["count"] > 0
    assert rep.latency["insert"]["count"] > 0


def test_op_stream_deterministic_per_seed():
    db1, db2 = _loaded_db(), _loaded_db()
    r1 = run_ycsb(db1, YCSB_WORKLOADS["A"], 300, 300, seed=5, value_size=64)
    r2 = run_ycsb(db2, YCSB_WORKLOADS["A"], 300, 300, seed=5, value_size=64)
    assert r1.latency["insert"]["count"] == r2.latency["insert"]["count"]
    assert db1.metrics.user_bytes == db2.metrics.user_bytes


def test_multi_client_interleaving_is_deterministic():
    db1, db2 = _loaded_db(), _loaded_db()
    r1 = run_ycsb(db1, YCSB_WORKLOADS["A"], 300, 300, seed=5, value_size=64,
                  clients=3)
    r2 = run_ycsb(db2, YCSB_WORKLOADS["A"], 300, 300, seed=5, value_size=64,
                  clients=3)
    assert r1.ops == r2.ops == 300
    assert r1.sim_seconds == r2.sim_seconds
    assert r1.latency == r2.latency


def test_multi_client_covers_all_ops_and_differs_from_single():
    db1, db2 = _loaded_db(), _loaded_db()
    r1 = run_ycsb(db1, YCSB_WORKLOADS["A"], 301, 300, seed=5, value_size=64)
    r2 = run_ycsb(db2, YCSB_WORKLOADS["A"], 301, 300, seed=5, value_size=64,
                  clients=4)
    assert r1.ops == r2.ops == 301  # uneven split still sums to n_ops
    # Different client count => different interleaving => different stream.
    assert r1.latency != r2.latency


class _RecordingDB:
    """Logs (op, key) pairs instead of doing simulated I/O."""

    def __init__(self):
        self.log = []

    def get(self, key):
        self.log.append(("get", key))

    def put(self, key, value_size):
        self.log.append(("put", key))

    def scan(self, start, stop, limit=None):
        self.log.append(("scan", start))


def _logged_stream(spec, n_ops, n_records, **kw):
    db = _RecordingDB()
    for op in build_op_stream(db, spec, n_ops, n_records, seed=9,
                              value_size=64, **kw):
        op()
    return db.log


def test_client_zero_stream_matches_single_client():
    """Client 0 with no offset reproduces the single-stream op sequence."""
    spec = YCSB_WORKLOADS["A"]
    ops_a = _logged_stream(spec, 50, 300)
    ops_b = _logged_stream(spec, 50, 300, client=0, key_offset=0)
    assert ops_a == ops_b
    ops_c = _logged_stream(spec, 50, 300, client=1)
    assert ops_a != ops_c  # per-client RNG derivation


def test_key_offset_rotates_loaded_keyspace_only():
    from repro.workloads.distributions import permute64
    spec = YCSB_WORKLOADS["D"]  # latest: inserts grow the keyspace
    state = {"inserted": 100}
    log = _logged_stream(spec, 200, 100, client=1, key_offset=50,
                         insert_state=state)
    loaded = {permute64((i + 50) % 100) for i in range(100)}
    grown = {permute64(i) for i in range(100, state["inserted"] + 1)}
    for op, key in log:
        if op in ("get", "put"):
            assert key in loaded | grown
    assert state["inserted"] > 100  # shared insert state advanced
