"""The cluster layer: network, routing, replication, failover, rebalance.

Behavioural tests for :mod:`repro.cluster` on tiny engine configurations:
the simulated fabric's latency/bandwidth/FIFO accounting, the router's
key->shard map and scatter-gather scans, admission control under write-path
degradation, quorum-acked replication with zero acked-write loss across
failover, split/merge rebalance with exclusive file ownership, and the
byte-identical determinism of the cluster report.
"""

import json
import random

import pytest

from tests.conftest import tiny_iam_options, tiny_storage_options
from repro.cluster import (
    ClusterDB,
    ClusterOptions,
    KEY_SPACE_HI,
    KEY_SPACE_LO,
    LeaderKill,
    NetworkOptions,
    RebalanceOptions,
    SimNetwork,
    even_ranges,
    parse_cluster_fault_spec,
)
from repro.cluster.invariants import (
    check_cluster_invariants,
    check_file_ownership,
    check_partition,
)
from repro.common.errors import ConfigError, StoreClosedError
from repro.storage.simdisk import SimClock

VALUE = 64


def tiny_cluster(n_shards=3, n_replicas=2, **kw) -> ClusterDB:
    return ClusterDB(ClusterOptions(
        n_shards=n_shards, n_replicas=n_replicas,
        engine_options=tiny_iam_options(),
        storage_options=tiny_storage_options(), **kw))


def spread_keys(rng, n):
    return [rng.randrange(KEY_SPACE_HI) for _ in range(n)]


# --------------------------------------------------------------------- network

def test_network_charges_latency_and_bandwidth():
    clock = SimClock()
    net = SimNetwork(clock, NetworkOptions(
        latency_s=1e-3, bandwidth=1e6, rpc_bytes=0))
    elapsed = net.send(0, 1, 1000)
    assert elapsed == pytest.approx(1e-3 + 1000 / 1e6)
    assert clock.now == pytest.approx(elapsed)
    assert net.messages == 1
    assert net.bytes_sent == 1000


def test_network_links_are_fifo():
    clock = SimClock()
    net = SimNetwork(clock, NetworkOptions(
        latency_s=0.0, bandwidth=1e3, rpc_bytes=0))
    # Two reserved background transfers on one link queue behind each other.
    first = net.reserve(0, 1, 1000)   # 1 s of serialization
    second = net.reserve(0, 1, 1000)  # starts only after the first
    assert first == pytest.approx(1.0)
    assert second == pytest.approx(2.0)
    # The reverse link is independent.
    assert net.reserve(1, 0, 1000) == pytest.approx(1.0)


def test_zero_network_never_advances_clock():
    clock = SimClock()
    net = SimNetwork(clock, NetworkOptions.zero())
    net.send(0, 1, 10_000)
    net.rpc(0, 1, 512, 512)
    assert clock.now == 0.0
    assert net.messages == 3


def test_network_snapshot_is_sorted_and_deterministic():
    clock = SimClock()
    net = SimNetwork(clock, NetworkOptions())
    net.send(2, 1, 10)
    net.send(0, 1, 20)
    snap = net.snapshot()
    assert list(snap["link_bytes"]) == sorted(snap["link_bytes"])


# ------------------------------------------------------------------ partitions

def test_even_ranges_tile_the_key_space():
    for n in (1, 2, 3, 7, 16):
        ranges = even_ranges(n)
        assert len(ranges) == n
        assert ranges[0][0] == KEY_SPACE_LO
        assert ranges[-1][1] == KEY_SPACE_HI
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
    with pytest.raises(ConfigError):
        even_ranges(0)


def test_router_maps_every_key_to_exactly_one_shard(rng):
    cluster = tiny_cluster(n_shards=4, n_replicas=1)
    check_partition(cluster)
    for key in spread_keys(rng, 200) + [KEY_SPACE_LO, KEY_SPACE_HI - 1]:
        shard = cluster.router.shard_for(key)
        assert shard.lo <= key < shard.hi
    cluster.close()


# ------------------------------------------------------- routing vs model dict

def test_cluster_matches_model_dict(rng):
    cluster = tiny_cluster(n_shards=3, n_replicas=2)
    keys = spread_keys(rng, 128)
    model = {}
    for i in range(600):
        key = keys[rng.randrange(len(keys))]
        roll = rng.random()
        if roll < 0.55:
            cluster.put(key, VALUE)
            model[key] = VALUE
        elif roll < 0.65:
            cluster.delete(key)
            model.pop(key, None)
        elif roll < 0.85:
            assert cluster.get(key) == model.get(key)
        else:
            lo = keys[rng.randrange(len(keys))]
            got = cluster.scan(lo, None, limit=10)
            want = sorted((k, v) for k, v in model.items() if k >= lo)[:10]
            assert got == want
    assert cluster.scan() == sorted(model.items())
    cluster.check_invariants()
    cluster.close()


def test_scatter_gather_scan_respects_limit_and_order(rng):
    cluster = tiny_cluster(n_shards=4, n_replicas=1)
    keys = sorted(set(spread_keys(rng, 300)))
    for key in keys:
        cluster.put(key, VALUE)
    rows = cluster.scan(limit=25)
    assert [k for k, _ in rows] == keys[:25]
    # A full scan concatenates shard results in global key order.
    assert [k for k, _ in cluster.scan()] == keys
    cluster.close()


def test_admission_control_paces_degraded_shard(rng):
    cluster = tiny_cluster(n_shards=2, n_replicas=1)
    key = spread_keys(rng, 1)[0]
    shard = cluster.router.shard_for(key)
    cluster.put(key, VALUE)
    assert cluster.metrics.events.get("router:admission-delay", 0) == 0
    # Degrade the owning shard's write pipeline: the router must pace.
    shard.group.leader.db.runtime.pool.failed_streak = 3
    before = cluster.clock.now
    cluster.put(key, VALUE)
    assert cluster.metrics.events["router:admission-delay"] == 1
    assert cluster.clock.now - before >= 0.0005 * 4  # base * 2**(streak-1)
    cluster.close()


def test_admission_pause_caps_on_arbitrarily_long_streaks(rng):
    """Regression: ``2.0 ** (streak - 1)`` overflowed past streak ~1025.

    A shard whose pool keeps giving up for long enough used to crash the
    router with ``OverflowError``; the exponent is now capped and the
    delay clamps at ``ADMISSION_MAX_S`` -- while short streaks keep the
    exact legacy float doubling.
    """
    from repro.cluster.router import ADMISSION_BASE_S, ADMISSION_MAX_S

    cluster = tiny_cluster(n_shards=1, n_replicas=1)
    key = spread_keys(rng, 1)[0]
    shard = cluster.router.shard_for(key)
    pool = shard.group.leader.db.runtime.pool
    for streak in (1, 2, 7):  # small streaks: exact legacy doubling
        pool.failed_streak = streak
        before = cluster.clock.now
        cluster.put(key, VALUE)
        paused = cluster.clock.now - before
        expected = min(ADMISSION_BASE_S * (2.0 ** (streak - 1)),
                       ADMISSION_MAX_S)
        assert paused >= expected
    for streak in (1025, 10 ** 6):  # used to raise OverflowError
        pool.failed_streak = streak
        before = cluster.clock.now
        cluster.put(key, VALUE)
        assert cluster.clock.now - before >= ADMISSION_MAX_S
    cluster.close()


# ------------------------------------------------------- replication, failover

def test_replication_keeps_replicas_sequence_identical(rng):
    cluster = tiny_cluster(n_shards=1, n_replicas=3)
    for key in spread_keys(rng, 100):
        cluster.put(key, VALUE)
    group = cluster.router.shards[0].group
    seqs = [r.db._seq for r in group.live_replicas()]
    assert len(set(seqs)) == 1
    assert group.acked_seq == seqs[0] == 100
    cluster.close()


def test_failover_loses_no_acked_write(rng):
    cluster = tiny_cluster(n_shards=1, n_replicas=3)
    keys = spread_keys(rng, 80)
    for key in keys:
        cluster.put(key, VALUE)
    group = cluster.router.shards[0].group
    old_leader = group.leader.node_id
    report = cluster.crash_leader(0)
    assert report["dead_node"] == old_leader
    assert report["promoted_node"] != old_leader
    assert report["recovered_seq"] >= report["acked_seq"] == 80
    for key in keys:
        assert cluster.get(key) == VALUE
    check_cluster_invariants(cluster)
    # Writes keep flowing through the promoted leader.
    cluster.put(keys[0], VALUE + 1)
    assert cluster.get(keys[0]) == VALUE + 1
    cluster.close()


def test_single_replica_leader_kill_is_skipped(rng):
    cluster = tiny_cluster(n_shards=1, n_replicas=1)
    cluster.put(spread_keys(rng, 1)[0], VALUE)
    report = cluster.crash_leader(0)
    assert report["skipped"] == "no live follower"
    assert cluster.metrics.events["failover:skipped"] == 1
    # The surviving single copy keeps serving.
    assert cluster.router.shards[0].group.leader.alive
    cluster.close()


def test_scheduled_kill_fires_at_op(rng):
    cluster = tiny_cluster(n_shards=2, n_replicas=2)
    cluster.arm_faults(None, [LeaderKill(shard=1, at_op=20)])
    keys = spread_keys(rng, 40)
    model = {}
    for key in keys:
        cluster.put(key, VALUE)
        model[key] = VALUE
    assert len(cluster.failover_reports) == 1
    assert cluster.failover_reports[0]["shard"] == 1
    for key, want in model.items():
        assert cluster.get(key) == want
    cluster.close()


# ------------------------------------------------------------------- rebalance

def test_split_and_merge_preserve_data_and_ownership(rng):
    cluster = tiny_cluster(n_shards=2, n_replicas=2)
    model = {}
    for key in spread_keys(rng, 150):
        cluster.put(key, VALUE)
        model[key] = VALUE
    fat = max(cluster.router.shards, key=lambda s: s.data_bytes())
    cluster.rebalancer.split(fat)
    assert len(cluster.router.shards) == 3
    check_cluster_invariants(cluster)
    assert cluster.scan() == sorted(model.items())

    left, right = cluster.router.shards[0], cluster.router.shards[1]
    cluster.rebalancer.merge(left, right)
    assert len(cluster.router.shards) == 2
    check_cluster_invariants(cluster)
    check_file_ownership(cluster)
    assert cluster.scan() == sorted(model.items())
    snap = cluster.rebalancer.snapshot()
    assert snap["splits"] == 1 and snap["merges"] == 1
    assert snap["moved_bytes"] > 0
    cluster.close()


def test_auto_split_triggers_on_size(rng):
    cluster = tiny_cluster(
        n_shards=2, n_replicas=1,
        rebalance=RebalanceOptions(split_threshold_bytes=8_000,
                                   check_interval_ops=64))
    model = {}
    for key in spread_keys(rng, 400):
        cluster.put(key, VALUE)
        model[key] = VALUE
    assert cluster.rebalancer.splits > 0
    assert len(cluster.router.shards) > 2
    check_cluster_invariants(cluster)
    assert cluster.scan() == sorted(model.items())
    cluster.close()


def test_failover_after_rebalance_ingest(rng):
    """A split-created shard must survive a leader kill (durable ingest)."""
    cluster = tiny_cluster(n_shards=1, n_replicas=2)
    model = {}
    for key in spread_keys(rng, 120):
        cluster.put(key, VALUE)
        model[key] = VALUE
    cluster.rebalancer.split(cluster.router.shards[0])
    report = cluster.crash_leader(0)
    assert report["recovered_seq"] >= report["acked_seq"]
    assert cluster.scan() == sorted(model.items())
    check_cluster_invariants(cluster)
    cluster.close()


# ----------------------------------------------------------------- fault specs

def test_parse_cluster_fault_spec_splits_kills_and_device_faults():
    dev, kills = parse_cluster_fault_spec("kill=1:400,rate=0.002,seed=5")
    assert dev == "rate=0.002,seed=5"
    assert kills == [LeaderKill(shard=1, at_op=400)]
    dev, kills = parse_cluster_fault_spec("kill=0:10,kill=2:5")
    assert dev is None
    assert kills == [LeaderKill(2, 5), LeaderKill(0, 10)]
    with pytest.raises(ConfigError):
        parse_cluster_fault_spec("kill=3")


# ---------------------------------------------------------------- determinism

def _run_once(seed):
    cluster = tiny_cluster(n_shards=3, n_replicas=2)
    cluster.arm_faults(None, [LeaderKill(shard=1, at_op=150)])
    rng = random.Random(seed)
    keys = spread_keys(rng, 96)
    for i in range(300):
        key = keys[rng.randrange(len(keys))]
        roll = rng.random()
        if roll < 0.6:
            cluster.put(key, VALUE)
        elif roll < 0.7:
            cluster.delete(key)
        else:
            cluster.get(key)
    cluster.quiesce()
    stats = cluster.stats()
    cluster.close()
    return json.dumps(stats, sort_keys=True, separators=(",", ":"))


def test_cluster_report_is_byte_identical_across_runs():
    assert _run_once(7) == _run_once(7)


def test_cluster_report_shape():
    cluster = tiny_cluster(n_shards=2, n_replicas=2)
    rng = random.Random(3)
    for key in spread_keys(rng, 60):
        cluster.put(key, VALUE)
    cluster.get(spread_keys(rng, 1)[0])
    stats = cluster.stats()
    assert stats["n_shards"] == 2 and stats["n_replicas"] == 2
    assert stats["ops_routed"] == 61
    assert set(stats["load_imbalance"]) == {"ops_max_over_mean",
                                            "bytes_max_over_mean"}
    assert stats["load_imbalance"]["ops_max_over_mean"] >= 1.0
    assert "insert" in stats["tail_latency"]
    assert stats["metrics"]["user_bytes"] > 0
    assert len(stats["shards"]) == 2
    json.dumps(stats)  # the whole report is JSON-serializable
    cluster.close()


def test_closed_cluster_rejects_ops(rng):
    cluster = tiny_cluster(n_shards=1, n_replicas=1)
    cluster.close()
    with pytest.raises(StoreClosedError):
        cluster.put(1, VALUE)
