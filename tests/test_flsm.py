"""FLSM baseline: guard-based appends and §6.8 behaviour."""

import random

import pytest

from repro.db.iamdb import IamDB
from tests.conftest import make_tiny_db

VAL = 64


def test_reads_and_scans_correct():
    db = make_tiny_db("flsm")
    rng = random.Random(1)
    ref = {}
    for _ in range(2500):
        k = rng.randrange(400)
        v = rng.randrange(50, 100)
        db.put(k, v)
        ref[k] = v
    db.quiesce()
    for k in range(400):
        assert db.get(k) == ref.get(k)
    assert db.scan(50, 150) == sorted((k, v) for k, v in ref.items()
                                      if 50 <= k < 150)
    db.check_invariants()


def test_sequential_load_rewrites_records():
    """§6.8: FLSM always rewrites on compaction -- no trivial moves."""
    flsm = make_tiny_db("flsm")
    for k in range(3000):
        flsm.put(k, VAL)
    flsm.quiesce()
    lsm = make_tiny_db("leveldb")
    for k in range(3000):
        lsm.put(k, VAL)
    lsm.quiesce()
    assert flsm.write_amplification() > lsm.write_amplification() + 1.0


def test_guards_form_sorted_partitions():
    db = make_tiny_db("flsm")
    rng = random.Random(2)
    for _ in range(2500):
        db.put(rng.randrange(1 << 25), VAL)
    db.quiesce()
    eng = db.engine
    for level, cuts in enumerate(eng._cuts):
        assert cuts == sorted(cuts)
    eng.check_invariants()


def test_guard_fanin_is_unbounded_by_design():
    """Table 2: FLSM does not avoid the worst write case; fan-in grows."""
    db = make_tiny_db("flsm")
    rng = random.Random(3)
    for _ in range(4000):
        db.put(rng.randrange(1 << 25), VAL)
    assert db.engine.max_guard_fanin() >= 2


def test_bottom_guard_merge_reclaims_updates():
    db = make_tiny_db("flsm")
    rng = random.Random(4)
    for _ in range(3000):
        db.put(rng.randrange(100), VAL)  # heavy updates on few keys
    db.quiesce()
    assert db.metrics.events.get("flsm-guard-merge", 0) >= 0
    for k in range(100):
        assert db.get(k) == VAL


def test_checkpoint_restore():
    db = make_tiny_db("flsm")
    for k in range(800):
        db.put(k, VAL)
    db.quiesce()
    state = db.engine.checkpoint_state()
    db.engine.restore_state(state)
    db.engine.check_invariants()
    assert db.get(17) == VAL
