"""Zero-latency shared storage adds no simulated work and no behavior.

The hypothesis behind the mirror-mode tier: all data stays on the local
SimDisk, the object store only holds mirrored copies.  With the zero store
(``ObjStoreOptions.zero()``: no latency, infinite bandwidth, no framing)
every store request takes 0 simulated seconds, so

* a bare :class:`~repro.db.iamdb.IamDB` with an
  :class:`~repro.objstore.tiering.ObjStoreTier` attached is byte-identical
  to one without (same per-op results, KV state, seq, clock, WA, space);
* a 1-shard/1-replica cluster with the zero store on a zero network is
  byte-identical to the same cluster without shared storage (which
  ``tests/test_cluster_equivalence.py`` already pins to a bare DB); and
* a follower spawned via objstore bootstrap ends in exactly the state a
  WAL/file-shipping follower ends in -- same contents, same seq.

Hypothesis drives all three with randomized mixed workloads including
explicit flushes, so checkpoints (and therefore mirroring) actually fire.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from tests.conftest import tiny_iam_options, tiny_storage_options
from repro.cluster import ClusterDB, ClusterOptions, NetworkOptions
from repro.db.iamdb import IamDB
from repro.objstore import ObjStoreOptions, ObjStoreTier, SharedManifestLog, SimObjectStore

#: (op code, key index, size/limit) triples over a small shared key pool.
ops_strategy = st.lists(
    st.tuples(st.sampled_from(["put", "put", "put", "delete", "get", "scan",
                               "flush"]),
              st.integers(0, 23),
              st.integers(1, 200)),
    max_size=80)

#: A fixed, spread-out key pool (arbitrary points in the 64-bit key space).
KEY_POOL = [(0x9E3779B97F4A7C15 * (i + 1)) % 2 ** 64 for i in range(24)]


def _bare():
    return IamDB("iam", engine_options=tiny_iam_options(),
                 storage_options=tiny_storage_options())


def _mirrored():
    db = _bare()
    store = SimObjectStore(db.runtime.clock, ObjStoreOptions.zero())
    log = SharedManifestLog(store, "shard0/")
    tier = ObjStoreTier(db, log)
    return db, store, tier


def _drive(a, b, ops):
    """Apply the same op stream to both stacks, checking per-op results."""
    for op, key_i, size in ops:
        key = KEY_POOL[key_i]
        if op == "put":
            a.put(key, size)
            b.put(key, size)
        elif op == "delete":
            a.delete(key)
            b.delete(key)
        elif op == "get":
            assert a.get(key) == b.get(key)
        elif op == "flush":
            a.flush()
            b.flush()
        else:
            lo = KEY_POOL[size % len(KEY_POOL)]
            limit = 1 + size % 8
            assert (a.scan(lo, None, limit=limit)
                    == b.scan(lo, None, limit=limit))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_zero_store_tier_equals_bare_db(ops):
    mirrored, store, _tier = _mirrored()
    bare = _bare()
    _drive(mirrored, bare, ops)
    assert mirrored.scan() == bare.scan()
    assert mirrored._seq == bare._seq
    assert mirrored.runtime.clock.now == bare.runtime.clock.now
    assert mirrored.write_amplification() == bare.write_amplification()
    assert mirrored.space_used_bytes() == bare.space_used_bytes()
    # The mirror did real work -- it just cost zero simulated time.  Only
    # a flush that drains a non-empty memtable uploads anything, so the
    # stream must contain a put *followed by* a flush.
    codes = [op for op, _, _ in ops]
    if "put" in codes and "flush" in codes[codes.index("put") + 1:]:
        assert store.puts > 0
    mirrored.close()
    bare.close()


def _cluster(with_store: bool):
    kw = {}
    if with_store:
        kw["objstore"] = ObjStoreOptions.zero()
    return ClusterDB(ClusterOptions(
        n_shards=1, n_replicas=1,
        engine_options=tiny_iam_options(),
        storage_options=tiny_storage_options(),
        network=NetworkOptions.zero(), **kw))


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_zero_store_cluster_equals_plain_cluster(ops):
    with_store = _cluster(True)
    plain = _cluster(False)
    _drive(with_store, plain, ops)
    assert with_store.scan() == plain.scan()
    a = with_store.router.shards[0].group.leader.db
    b = plain.router.shards[0].group.leader.db
    assert a._seq == b._seq
    assert with_store.clock.now == plain.clock.now
    assert with_store.write_amplification() == plain.write_amplification()
    assert with_store.space_used_bytes() == plain.space_used_bytes()
    with_store.close()
    plain.close()


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_objstore_follower_equals_shipped_follower(ops):
    """Bootstrap-from-store and leader-shipping converge to one state."""
    via_store = _cluster(True)
    via_ship = _cluster(True)
    _drive(via_store, via_ship, ops)
    via_store.flush()
    via_ship.flush()
    via_store.quiesce()
    via_ship.quiesce()
    boot_a = via_store.spawn_follower(0, mode="objstore")
    boot_b = via_ship.spawn_follower(0, mode="ship")
    assert boot_a["seq"] == boot_b["seq"]
    fol_a = via_store.router.shards[0].group.replicas[-1].db
    fol_b = via_ship.router.shards[0].group.replicas[-1].db
    assert fol_a._seq == fol_b._seq
    assert fol_a.scan() == fol_b.scan()
    assert via_store.clock.now == via_ship.clock.now
    via_store.close()
    via_ship.close()
