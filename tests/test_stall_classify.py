"""Exhaustive stall-reason classification (no silent "other" growth).

``metrics.stalls.classify_stall_reason`` rolls every structured stall or
gate-delay reason into a fixed blame class.  Two invariants:

* every reason literal actually emitted by the source tree classifies to a
  *named* class, never "other" -- the test greps the package source for
  ``add_stall``/``add_gate_delay``/``stall_on`` call sites so a new emit
  site with an unrecognized reason fails here instead of silently
  polluting the catch-all bucket;
* the structured prefixes (``wait:``, ``pace:``, ``slowdown:``) map whole
  families, so future reasons that follow the convention are covered
  without touching the classifier.
"""

import re
from pathlib import Path

import pytest

from repro.metrics.stalls import STALL_CLASSES, classify_stall_reason

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: String-literal reasons passed to add_stall / add_gate_delay / stall_on.
_EMIT_RE = re.compile(
    r"(?:add_stall|add_gate_delay|stall_on\([^,]+,)\s*\(?\s*\"([^\"]+)\"")


def emitted_reasons():
    reasons = set()
    for path in SRC.rglob("*.py"):
        for m in _EMIT_RE.finditer(path.read_text()):
            reasons.add(m.group(1))
    # wait_for's default reason family: "wait:<job name>".
    reasons.add("wait:flush->L0")
    reasons.add("wait:compact:L2")
    return reasons


def test_source_emits_at_least_the_known_reasons():
    reasons = emitted_reasons()
    for expected in ("memtable-rotation", "explicit-flush", "l0-stop",
                     "router-admission", "fault-degraded",
                     "pace:token-bucket", "slowdown:l0", "slowdown:debt",
                     "objstore-append", "objstore-fetch"):
        assert expected in reasons, f"emit site for {expected!r} disappeared"


@pytest.mark.parametrize("reason", sorted(emitted_reasons()))
def test_every_emitted_reason_has_a_named_class(reason):
    cls = classify_stall_reason(reason)
    assert cls in STALL_CLASSES
    assert cls != "other", (
        f"stall reason {reason!r} falls into the catch-all bucket; either "
        f"rename it onto a structured prefix (wait:/pace:/slowdown:) or "
        f"teach classify_stall_reason about it")


def test_prefix_families_cover_future_reasons():
    assert classify_stall_reason("wait:anything-new") == "pool-queue"
    assert classify_stall_reason("pace:some-new-mechanism") == "pacing"
    assert classify_stall_reason("slowdown:new-band") == "write-gate"


def test_unknown_reasons_stay_visible_in_other():
    assert classify_stall_reason("completely-novel") == "other"


def test_classes_are_the_documented_fixed_set():
    assert STALL_CLASSES == ("write-gate", "pacing", "flush-wait", "l0-stop",
                             "pool-queue", "network", "objstore", "other")
