"""Property-based invariants of the device/time model."""

from hypothesis import given, settings, strategies as st

from repro.common.options import DeviceProfile
from repro.storage.simdisk import SimDisk

PROFILE = DeviceProfile("t", seek_time_s=0.01, bulk_seek_time_s=0.001,
                        read_bandwidth=1000.0, write_bandwidth=500.0)


@st.composite
def io_ops(draw):
    ops = []
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["fg", "stream", "bg", "drain"]))
        nbytes = draw(st.integers(0, 5000))
        ops.append((kind, nbytes))
    return ops


@settings(max_examples=60, deadline=None)
@given(io_ops())
def test_clock_monotone_and_busy_bounded(ops):
    disk = SimDisk(PROFILE)
    last_now = 0.0
    for kind, nbytes in ops:
        if kind == "fg":
            disk.fg_io(nbytes_read=nbytes, seeks=1)
            # After a foreground op the channel frees exactly at "now".
            assert disk.busy_until == disk.clock.now
        elif kind == "stream":
            disk.fg_stream(nbytes_write=nbytes)
        elif kind == "bg":
            granted = disk.bg_grant(0.0, nbytes / 1000.0, lookahead_s=0.01)
            assert granted >= 0.0
            assert disk.busy_until <= disk.clock.now + 0.01 + 1e-12
        else:
            disk.sync_drain(nbytes / 1000.0)
            assert disk.busy_until == disk.clock.now
        assert disk.clock.now >= last_now
        last_now = disk.clock.now


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3000), st.booleans()), min_size=1,
                max_size=30))
def test_byte_counters_additive(ops):
    disk = SimDisk(PROFILE)
    expect_r = expect_w = 0
    for nbytes, is_read in ops:
        if is_read:
            disk.fg_io(nbytes_read=nbytes)
            expect_r += nbytes
        else:
            disk.fg_io(nbytes_write=nbytes)
            expect_w += nbytes
    assert disk.bytes_read == expect_r
    assert disk.bytes_written == expect_w


@settings(max_examples=40, deadline=None)
@given(st.floats(0.0, 10.0), st.floats(0.0, 10.0), st.floats(0.0, 1.0))
def test_bg_grant_never_exceeds_request_or_horizon(now, want, lookahead):
    disk = SimDisk(PROFILE)
    disk.clock.now = now
    granted = disk.bg_grant(0.0, want, lookahead)
    assert 0.0 <= granted <= want + 1e-12
    assert disk.busy_until <= now + lookahead + 1e-9
