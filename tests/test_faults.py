"""Fault injection: deterministic plans, retries, degradation, equivalence."""

import pytest

from repro.common.errors import ConfigError, TransientIOError
from repro.common.options import FaultOptions
from repro.faults.plan import FaultInjector, FaultPlan, parse_fault_spec
from repro.storage.background import BackgroundPool
from tests.conftest import make_tiny_db


# --------------------------------------------------------------- options/spec
def test_fault_options_validation():
    with pytest.raises(ConfigError):
        FaultOptions(rate=1.0)
    with pytest.raises(ConfigError):
        FaultOptions(rate=-0.1)
    with pytest.raises(ConfigError):
        FaultOptions(op_windows=((5, 5),))
    with pytest.raises(ConfigError):
        FaultOptions(time_windows=((-1.0, 2.0),))
    with pytest.raises(ConfigError):
        FaultOptions(max_retries=0)
    with pytest.raises(ConfigError):
        FaultOptions(backoff_base_s=0.0)
    with pytest.raises(ConfigError):
        FaultOptions(backoff_max_s=0.0001, backoff_base_s=0.001)


def test_fault_options_enabled():
    assert not FaultOptions().enabled
    assert FaultOptions(rate=0.1).enabled
    assert FaultOptions(op_windows=((0, 5),)).enabled
    assert FaultOptions(time_windows=((0.0, 1.0),)).enabled


def test_parse_fault_spec():
    o = parse_fault_spec("rate=0.01,seed=7,retries=4,ops=100:200")
    assert o.rate == 0.01 and o.seed == 7 and o.max_retries == 4
    assert o.op_windows == ((100, 200),)
    o = parse_fault_spec("time=0.5:0.75,backoff=0.001,backoff_max=0.01,giveup=0.5")
    assert o.time_windows == ((0.5, 0.75),)
    assert o.backoff_base_s == 0.001 and o.backoff_max_s == 0.01
    assert o.giveup_backoff_s == 0.5
    with pytest.raises(ConfigError):
        parse_fault_spec("nonsense=1")
    with pytest.raises(ConfigError):
        parse_fault_spec("rate=oops")


# ----------------------------------------------------------------------- plan
def test_plan_is_deterministic():
    a = FaultPlan(FaultOptions(seed=3, rate=0.2))
    b = FaultPlan(FaultOptions(seed=3, rate=0.2))
    assert [a.attempt_fails(0.0) for _ in range(500)] == \
           [b.attempt_fails(0.0) for _ in range(500)]


def test_plan_seed_changes_decisions():
    a = FaultPlan(FaultOptions(seed=3, rate=0.2))
    b = FaultPlan(FaultOptions(seed=4, rate=0.2))
    assert [a.attempt_fails(0.0) for _ in range(500)] != \
           [b.attempt_fails(0.0) for _ in range(500)]


def test_plan_rate_roughly_honoured():
    plan = FaultPlan(FaultOptions(seed=1, rate=0.1))
    hits = sum(plan.attempt_fails(0.0) for _ in range(5000))
    assert 300 < hits < 700  # ~500 expected


def test_plan_op_window_fails_exactly_inside():
    plan = FaultPlan(FaultOptions(op_windows=((10, 13),)))
    fails = [plan.attempt_fails(0.0) for _ in range(20)]
    assert fails == [i in (10, 11, 12) for i in range(20)]


def test_plan_time_window():
    plan = FaultPlan(FaultOptions(time_windows=((1.0, 2.0),)))
    assert not plan.attempt_fails(0.5)
    assert plan.attempt_fails(1.0)
    assert plan.attempt_fails(1.999)
    assert not plan.attempt_fails(2.0)


def test_plan_check_raises_transient():
    plan = FaultPlan(FaultOptions(op_windows=((0, 1),)))
    with pytest.raises(TransientIOError):
        plan.check(0.0)
    plan.check(0.0)  # second attempt is clean


# ----------------------------------------------------- foreground retry loop
def test_foreground_fault_adds_latency_not_loss():
    db = make_tiny_db("iam")
    injector = db.runtime.attach_faults(FaultOptions(seed=2, op_windows=((0, 3),)))
    t0 = db.runtime.clock.now
    db.put(1, 32)
    assert db.runtime.clock.now > t0
    assert injector.fg_errors >= 3
    assert db.metrics.events["fault:fg-error"] == injector.fg_errors
    assert db.get(1) == 32


def test_foreground_backoff_plateaus_past_max_retries():
    db = make_tiny_db("iam")
    opts = FaultOptions(seed=2, op_windows=((0, 10),), max_retries=2,
                        backoff_base_s=0.001, backoff_max_s=0.002,
                        giveup_backoff_s=0.05)
    injector = db.runtime.attach_faults(opts)
    t0 = db.runtime.clock.now
    db.put(1, 32)
    # 10 faulted attempts: 2 bounded backoffs, 8 at the give-up pace.
    assert injector.fg_errors == 10
    assert db.metrics.events["fault:fg-giveup"] == 8
    elapsed = db.runtime.clock.now - t0
    assert elapsed > 8 * 0.05
    assert db.get(1) == 32


# ------------------------------------------------------- background job faults
def _drain(db):
    db.flush()
    db.runtime.quiesce()


def test_job_fault_retries_with_backoff():
    db = make_tiny_db("iam")
    # Foreground attempts are plentiful; make only a narrow window fail so a
    # background activation lands in it with retries left.
    db.runtime.attach_faults(FaultOptions(seed=5, rate=0.02))
    for i in range(600):
        db.put(i % 300, 48)
    _drain(db)
    pool = db.runtime.pool
    assert db.metrics.events.get("fault:job-fault", 0) >= 1
    assert pool.failed_jobs == 0  # retries succeeded, nothing gave up
    for i in range(300):
        assert db.get(i) == 48
    db.check_invariants()


def test_flush_never_dropped_on_giveup():
    db = make_tiny_db("iam")
    # A flush gives up iff its first max_retries+1 activations all fault:
    # at rate 0.9 with max_retries=1 most flushes exhaust retries at least
    # once, and the job must be re-queued, never dropped.
    db.runtime.attach_faults(FaultOptions(
        seed=1, rate=0.9, max_retries=1,
        backoff_base_s=0.0005, backoff_max_s=0.001, giveup_backoff_s=0.01))
    for i in range(400):
        db.put(i, 48)
    _drain(db)
    assert db.metrics.events.get("fault:flush-requeue", 0) >= 1
    for i in range(400):
        assert db.get(i) == 48
    db.check_invariants()


def test_compaction_giveup_requeues_and_degrades():
    db = make_tiny_db("leveldb")
    db.runtime.attach_faults(FaultOptions(
        seed=1, rate=0.9, max_retries=1,
        backoff_base_s=0.0005, backoff_max_s=0.001, giveup_backoff_s=0.01))
    for i in range(1200):
        db.put(i % 500, 48)
    pool = db.runtime.pool
    assert db.metrics.events.get("fault:job-giveup", 0) >= 1
    assert pool.failed_jobs >= 1
    # The degraded write gate paced writers while the streak was nonzero.
    assert db.metrics.events.get("slowdown:fault-degraded", 0) >= 1
    _drain(db)
    for i in range(500):
        assert db.get(i) == 48
    db.check_invariants()


def test_failed_streak_resets_on_success():
    db = make_tiny_db("leveldb")
    db.runtime.attach_faults(FaultOptions(
        seed=1, op_windows=((50, 400),), max_retries=1,
        backoff_base_s=0.0005, backoff_max_s=0.001, giveup_backoff_s=0.01))
    for i in range(1500):
        db.put(i % 500, 48)
    _drain(db)
    # After the window closes, jobs retire cleanly and the streak resets.
    assert db.runtime.pool.failed_streak == 0
    db.check_invariants()


# ------------------------------------------------------------- determinism
def _run_faulted(seed):
    db = make_tiny_db("iam")
    db.runtime.attach_faults(FaultOptions(seed=seed, rate=0.03))
    for i in range(500):
        db.put(i % 200, 48)
    _drain(db)
    return (db.runtime.clock.now, db.metrics.wal_bytes,
            db.write_amplification(), dict(db.metrics.events),
            db.space_used_bytes())


def test_faulted_runs_are_deterministic():
    assert _run_faulted(9) == _run_faulted(9)


def test_never_firing_injector_is_equivalent_to_none():
    def run(attach):
        db = make_tiny_db("iam")
        if attach:
            # enabled (rate > 0) but the windowless rate never fires at
            # this magnitude within the run's attempt count.
            db.runtime.attach_faults(FaultOptions(seed=1, rate=1e-12))
        for i in range(400):
            db.put(i % 200, 48)
        _drain(db)
        return (db.runtime.clock.now, db.metrics.wal_bytes,
                db.write_amplification(), dict(db.metrics.events))

    assert run(False) == run(True)


def test_disabled_options_never_hook():
    db = make_tiny_db("iam")
    injector = db.runtime.attach_faults(FaultOptions())  # disabled
    for i in range(100):
        db.put(i, 48)
    _drain(db)
    assert injector.plan.ops == 0  # no attempt was ever consumed
    assert injector.fg_errors == 0


def test_injector_snapshot_is_jsonable():
    import json
    db = make_tiny_db("iam")
    injector = db.runtime.attach_faults(FaultOptions(seed=3, rate=0.05))
    for i in range(200):
        db.put(i, 48)
    _drain(db)
    snap = injector.snapshot()
    json.dumps(snap)
    assert snap["attempts"] == injector.plan.ops
    assert snap["fg_errors"] == injector.fg_errors
