"""WriteBatch atomicity and the lazy iterate() API."""

import pytest

from repro.common.errors import ReproError
from tests.conftest import ALL_ENGINES, make_tiny_db


def test_batch_commit_applies_all():
    db = make_tiny_db("iam")
    with db.write_batch() as b:
        b.put(1, 10)
        b.put(2, 20)
        b.delete(3)
    assert db.get(1) == 10 and db.get(2) == 20 and db.get(3) is None


def test_batch_discarded_on_exception():
    db = make_tiny_db("iam")
    db.put(1, 1)
    with pytest.raises(RuntimeError):
        with db.write_batch() as b:
            b.put(1, 99)
            raise RuntimeError("boom")
    assert db.get(1) == 1  # nothing from the failed batch applied


def test_batch_sequences_are_consecutive():
    db = make_tiny_db("iam")
    db.put(0, 1)
    seq0 = db._seq
    b = db.write_batch()
    b.put(1, 1).put(2, 2).delete(1)
    b.commit()
    assert db._seq == seq0 + 3
    assert db.get(1) is None  # the later delete in the batch wins
    assert db.get(2) == 2


def test_batch_reuse_rejected():
    db = make_tiny_db("iam")
    b = db.write_batch()
    b.put(1, 1)
    b.commit()
    with pytest.raises(ReproError):
        b.put(2, 2)
    with pytest.raises(ReproError):
        b.commit()


def test_batch_accounting_matches_singles():
    """A batch costs the same bytes/time as the singles (the simulated WAL
    is buffered, so group commit buys atomicity, not bandwidth)."""
    single = make_tiny_db("iam")
    t0 = single.clock_now
    for i in range(20):
        single.put(i, 64)
    t_single = single.clock_now - t0

    batched = make_tiny_db("iam")
    t0 = batched.clock_now
    with batched.write_batch() as b:
        for i in range(20):
            b.put(i, 64)
    t_batch = batched.clock_now - t0
    assert t_batch == pytest.approx(t_single, rel=1e-6)
    assert batched.metrics.user_bytes == single.metrics.user_bytes
    assert batched.metrics.wal_bytes == single.metrics.wal_bytes


def test_batch_survives_crash():
    db = make_tiny_db("iam")
    with db.write_batch() as b:
        for i in range(10):
            b.put(i, i + 100)
    db.crash_and_recover()
    for i in range(10):
        assert db.get(i) == i + 100


def test_empty_batch_is_noop():
    db = make_tiny_db("iam")
    seq0 = db._seq
    with db.write_batch():
        pass
    assert db._seq == seq0


def test_batch_len_and_clear():
    db = make_tiny_db("iam")
    b = db.write_batch()
    b.put(1, 1).put(2, 2)
    assert len(b) == 2
    b.clear()
    assert len(b) == 0
    b.commit()
    assert db.get(1) is None


@pytest.mark.parametrize("engine", ["iam", "lsa", "leveldb"])
def test_iterate_matches_scan(engine):
    db = make_tiny_db(engine)
    import random
    rng = random.Random(1)
    for _ in range(2000):
        db.put(rng.randrange(500), rng.randrange(10, 80))
    assert list(db.iterate(100, 400)) == db.scan(100, 400)
    assert list(db.iterate()) == db.scan()


def test_iterate_is_lazy():
    db = make_tiny_db("iam", storage_kw=dict(page_cache_bytes=0))
    import random
    rng = random.Random(2)
    seen = set()
    while len(seen) < 3000:
        k = rng.randrange(1 << 28)
        if k not in seen:
            seen.add(k)
            db.put(k, 64)
    db.quiesce()
    before = db.metrics.cache_misses
    it = db.iterate()
    for _ in range(5):
        next(it)
    partial = db.metrics.cache_misses - before
    list(it)  # drain
    full = db.metrics.cache_misses - before
    assert partial < full / 3


def test_iterate_with_snapshot():
    db = make_tiny_db("iam")
    db.put(1, 10)
    snap = db.snapshot()
    db.put(1, 20)
    db.put(2, 30)
    assert list(db.iterate(snapshot=snap)) == [(1, 10)]
    snap.release()
