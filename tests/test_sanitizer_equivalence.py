"""The sanitizer is observation-only: a sanitized run must be byte-identical
to an unsanitized one -- same write amplification, same final tree shape, same
simulated clock -- and a well-formed workload must produce zero violations."""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from tests.conftest import tiny_iam_options, tiny_storage_options
from repro.check.sanitizer import SanitizerOptions
from repro.db.iamdb import IamDB

# One mixed-workload step: (op, key, extra).
OPS = st.sampled_from(["put", "delete", "get", "scan"])
STEP = st.tuples(OPS, st.integers(min_value=0, max_value=255),
                 st.integers(min_value=16, max_value=96))


def run_workload(engine: str, steps, *, sanitize: bool, crash_at=None):
    options = SanitizerOptions() if sanitize else None
    db = IamDB(engine, engine_options=tiny_iam_options(),
               storage_options=tiny_storage_options(),
               sanitizer_options=options)
    reads = []
    for i, (op, key, extra) in enumerate(steps):
        if op == "put":
            db.put(key, extra)
        elif op == "delete":
            db.delete(key)
        elif op == "get":
            reads.append((key, db.get(key)))
        else:
            reads.append(tuple(db.scan(key, key + 16, limit=4)))
        if crash_at is not None and i == crash_at:
            db.flush()
            db.crash_and_recover()
    db.flush()
    db.quiesce()
    digest = {
        "wa": db.write_amplification(),
        "shape": db.engine.describe(),
        "space": db.space_used_bytes(),
        "clock": db.clock_now,
        "reads": reads,
    }
    violations = None if db.sanitizer is None else list(db.sanitizer.violations)
    db.close()
    return digest, violations


@settings(max_examples=12, deadline=None)
@given(steps=st.lists(STEP, min_size=40, max_size=160),
       engine=st.sampled_from(["iam", "lsa"]))
def test_sanitized_run_is_byte_identical(steps, engine):
    crash_at = len(steps) // 2
    plain, _ = run_workload(engine, steps, sanitize=False, crash_at=crash_at)
    checked, violations = run_workload(engine, steps, sanitize=True,
                                       crash_at=crash_at)
    assert violations == []
    assert checked == plain


@settings(max_examples=8, deadline=None)
@given(steps=st.lists(STEP, min_size=30, max_size=100))
def test_ycsb_style_mix_has_no_violations(steps):
    _, violations = run_workload("iam", steps, sanitize=True)
    assert violations == []
