"""Shared fixtures: tiny engine configurations that exercise deep trees fast."""

from __future__ import annotations

import random

import pytest

from repro.common.options import IamOptions, LsmOptions, StorageOptions, SSD
from repro.db.iamdb import IamDB

TINY_VALUE = 64


def tiny_iam_options(**kw) -> IamOptions:
    """IAM/LSA options small enough that a few KB of data builds 3+ levels."""
    defaults = dict(node_capacity=2048, fanout=3, key_size=8,
                    bloom_bits_per_key=14, retune_interval=2)
    defaults.update(kw)
    return IamOptions(**defaults)


def tiny_lsm_options(style: str = "leveldb", **kw) -> LsmOptions:
    defaults = dict(memtable_bytes=2048, file_bytes=1024, level1_bytes=3072,
                    level_size_multiplier=4, max_levels=5, key_size=8)
    defaults.update(kw)
    if style == "rocksdb":
        return LsmOptions.rocksdb(**defaults)
    return LsmOptions.leveldb(**defaults)


def tiny_storage_options(**kw) -> StorageOptions:
    defaults = dict(device=SSD, page_cache_bytes=16 * 1024, block_size=256)
    defaults.update(kw)
    return StorageOptions(**defaults)


def make_tiny_db(engine: str = "iam", *, storage_kw=None, **engine_kw) -> IamDB:
    """A DB with tiny thresholds (fast deep trees) for behavioural tests."""
    storage = tiny_storage_options(**(storage_kw or {}))
    if engine in ("iam", "lsa"):
        opts = tiny_iam_options(**engine_kw)
    else:
        style = "rocksdb" if engine == "rocksdb" else "leveldb"
        opts = tiny_lsm_options(style, **engine_kw)
    return IamDB(engine, engine_options=opts, storage_options=storage)


def make_matched_db(engine: str, *, storage_kw=None, **engine_kw) -> IamDB:
    """A DB with paper-ratio options (fanout/multiplier 10) at small size.

    Use for amplification-*shape* tests: the tiny t=3 configs above are great
    for exercising deep-tree mechanics quickly, but only t=10 preserves the
    paper's WA relationships between engines.
    """
    skw = dict(page_cache_bytes=256 * 1024)
    skw.update(storage_kw or {})
    storage = tiny_storage_options(**skw)
    if engine in ("iam", "lsa"):
        defaults = dict(node_capacity=8192, fanout=10, key_size=8)
        defaults.update(engine_kw)
        opts = IamOptions(**defaults)
    else:
        defaults = dict(memtable_bytes=8192, file_bytes=4096,
                        level1_bytes=40960, level_size_multiplier=10,
                        max_levels=6, key_size=8)
        defaults.update(engine_kw)
        if engine == "rocksdb":
            opts = LsmOptions.rocksdb(**defaults)
        else:
            opts = LsmOptions.leveldb(**defaults)
    return IamDB(engine, engine_options=opts, storage_options=storage)


ALL_ENGINES = ("iam", "lsa", "leveldb", "rocksdb", "flsm")


@pytest.fixture(params=ALL_ENGINES)
def any_engine_db(request) -> IamDB:
    return make_tiny_db(request.param)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
