"""Crash-point scheduler, hard crash model, and the durability matrix."""

import pytest

from repro.common.errors import ConfigError
from repro.faults.crash import (
    CRASH_SITES,
    CrashPoints,
    CrashSpec,
    SimulatedCrash,
    run_crash_matrix,
)
from tests.conftest import make_tiny_db


# ---------------------------------------------------------------- CrashPoints
def test_crash_points_validation():
    with pytest.raises(ConfigError):
        CrashPoints("not-a-site")
    with pytest.raises(ConfigError):
        CrashPoints("mid-flush", occurrence=0)


def test_crash_points_fires_once_at_exact_occurrence():
    cp = CrashPoints("mid-flush", occurrence=2)
    cp.reached("mid-flush")
    with pytest.raises(SimulatedCrash) as exc:
        cp.reached("mid-flush")
    assert exc.value.site == "mid-flush" and exc.value.occurrence == 2
    cp.reached("mid-flush")  # fired already: pure counter from here on
    assert cp.counts["mid-flush"] == 3


def test_disarmed_crash_points_only_count():
    cp = CrashPoints()
    for site in CRASH_SITES:
        cp.reached(site)
    assert all(cp.counts[s] == 1 for s in CRASH_SITES)
    assert not cp.fired


def test_simulated_crash_is_not_a_repro_error():
    from repro.common.errors import ReproError
    assert not issubclass(SimulatedCrash, ReproError)


# ------------------------------------------------------------ hard crash model
def test_crash_mid_flush_abandons_job_and_recovers():
    db = make_tiny_db("iam")
    cp = CrashPoints("mid-flush", occurrence=1)
    db.runtime.arm_crash_points(cp)
    with pytest.raises(SimulatedCrash):
        for i in range(2000):
            db.put(i, 48)
    crashed_at = i
    report = db.crash_and_recover()
    assert report.abandoned_jobs >= 1
    assert db.runtime.pool.active == [] and not db.runtime.pool.queue
    # Every acked write survived (no torn tail).
    for k in range(crashed_at):
        assert db.get(k) == 48, k
    db.check_invariants()


def test_torn_tail_loses_whole_batches_only():
    db = make_tiny_db("iam")
    db.put(1, 11)
    with db.write_batch() as b:
        for i in range(10, 20):
            b.put(i, 99)
    db.put(2, 22)
    # Tear 3 records: the single put (seq boundary) goes, then the keep
    # point must snap below the whole batch, never inside it.
    report = db.crash_and_recover(CrashSpec(torn_tail_records=3))
    assert report.torn_records == 11  # 1 single + the 10-record batch
    assert db.get(2) is None
    assert all(db.get(i) is None for i in range(10, 20))
    assert db.get(1) == 11


def test_torn_tail_zero_is_noop():
    db = make_tiny_db("iam")
    db.put(1, 11)
    report = db.crash_and_recover(CrashSpec(torn_tail_records=0))
    assert report.torn_records == 0
    assert db.get(1) == 11


def test_recovery_report_fields():
    db = make_tiny_db("iam")
    for i in range(600):
        db.put(i, 48)
    report = db.crash_and_recover()
    d = report.as_dict()
    assert d["recovered_seq"] == 600
    assert d["recovered_seq"] >= d["durable_seq"]
    assert d["replayed_records"] == len(db.memtable)
    assert db._seq == 600


def test_seq_rewinds_to_recovered_cut():
    db = make_tiny_db("iam")
    for i in range(1, 9):
        db.put(i, i)
    db.crash_and_recover(CrashSpec(torn_tail_records=3))
    assert db._seq == 5
    db.put(100, 1)
    assert db._seq == 6  # reissues the torn sequence numbers


def test_crash_sweeps_orphan_files():
    db = make_tiny_db("leveldb")
    cp = CrashPoints("mid-flush", occurrence=2)
    db.runtime.arm_crash_points(cp)
    with pytest.raises(SimulatedCrash):
        for i in range(4000):
            db.put(i % 700, 48)
    db.crash_and_recover()
    # Space accounting agrees with the files a fresh walk can see.
    disk = db.runtime.disk
    assert disk.live_bytes == sum(f.nbytes for f in disk.files.values())
    live = set(db.engine.live_file_ids())
    live.add(db.wal.file_id)
    live.add(db.manifest.file_id)
    assert set(disk.files) == live
    db.check_invariants()


def test_crash_during_engine_structural_site():
    # mid-combine fires inside an LSA structural mutation; the restored
    # checkpoint must roll the half-applied mutation back.
    db = make_tiny_db("lsa")
    cp = CrashPoints("mid-combine", occurrence=1)
    db.runtime.arm_crash_points(cp)
    seen = {}
    with pytest.raises(SimulatedCrash):
        for i in range(20000):
            k = i % 900
            db.put(k, 48)
            seen[k] = 48
    db.crash_and_recover()
    for k, v in seen.items():
        assert db.get(k) == v, k
    db.check_invariants()


def test_workload_continues_after_recovery():
    db = make_tiny_db("iam")
    cp = CrashPoints("post-checkpoint", occurrence=1)
    db.runtime.arm_crash_points(cp)
    i = 0
    try:
        for i in range(3000):
            db.put(i % 500, 40)
    except SimulatedCrash:
        db.crash_and_recover()
    for j in range(i, 3000):
        db.put(j % 500, 40)
    db.quiesce()
    for k in range(500):
        assert db.get(k) == 40, k
    db.check_invariants()


# ----------------------------------------------------------------- the matrix
def test_crash_matrix_iam_holds_contract():
    report = run_crash_matrix(("iam",), n_ops=150, per_site=1, seed=1,
                              torn_variants=(0, 3))
    assert report["n_cases"] > 0
    assert report["n_failures"] == 0, report["failures"]
    # The workload reaches the flush/checkpoint pipeline at minimum.
    for site in ("post-wal-append", "mid-flush", "pre-checkpoint",
                 "post-checkpoint", "post-rotate"):
        assert report["sites"]["iam"].get(site, 0) > 0, site


def test_crash_matrix_leveldb_holds_contract():
    report = run_crash_matrix(("leveldb",), n_ops=150, per_site=1, seed=1,
                              torn_variants=(0,))
    assert report["n_failures"] == 0, report["failures"]
    assert report["sites"]["leveldb"].get("post-compact", 0) > 0


def test_crash_matrix_report_is_jsonable():
    import json
    report = run_crash_matrix(("iam",), n_ops=60, per_site=1, seed=2,
                              torn_variants=(0,), sanitize=False)
    json.dumps(report)
