"""db_bench workloads: loads, overwrite, sequential/point reads."""

import pytest

from repro.workloads import (
    fill_random,
    fill_seq,
    hash_load,
    overwrite,
    read_random,
    read_seq,
)
from repro.workloads.distributions import permute64
from tests.conftest import make_tiny_db


def test_hash_load_unique_unordered():
    db = make_tiny_db("iam")
    rep = hash_load(db, 500, value_size=64)
    assert rep.ops == 500
    assert rep.name == "hash-load"
    assert len(db.scan(None, None)) == 500  # no collisions -> no updates


def test_fill_seq_is_cheap_for_lsa():
    db = make_tiny_db("lsa")
    rep = fill_seq(db, 2000, value_size=64)
    assert rep.write_amplification < 1.4
    assert db.get(0) == 64 and db.get(1999) == 64


def test_fill_random_has_updates():
    db = make_tiny_db("iam")
    rep = fill_random(db, 800, value_size=64)
    # collisions mean fewer live rows than ops
    assert len(db.scan(None, None)) < 800


def test_overwrite_keeps_logical_size():
    db = make_tiny_db("iam")
    hash_load(db, 400, value_size=64)
    before = len(db.scan(None, None))
    overwrite(db, 800, 400, value_size=64)
    assert len(db.scan(None, None)) == before


def test_read_seq_returns_all_rows():
    db = make_tiny_db("iam")
    hash_load(db, 400, value_size=64)
    rep = read_seq(db)
    assert rep.ops == 400


def test_read_random_hits_loaded_keys():
    db = make_tiny_db("iam")
    hash_load(db, 300, value_size=64)
    rep = read_random(db, 200, 300)
    assert rep.latency["read"]["count"] == 200


def test_reports_have_throughput_and_space():
    db = make_tiny_db("leveldb")
    rep = hash_load(db, 600, value_size=64)
    assert rep.throughput > 0
    assert rep.space_used_bytes > 0
    row = rep.row()
    assert row["engine"] == "leveldb"
    assert row["ops"] == 600


def test_quiesce_false_leaves_background_work():
    db = make_tiny_db("leveldb")
    rep = hash_load(db, 2000, value_size=64, quiesce=False)
    rep_q = db.quiesce()
    db.check_invariants()
