"""MetricsRegistry: amplification bookkeeping."""

import pytest

from repro.metrics import LatencyRecorder, MetricsRegistry


def test_write_amplification_definition():
    m = MetricsRegistry()
    m.add_user_bytes(100)
    m.add_level_write(1, 150)
    m.add_level_write(2, 250)
    assert m.compaction_write_bytes == 400
    assert m.write_amplification() == pytest.approx(4.0)


def test_wal_excluded_by_default():
    m = MetricsRegistry()
    m.add_user_bytes(100)
    m.add_wal_bytes(100)
    m.add_level_write(1, 100)
    assert m.write_amplification() == pytest.approx(1.0)
    assert m.write_amplification(include_wal=True) == pytest.approx(2.0)


def test_zero_user_bytes_gives_zero():
    m = MetricsRegistry()
    m.add_level_write(1, 500)
    assert m.write_amplification() == 0.0
    assert m.per_level_write_amplification() == {}


def test_per_level_attribution_sorted():
    m = MetricsRegistry()
    m.add_user_bytes(100)
    m.add_level_write(3, 300)
    m.add_level_write(1, 100)
    per = m.per_level_write_amplification()
    assert list(per) == [1, 3]
    assert per[3] == pytest.approx(3.0)


def test_read_amplification_per_query():
    m = MetricsRegistry()
    m.add_query_io(seeks=3, hits=1, misses=3)
    m.record_latency("read", 0.001)
    m.record_latency("read", 0.002)
    assert m.read_amplification(("read",)) == pytest.approx(1.5)
    assert m.read_amplification(("scan",)) == 0.0


def test_space_amplification_static():
    assert MetricsRegistry.space_amplification(150, 100) == pytest.approx(1.5)
    assert MetricsRegistry.space_amplification(150, 0) == 0.0


def test_events_and_summary():
    m = MetricsRegistry()
    m.bump("split")
    m.bump("split", 2)
    assert m.events["split"] == 3
    m.add_user_bytes(10)
    s = m.summary()
    assert s["user_bytes"] == 10.0


def test_latency_recorder_digests():
    r = LatencyRecorder()
    for v in [0.001, 0.002, 0.003, 0.100]:
        r.record(v)
    assert r.count == 4
    assert r.max == pytest.approx(0.1)
    assert r.mean == pytest.approx(0.0265)
    assert r.percentile(50) == pytest.approx(0.0025)
    assert r.p99() > 0.09
    d = r.tail_summary()
    assert d["count"] == 4.0 and d["max"] == pytest.approx(0.1)


def test_latency_window_summary():
    r = LatencyRecorder()
    r.record(1.0)
    r.record(2.0)
    w = r.window_summary(1)
    assert w["count"] == 1.0 and w["max"] == 2.0
    assert r.window_summary(2)["count"] == 0.0


def test_latency_merged_with():
    a, b = LatencyRecorder(), LatencyRecorder()
    a.record(1.0)
    b.record(3.0)
    c = a.merged_with(b)
    assert c.count == 2 and c.max == 3.0 and c.total == 4.0
    assert a.count == 1  # originals untouched


def test_empty_recorder():
    r = LatencyRecorder()
    assert r.mean == 0.0 and r.p99() == 0.0 and r.max == 0.0
    assert len(r) == 0


def test_merge_snapshots_sums_and_weights():
    from repro.metrics import merge_snapshots
    a, b = MetricsRegistry(), MetricsRegistry()
    a.add_user_bytes(100)
    a.add_level_write(1, 200)
    a.add_query_io(seeks=2, hits=1, misses=1)
    a.add_stall("write-gate", 0.5)
    b.add_user_bytes(100)
    b.add_level_write(1, 300)
    b.add_level_write(2, 100)
    b.add_query_io(seeks=2, hits=2, misses=0)
    b.add_stall("write-gate", 2.0)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["user_bytes"] == 200
    assert merged["compaction_write_bytes"] == 600
    assert merged["write_amplification"] == pytest.approx(3.0)
    assert merged["level_write_bytes"] == {1: 500, 2: 100}
    # Weighted across both caches: 3 hits / 4 lookups.
    assert merged["cache_hit_rate"] == pytest.approx(0.75)
    assert merged["total_stall_s"] == pytest.approx(2.5)
    assert merged["longest_stall_s"] == pytest.approx(2.0)


def test_merge_snapshots_empty_and_identity():
    from repro.metrics import merge_snapshots
    assert merge_snapshots([])["user_bytes"] == 0
    m = MetricsRegistry()
    m.add_user_bytes(50)
    m.add_level_write(1, 100)
    solo = merge_snapshots([m.snapshot()])
    assert solo["write_amplification"] == m.write_amplification()
    assert solo["user_bytes"] == 50
