"""Bench harness: scaled setups, config factory, report formatting."""

import os

import pytest

from repro.bench.report import format_table, normalize_to
from repro.bench.scale import (
    ENGINE_CONFIGS,
    HDD_100G,
    HDD_1T,
    RECORD_BYTES,
    SSD_100G,
    make_db,
    scale_factor,
)


def test_setups_preserve_paper_ratios():
    # data / memory ratios: 100G/16G and 1T/64G
    assert SSD_100G.data_bytes_unscaled / SSD_100G.memory_bytes_unscaled == pytest.approx(100 / 16, rel=0.01)
    assert HDD_1T.data_bytes_unscaled / HDD_1T.memory_bytes_unscaled == pytest.approx(1024 / 64, rel=0.01)
    assert HDD_1T.data_bytes_unscaled == pytest.approx(
        SSD_100G.data_bytes_unscaled * 10.24, rel=0.01)


def test_n_records_consistent():
    assert SSD_100G.n_records == SSD_100G.data_bytes // RECORD_BYTES
    assert HDD_1T.n_records > 9 * SSD_100G.n_records


def test_scale_factor_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.5")
    assert scale_factor() == 0.5
    monkeypatch.setenv("REPRO_SCALE", "garbage")
    assert scale_factor() == 1.0
    monkeypatch.delenv("REPRO_SCALE")
    assert scale_factor() == 1.0


def test_engine_configs_cover_paper_legend():
    assert set(ENGINE_CONFIGS) == {"L", "R-1t", "R-4t", "A-1t", "A-4t", "I-1t", "I-4t"}


@pytest.mark.parametrize("config", list(ENGINE_CONFIGS))
def test_make_db_builds_each_config(config):
    db = make_db(config, SSD_100G)
    engine, threads = ENGINE_CONFIGS[config]
    assert db.engine.name == engine
    assert db.runtime.pool.threads == threads
    assert db.runtime.cache.capacity_bytes == SSD_100G.memory_bytes
    db.put(1, 64)
    assert db.get(1) == 64


def test_device_profiles_attached():
    assert make_db("L", SSD_100G).runtime.disk.profile.name == "ssd"
    assert make_db("L", HDD_100G).runtime.disk.profile.name == "hdd"


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], ["xxx", 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_normalize_to_baseline():
    vals = {"L": 2.0, "I": 5.0}
    norm = normalize_to("L", vals)
    assert norm == {"L": 1.0, "I": 2.5}
    assert normalize_to("missing", vals) == {"L": 0.0, "I": 0.0}
