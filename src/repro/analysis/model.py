"""The paper's analytical amplification model (§5.3, Eq. 3-5; §2.1).

These closed forms predict the *shape* the measured experiments should
follow; the ablation benchmark ``benchmarks/bench_ablation_model.py`` checks
measured-vs-model agreement.

Notation: ``n`` on-disk levels, fanout ``t`` (default 10), mixed level ``m``,
mixed-level sequence bound ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.common.errors import ConfigError


def lsm_write_amplification(n: int, t: int = 10) -> float:
    """§2.1: each level-to-level compaction rewrites ~t+1 bytes per byte,
    so LSM's total is about ``(t + 1) * (n - 1)`` (the paper quotes 11(n-1))."""
    if n < 1:
        raise ConfigError("n must be >= 1")
    return (t + 1) * max(0, n - 1)


def split_write_amplification(n: int, t: int = 10) -> float:
    """Eq. (5): W_sp = 2 * sum_{j=1..n-1} (2/t)^j -- tiny for t = 10."""
    if n < 1:
        raise ConfigError("n must be >= 1")
    return 2.0 * sum((2.0 / t) ** j for j in range(1, n))


def lsa_write_amplification(n: int, t: int = 10) -> float:
    """Eq. (3): W_lsa = W_sp + n (appends write each byte once per level)."""
    return split_write_amplification(n, t) + n


def iam_write_amplification(n: int, m: int, k: int, t: int = 10) -> float:
    """Eq. (4): appends above m, t/2k at the mixed level, t/2 below it."""
    if k < 1:
        raise ConfigError("k must be >= 1")
    base = split_write_amplification(n, t) + n
    if m > n:
        return base  # degenerates into LSA
    extra = t / (2.0 * k) + (t / 2.0) * max(0, n - m)
    return base + extra


def lsa_read_amplification(n: int, m: int, t: int = 10) -> float:
    """§5.3.2: ~0.5t sequences per node in each uncached level."""
    return 0.5 * t * max(0, n - m + 1)


def iam_read_amplification(n: int, m: int) -> float:
    """§5.3.2: at most one seek per uncached level -- same as LSM."""
    return float(max(0, n - m + 1))


lsm_read_amplification = iam_read_amplification


@dataclass(frozen=True)
class AmplificationSummary:
    """One row of Table 1 in numbers."""

    tree: str
    write: float
    read_scan: float
    space: str  # qualitative: "low" / "high"


def table1_summary(n: int, m: int, k: int, t: int = 10) -> Dict[str, AmplificationSummary]:
    """Quantified Table 1: LSM vs LSA vs IAM for a given configuration."""
    return {
        "lsm": AmplificationSummary("lsm", lsm_write_amplification(n, t),
                                    iam_read_amplification(n, m), "low"),
        "lsa": AmplificationSummary("lsa", lsa_write_amplification(n, t),
                                    lsa_read_amplification(n, m, t), "high"),
        "iam": AmplificationSummary("iam", iam_write_amplification(n, m, k, t),
                                    iam_read_amplification(n, m), "low"),
    }
