"""Closed-form amplification model from §5.3."""

from repro.analysis.model import (
    AmplificationSummary,
    iam_read_amplification,
    iam_write_amplification,
    lsa_read_amplification,
    lsa_write_amplification,
    lsm_write_amplification,
    split_write_amplification,
    table1_summary,
)

__all__ = [
    "AmplificationSummary",
    "iam_read_amplification",
    "iam_write_amplification",
    "lsa_read_amplification",
    "lsa_write_amplification",
    "lsm_write_amplification",
    "split_write_amplification",
    "table1_summary",
]
