"""In-memory write buffer."""

from repro.memtable.memtable import Memtable

__all__ = ["Memtable"]
