"""Memtable: the sorted in-memory component.

LevelDB uses a skip list; a Python skip list is strictly slower than the
standard library's primitives, so the memtable keeps a two-tier key index:

* ``_sorted_keys`` -- distinct keys in sorted order (the *base* tier);
* ``_delta_keys``  -- distinct keys inserted since the last consolidation,
  in arrival order (the *delta* tier).

Inserting a new key appends to the delta in O(1); ordered access
(``iter_range`` / ``sorted_records``) consolidates the delta into the base
lazily.  Consolidation sorts the delta and re-sorts the concatenation, which
Timsort handles in near-linear time because both halves are runs -- so a bulk
load of n records costs O(n log n) total instead of the O(n^2) element shifts
of per-record ``bisect.insort``.  Point reads never touch the key index: they
go straight to the per-key version map.

The public behaviour is what the engines rely on:

* MVCC: every version is kept until flush; ``get`` honours snapshots.
* Size accounting in *encoded* bytes, so the capacity threshold ``Ct``
  matches what the flush will write.
* ``sorted_records()`` emits a valid sorted run: (key asc, seq desc).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.check.diagnostics import invariant_error
from repro.common.records import (
    Key,
    PUT,
    RECORD_OVERHEAD,
    RecordTuple,
    encoded_size,
)

#: Version entry stored per key: (seq, kind, vsize).
Version = Tuple[int, int, int]


class Memtable:
    """Sorted, MVCC-aware in-memory buffer."""

    __slots__ = ("key_size", "_sorted_keys", "_delta_keys", "_versions",
                 "nbytes", "n_records", "min_seq", "max_seq")

    def __init__(self, key_size: int) -> None:
        self.key_size = key_size
        self._sorted_keys: List = []
        self._delta_keys: List = []
        self._versions: Dict[object, List[Version]] = {}
        self.nbytes = 0
        self.n_records = 0
        self.min_seq: Optional[int] = None
        self.max_seq: Optional[int] = None

    def __len__(self) -> int:
        return self.n_records

    @property
    def n_keys(self) -> int:
        return len(self._versions)

    def add(self, rec: RecordTuple) -> None:
        """Insert one record (any kind)."""
        key, seq, kind, vsize = rec
        versions = self._versions.get(key)
        if versions is None:
            self._delta_keys.append(key)
            self._versions[key] = [(seq, kind, vsize)]
        else:
            if versions[-1][0] >= seq:
                raise invariant_error(
                    "memtable-seq-order",
                    "memtable sequence numbers must increase per key",
                    key=key, last_seq=versions[-1][0], seq=seq)
            versions.append((seq, kind, vsize))
        self.nbytes += encoded_size(rec, self.key_size)
        self.n_records += 1
        if self.min_seq is None or seq < self.min_seq:
            self.min_seq = seq
        if self.max_seq is None or seq > self.max_seq:
            self.max_seq = seq

    def add_many(self, recs: Iterable[RecordTuple]) -> None:
        """Bulk insert; identical semantics to repeated :meth:`add`.

        Hoists the per-record attribute traffic (size accounting, seq
        watermarks) out of the loop; the delta tier makes the key index
        O(1) per new key either way.
        """
        versions_map = self._versions
        delta = self._delta_keys
        fixed = self.key_size + RECORD_OVERHEAD
        nbytes = 0
        n = 0
        lo = self.min_seq
        hi = self.max_seq
        for rec in recs:
            key, seq, kind, value = rec
            versions = versions_map.get(key)
            if versions is None:
                delta.append(key)
                versions_map[key] = [(seq, kind, value)]
            else:
                if versions[-1][0] >= seq:
                    # Roll the batch's accounting in before raising so the
                    # state matches what repeated add() would have left.
                    self.nbytes += nbytes
                    self.n_records += n
                    if lo is not None:
                        self.min_seq = lo
                        self.max_seq = hi
                    raise invariant_error(
                        "memtable-seq-order",
                        "memtable sequence numbers must increase per key",
                        key=key, last_seq=versions[-1][0], seq=seq)
                versions.append((seq, kind, value))
            nbytes += fixed + (value if type(value) is int else len(value))
            n += 1
            if lo is None or seq < lo:
                lo = seq
            if hi is None or seq > hi:
                hi = seq
        self.nbytes += nbytes
        self.n_records += n
        self.min_seq = lo
        self.max_seq = hi

    def get(self, key: Key,
            snapshot: Optional[int] = None) -> Optional[RecordTuple]:
        """Newest version of ``key`` visible at ``snapshot`` (None = latest)."""
        versions = self._versions.get(key)
        if versions is None:
            return None
        if snapshot is None:
            seq, kind, vsize = versions[-1]
            return (key, seq, kind, vsize)
        for seq, kind, vsize in reversed(versions):
            if seq <= snapshot:
                return (key, seq, kind, vsize)
        return None

    def _consolidate(self) -> List:
        """Fold the delta tier into the sorted base; returns the base."""
        keys = self._sorted_keys
        delta = self._delta_keys
        if delta:
            # base and (sorted) delta are both runs: Timsort merges them in
            # near-linear time via galloping.
            delta.sort()
            keys.extend(delta)
            keys.sort()
            self._delta_keys = []
        return keys

    def iter_range(self, lo: Optional[Key] = None,
                   hi: Optional[Key] = None) -> Iterator[RecordTuple]:
        """Yield records with ``lo <= key < hi`` in (key asc, seq desc) order.

        ``None`` bounds are open.  All versions are yielded; scan-level
        snapshot filtering happens in the merging iterator.
        """
        keys = self._consolidate()
        start = 0 if lo is None else bisect.bisect_left(keys, lo)
        stop = len(keys) if hi is None else bisect.bisect_left(keys, hi)
        versions_map = self._versions
        for i in range(start, stop):
            key = keys[i]
            for seq, kind, vsize in reversed(versions_map[key]):
                yield (key, seq, kind, vsize)

    def sorted_records(self) -> List[RecordTuple]:
        """All records as one sorted run, ready for flushing."""
        keys = self._consolidate()
        versions_map = self._versions
        out: List[RecordTuple] = []
        append = out.append
        for key in keys:
            versions = versions_map[key]
            if len(versions) == 1:
                seq, kind, vsize = versions[0]
                append((key, seq, kind, vsize))
            else:
                for seq, kind, vsize in reversed(versions):
                    append((key, seq, kind, vsize))
        return out

    def approximate_live_records(self) -> int:
        """Distinct keys whose newest version is a PUT (diagnostics)."""
        return sum(1 for v in self._versions.values() if v[-1][1] == PUT)
