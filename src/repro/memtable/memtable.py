"""Memtable: the sorted in-memory component.

LevelDB uses a skip list; a Python skip list is strictly slower than the
standard library's bisect over a sorted key list, so the memtable keeps a
sorted list of distinct keys plus a per-key version list (newest last).  The
public behaviour is what the engines rely on:

* MVCC: every version is kept until flush; ``get`` honours snapshots.
* Size accounting in *encoded* bytes, so the capacity threshold ``Ct``
  matches what the flush will write.
* ``sorted_records()`` emits a valid sorted run: (key asc, seq desc).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.errors import InvariantViolation
from repro.common.records import PUT, RecordTuple, encoded_size

#: Version entry stored per key: (seq, kind, vsize).
Version = Tuple[int, int, int]


class Memtable:
    """Sorted, MVCC-aware in-memory buffer."""

    def __init__(self, key_size: int) -> None:
        self.key_size = key_size
        self._keys: List = []
        self._versions: Dict[object, List[Version]] = {}
        self.nbytes = 0
        self.n_records = 0
        self.min_seq: Optional[int] = None
        self.max_seq: Optional[int] = None

    def __len__(self) -> int:
        return self.n_records

    @property
    def n_keys(self) -> int:
        return len(self._keys)

    def add(self, rec: RecordTuple) -> None:
        """Insert one record (any kind)."""
        key, seq, kind, vsize = rec
        versions = self._versions.get(key)
        if versions is None:
            bisect.insort(self._keys, key)
            self._versions[key] = [(seq, kind, vsize)]
        else:
            if versions[-1][0] >= seq:
                raise InvariantViolation(
                    f"memtable sequence numbers must increase per key (key={key!r})"
                )
            versions.append((seq, kind, vsize))
        self.nbytes += encoded_size(rec, self.key_size)
        self.n_records += 1
        if self.min_seq is None or seq < self.min_seq:
            self.min_seq = seq
        if self.max_seq is None or seq > self.max_seq:
            self.max_seq = seq

    def get(self, key, snapshot: Optional[int] = None) -> Optional[RecordTuple]:
        """Newest version of ``key`` visible at ``snapshot`` (None = latest)."""
        versions = self._versions.get(key)
        if versions is None:
            return None
        if snapshot is None:
            seq, kind, vsize = versions[-1]
            return (key, seq, kind, vsize)
        for seq, kind, vsize in reversed(versions):
            if seq <= snapshot:
                return (key, seq, kind, vsize)
        return None

    def iter_range(self, lo=None, hi=None) -> Iterator[RecordTuple]:
        """Yield records with ``lo <= key < hi`` in (key asc, seq desc) order.

        ``None`` bounds are open.  All versions are yielded; scan-level
        snapshot filtering happens in the merging iterator.
        """
        keys = self._keys
        start = 0 if lo is None else bisect.bisect_left(keys, lo)
        stop = len(keys) if hi is None else bisect.bisect_left(keys, hi)
        for i in range(start, stop):
            key = keys[i]
            for seq, kind, vsize in reversed(self._versions[key]):
                yield (key, seq, kind, vsize)

    def sorted_records(self) -> List[RecordTuple]:
        """All records as one sorted run, ready for flushing."""
        return list(self.iter_range())

    def approximate_live_records(self) -> int:
        """Distinct keys whose newest version is a PUT (diagnostics)."""
        return sum(1 for v in self._versions.values() if v[-1][1] == PUT)
