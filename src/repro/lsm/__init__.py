"""Baseline engines the paper compares against.

* :class:`~repro.lsm.leveled.LeveledLsm` -- LevelDB/RocksDB-style leveled
  compaction (§2.1), selected via ``LsmOptions.style``.
* :class:`~repro.lsm.flsm.FlsmEngine` -- a fragmented-LSM append tree used
  for the §6.8 discussion (no trivial moves, guard-based appends).
* :class:`~repro.lsm.lsmtrie.LsmTrieEngine` -- the hash-trie append tree of
  Table 2 (bounded fan-out, no sequential-write benefit, no scans).
"""

from repro.lsm.flsm import FlsmEngine
from repro.lsm.leveled import LeveledLsm
from repro.lsm.lsmtrie import LsmTrieEngine, ScansUnsupportedError

__all__ = ["FlsmEngine", "LeveledLsm", "LsmTrieEngine", "ScansUnsupportedError"]
