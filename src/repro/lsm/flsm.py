"""FLSM/PebblesDB-style fragmented LSM (for the paper's §6.8 discussion).

FLSM partitions each level with *guards*; compaction merges a level's
fragments and appends the partitioned result to the next level's guards
without rewriting the data already there.  Two properties distinguish it
from LSA (Table 2) and are what §6.8 measures:

* **No trivial moves.** Even fully sorted (sequential) input is re-read and
  re-written at every level ("the records are always rewritten when compacted
  to a level"), giving sequential-load write amplification roughly equal to
  the level count (the paper measures 6.42) instead of ~1 for LSA/IAM/LSM.
* **Unbounded children.** Guards are sampled from the key distribution and
  never rebalanced, so a guard's fan-in is unbounded -- the "worst write
  case" LSA's splits avoid.

The implementation is deliberately compact: enough machinery to run real
workloads (flush, guard-partitioned append compaction, bottom-level guard
merges, point/scan reads) with honest I/O charging.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Any, Dict, List, Optional, Set, Tuple, cast

from repro.common.errors import InvariantViolation
from repro.common.options import LsmOptions
from repro.common.records import KEY, RecordTuple, sort_key
from repro.core.engine import EngineBase
from repro.storage.background import BackgroundJob
from repro.storage.pacing import degraded_extra_delay_s
from repro.storage.runtime import Runtime
from repro.table.merge import merge_runs
from repro.table.mstable import MSTable
from repro.check.effects.registry import effects, observation_only

#: Fragments per bottom-level guard before the guard is merged in place.
BOTTOM_MERGE_FANIN = 8


class _Guard:
    """One guard bucket: a key lower bound plus its fragment tables."""

    __slots__ = ("lo", "tables")

    def __init__(self, lo) -> None:
        self.lo = lo
        self.tables: List[MSTable] = []

    @property
    def nbytes(self) -> int:
        return sum(t.data_bytes for t in self.tables)


class FlsmEngine(EngineBase):
    """Fragmented log-structured merge tree baseline."""

    name = "flsm"

    def __init__(self, options: LsmOptions, runtime: Runtime) -> None:
        super().__init__(runtime)
        self.options = options
        n = options.max_levels
        #: Each level: ordered guard list.  Level 0 is a single implicit
        #: guard covering everything (flush target).
        self.guards: List[List[_Guard]] = [[_Guard(None)] for _ in range(n)]
        #: Cached guard cut keys per level (guards[level][1:].lo).
        self._cuts: List[List] = [[] for _ in range(n)]
        self.level_bytes: List[int] = [0] * n
        self._busy_levels: set = set()
        self.compactions = 0
        self._init_scheduling(options)

    # ------------------------------------------------------------------ write
    @property
    def memtable_capacity(self) -> int:
        return self.options.memtable_bytes

    def submit_flush(self, records: List[RecordTuple], nbytes: int) -> BackgroundJob:
        def start() -> float:
            table, debt = MSTable.build(
                self.runtime, records,
                key_size=self.options.key_size,
                bloom_bits_per_key=self.options.bloom_bits_per_key,
                level=0,
            )
            self.guards[0][0].tables.append(table)
            self.level_bytes[0] += table.data_bytes
            return debt

        return self.runtime.submit_job("flush->L0", start, high_priority=True)

    @effects("CLOCK_ADVANCE", "DISK_CHARGE", "SPAN_BEGIN", "SPAN_END", "STATE_MUTATE")
    def write_gate(self, nbytes: int) -> float:
        if self.legacy_gate:
            return self._legacy_write_gate(nbytes)
        lat = self._fault_gate(nbytes)
        lat += self._token_pace(nbytes)
        lat += self._l0_stop_backstop(nbytes)
        return lat

    @effects("CLOCK_ADVANCE", "DISK_CHARGE", "SPAN_BEGIN", "SPAN_END", "STATE_MUTATE")
    def _legacy_write_gate(self, nbytes: int) -> float:
        """Pre-scheduler write admission: cliff-edge band (byte-identical)."""
        opts = self.options
        lat = self._fault_gate(nbytes)
        n0 = len(self.guards[0][0].tables)
        if n0 >= opts.l0_slowdown_trigger:
            bw = self.runtime.disk.profile.write_bandwidth
            d = degraded_extra_delay_s(nbytes, bw, opts.delayed_write_fraction)
            self.runtime.clock.advance(d)
            lat += d
            self.runtime.metrics.add_gate_delay("slowdown:l0", d)
            if self.runtime.tracer.enabled:
                self._trace("gate", "slowdown:l0", delay_s=d, l0_files=n0)
        lat += self._l0_stop_backstop(nbytes)
        return lat

    @effects("CLOCK_ADVANCE", "DISK_CHARGE", "SPAN_BEGIN", "SPAN_END", "STATE_MUTATE")
    def _l0_stop_backstop(self, nbytes: int) -> float:
        """Hard stall until L0's fragment count drops below the stop gate."""
        opts = self.options
        guard = 0
        stall_s = 0.0
        lat = 0.0
        while len(self.guards[0][0].tables) >= opts.l0_stop_trigger:
            guard += 1
            if guard > 100_000:
                raise InvariantViolation("FLSM L0 stall did not converge")
            step = self.runtime.pool.step_drain()
            lat += step
            stall_s += step
            if step == 0.0 and not self.runtime.pool.busy:
                break
        if stall_s > 0.0:
            self.runtime.metrics.add_stall("l0-stop", stall_s)
            if self.runtime.tracer.enabled:
                self._trace("stall", "stall", reason="l0-stop",
                            duration_s=stall_s)
        return lat

    def _pace_pressure(self) -> bool:
        """Pace when L0's fragment count crosses the legacy slowdown band."""
        return len(self.guards[0][0].tables) >= self.options.l0_slowdown_trigger

    def _pace_rate(self, sustainable: float) -> float:
        """Ramp from the legacy band rate toward the measured sustainable
        rate as L0's fragment count approaches the stop trigger (same
        policy as the leveled engine, keyed on guard-0 fragments)."""
        opts = self.options
        bw = self.runtime.options.device.write_bandwidth
        frac = opts.delayed_write_fraction
        gentle = bw * frac
        n0 = len(self.guards[0][0].tables)
        lo, hi = opts.l0_slowdown_trigger, opts.l0_stop_trigger - 1
        scale = 0.0
        if n0 >= lo:
            scale = min(1.0, (n0 - lo) / (hi - lo)) if hi > lo else 1.0
        floor = min(max(sustainable, gentle * frac), gentle)
        return gentle + scale * (floor - gentle)

    # ------------------------------------------------------------- background
    def _level_threshold(self, level: int) -> int:
        if level == 0:
            return self.options.l0_compaction_trigger * self.options.memtable_bytes
        return self.options.level_target_bytes(level)

    def pick_background_job(self) -> Optional[BackgroundJob]:
        opts = self.options
        candidates: List[Tuple[int, float]] = []
        for i in range(0, opts.max_levels - 1):
            if i in self._busy_levels or (i + 1) in self._busy_levels:
                continue
            score = self.level_bytes[i] / self._level_threshold(i)
            if score >= 1.0:
                candidates.append((i, score))
        if not candidates:
            return self._pick_bottom_merge()
        chosen = self._select_level(
            [(i, sc, max(0, self.level_bytes[i] - self._level_threshold(i)))
             for i, sc in candidates])
        if chosen is None:
            # Provider order: highest score, lowest level on ties.
            level = max(candidates, key=lambda c: c[1])[0]
        else:
            level = chosen
        self._busy_levels.add(level)
        self._busy_levels.add(level + 1)

        def start() -> float:
            return self._compact(level)

        def done() -> None:
            self._busy_levels.discard(level)
            self._busy_levels.discard(level + 1)

        return BackgroundJob(f"flsm-compact:L{level}", start, on_complete=done)

    def _pick_bottom_merge(self) -> Optional[BackgroundJob]:
        bottom = self._deepest_level()
        if bottom in self._busy_levels:
            return None
        for g in self.guards[bottom]:
            if len(g.tables) > BOTTOM_MERGE_FANIN:
                self._busy_levels.add(bottom)

                def start(g=g, bottom=bottom) -> float:
                    return self._merge_guard(bottom, g)

                def done() -> None:
                    self._busy_levels.discard(bottom)

                return BackgroundJob(f"flsm-guard-merge:L{bottom}", start, on_complete=done)
        return None

    def _deepest_level(self) -> int:
        for i in range(self.options.max_levels - 1, -1, -1):
            if self.level_bytes[i]:
                return i
        return 0

    # ---------------------------------------------------------------- compact
    def _ensure_guards(self, level: int, sample: List[RecordTuple]) -> None:
        """Sample guard boundaries for a level on first use (PebblesDB-style)."""
        if len(self.guards[level]) > 1 or not sample:
            return
        want = min(self.options.level_size_multiplier ** level, max(1, len(sample) // 8))
        if want <= 1:
            return
        step = len(sample) / want
        cuts = sorted({sample[int(i * step)][KEY] for i in range(1, want)})
        self.guards[level] = [_Guard(None)] + [_Guard(c) for c in cuts]
        self._cuts[level] = cuts

    def _guard_index(self, level: int, key) -> int:
        return bisect.bisect_right(self._cuts[level], key)

    def _compact(self, level: int) -> float:
        """Merge every fragment of ``level`` and append into level+1 guards."""
        debt = 0.0
        runs: List[List[RecordTuple]] = []
        old_tables: List[MSTable] = []
        for g in self.guards[level]:
            for t in g.tables:
                debt += t.compaction_read_debt()
                for seq in t.sequences:
                    runs.append(seq.records)
                old_tables.append(t)
        if not runs:
            return 0.0
        merged = merge_runs(runs, snapshots=self.snapshots_provider())
        self._ensure_guards(level + 1, merged)

        # Partition by the next level's guards and append (never merge).
        cuts = self._cuts[level + 1]
        start = 0
        for gi, g in enumerate(self.guards[level + 1]):
            stop = (bisect.bisect_left(merged, cuts[gi], key=lambda r: r[KEY])
                    if gi < len(cuts) else len(merged))
            part = merged[start:stop]
            start = stop
            if not part:
                continue
            table, d = MSTable.build(
                self.runtime, part,
                key_size=self.options.key_size,
                bloom_bits_per_key=self.options.bloom_bits_per_key,
                level=level + 1,
            )
            debt += d
            g.tables.append(table)
            self.level_bytes[level + 1] += table.data_bytes

        for g in self.guards[level]:
            g.tables.clear()
        for t in old_tables:
            t.delete()
        self.level_bytes[level] = 0
        self.compactions += 1
        self.runtime.metrics.bump(f"flsm-compaction:L{level}")
        if self.runtime.tracer.enabled:
            self._trace("compaction", f"compact:L{level}", level=level,
                        runs=len(runs), records=len(merged))
        return debt

    def _merge_guard(self, level: int, g: _Guard) -> float:
        """In-place merge of one bottom-level guard's fragments."""
        debt = 0.0
        runs = []
        for t in g.tables:
            debt += t.compaction_read_debt()
            for seq in t.sequences:
                runs.append(seq.records)
        merged = merge_runs(runs, drop_tombstones=True,
                            snapshots=self.snapshots_provider())
        old_bytes = g.nbytes
        for t in g.tables:
            t.delete()
        g.tables = []
        if merged:
            table, d = MSTable.build(
                self.runtime, merged,
                key_size=self.options.key_size,
                bloom_bits_per_key=self.options.bloom_bits_per_key,
                level=level,
            )
            debt += d
            g.tables = [table]
            self.level_bytes[level] += table.data_bytes - old_bytes
        else:
            self.level_bytes[level] -= old_bytes
        self.runtime.metrics.bump("flsm-guard-merge")
        if self.runtime.tracer.enabled:
            self._trace("compaction", "guard-merge", level=level,
                        runs=len(runs), records=len(merged))
        return debt

    # ------------------------------------------------------------------- read
    def get(self, key, snapshot: Optional[int] = None) -> Tuple[Optional[RecordTuple], float]:
        latency = 0.0
        for level in range(self.options.max_levels):
            gi = self._guard_index(level, key)
            g = self.guards[level][gi]
            for table in reversed(g.tables):
                if table.min_key <= key <= table.max_key:
                    rec, lat = table.get(key, snapshot)
                    latency += lat
                    if rec is not None:
                        return rec, latency
        return None, latency

    def scan_runs(self, lo_key, hi_key) -> Tuple[List[List[RecordTuple]], float]:
        runs: List[List[RecordTuple]] = []
        latency = 0.0
        for level in range(self.options.max_levels):
            for g in self.guards[level]:
                for table in g.tables:
                    if lo_key is not None and table.max_key < lo_key:
                        continue
                    if hi_key is not None and table.min_key > hi_key:
                        continue
                    table_runs, lat = table.read_range(lo_key, hi_key)
                    latency += lat
                    runs.extend(table_runs)
        return runs, latency

    def scan_cursors(self, lo_key, hi_key) -> List:
        cursors = []
        for level in range(self.options.max_levels):
            guards = [g for g in self.guards[level] if g.tables]
            if guards:
                cursors.append(self._level_cursor(guards, lo_key, hi_key))
        return cursors

    @staticmethod
    def _level_cursor(guards: List[_Guard], lo_key, hi_key):
        for g in guards:
            live = [t for t in g.tables
                    if not ((lo_key is not None and t.max_key < lo_key)
                            or (hi_key is not None and t.min_key > hi_key))]
            if not live:
                continue
            if len(live) == 1:
                yield from live[0].cursor(lo_key, hi_key)
            else:
                yield from heapq.merge(*(t.cursor(lo_key, hi_key) for t in live),
                                       key=sort_key)

    # ------------------------------------------------------------- inspection
    def level_data_bytes(self) -> Dict[int, int]:
        return {i: b for i, b in enumerate(self.level_bytes) if b}

    def max_guard_fanin(self) -> int:
        """Largest fragment count in any guard (worst-write-case indicator)."""
        return max((len(g.tables) for lvl in self.guards for g in lvl), default=0)

    @observation_only
    def check_invariants(self) -> None:
        for i, lvl in enumerate(self.guards):
            total = sum(g.nbytes for g in lvl)
            if total != self.level_bytes[i]:
                raise InvariantViolation(f"FLSM level {i} byte accounting drifted")
            cuts = [g.lo for g in lvl[1:]]
            if cuts != sorted(cuts):
                raise InvariantViolation(f"FLSM level {i} guards out of order")

    @observation_only
    def describe(self) -> Dict[str, object]:
        return {
            "engine": self.name,
            "levels": {i: {"guards": len(lvl), "bytes": self.level_bytes[i]}
                       for i, lvl in enumerate(self.guards) if self.level_bytes[i]},
            "compactions": self.compactions,
            "max_guard_fanin": self.max_guard_fanin(),
        }

    # --------------------------------------------------------------- recovery
    def checkpoint_state(self) -> object:
        """Owned pure-data snapshot (see Manifest.checkpoint)."""
        return {
            "guards": [[(g.lo, tuple(t.snapshot() for t in g.tables))
                        for g in lvl] for lvl in self.guards],
        }

    def restore_state(self, state: object) -> None:
        for lvl in self.guards:
            for g in lvl:
                for t in g.tables:
                    t.delete()
        self._reset_selector_state()
        if state is None:
            n = self.options.max_levels
            self.guards = [[_Guard(None)] for _ in range(n)]
            self._cuts = [[] for _ in range(n)]
            self.level_bytes = [0] * n
            self._busy_levels = set()
            return
        sdict = cast(Dict[str, Any], state)
        self.guards = []
        for lvl in sdict["guards"]:
            level = []
            for lo, snaps in lvl:
                g = _Guard(lo)
                g.tables = [MSTable.from_snapshot(self.runtime, snap)
                            for snap in snaps]
                level.append(g)
            self.guards.append(level)
        self._cuts = [[g.lo for g in lvl[1:]] for lvl in self.guards]
        self.level_bytes = [sum(g.nbytes for g in lvl) for lvl in self.guards]
        self._busy_levels = set()

    def live_file_ids(self) -> Set[int]:
        return {t.file_id for lvl in self.guards for g in lvl
                for t in g.tables if not t.deleted}
