"""LevelDB/RocksDB-style leveled LSM (§2.1, Figure 1).

One class implements both baselines; ``LsmOptions.style`` selects the
behavioural differences the paper leans on:

* **leveldb** -- overflow-tolerant.  A single hard L0 gate (slowdown at 8,
  stop at 12 files); deeper levels overflow freely while the background
  thread lags, which shortens write paths (smaller effective fan-out, lower
  write amplification, §6.2) but produces enormous stall-driven maximum
  latencies and a long "tuning phase".
* **rocksdb** -- stall-controlled.  An additional soft gate on estimated
  pending compaction debt delays writes early, so levels barely overflow;
  compactions run against full fan-out (higher write amplification, §6.2:
  19.00 vs 14.66) but maximum latency stays bounded.

Compactions follow LevelDB: score-based level picking (L0 by file count,
deeper levels by size ratio), round-robin key cursors, merge with the
overlapping files one level down, trivial moves when nothing overlaps.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Set, Tuple, cast

import numpy as np

from repro.common.errors import InvariantViolation
from repro.common.options import LsmOptions
from repro.common.records import KEY, RecordTuple, encoded_size
from repro.core.engine import EngineBase
from repro.storage.background import BackgroundJob
from repro.storage.pacing import degraded_extra_delay_s
from repro.storage.runtime import Runtime
from repro.table.merge import merge_runs
from repro.table.mstable import MSTable
from repro.table.scan import chain_stream, table_stream
from repro.check.effects.registry import effects, observation_only


class LeveledLsm(EngineBase):
    """Leveled-compaction LSM engine (LevelDB and RocksDB styles)."""

    def __init__(self, options: LsmOptions, runtime: Runtime) -> None:
        super().__init__(runtime)
        self.options = options
        self.name = options.style
        n = options.max_levels
        #: levels[0] holds overlapping L0 files, newest last; deeper levels
        #: are sorted by min_key with disjoint ranges.
        self.levels: List[List[MSTable]] = [[] for _ in range(n)]
        self.level_bytes: List[int] = [0] * n
        self.compact_pointer: List[Optional[object]] = [None] * n
        self._busy_levels: set = set()
        self.flushes = 0
        self.compactions = 0
        self.trivial_moves = 0
        self._init_scheduling(options)

    # ------------------------------------------------------------------ write
    @property
    def memtable_capacity(self) -> int:
        return self.options.memtable_bytes

    def submit_flush(self, records: List[RecordTuple], nbytes: int) -> BackgroundJob:
        def start() -> float:
            table, debt = MSTable.build(
                self.runtime, records,
                key_size=self.options.key_size,
                bloom_bits_per_key=self.options.bloom_bits_per_key,
                level=0,
            )
            self.levels[0].append(table)
            self.level_bytes[0] += table.data_bytes
            self.flushes += 1
            if self.runtime.tracer.enabled:
                self._trace("flush", "flush", records=len(records),
                            l0_files=len(self.levels[0]))
            return debt

        return self.runtime.submit_job("flush->L0", start, high_priority=True)

    def _slowdown_delay(self, nbytes: int) -> float:
        """Pace a write to the delayed rate (RocksDB's delayed_write_rate)."""
        bw = self.runtime.disk.profile.write_bandwidth
        frac = self.options.delayed_write_fraction
        return degraded_extra_delay_s(nbytes, bw, frac)

    @effects("CLOCK_ADVANCE", "DISK_CHARGE", "SPAN_BEGIN", "SPAN_END", "STATE_MUTATE")
    def write_gate(self, nbytes: int) -> float:
        if self.legacy_gate:
            return self._legacy_write_gate(nbytes)
        # Stability scheduler: smooth token-bucket pacing at the measured
        # sustainable rate replaces the cliff-edge slowdown bands; the hard
        # L0 stop survives only as a rarely-hit backstop.
        lat = self._fault_gate(nbytes)
        lat += self._token_pace(nbytes)
        lat += self._l0_stop_backstop(nbytes)
        return lat

    @effects("CLOCK_ADVANCE", "DISK_CHARGE", "SPAN_BEGIN", "SPAN_END", "STATE_MUTATE")
    def _legacy_write_gate(self, nbytes: int) -> float:
        """Pre-scheduler write admission: cliff-edge bands (byte-identical)."""
        opts = self.options
        lat = self._fault_gate(nbytes)
        # Soft gate: RocksDB-style delayed writes on pending compaction debt.
        if opts.pending_compaction_soft_bytes:
            if self._pending_compaction_bytes() > opts.pending_compaction_soft_bytes:
                d = self._slowdown_delay(nbytes)
                self.runtime.clock.advance(d)
                lat += d
                self.runtime.metrics.bump("slowdown:debt")
                self.runtime.metrics.add_gate_delay("slowdown:debt", d)
                if self.runtime.tracer.enabled:
                    self._trace("gate", "slowdown:debt", delay_s=d)
        # L0 slowdown: pace writes while in the slowdown band.
        n0 = len(self.levels[0])
        if opts.l0_slowdown_trigger <= n0 < opts.l0_stop_trigger:
            d = self._slowdown_delay(nbytes)
            self.runtime.clock.advance(d)
            lat += d
            self.runtime.metrics.bump("slowdown:l0")
            self.runtime.metrics.add_gate_delay("slowdown:l0", d)
            if self.runtime.tracer.enabled:
                self._trace("gate", "slowdown:l0", delay_s=d, l0_files=n0)
        lat += self._l0_stop_backstop(nbytes)
        return lat

    @effects("CLOCK_ADVANCE", "DISK_CHARGE", "SPAN_BEGIN", "SPAN_END", "STATE_MUTATE")
    def _l0_stop_backstop(self, nbytes: int) -> float:
        """Hard stall until an L0 compaction brings the file count down."""
        opts = self.options
        guard = 0
        stall_s = 0.0
        lat = 0.0
        while len(self.levels[0]) >= opts.l0_stop_trigger:
            guard += 1
            if guard > 100_000:
                raise InvariantViolation("L0 stop stall did not converge")
            step = self.runtime.pool.step_drain()
            lat += step
            stall_s += step
            if step == 0.0 and not self.runtime.pool.busy:
                break
        if guard:
            self.runtime.metrics.bump("stall:l0-stop")
            if stall_s > 0.0:
                self.runtime.metrics.add_stall("l0-stop", stall_s)
                if self.runtime.tracer.enabled:
                    self._trace("stall", "stall", reason="l0-stop",
                                duration_s=stall_s)
        return lat

    def _pace_pressure(self) -> bool:
        """Pace when L0 or pending debt crosses its legacy slowdown point.

        Engaging earlier (at the compaction trigger) over-paces: YCSB's
        read-heavy phases drain debt through granted idle time on their
        own, and every pacer delay is an accounted gate delay.  The band
        thresholds mark where the structure demonstrably can't keep up.
        """
        opts = self.options
        if len(self.levels[0]) >= opts.l0_slowdown_trigger:
            return True
        soft = opts.pending_compaction_soft_bytes
        return bool(soft and self._pending_compaction_bytes() > soft)

    def _pace_rate(self, sustainable: float) -> float:
        """Ramp the brake from the legacy band strength to the measured rate.

        At the slowdown trigger the bucket admits at
        ``bandwidth * delayed_write_fraction`` -- exactly the legacy band's
        effective rate, but smooth (burst-absorbed, no on/off cliff).  As
        L0 climbs toward the stop trigger (or debt doubles its soft
        limit), the admitted rate ramps linearly down to the estimator's
        sustainable rate, floored at ``delayed_write_fraction`` of the
        band rate so a cold estimate can never freeze admission.
        """
        opts = self.options
        bw = self.runtime.options.device.write_bandwidth
        frac = opts.delayed_write_fraction
        gentle = bw * frac
        n0 = len(self.levels[0])
        lo, hi = opts.l0_slowdown_trigger, opts.l0_stop_trigger - 1
        scale = 0.0
        if n0 >= lo:
            scale = min(1.0, (n0 - lo) / (hi - lo)) if hi > lo else 1.0
        soft = opts.pending_compaction_soft_bytes
        if soft:
            debt = self._pending_compaction_bytes()
            if debt > soft:
                scale = max(scale, min(1.0, (debt - soft) / soft))
        floor = min(max(sustainable, gentle * frac), gentle)
        return gentle + scale * (floor - gentle)

    def _pending_compaction_bytes(self) -> int:
        """RocksDB's pending-debt estimate: bytes above each level threshold."""
        opts = self.options
        debt = max(0, len(self.levels[0]) - opts.l0_compaction_trigger) * opts.file_bytes
        for i in range(1, opts.max_levels - 1):
            debt += max(0, self.level_bytes[i] - opts.level_target_bytes(i))
        return debt

    # ------------------------------------------------------------- background
    def _scores(self) -> List[Tuple[float, int]]:
        opts = self.options
        scores = []
        if 0 not in self._busy_levels and 1 not in self._busy_levels:
            scores.append((len(self.levels[0]) / opts.l0_compaction_trigger, 0))
        for i in range(1, opts.max_levels - 1):
            if i in self._busy_levels or (i + 1) in self._busy_levels:
                continue
            if self.levels[i]:
                scores.append((self.level_bytes[i] / opts.level_target_bytes(i), i))
        return scores

    def _overdue_bytes(self, level: int) -> int:
        """Bytes past the level's compaction threshold (selector debt)."""
        opts = self.options
        if level == 0:
            over = len(self.levels[0]) - opts.l0_compaction_trigger
            return max(0, over) * opts.file_bytes
        return max(0, self.level_bytes[level] - opts.level_target_bytes(level))

    def pick_background_job(self) -> Optional[BackgroundJob]:
        scores = self._scores()
        if not scores:
            return None
        eligible = [(lvl, sc) for sc, lvl in scores if sc >= 1.0]
        if not eligible:
            return None
        chosen = self._select_level(
            [(lvl, sc, self._overdue_bytes(lvl)) for lvl, sc in eligible])
        if chosen is None:
            score, level = max(scores)  # provider order: highest score wins
        else:
            level = chosen
        self._busy_levels.add(level)
        self._busy_levels.add(level + 1)

        def start() -> float:
            return self._compact(level)

        def done() -> None:
            self._busy_levels.discard(level)
            self._busy_levels.discard(level + 1)

        return BackgroundJob(f"compact:L{level}", start, on_complete=done)

    # --------------------------------------------------------------- compact
    def _overlapping(self, level: int, lo, hi) -> List[MSTable]:
        """Tables in a sorted (L1+) level intersecting [lo, hi].

        Binary-searched: deep levels hold thousands of files and this runs
        on every compaction pick.
        """
        lst = self.levels[level]
        if level == 0:
            return [t for t in lst if not (t.max_key < lo or t.min_key > hi)]
        start = bisect.bisect_right(lst, lo, key=lambda t: t.min_key) - 1
        if start < 0 or lst[start].max_key < lo:
            start += 1
        out = []
        for t in lst[start:]:
            if t.min_key > hi:
                break
            out.append(t)
        return out

    def _pick_input_file(self, level: int) -> MSTable:
        """Round-robin file pick via the per-level compaction cursor."""
        lst = self.levels[level]
        cursor = self.compact_pointer[level]
        if cursor is None:
            return lst[0]
        i = bisect.bisect_right(lst, cursor, key=lambda t: t.min_key)
        return lst[i] if i < len(lst) else lst[0]

    def _compact(self, level: int) -> float:
        if level == 0:
            # LevelDB: start from the oldest L0 file and pull in every L0
            # file overlapping the accumulated range (files from sequential
            # loads are disjoint, so they move down one by one).
            inputs_up = [self.levels[0][0]]
            lo, hi = inputs_up[0].min_key, inputs_up[0].max_key
            grew = True
            while grew:
                grew = False
                for t in self.levels[0]:
                    if t not in inputs_up and not (t.max_key < lo or t.min_key > hi):
                        inputs_up.append(t)
                        lo = min(lo, t.min_key)
                        hi = max(hi, t.max_key)
                        grew = True
        else:
            if not self.levels[level]:
                return 0.0
            inputs_up = [self._pick_input_file(level)]
            self.compact_pointer[level] = inputs_up[0].max_key
        lo = min(t.min_key for t in inputs_up)
        hi = max(t.max_key for t in inputs_up)
        inputs_down = self._overlapping(level + 1, lo, hi)

        # Trivial move: a single input and nothing overlapping below.
        if len(inputs_up) == 1 and not inputs_down:
            t = inputs_up[0]
            self._remove_table(level, t)
            self.level_bytes[level] -= t.data_bytes
            self._insert_sorted(level + 1, t)
            self.level_bytes[level + 1] += t.data_bytes
            self.trivial_moves += 1
            self.runtime.metrics.bump("trivial_move")
            self._trace("compaction", "trivial-move", level=level,
                        to_level=level + 1)
            return 0.0

        debt = 0.0
        runs: List[List[RecordTuple]] = []
        for t in inputs_up + inputs_down:
            debt += t.compaction_read_debt()
            for seq in t.sequences:
                runs.append(seq.records)
        bottom = all(not self.levels[j] for j in range(level + 2, self.options.max_levels))
        merged = merge_runs(runs, drop_tombstones=bottom,
                            snapshots=self.snapshots_provider())

        for t in inputs_up:
            self._remove_table(level, t)
            self.level_bytes[level] -= t.data_bytes
        for t in inputs_down:
            self._remove_table(level + 1, t)
            self.level_bytes[level + 1] -= t.data_bytes
        # Inputs are unlinked but outputs not yet built: a crash here leaves
        # the in-flight compaction's files as orphans for recovery to sweep.
        self._crash_point("mid-compact")

        for chunk in self._split_records(merged, self.options.file_bytes):
            table, d = MSTable.build(
                self.runtime, chunk,
                key_size=self.options.key_size,
                bloom_bits_per_key=self.options.bloom_bits_per_key,
                level=level + 1,
            )
            debt += d
            self._insert_sorted(level + 1, table)
            self.level_bytes[level + 1] += table.data_bytes

        for t in inputs_up + inputs_down:
            t.delete()
        self.compactions += 1
        self.runtime.metrics.bump(f"compaction:L{level}")
        if self.runtime.tracer.enabled:
            self._trace("compaction", f"compact:L{level}", level=level,
                        inputs_up=len(inputs_up), inputs_down=len(inputs_down),
                        records=len(merged))
        return debt

    def _split_records(self, records: List[RecordTuple], max_bytes: int):
        """Chop a merged run into output files of roughly ``max_bytes``."""
        key_size = self.options.key_size
        chunk: List[RecordTuple] = []
        acc = 0
        for rec in records:
            sz = encoded_size(rec, key_size)
            if acc + sz > max_bytes and chunk and chunk[-1][KEY] != rec[KEY]:
                # Never split the versions of one key across files.
                yield chunk
                chunk = []
                acc = 0
            chunk.append(rec)
            acc += sz
        if chunk:
            yield chunk

    def _insert_sorted(self, level: int, table: MSTable) -> None:
        lst = self.levels[level]
        i = bisect.bisect_left(lst, table.min_key, key=lambda t: t.min_key)
        lst.insert(i, table)

    def _remove_table(self, level: int, table: MSTable) -> None:
        """Remove by binary search (deep levels hold thousands of files)."""
        lst = self.levels[level]
        if level == 0:
            lst.remove(table)
            return
        i = bisect.bisect_left(lst, table.min_key, key=lambda t: t.min_key)
        while i < len(lst):
            if lst[i] is table:
                del lst[i]
                return
            i += 1
        raise InvariantViolation("table not found in its level")

    # ------------------------------------------------------------------- read
    def get(self, key, snapshot: Optional[int] = None) -> Tuple[Optional[RecordTuple], float]:
        latency = 0.0
        for table in reversed(self.levels[0]):
            if table.min_key <= key <= table.max_key:
                rec, lat = table.get(key, snapshot)
                latency += lat
                if rec is not None:
                    return rec, latency
        for level in range(1, self.options.max_levels):
            table = self._find_table(level, key)
            if table is not None:
                rec, lat = table.get(key, snapshot)
                latency += lat
                if rec is not None:
                    return rec, latency
        return None, latency

    def multi_get(self, keys, snapshot: Optional[int] = None,
                  ) -> Tuple[List[Optional[RecordTuple]], List[float]]:
        """Vectorized batched point lookup (charge-identical to the loop).

        Same two-phase shape as :meth:`repro.core.lsa.LsaTree.multi_get`:
        Phase A plans each key's L0-then-levels walk CPU-side (range masks
        over L0 files, one ``searchsorted`` over each sorted level's
        min-key fences, batched Bloom/span resolution per table), Phase B
        replays the planned charges per key in request order.
        """
        n = len(keys)
        if n == 0:
            return [], []
        try:
            key_arr = np.asarray(keys, dtype=np.uint64)
            if key_arr.shape != (n,):
                raise TypeError("keys must be a flat sequence")
        except (OverflowError, TypeError, ValueError):
            return super().multi_get(keys, snapshot)
        results: List[Optional[RecordTuple]] = [None] * n
        probes: List[List[Tuple[int, range]]] = [[] for _ in range(n)]
        counters = [0, 0]  # [bloom_probes, bloom_negatives]
        live = list(range(n))
        try:
            for table in reversed(self.levels[0]):
                if not live:
                    break
                live_arr = np.fromiter(live, dtype=np.intp, count=len(live))
                sub = key_arr[live_arr]
                mask = (sub >= np.uint64(table.min_key)) & (sub <= np.uint64(table.max_key))
                if not mask.any():
                    continue
                members = [live[off] for off in np.nonzero(mask)[0].tolist()]
                left = table.plan_gets(key_arr, members, snapshot,
                                       probes, results, counters)
                if len(left) != len(members):
                    gone = set(members) - set(left)
                    live = [g for g in live if g not in gone]
            for level in range(1, self.options.max_levels):
                if not live:
                    break
                lst = self.levels[level]
                if not lst:
                    continue
                n_tab = len(lst)
                mins = np.fromiter((t.min_key for t in lst), dtype=np.uint64,
                                   count=n_tab)
                maxes = np.fromiter((t.max_key for t in lst), dtype=np.uint64,
                                    count=n_tab)
                live_arr = np.fromiter(live, dtype=np.intp, count=len(live))
                sub = key_arr[live_arr]
                idx = np.searchsorted(mins, sub, side="right").astype(np.intp) - 1
                valid = (idx >= 0) & (maxes[np.maximum(idx, 0)] >= sub)
                buckets: Dict[int, List[int]] = {}
                vlist = valid.tolist()
                ilist = idx.tolist()
                for off in range(len(live)):
                    if vlist[off]:
                        buckets.setdefault(ilist[off], []).append(live[off])
                resolved: Set[int] = set()
                for ti in sorted(buckets):
                    members = buckets[ti]
                    left = lst[ti].plan_gets(key_arr, members, snapshot,
                                             probes, results, counters)
                    if len(left) != len(members):
                        resolved.update(set(members) - set(left))
                if resolved:
                    live = [g for g in live if g not in resolved]
        except (OverflowError, TypeError, ValueError):
            return super().multi_get(keys, snapshot)
        return results, self._replay_probe_plans(probes, counters)

    @observation_only
    def scan_plan(self, lo_key, hi_key) -> List[object]:
        """Batched scan streams matching :meth:`scan_cursors` order."""
        plan: List[object] = []
        for table in reversed(self.levels[0]):
            if hi_key is not None and table.min_key > hi_key:
                continue
            if lo_key is not None and table.max_key < lo_key:
                continue
            plan.append(table_stream(self.runtime, table, lo_key, hi_key))
        for level in range(1, self.options.max_levels):
            lst = self.levels[level]
            if not lst:
                continue
            lo = lst[0].min_key if lo_key is None else lo_key
            hi = lst[-1].max_key if hi_key is None else hi_key
            tables = self._overlapping(level, lo, hi)
            if tables:
                plan.append(chain_stream(self.runtime, tables, lo_key, hi_key))
        return plan

    def _find_table(self, level: int, key) -> Optional[MSTable]:
        # Levels are small lists of disjoint sorted ranges; linear scan with
        # early exit is fine at simulation scale, but use bisect on min_key.
        lst = self.levels[level]
        lo, hi = 0, len(lst)
        while lo < hi:
            mid = (lo + hi) // 2
            if lst[mid].min_key <= key:
                lo = mid + 1
            else:
                hi = mid
        idx = lo - 1
        if idx >= 0 and lst[idx].min_key <= key <= lst[idx].max_key:
            return lst[idx]
        return None

    def scan_runs(self, lo_key, hi_key) -> Tuple[List[List[RecordTuple]], float]:
        runs: List[List[RecordTuple]] = []
        latency = 0.0
        for table in reversed(self.levels[0]):
            if hi_key is not None and table.min_key > hi_key:
                continue
            if lo_key is not None and table.max_key < lo_key:
                continue
            table_runs, lat = table.read_range(lo_key, hi_key)
            latency += lat
            runs.extend(table_runs)
        for level in range(1, self.options.max_levels):
            for table in self.levels[level]:
                if hi_key is not None and table.min_key > hi_key:
                    break
                if lo_key is not None and table.max_key < lo_key:
                    continue
                table_runs, lat = table.read_range(lo_key, hi_key)
                latency += lat
                runs.extend(table_runs)
        return runs, latency

    def scan_cursors(self, lo_key, hi_key) -> List:
        cursors = []
        for table in reversed(self.levels[0]):
            if hi_key is not None and table.min_key > hi_key:
                continue
            if lo_key is not None and table.max_key < lo_key:
                continue
            cursors.append(table.cursor(lo_key, hi_key))
        for level in range(1, self.options.max_levels):
            lst = self.levels[level]
            if not lst:
                continue
            lo = lst[0].min_key if lo_key is None else lo_key
            hi = lst[-1].max_key if hi_key is None else hi_key
            tables = self._overlapping(level, lo, hi)
            if tables:
                cursors.append(self._level_cursor(tables, lo_key, hi_key))
        return cursors

    @staticmethod
    def _level_cursor(tables: List[MSTable], lo_key, hi_key):
        for table in tables:
            yield from table.cursor(lo_key, hi_key)

    # ------------------------------------------------------------- inspection
    def level_data_bytes(self) -> Dict[int, int]:
        return {i: b for i, b in enumerate(self.level_bytes) if b or self.levels[i]}

    def overflow_factors(self) -> Dict[int, float]:
        """Actual size over threshold per level (§6.2's "data overflows").

        LevelDB under write pressure lets levels exceed their thresholds
        (the paper measures L1 at 5.6x), which shrinks the effective
        adjacent-level fan-out and with it the write amplification.
        """
        out = {}
        for i in range(1, self.options.max_levels - 1):
            if self.level_bytes[i]:
                out[i] = self.level_bytes[i] / self.options.level_target_bytes(i)
        return out

    def effective_size_ratios(self) -> Dict[int, float]:
        """Measured size ratio between adjacent levels (paper: 5.4 vs 10)."""
        out = {}
        for i in range(1, self.options.max_levels - 1):
            if self.level_bytes[i] and self.level_bytes[i + 1]:
                out[i] = self.level_bytes[i + 1] / self.level_bytes[i]
        return out

    @observation_only
    def check_invariants(self) -> None:
        for i, lst in enumerate(self.levels):
            total = sum(t.data_bytes for t in lst)
            if total != self.level_bytes[i]:
                raise InvariantViolation(f"level {i} byte accounting drifted")
            for t in lst:
                if t.n_sequences != 1:
                    raise InvariantViolation("LSM tables must hold one sequence")
            if i >= 1:
                for a, b in zip(lst, lst[1:]):
                    if not a.max_key < b.min_key:
                        raise InvariantViolation(
                            f"level {i} ranges overlap: {a.max_key!r} vs {b.min_key!r}")

    @observation_only
    def describe(self) -> Dict[str, object]:
        return {
            "engine": self.name,
            "levels": {i: {"files": len(lst), "bytes": self.level_bytes[i]}
                       for i, lst in enumerate(self.levels) if lst},
            "flushes": self.flushes,
            "compactions": self.compactions,
            "trivial_moves": self.trivial_moves,
        }

    # --------------------------------------------------------------- recovery
    def checkpoint_state(self) -> object:
        """Owned pure-data snapshot (see Manifest.checkpoint): per-table
        sequence tuples, no live MSTable references."""
        return {
            "levels": [[t.snapshot() for t in lst] for lst in self.levels],
            "compact_pointer": list(self.compact_pointer),
        }

    def restore_state(self, state: object) -> None:
        for lst in self.levels:
            for t in lst:
                t.delete()
        self._reset_selector_state()
        n = self.options.max_levels
        if state is None:
            self.levels = [[] for _ in range(n)]
            self.level_bytes = [0] * n
            self.compact_pointer = [None] * n
            self._busy_levels = set()
            return
        sdict = cast(Dict[str, Any], state)
        self.levels = [[MSTable.from_snapshot(self.runtime, snap)
                        for snap in lst] for lst in sdict["levels"]]
        self.level_bytes = [sum(t.data_bytes for t in lst) for lst in self.levels]
        self.compact_pointer = list(sdict["compact_pointer"])
        self._busy_levels = set()

    def live_file_ids(self) -> Set[int]:
        return {t.file_id for lst in self.levels for t in lst if not t.deleted}
