"""LSM-trie baseline (Wu et al., ATC'15) -- the paper's other append tree.

LSM-trie organizes data as a trie over key-*hash* prefixes: each node holds
appended containers and, when full, partitions its records among a fixed
number of children selected by the next bits of the hash.  Two Table 2
properties follow directly and are what this engine exists to demonstrate:

* the **worst write case is avoided by construction** -- fan-out is a fixed
  ``TRIE_FANOUT``, so appends never degrade into unbounded random writes;
* **sequential writes gain nothing** (keys are hashed: ordered input is
  scattered, no metadata-only moves) and **scans are not supported** (no
  key order exists on disk).

Point reads walk the root-to-leaf hash path, one node per level, with Bloom
filters pruning the appended containers -- the same read behaviour the
original system relies on.

Records are stored internally under their 64-bit key hash (the "trie key");
the original key rides along for verification.  A node is an MSTable whose
sequences are sorted by trie key.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import InvariantViolation, ReproError
from repro.common.options import LsaOptions
from repro.common.records import KEY, KIND, RecordTuple, SEQ, VALUE
from repro.core.engine import EngineBase
from repro.storage.background import BackgroundJob
from repro.storage.runtime import Runtime
from repro.common.hashing import splitmix64
from repro.table.merge import merge_runs
from repro.table.mstable import MSTable
from repro.check.effects.registry import observation_only

#: Children per trie node (the original uses 8: 3 hash bits per level).
TRIE_FANOUT = 8
TRIE_BITS = 3
#: Maximum trie depth (64 hash bits / 3 per level is far more than needed).
MAX_DEPTH = 16


class ScansUnsupportedError(ReproError):
    """LSM-trie stores data in hash order: range scans are impossible."""


def trie_key(key) -> int:
    """The 64-bit hash a record is placed by."""
    return splitmix64(hash(key) & 0xFFFFFFFFFFFFFFFF)


def _child_index(tkey: int, depth: int) -> int:
    """Which child of a depth-``depth`` node the trie key falls into."""
    shift = 64 - TRIE_BITS * (depth + 1)
    return (tkey >> shift) & (TRIE_FANOUT - 1)


class _TriePayload:
    """Value slot of a trie record: original key + kind + user value.

    ``len()`` reports the *accounted payload size* -- the user value's bytes
    -- so :func:`repro.common.records.encoded_size` charges a trie record
    exactly what the original record cost (the 64-bit hash stands in for the
    original key bytes).
    """

    __slots__ = ("orig_key", "kind", "value")

    def __init__(self, orig_key, kind: int, value) -> None:
        self.orig_key = orig_key
        self.kind = kind
        self.value = value

    def __len__(self) -> int:
        v = self.value
        return v if type(v) is int else len(v)

    def __eq__(self, other) -> bool:
        return (isinstance(other, _TriePayload)
                and (self.orig_key, self.kind, self.value)
                == (other.orig_key, other.kind, other.value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_TriePayload({self.orig_key!r}, {self.kind}, {self.value!r})"


class _TrieNode:
    """One trie node: an MSTable of hash-ordered appended containers."""

    __slots__ = ("table", "children", "depth")

    def __init__(self, depth: int) -> None:
        self.table: Optional[MSTable] = None
        self.children: Dict[int, "_TrieNode"] = {}
        self.depth = depth

    @property
    def nbytes(self) -> int:
        return 0 if self.table is None else self.table.data_bytes

    @property
    def n_sequences(self) -> int:
        return 0 if self.table is None else self.table.n_sequences


class LsmTrieEngine(EngineBase):
    """Hash-trie append engine (LSM-trie)."""

    name = "lsmtrie"

    def __init__(self, options: LsaOptions, runtime: Runtime) -> None:
        super().__init__(runtime)
        self.options = options
        self.root = _TrieNode(0)
        self.flushes = 0
        self.spills = 0
        self._init_scheduling(options)

    # ------------------------------------------------------------------ write
    @property
    def memtable_capacity(self) -> int:
        return self.options.node_capacity

    def submit_flush(self, records: List[RecordTuple], nbytes: int) -> BackgroundJob:
        def start() -> float:
            return self._ingest(records)

        return self.runtime.submit_job("trie-ingest", start, high_priority=True)

    def _to_trie_records(self, records: List[RecordTuple]) -> List[RecordTuple]:
        """Re-key records by hash; the original key becomes part of the value.

        The value slot holds ``(orig_key, kind, value)`` so point reads can
        verify against hash collisions; the accounted size is unchanged (the
        original key's bytes simply moved from the key to the value field).
        """
        out = []
        for rec in records:
            payload = _TriePayload(rec[KEY], rec[KIND], rec[VALUE])
            out.append((trie_key(rec[KEY]), rec[SEQ], rec[KIND], payload))
        out.sort(key=lambda r: (r[0], -r[1]))
        return out

    def _ingest(self, records: List[RecordTuple]) -> float:
        self.flushes += 1
        return self._append_to_node(self.root, self._to_trie_records(records))

    def _append_to_node(self, node: _TrieNode, trecs: List[RecordTuple]) -> float:
        """Append a hash-ordered run; spill to children when the node fills."""
        if not trecs:
            return 0.0
        debt = 0.0
        if node.nbytes >= self.options.node_capacity and node.depth < MAX_DEPTH:
            debt += self._spill(node)
        if node.table is None or node.table.deleted:
            node.table = MSTable(self.runtime, key_size=self.options.key_size,
                                 bloom_bits_per_key=self.options.bloom_bits_per_key)
        _, d = node.table.append_sequence(trecs, level=node.depth + 1)
        self.runtime.metrics.bump("trie-append")
        return debt + d

    def _spill(self, node: _TrieNode) -> float:
        """Move a full node's records down to its TRIE_FANOUT children."""
        debt = node.table.compaction_read_debt()
        runs = [s.records for s in node.table.sequences]
        bottom = not node.children and node.depth + 1 >= MAX_DEPTH
        merged = merge_runs(runs, drop_tombstones=bottom,
                            snapshots=self.snapshots_provider())
        node.table.delete()
        node.table = None
        parts: Dict[int, List[RecordTuple]] = {}
        for trec in merged:
            parts.setdefault(_child_index(trec[0], node.depth), []).append(trec)
        for idx, part in sorted(parts.items()):
            child = node.children.get(idx)
            if child is None:
                child = _TrieNode(node.depth + 1)
                node.children[idx] = child
            debt += self._append_to_node(child, part)
        self.spills += 1
        self.runtime.metrics.bump("trie-spill")
        self._trace("compaction", "trie-spill", depth=node.depth)
        return debt

    def pick_background_job(self) -> Optional[BackgroundJob]:
        return None  # all work happens in the flush job, like LSA

    # ------------------------------------------------------------------- read
    def get(self, key, snapshot: Optional[int] = None) -> Tuple[Optional[RecordTuple], float]:
        tkey = trie_key(key)
        latency = 0.0
        node = self.root
        depth = 0
        while node is not None:
            if node.table is not None and node.table.n_sequences:
                trec, lat = self._node_get(node, tkey, key, snapshot)
                latency += lat
                if trec is not None:
                    return trec, latency
            node = node.children.get(_child_index(tkey, depth))
            depth += 1
        return None, latency

    def _node_get(self, node: _TrieNode, tkey: int, key,
                  snapshot: Optional[int]) -> Tuple[Optional[RecordTuple], float]:
        latency = 0.0
        for seq in reversed(node.table.sequences):
            if snapshot is not None and seq.min_seq > snapshot:
                continue
            trec, lat = seq.get(self.runtime, node.table.file_id, tkey, snapshot)
            latency += lat
            if trec is not None:
                p = trec[VALUE]
                if p.orig_key == key:  # hash-collision guard
                    return (p.orig_key, trec[SEQ], p.kind, p.value), latency
        return None, latency

    def scan_runs(self, lo_key, hi_key):
        raise ScansUnsupportedError(
            "LSM-trie is hash-based and does not support scans (Table 2)")

    def scan_cursors(self, lo_key, hi_key):
        raise ScansUnsupportedError(
            "LSM-trie is hash-based and does not support scans (Table 2)")

    # ------------------------------------------------------------- inspection
    def _walk(self):
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def level_data_bytes(self) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for node in self._walk():
            if node.nbytes:
                out[node.depth + 1] = out.get(node.depth + 1, 0) + node.nbytes
        return out

    def max_children(self) -> int:
        return max((len(n.children) for n in self._walk()), default=0)

    @observation_only
    def check_invariants(self) -> None:
        for node in self._walk():
            if len(node.children) > TRIE_FANOUT:
                raise InvariantViolation("trie node exceeded its fixed fan-out")
            for idx, child in node.children.items():
                if child.depth != node.depth + 1:
                    raise InvariantViolation("trie depth bookkeeping broken")
                if not (0 <= idx < TRIE_FANOUT):
                    raise InvariantViolation(f"bad child index {idx}")

    @observation_only
    def describe(self) -> Dict[str, object]:
        depths: Dict[int, int] = {}
        for node in self._walk():
            depths[node.depth] = depths.get(node.depth, 0) + 1
        return {
            "engine": self.name,
            "nodes_per_depth": dict(sorted(depths.items())),
            "level_bytes": self.level_data_bytes(),
            "flushes": self.flushes,
            "spills": self.spills,
            "max_children": self.max_children(),
        }

    # --------------------------------------------------------------- recovery
    def checkpoint_state(self) -> object:
        """Owned pure-data snapshot (see Manifest.checkpoint)."""
        def snap(node: _TrieNode):
            return (node.depth,
                    node.table.snapshot() if node.table is not None else None,
                    {i: snap(c) for i, c in node.children.items()})
        return snap(self.root)

    def restore_state(self, state: object) -> None:
        for node in self._walk():
            if node.table is not None:
                node.table.delete()
                node.table = None
        if state is None:
            self.root = _TrieNode(0)
            return

        def build(s) -> _TrieNode:
            depth, table_snap, children = s
            node = _TrieNode(depth)
            if table_snap is not None:
                node.table = MSTable.from_snapshot(self.runtime, table_snap)
            node.children = {i: build(c) for i, c in children.items()}
            return node
        self.root = build(state)

    def live_file_ids(self) -> Set[int]:
        return {node.table.file_id for node in self._walk()
                if node.table is not None and not node.table.deleted}
