"""Cluster-wide tracing: one merged Chrome trace, per-shard timeseries.

A :class:`ClusterTraceSession` wires the cluster tier (router instants,
replication/rebalance/failover events) into its own
:class:`~repro.obs.tracer.Tracer` and attaches a full per-DB
:class:`~repro.obs.session.TraceSession` (tracer + timeseries sampler) to
every shard *leader* -- including leaders that appear mid-run, via shard
splits or failover promotions.  Export merges everything with
:func:`~repro.obs.export.merge_chrome_traces`: the router is pid 1 and each
leader gets ``pid = node_id + 1``, so Perfetto shows the cluster as
side-by-side processes on one shared sim timeline, with each shard's
timeseries columns (level bytes, WA, debt, stalls, throughput) as counter
tracks under its own process.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.obs.export import merge_chrome_traces, write_json
from repro.obs.session import TraceConfig, TraceSession
from repro.obs.tracer import TraceOptions, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import ClusterDB
    from repro.cluster.shard import Shard


class ClusterTraceSession:
    """Tracers + samplers across one cluster, with merged export."""

    def __init__(self, cluster: "ClusterDB",
                 config: Optional[TraceConfig] = None) -> None:
        self.config = config if config is not None else TraceConfig()
        self.cluster = cluster
        self.tracer = Tracer(
            cluster.clock,
            TraceOptions(ring_capacity=self.config.ring_capacity))
        cluster.tracer = self.tracer
        cluster.router.tracer = self.tracer
        cluster._trace = self
        self._sessions: List[Tuple[str, int, TraceSession]] = []
        self._traced_nodes: Set[int] = set()
        self._finished = False
        for shard in cluster.router.shards:
            self.on_new_leader(shard)

    # ------------------------------------------------------------------ wiring
    def on_new_leader(self, shard: "Shard") -> None:
        """Attach a per-DB session to a (possibly new) shard leader.

        Called by the cluster whenever a leader appears: initial
        provisioning, rebalance-created shards, failover promotions.
        Idempotent per node.
        """
        leader = shard.group.leader
        if leader.node_id in self._traced_nodes:
            return
        self._traced_nodes.add(leader.node_id)
        session = TraceSession(leader.db, self.config)
        name = (f"shard{shard.shard_id}-node{leader.node_id}:"
                f"{leader.db.engine.name}")
        self._sessions.append((name, leader.node_id, session))

    # --------------------------------------------------------------- lifecycle
    def finish(self) -> None:
        """Take final sample rows on every traced leader (idempotent)."""
        if self._finished:
            return
        self._finished = True
        for _, _, session in self._sessions:
            session.finish()

    # ----------------------------------------------------------------- exports
    def to_chrome(self) -> Dict[str, object]:
        """The merged cluster trace: router pid 1, leaders pid node_id+1."""
        self.finish()
        from repro.obs.export import chrome_trace
        traces = [chrome_trace(self.tracer, None, pid=1,
                               process_name="router")]
        for name, node_id, session in self._sessions:
            traces.append(session.to_chrome(pid=node_id + 1,
                                            process_name=name))
        return merge_chrome_traces(traces)

    def write_chrome(self, path: str) -> None:
        write_json(path, self.to_chrome())

    def timeseries(self) -> Dict[str, List[Dict[str, object]]]:
        """Per-leader sampler rows keyed by traced process name.

        Finalizes every sampler first (tail windows flushed), so each
        shard's timeline covers the whole run.  Keys match the Chrome
        export's process names (``shard<N>-node<M>:<engine>``).
        """
        self.finish()
        return {name: list(session.sampler.rows)
                for name, _, session in self._sessions}

    def to_timeseries_jsonl(self) -> str:
        """All shards' sampler rows as JSON lines tagged with their shard.

        Deterministic (sorted keys, compact separators) like every other
        exporter; one line per row, ``{"node": <process>, ...row}``.
        """
        import json
        lines: List[str] = []
        for name, rows in self.timeseries().items():
            for row in rows:
                obj: Dict[str, object] = {"node": name}
                obj.update(row)
                lines.append(json.dumps(obj, sort_keys=True,
                                        separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")

    def write_timeseries_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_timeseries_jsonl())

    # ----------------------------------------------------------------- summary
    def summary(self) -> str:
        """One line per traced process: event and sample counts."""
        self.finish()
        lines = [
            f"cluster trace: router events={self.tracer.event_count()} "
            f"traced leaders={len(self._sessions)}",
        ]
        for name, _, session in self._sessions:
            lines.append(
                f"  {name:<32} events={session.tracer.event_count()} "
                f"samples={len(session.sampler.rows)}")
        return "\n".join(lines)


def attach_cluster_trace(cluster: "ClusterDB",
                         config: Optional[TraceConfig] = None,
                         ) -> ClusterTraceSession:
    """Wire cluster-wide tracing and return the live session."""
    return ClusterTraceSession(cluster, config)
