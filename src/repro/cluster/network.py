"""Simulated cluster message fabric on the shared sim clock.

The network is a set of directed point-to-point links, each with one-way
latency, finite bandwidth and FIFO delivery: a link busy with an earlier
transfer delays the next one behind it, exactly like :class:`SimDisk`'s
single-channel ``busy_until`` model.  Nothing here reads a wall clock --
every timestamp comes from the one :class:`SimClock` the whole cluster
shares, so network transfers and disk I/O interleave on a single timeline.

Two charging modes mirror the storage runtime's foreground/background
split:

* :meth:`SimNetwork.send` / :meth:`SimNetwork.rpc` -- foreground messages.
  The caller waits for delivery: the shared clock advances to the delivery
  time (queueing behind the link plus service time).
* :meth:`SimNetwork.reserve` -- background transfers (rebalance file
  shipping).  The link is reserved FIFO like a foreground send, but the
  clock does not move; the returned duration is device-time *debt* for a
  :class:`~repro.storage.background.BackgroundJob`, so bulk copies overlap
  foreground traffic the same way compactions overlap queries.

The zero network (``NetworkOptions.zero()``) has no latency, infinite
bandwidth and no framing overhead: every transfer takes exactly 0 simulated
seconds and never advances the clock, which is what makes a 1-shard,
1-replica cluster byte-identical to a bare :class:`~repro.db.iamdb.IamDB`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.errors import ConfigError
from repro.storage.simdisk import SimClock
from repro.check.effects.registry import effects

#: Default per-link bandwidth: 2 GiB/s full duplex (a 25 GbE-ish fabric,
#: deliberately faster than the SSD profile so the disk stays the bottleneck).
DEFAULT_BANDWIDTH = float(2 * 1024**3)

#: Default one-way latency: 50us (same-datacenter RTT of ~100us).
DEFAULT_LATENCY_S = 50e-6


@dataclass(frozen=True)
class NetworkOptions:
    """Per-link fabric parameters (every link is identical)."""

    #: One-way propagation latency per message, in seconds.
    latency_s: float = DEFAULT_LATENCY_S
    #: Link bandwidth in bytes/second (``float("inf")`` = no serialization).
    bandwidth: float = DEFAULT_BANDWIDTH
    #: Fixed framing/header overhead added to every message's payload.
    rpc_bytes: int = 64

    def __post_init__(self) -> None:
        if self.latency_s < 0.0:
            raise ConfigError("network latency_s must be >= 0")
        if not self.bandwidth > 0.0:
            raise ConfigError("network bandwidth must be > 0")
        if self.rpc_bytes < 0:
            raise ConfigError("network rpc_bytes must be >= 0")

    @staticmethod
    def zero() -> "NetworkOptions":
        """The free fabric: zero latency, infinite bandwidth, no framing."""
        return NetworkOptions(latency_s=0.0, bandwidth=float("inf"),
                              rpc_bytes=0)


class SimNetwork:
    """Directed FIFO links between integer node ids, on one shared clock."""

    def __init__(self, clock: SimClock,
                 options: Optional[NetworkOptions] = None) -> None:
        self.clock = clock
        self.options = options if options is not None else NetworkOptions()
        #: Per-directed-link FIFO horizon: (src, dst) -> sim time the link
        #: is busy through.  Missing entries mean the link has never carried
        #: traffic (busy through 0.0).
        self._link_busy: Dict[Tuple[int, int], float] = {}
        #: Total messages carried (both foreground and background).
        self.messages = 0
        #: Total bytes carried, framing included.
        self.bytes_sent = 0
        #: Per-directed-link byte counters, for the cluster report.
        self.link_bytes: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------ model
    def service_time(self, nbytes: int) -> float:
        """Latency + serialization time of one message of ``nbytes``."""
        t = self.options.latency_s
        if nbytes > 0:
            t += nbytes / self.options.bandwidth
        return t

    def _enqueue(self, src: int, dst: int, nbytes: int) -> Tuple[float, float]:
        """Reserve the (src, dst) link FIFO; returns (start, end) times."""
        total = nbytes + self.options.rpc_bytes
        service = self.service_time(total)
        link = (src, dst)
        start = self._link_busy.get(link, 0.0)
        if start < self.clock.now:
            start = self.clock.now
        end = start + service
        self._link_busy[link] = end
        self.messages += 1
        self.bytes_sent += total
        self.link_bytes[link] = self.link_bytes.get(link, 0) + total
        return start, end

    # ------------------------------------------------------------- foreground
    @effects("CLOCK_ADVANCE", "NET_CHARGE", "STATE_MUTATE")
    def send(self, src: int, dst: int, nbytes: int) -> float:
        """Deliver one message synchronously; returns the elapsed sim time.

        The caller blocks until delivery: the shared clock advances past any
        queueing behind earlier traffic on the same directed link plus the
        message's own service time.
        """
        _, end = self._enqueue(src, dst, nbytes)
        elapsed = end - self.clock.now
        if elapsed > 0.0:
            self.clock.advance(elapsed)
        return elapsed

    @effects("CLOCK_ADVANCE", "NET_CHARGE", "STATE_MUTATE")
    def rpc(self, src: int, dst: int, request_bytes: int,
            response_bytes: int = 0) -> float:
        """A request/response round trip; returns the total elapsed time."""
        elapsed = self.send(src, dst, request_bytes)
        elapsed += self.send(dst, src, response_bytes)
        return elapsed

    # ------------------------------------------------------------- background
    def reserve(self, src: int, dst: int, nbytes: int) -> float:
        """Reserve a background transfer; returns debt, clock untouched.

        The returned duration (queueing behind the link's horizon plus
        service time) is meant to be a background job's device-time debt:
        the transfer completes when the pool drains that debt.
        """
        start, end = self._enqueue(src, dst, nbytes)
        return end - self.clock.now

    # ------------------------------------------------------------- inspection
    def snapshot(self) -> Dict[str, object]:
        """Deterministic counter dump for the cluster report."""
        return {
            "messages": self.messages,
            "bytes_sent": self.bytes_sent,
            "link_bytes": {f"{src}->{dst}": nbytes
                           for (src, dst), nbytes
                           in sorted(self.link_bytes.items())},
        }
