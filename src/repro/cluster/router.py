"""The request router: key->shard map, forwarding, admission control.

The router is the cluster's front door (network node 0).  It keeps the
sorted list of shards, binary-searches the key->shard map per request, and
forwards operations over the simulated network to shard leaders:

* **gets/puts/deletes** go to the owning shard's leader as one RPC
  (request out, payload/ack back); replication fans out from the leader
  inside :class:`~repro.cluster.replica.ReplicaGroup`.
* **scans** scatter-gather: the router walks the shards overlapping the
  scan range in key order, forwarding a bounded sub-scan to each and
  stopping early once the limit is satisfied.  Results concatenate in
  shard order, which *is* global key order because ranges are disjoint.
* **admission control**: when a shard's write pipeline degrades -- its
  background pool reports a growing ``failed_streak`` (compactions giving
  up under injected faults) -- the router pauses new writes to that shard
  with exponential pacing, mirroring how the storage engine's own write
  gate sheds load (§6.2's slowdown mechanism, lifted to the cluster tier).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.network import SimNetwork
from repro.cluster.shard import Shard
from repro.common.errors import ConfigError, InvariantViolation
from repro.common.records import Key, Value, encoded_size, make_put
from repro.metrics import MetricsRegistry
from repro.obs.tracer import NullTracer
from repro.check.effects.registry import effects

#: The router's network node id (replica node ids start at 1).
ROUTER_NODE = 0

#: First admission-control pause (doubles per failed_streak step).
ADMISSION_BASE_S = 0.0005
#: Admission-control pause ceiling.
ADMISSION_MAX_S = 0.05
#: Doubling cap: 2**16 * base is already far past ADMISSION_MAX_S, and
#: capping the exponent keeps ``2.0 ** n`` finite for arbitrarily long
#: failure streaks (a raw ``2.0 ** (streak - 1)`` overflows past ~1024).
ADMISSION_MAX_DOUBLINGS = 16

#: Encoded size of a routed read/scan request (key + framing handled by
#: the network's rpc_bytes; this is the logical payload).
REQUEST_BYTES = 16


class Router:
    """Maintains the key->shard map and forwards client operations."""

    def __init__(self, shards: List[Shard], network: SimNetwork,
                 metrics: MetricsRegistry, tracer: NullTracer) -> None:
        self.network = network
        self.metrics = metrics
        self.tracer = tracer
        self._shards: List[Shard] = []
        self._los: List[int] = []
        self._install(shards)

    # ------------------------------------------------------------ shard map
    def _install(self, shards: List[Shard]) -> None:
        ordered = sorted(shards, key=lambda s: s.lo)
        for left, right in zip(ordered, ordered[1:]):
            if left.hi != right.lo:
                raise ConfigError(
                    f"shard ranges must tile: [{left.lo},{left.hi}) then "
                    f"[{right.lo},{right.hi})")
        self._shards = ordered
        self._los = [s.lo for s in ordered]

    @property
    def shards(self) -> List[Shard]:
        """Live shards in key order (do not mutate)."""
        return self._shards

    def ranges(self) -> List[Tuple[int, int]]:
        return [(s.lo, s.hi) for s in self._shards]

    def shard_for(self, key: int) -> Shard:
        idx = bisect_right(self._los, key) - 1
        if idx < 0:
            raise InvariantViolation(
                f"key {key:#x} below the cluster key space")
        shard = self._shards[idx]
        if not shard.contains(key):
            raise InvariantViolation(
                f"key {key:#x} outside shard [{shard.lo:#x}, {shard.hi:#x})")
        return shard

    def shards_in_range(self, lo_key: Optional[int],
                        hi_key: Optional[int]) -> List[Shard]:
        """Shards overlapping ``[lo, hi)`` in key order."""
        out = []
        for shard in self._shards:
            if hi_key is not None and shard.lo >= hi_key:
                break
            if lo_key is not None and shard.hi <= lo_key:
                continue
            out.append(shard)
        return out

    def replace(self, old: List[Shard], new: List[Shard]) -> None:
        """Swap rebalanced shards atomically; ranges must still tile."""
        for shard in old:
            shard.retired = True
        keep = [s for s in self._shards if s not in old]
        self._install(keep + new)

    # ----------------------------------------------------- admission control
    @effects("CLOCK_ADVANCE", "STATE_MUTATE")
    def _admit_write(self, shard: Shard) -> None:
        """Pace writes to a degraded shard (leader pool giving up on jobs)."""
        streak = shard.group.leader.db.runtime.pool.failed_streak
        if streak <= 0:
            return
        doublings = min(streak - 1, ADMISSION_MAX_DOUBLINGS)
        delay = ADMISSION_BASE_S * (2.0 ** doublings)
        if delay > ADMISSION_MAX_S:
            delay = ADMISSION_MAX_S
        self.network.clock.advance(delay)
        self.metrics.bump("router:admission-delay")
        self.metrics.add_stall("router-admission", delay)
        if self.tracer.enabled:
            self.tracer.instant("router", "admission-delay",
                                shard=shard.shard_id, streak=streak,
                                delay_s=delay)

    # ------------------------------------------------------------ forwarding
    def put(self, key: Key, value: Value) -> None:
        shard = self.shard_for(key)
        self._admit_write(shard)
        shard.writes += 1
        rec_bytes = encoded_size(make_put(key, 0, value),
                                 shard.group.key_size)
        leader_node = shard.group.leader.node_id
        self.network.send(ROUTER_NODE, leader_node, rec_bytes)
        shard.group.put(key, value)
        self.network.send(leader_node, ROUTER_NODE, 0)

    def delete(self, key: Key) -> None:
        shard = self.shard_for(key)
        self._admit_write(shard)
        shard.writes += 1
        rec_bytes = encoded_size(make_put(key, 0, 0), shard.group.key_size)
        leader_node = shard.group.leader.node_id
        self.network.send(ROUTER_NODE, leader_node, rec_bytes)
        shard.group.delete(key)
        self.network.send(leader_node, ROUTER_NODE, 0)

    def get(self, key: Key) -> Optional[Value]:
        shard = self.shard_for(key)
        shard.reads += 1
        leader_node = shard.group.leader.node_id
        self.network.send(ROUTER_NODE, leader_node, REQUEST_BYTES)
        value = shard.group.get(key)
        resp = value if isinstance(value, int) else 0
        self.network.send(leader_node, ROUTER_NODE, resp)
        return value

    def multi_get(self, keys: List[Key]) -> List[Optional[Value]]:
        """Scatter-gather batched point reads.

        One vectorized ``searchsorted`` over the shard fences routes the
        whole batch; keys sharing a shard coalesce into a single RPC to
        that leader (request bytes scale with the batch, but the per-RPC
        framing/latency is paid once), answered by the storage layer's
        batched :meth:`~repro.cluster.replica.ReplicaGroup.multi_get`.
        Shards are visited in key order; results return in request order.
        """
        n = len(keys)
        if n == 0:
            return []
        los = self._los
        shards = self._shards
        try:
            key_arr = np.asarray(keys, dtype=np.uint64)
            if key_arr.shape != (n,):
                raise TypeError("keys must be a flat sequence")
            fences = np.asarray(los, dtype=np.uint64)
            idxs = (np.searchsorted(fences, key_arr, side="right")
                    .astype(np.intp) - 1).tolist()
        except (OverflowError, TypeError, ValueError):
            idxs = [bisect_right(los, key) - 1 for key in keys]
        groups: Dict[int, List[int]] = {}
        for pos, si in enumerate(idxs):
            if si < 0:
                raise InvariantViolation(
                    f"key {keys[pos]:#x} below the cluster key space")
            if not shards[si].contains(keys[pos]):
                shard = shards[si]
                raise InvariantViolation(
                    f"key {keys[pos]:#x} outside shard "
                    f"[{shard.lo:#x}, {shard.hi:#x})")
            groups.setdefault(si, []).append(pos)
        out: List[Optional[Value]] = [None] * n
        for si in sorted(groups):
            positions = groups[si]
            shard = shards[si]
            batch = [keys[p] for p in positions]
            shard.reads += len(batch)
            leader_node = shard.group.leader.node_id
            self.network.send(ROUTER_NODE, leader_node,
                              REQUEST_BYTES * len(batch))
            values = shard.group.multi_get(batch)
            resp = sum(v for v in values if isinstance(v, int))
            self.network.send(leader_node, ROUTER_NODE, resp)
            if len(batch) > 1:
                self.metrics.bump("router:coalesced-reads", len(batch) - 1)
            for p, v in zip(positions, values):
                out[p] = v
        return out

    def scan(self, lo_key: Optional[Key], hi_key: Optional[Key], *,
             limit: Optional[int] = None) -> List[Tuple[Key, object]]:
        """Scatter-gather scan across the shards overlapping the range."""
        lo_i = lo_key if isinstance(lo_key, int) else None
        hi_i = hi_key if isinstance(hi_key, int) else None
        out: List[Tuple[Key, object]] = []
        for shard in self.shards_in_range(lo_i, hi_i):
            if limit is not None and len(out) >= limit:
                break
            remaining = None if limit is None else limit - len(out)
            shard.scans += 1
            leader_node = shard.group.leader.node_id
            self.network.send(ROUTER_NODE, leader_node, REQUEST_BYTES)
            rows = shard.group.scan(lo_key, hi_key, limit=remaining)
            resp = sum(v if isinstance(v, int) else 0 for _, v in rows)
            self.network.send(leader_node, ROUTER_NODE, resp)
            out.extend(rows)
        return out
