"""One range-partitioned shard: a key range bound to a replica group.

Shards own half-open key ranges ``[lo, hi)`` over the hash-load key space
``[0, 2**64)`` (keys are ``permute64`` outputs, so ranges receive uniform
load unless the workload is skewed).  A shard object is immutable in its
range: rebalance replaces shard objects in the router instead of mutating
ranges in place, which keeps the key->shard map trivially consistent.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster.replica import ReplicaGroup
from repro.common.errors import ConfigError
from repro.check.effects.registry import observation_only

#: The cluster key space: hash-load keys are 64-bit permutations.
KEY_SPACE_LO = 0
KEY_SPACE_HI = 2**64


class Shard:
    """A key range served by one replica group."""

    __slots__ = ("shard_id", "lo", "hi", "group", "reads", "writes", "scans",
                 "retired")

    def __init__(self, shard_id: int, lo: int, hi: int,
                 group: ReplicaGroup) -> None:
        if not lo < hi:
            raise ConfigError(f"shard range needs lo < hi, got [{lo}, {hi})")
        self.shard_id = shard_id
        self.lo = lo
        self.hi = hi
        self.group = group
        #: Routed-op counters, for the load-imbalance report and the
        #: load-triggered split heuristic.
        self.reads = 0
        self.writes = 0
        self.scans = 0
        #: Set when rebalance moved this shard's data elsewhere; a retired
        #: shard must never appear in the router again.
        self.retired = False

    def contains(self, key: int) -> bool:
        return self.lo <= key < self.hi

    # ------------------------------------------------------------- inspection
    def data_bytes(self) -> int:
        """Leader's structural bytes (levels + memtable): the split signal."""
        leader = self.group.leader.db
        level_bytes = leader.engine.level_data_bytes()
        return sum(level_bytes.values()) + leader.memtable.nbytes

    def ops_routed(self) -> int:
        return self.reads + self.writes + self.scans

    @observation_only
    def stats(self) -> Dict[str, object]:
        """Per-shard row of the cluster report (leader stats + routing)."""
        leader = self.group.leader.db
        d = leader.stats()
        d.update({
            "shard_id": self.shard_id,
            "range_lo": self.lo,
            "range_hi": self.hi,
            "leader_node": self.group.leader.node_id,
            "replicas": len(self.group.live_replicas()),
            "acked_seq": self.group.acked_seq,
            "failovers": self.group.failovers,
            "reads_routed": self.reads,
            "writes_routed": self.writes,
            "scans_routed": self.scans,
            "data_bytes": self.data_bytes(),
        })
        return d

    def live_dbs(self) -> List[object]:
        return [r.db for r in self.group.live_replicas()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Shard({self.shard_id}, [{self.lo:#x}, {self.hi:#x}), "
                f"replicas={len(self.group.replicas)})")


def even_ranges(n_shards: int, lo: int = KEY_SPACE_LO,
                hi: int = KEY_SPACE_HI) -> List[Tuple[int, int]]:
    """Split ``[lo, hi)`` into ``n_shards`` contiguous near-equal ranges."""
    if n_shards < 1:
        raise ConfigError("n_shards must be >= 1")
    if not lo < hi:
        raise ConfigError("key space needs lo < hi")
    span = hi - lo
    bounds = [lo + (span * i) // n_shards for i in range(n_shards)]
    bounds.append(hi)
    ranges: List[Tuple[int, int]] = []
    for i in range(n_shards):
        if not bounds[i] < bounds[i + 1]:
            raise ConfigError(f"too many shards for key space [{lo}, {hi})")
        ranges.append((bounds[i], bounds[i + 1]))
    return ranges
