"""The cluster facade: an :class:`IamDB`-shaped front end over many shards.

:class:`ClusterDB` duck-types the single-node DB surface the workload
front-end consumes (``put/get/delete/scan``, ``metrics``, ``runtime.clock``,
``engine.name``, the amplification/space inspectors), so ``hash_load`` and
``run_ycsb`` drive a 16-node cluster exactly like one store.  Underneath,
every operation routes through :class:`~repro.cluster.router.Router` over
the simulated network to range-partitioned shards, each a replicated group
of full DBs on their own disks -- all sharing one :class:`SimClock`, so
network transfer, WAL appends, flushes and compactions across every node
interleave on a single deterministic timeline.

Determinism contract: the cluster report (:meth:`ClusterDB.stats`) is a
pure function of (options, workload, seed) -- two identical runs produce
byte-identical JSON.  Nothing in this package reads a wall clock or an
unseeded RNG.

**Acked-write audit**: the cluster remembers the last acked value of a
bounded window of recently written keys.  When a fault plan kills a leader
(:meth:`crash_leader`), the promoted follower is immediately audited: every
remembered acked write owned by that shard must read back exactly; a
mismatch raises :class:`InvariantViolation` (the "zero acked-write loss"
acceptance gate).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.cluster.network import NetworkOptions, SimNetwork
from repro.cluster.rebalance import RebalanceOptions, Rebalancer
from repro.cluster.replica import LeaderKill, Replica, ReplicaGroup
from repro.cluster.router import REQUEST_BYTES, ROUTER_NODE, Router
from repro.cluster.shard import Shard, even_ranges
from repro.common.errors import ConfigError, InvariantViolation, StoreClosedError
from repro.common.options import FaultOptions, StorageOptions
from repro.common.records import Key, Value
from repro.db.iamdb import IamDB
from repro.metrics import MetricsRegistry, StallBreakdown, merge_snapshots
from repro.objstore.manifestlog import DEFAULT_RETAIN_CUTS, SharedManifestLog
from repro.objstore.report import objstore_summary
from repro.objstore.store import ObjStoreOptions, SimObjectStore
from repro.objstore.tiering import AsOfReader, ObjStoreTier, open_as_of
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.storage.simdisk import SimClock, SimDisk
from repro.check.effects.registry import observation_only

#: Recently acked writes remembered for the failover audit (per cluster).
AUDIT_WINDOW = 256

#: Salt for deriving per-replica fault seeds from the base seed: every node
#: sees an independent (but reproducible) transient-fault sequence.
_FAULT_SEED_SALT = 7919


@dataclass(frozen=True)
class ClusterOptions:
    """Topology + substrate configuration of one simulated cluster."""

    n_shards: int = 4
    #: Copies per shard, leader included.
    n_replicas: int = 2
    engine: str = "iam"
    engine_options: Any = None
    storage_options: Optional[StorageOptions] = None
    network: NetworkOptions = field(default_factory=NetworkOptions)
    rebalance: RebalanceOptions = field(default_factory=RebalanceOptions)
    #: Shared object-store service parameters; None disables the shared
    #: storage tier (no store, no manifest logs, no tiering).
    objstore: Optional[ObjStoreOptions] = None
    #: Manifest cuts retained per shard log (the time-travel window).
    objstore_retain_cuts: int = DEFAULT_RETAIN_CUTS
    #: Drain compaction debt on a dedicated shared device (the "dedicated
    #: compaction node against shared storage" mode); requires ``objstore``.
    compaction_offload: bool = False

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        if self.n_replicas < 1:
            raise ConfigError("n_replicas must be >= 1")
        if self.objstore_retain_cuts < 1:
            raise ConfigError("objstore_retain_cuts must be >= 1")
        if self.compaction_offload and self.objstore is None:
            raise ConfigError(
                "compaction_offload needs a shared object store "
                "(set ClusterOptions.objstore)")


class _ClusterRuntime:
    """Minimal runtime facade: the pieces reports read off ``db.runtime``."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock


class _ClusterEngine:
    """Minimal engine facade: reports read ``db.engine.name``."""

    def __init__(self, name: str) -> None:
        self.name = name


class ClusterDB:
    """A sharded, replicated store behind the single-node DB surface."""

    def __init__(self, options: Optional[ClusterOptions] = None) -> None:
        self.options = options if options is not None else ClusterOptions()
        self.clock = SimClock()
        self.network = SimNetwork(self.clock, self.options.network)
        #: Cluster-tier metrics: routed-op latencies, router/failover events.
        self.metrics = MetricsRegistry()
        #: Cluster-tier tracer (router/replication/rebalance instants);
        #: NULL_TRACER until a ClusterTraceSession attaches.
        self.tracer: NullTracer = NULL_TRACER
        self.runtime = _ClusterRuntime(self.clock)
        self.engine = _ClusterEngine(f"cluster:{self.options.engine}")
        self._next_node_id = 1
        self._next_shard_id = 0
        self._fault_options: Optional[FaultOptions] = None
        self._kills: List[LeaderKill] = []
        self._trace: Optional[Any] = None
        self._ops = 0
        self._closed = False
        self._hist_enabled = False
        #: Last acked value per recently written key (failover audit window).
        self._acked_audit: "OrderedDict[int, Optional[Value]]" = OrderedDict()
        self.failover_reports: List[Dict[str, object]] = []
        #: Shared storage tier (None = disabled): one store for the whole
        #: cluster, one append-only manifest log and one leader-attached
        #: tier per shard, plus cached time-travel readers per (shard, cut).
        self.objstore: Optional[SimObjectStore] = None
        self.manifest_logs: Dict[int, SharedManifestLog] = {}
        self._tiers: Dict[int, ObjStoreTier] = {}
        self._as_of_readers: Dict[Tuple[int, int], AsOfReader] = {}
        self.offload_disk: Optional[SimDisk] = None
        if self.options.objstore is not None:
            self.objstore = SimObjectStore(self.clock, self.options.objstore)
            if self.options.compaction_offload:
                device = (self.options.storage_options
                          if self.options.storage_options is not None
                          else StorageOptions()).device
                self.offload_disk = SimDisk(device, self.clock)
        shards = [self._make_shard(lo, hi)
                  for lo, hi in even_ranges(self.options.n_shards)]
        self.router = Router(shards, self.network, self.metrics, self.tracer)
        self.rebalancer = Rebalancer(self, self.options.rebalance)

    # ------------------------------------------------------------- provisioning
    def _make_replica(self) -> Replica:
        """Provision one fresh replica (own disk, shared clock)."""
        o = self.options
        node_id = self._next_node_id
        self._next_node_id += 1
        db = IamDB(o.engine, engine_options=o.engine_options,
                   storage_options=o.storage_options, clock=self.clock)
        if self._fault_options is not None:
            db.runtime.attach_faults(replace(
                self._fault_options,
                seed=self._fault_options.seed + node_id * _FAULT_SEED_SALT))
        if self._hist_enabled:
            db.metrics.enable_histograms()
        return Replica(node_id, db)

    def _make_shard(self, lo: int, hi: int) -> Shard:
        """Provision a fresh replica group serving ``[lo, hi)``."""
        replicas = [self._make_replica()
                    for _ in range(self.options.n_replicas)]
        shard_id = self._next_shard_id
        self._next_shard_id += 1
        group = ReplicaGroup(shard_id, replicas, self.network)
        shard = Shard(shard_id, lo, hi, group)
        if self.objstore is not None:
            self._attach_tier(shard)
        if self._trace is not None:
            self._trace.on_new_leader(shard)
        return shard

    def _attach_tier(self, shard: Shard) -> ObjStoreTier:
        """(Re)bind the shard's manifest log + tier to its current leader.

        The shard's log is created on first attach and survives leader
        changes -- the log *is* the shard's durable metadata.  A previous
        tier (a dead leader's) is detached so exactly one node mirrors.
        """
        if self.objstore is None:
            raise InvariantViolation("tier attach without an object store")
        log = self.manifest_logs.get(shard.shard_id)
        if log is None:
            log = SharedManifestLog(
                self.objstore, f"shard{shard.shard_id}/",
                retain_cuts=self.options.objstore_retain_cuts)
            self.manifest_logs[shard.shard_id] = log
        old = self._tiers.get(shard.shard_id)
        if old is not None:
            old.detach()
        leader = shard.group.leader
        tier = ObjStoreTier(leader.db, log, node_tag=f"n{leader.node_id}")
        self._tiers[shard.shard_id] = tier
        if self.offload_disk is not None:
            leader.db.runtime.pool.offload_disk = self.offload_disk
        return tier

    def spawn_follower(self, shard_index: int, *,
                       mode: str = "objstore") -> Dict[str, object]:
        """Provision a brand-new follower and catch it up to the leader.

        ``mode="objstore"``: bootstrap from shared storage -- replay the
        shard's manifest log and fetch data objects from the store; the
        leader then ships only WAL records *newer* than the bootstrap cut
        (zero leader network bytes for the flushed prefix).
        ``mode="ship"``: the baseline -- the leader ships its checkpointed
        state and every live file over the network, then the same WAL tail.
        Returns the group's deterministic catch-up report.
        """
        self._check_open()
        shards = self.router.shards
        if not 0 <= shard_index < len(shards):
            raise ConfigError(
                f"spawn_follower targets shard {shard_index}, cluster has "
                f"{len(shards)}")
        if mode == "objstore" and self.objstore is None:
            raise ConfigError(
                "objstore bootstrap needs ClusterOptions.objstore")
        shard = shards[shard_index]
        replica = self._make_replica()
        log = (self.manifest_logs.get(shard.shard_id)
               if mode == "objstore" else None)
        report = shard.group.add_follower(replica, mode=mode, log=log)
        report["shard"] = shard.shard_id
        self.metrics.bump("follower:spawn")
        if self.tracer.enabled:
            self.tracer.instant("cluster", "follower-spawn",
                                shard=shard.shard_id, mode=mode,
                                node=replica.node_id)
        self._pump_all()
        return report

    # ----------------------------------------------------------------- metrics
    def enable_histograms(self) -> None:
        """Turn on per-op-class latency histograms, cluster-wide.

        Enables the cluster-tier registry (routed-op latencies) and every
        replica DB's registry; replicas provisioned later (splits,
        failover re-replication) inherit the setting.  Off by default --
        the pay-for-what-you-use contract of the single-node layer holds
        here too.
        """
        self._hist_enabled = True
        self.metrics.enable_histograms()
        for shard in self.router.shards:
            for replica in shard.group.replicas:
                replica.db.metrics.enable_histograms()

    # ------------------------------------------------------------------ faults
    def arm_faults(self, device_options: Optional[FaultOptions],
                   kills: List[LeaderKill]) -> None:
        """Arm transient device faults and/or scheduled leader kills.

        Must run before the workload; transient faults attach to every
        existing replica (and automatically to replicas provisioned later,
        e.g. by splits) with a per-node derived seed.
        """
        self._kills = sorted(kills, key=lambda k: (k.at_op, k.shard))
        if device_options is None or not device_options.enabled:
            return
        self._fault_options = device_options
        for shard in self.router.shards:
            for replica in shard.group.live_replicas():
                replica.db.runtime.attach_faults(replace(
                    device_options,
                    seed=device_options.seed
                    + replica.node_id * _FAULT_SEED_SALT))

    def crash_leader(self, shard_index: int) -> Dict[str, object]:
        """Kill the current leader of the shard at router position ``index``.

        Promotes a follower via crash/recovery, then audits every remembered
        acked write the shard owns against the new leader -- a lost acked
        write raises :class:`InvariantViolation`.  With no live follower the
        kill is skipped (recorded, not fatal): a 1-replica shard cannot
        fail over.
        """
        shards = self.router.shards
        if not 0 <= shard_index < len(shards):
            raise ConfigError(
                f"kill targets shard {shard_index}, cluster has "
                f"{len(shards)}")
        shard = shards[shard_index]
        if len(shard.group.live_replicas()) < 2:
            self.metrics.bump("failover:skipped")
            report: Dict[str, object] = {"shard": shard.shard_id,
                                         "skipped": "no live follower"}
            self.failover_reports.append(report)
            return report
        report = shard.group.kill_leader()
        if self.objstore is not None:
            # The promoted leader takes over mirroring under its own node
            # tag; the log resyncs from store contents (sweeping objects
            # whose cut never landed) and cached time-travel readers for
            # this shard are dropped -- their cuts may have been swept.
            tier = self._attach_tier(shard)
            report["objstore_recovery"] = tier.recover()
            self._as_of_readers = {
                key: reader for key, reader in self._as_of_readers.items()
                if key[0] != shard.shard_id}
        if self._trace is not None:
            self._trace.on_new_leader(shard)
        audited = 0
        for key in sorted(self._acked_audit):
            if not shard.contains(key):
                continue
            want = self._acked_audit[key]
            got = shard.group.get(key)
            if got != want:
                raise InvariantViolation(
                    f"acked write lost across failover: shard "
                    f"{shard.shard_id} key {key:#x} expected {want!r}, "
                    f"read {got!r}")
            audited += 1
        report["audited_writes"] = audited
        self.metrics.bump("failover")
        if self.tracer.enabled:
            self.tracer.instant("cluster", "failover", shard=shard.shard_id,
                                promoted=report["promoted_node"],
                                audited=audited)
        self.failover_reports.append(report)
        return report

    # -------------------------------------------------------------- op routing
    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosedError("operation on a closed ClusterDB")

    def _begin_op(self) -> None:
        self._check_open()
        self._ops += 1
        while self._kills and self._kills[0].at_op <= self._ops:
            kill = self._kills.pop(0)
            self.crash_leader(kill.shard)
        if self._ops % self.options.rebalance.check_interval_ops == 0:
            self.rebalancer.maybe_rebalance()

    def _pump_all(self) -> None:
        """Drain every node's background debt up to the shared clock."""
        for shard in self.router.shards:
            for replica in shard.group.live_replicas():
                replica.db.runtime.pump()

    def put(self, key: Key, value: Value) -> None:
        self._begin_op()
        t0 = self.clock.now
        self.router.put(key, value)
        self._remember_ack(key, value)
        self._pump_all()
        elapsed = self.clock.now - t0
        self.metrics.record_latency("insert", elapsed)
        if self.metrics.hist_enabled:
            self.metrics.observe("put", elapsed)

    def delete(self, key: Key) -> None:
        self._begin_op()
        t0 = self.clock.now
        self.router.delete(key)
        self._remember_ack(key, None)
        self._pump_all()
        elapsed = self.clock.now - t0
        self.metrics.record_latency("insert", elapsed)
        if self.metrics.hist_enabled:
            self.metrics.observe("put", elapsed)

    def get(self, key: Key, *,
            as_of_cut: Optional[int] = None) -> Optional[Value]:
        if as_of_cut is not None:
            return self._get_as_of(key, as_of_cut)
        self._begin_op()
        t0 = self.clock.now
        value = self.router.get(key)
        self._pump_all()
        elapsed = self.clock.now - t0
        self.metrics.record_latency("read", elapsed)
        if self.metrics.hist_enabled:
            self.metrics.observe("get", elapsed)
        return value

    def _get_as_of(self, key: Key, cut_id: int) -> Optional[Value]:
        """Time-travel read: the key's value as of a retained manifest cut.

        Routes like a normal get, then answers from an
        :class:`~repro.objstore.tiering.AsOfReader` over the owning shard's
        manifest log -- the historical tree is restored once per (shard,
        cut) and its page-cache misses fill from the object store at store
        latency.
        """
        if self.objstore is None:
            raise ConfigError(
                "as_of_cut reads need ClusterOptions.objstore")
        self._begin_op()
        t0 = self.clock.now
        shard = self.router.shard_for(key)
        self.network.rpc(ROUTER_NODE, shard.group.leader.node_id,
                         REQUEST_BYTES)
        cache_key = (shard.shard_id, cut_id)
        reader = self._as_of_readers.get(cache_key)
        if reader is None:
            log = self.manifest_logs[shard.shard_id]
            reader = open_as_of(
                log, cut_id, engine=self.options.engine,
                engine_options=self.options.engine_options,
                storage_options=self.options.storage_options,
                clock=self.clock, metrics=MetricsRegistry())
            self._as_of_readers[cache_key] = reader
        value = reader.get(key)
        self._pump_all()
        elapsed = self.clock.now - t0
        self.metrics.record_latency("read", elapsed)
        if self.metrics.hist_enabled:
            self.metrics.observe("get", elapsed)
        return value

    def multi_get(self, keys: List[Key]) -> List[Optional[Value]]:
        """Batched :meth:`get`: one routed scatter-gather op for the batch.

        Counts as a single routed operation (one admission/rebalance check,
        one ``multi_get`` latency sample covering the whole batch); each
        shard leader answers its sub-batch through the storage layer's
        vectorized read path.
        """
        self._begin_op()
        t0 = self.clock.now
        values = self.router.multi_get(keys)
        self._pump_all()
        elapsed = self.clock.now - t0
        self.metrics.record_latency("multi_get", elapsed)
        if self.metrics.hist_enabled:
            self.metrics.observe("multi_get", elapsed)
        return values

    def scan(self, lo_key: Optional[Key] = None, hi_key: Optional[Key] = None,
             *, limit: Optional[int] = None) -> List[Tuple[Key, object]]:
        self._begin_op()
        t0 = self.clock.now
        rows = self.router.scan(lo_key, hi_key, limit=limit)
        self._pump_all()
        elapsed = self.clock.now - t0
        self.metrics.record_latency("scan", elapsed)
        if self.metrics.hist_enabled:
            self.metrics.observe("scan", elapsed)
        return rows

    def iterate(self, lo_key: Optional[Key] = None,
                hi_key: Optional[Key] = None) -> Iterator[Tuple[Key, object]]:
        """Eager scatter-gather iteration (cluster scans materialize)."""
        return iter(self.scan(lo_key, hi_key))

    def _remember_ack(self, key: Key, value: Optional[Value]) -> None:
        if not isinstance(key, int):
            return
        audit = self._acked_audit
        if key in audit:
            audit.pop(key)
        audit[key] = value
        while len(audit) > AUDIT_WINDOW:
            audit.popitem(last=False)

    # --------------------------------------------------------------- lifecycle
    def flush(self) -> float:
        self._check_open()
        t0 = self.clock.now
        for shard in self.router.shards:
            for replica in shard.group.live_replicas():
                replica.db.flush()
        return self.clock.now - t0

    def quiesce(self) -> float:
        self._check_open()
        t0 = self.clock.now
        for shard in self.router.shards:
            for replica in shard.group.live_replicas():
                replica.db.quiesce()
        return self.clock.now - t0

    def close(self) -> None:
        if self._closed:
            return
        for shard in self.router.shards:
            for replica in shard.group.live_replicas():
                replica.db.close()
        self._closed = True

    # -------------------------------------------------------------- inspection
    def _leader_dbs(self) -> List[IamDB]:
        return [s.group.leader.db for s in self.router.shards]

    def _live_dbs(self) -> List[IamDB]:
        return [r.db for s in self.router.shards
                for r in s.group.live_replicas()]

    def write_amplification(self, *, include_wal: bool = False) -> float:
        """Cluster WA over the leaders (per-copy, comparable to one node)."""
        user = 0
        written = 0
        for db in self._leader_dbs():
            user += db.metrics.user_bytes
            written += db.metrics.compaction_write_bytes
            if include_wal:
                written += db.metrics.wal_bytes
        return written / user if user > 0 else 0.0

    def per_level_write_amplification(self) -> Dict[int, float]:
        user = 0
        level_bytes: Dict[int, int] = {}
        for db in self._leader_dbs():
            user += db.metrics.user_bytes
            for level, nbytes in db.metrics.level_write_bytes.items():
                level_bytes[level] = level_bytes.get(level, 0) + nbytes
        if user == 0:
            return {}
        return {level: nbytes / user
                for level, nbytes in sorted(level_bytes.items())}

    def space_used_bytes(self) -> int:
        """Leader copies only (comparable to a single-node run)."""
        return sum(db.space_used_bytes() for db in self._leader_dbs())

    def space_total_bytes(self) -> int:
        """All live replicas: what the cluster actually occupies."""
        return sum(db.space_used_bytes() for db in self._live_dbs())

    @staticmethod
    def _imbalance(values: List[int]) -> float:
        """max/mean of a non-negative series (1.0 = perfectly balanced)."""
        if not values:
            return 0.0
        total = sum(values)
        if total <= 0:
            return 0.0
        return max(values) * len(values) / total

    @observation_only
    def stats(self) -> Dict[str, object]:
        """The cluster report: topology, aggregates, imbalance, tails."""
        shards = self.router.shards
        shard_rows = [s.stats() for s in shards]
        merged = merge_snapshots(
            [s.group.leader.db.metrics.snapshot() for s in shards])
        ops_per_shard = [s.ops_routed() for s in shards]
        bytes_per_shard = [s.data_bytes() for s in shards]
        tail: Dict[str, Dict[str, float]] = {}
        for op in sorted(self.metrics.latency):
            digest = self.metrics.latency[op].window_summary(0)
            if digest["count"]:
                tail[op] = digest
        # Storage-tier stall blame merged across shard leaders, plus the
        # cluster tier's own waits (router admission pacing).
        blame = StallBreakdown.from_snapshot(merged)
        cluster_blame = self.metrics.stall_breakdown()
        extra: Dict[str, object] = {}
        if self.metrics.hist_enabled:
            extra["latency_percentiles"] = self.metrics.hist_percentiles()
        if self.objstore is not None:
            summary = objstore_summary(
                self.objstore.snapshot(),
                [self.manifest_logs[sid].snapshot()
                 for sid in sorted(self.manifest_logs)])
            summary["compaction_offload"] = self.offload_disk is not None
            if self.offload_disk is not None:
                summary["offload_busy_until_s"] = self.offload_disk.busy_until
            extra["objstore"] = summary
        return {
            **extra,
            "stall_breakdown": blame.as_dict(sim_seconds=self.clock.now),
            "cluster_stall_breakdown": cluster_blame.as_dict(
                sim_seconds=self.clock.now),
            "engine": self.options.engine,
            "n_shards": len(shards),
            "n_replicas": self.options.n_replicas,
            "ops_routed": self._ops,
            "sim_time_s": self.clock.now,
            "write_amplification": self.write_amplification(),
            "space_used_bytes": self.space_used_bytes(),
            "space_total_bytes": self.space_total_bytes(),
            "load_imbalance": {
                "ops_max_over_mean": self._imbalance(ops_per_shard),
                "bytes_max_over_mean": self._imbalance(bytes_per_shard),
            },
            "tail_latency": tail,
            "network": self.network.snapshot(),
            "rebalance": self.rebalancer.snapshot(),
            "failovers": list(self.failover_reports),
            "cluster_events": dict(sorted(self.metrics.events.items())),
            "metrics": merged,
            "shards": shard_rows,
        }

    @observation_only
    def check_invariants(self) -> None:
        """Cluster invariants plus every live replica's engine invariants."""
        from repro.cluster.invariants import check_cluster_invariants
        check_cluster_invariants(self)
        for db in self._live_dbs():
            db.check_invariants()
