"""Cluster-level structural invariants (the ``repro check`` cluster gate).

Four contracts, checked observation-only (no simulated I/O is charged, so
a check never perturbs the run it validates):

1. **Partition exactness** -- the router's shard ranges are sorted,
   non-empty, contiguous and tile the key space ``[0, 2**64)`` exactly:
   no gap, no overlap, and no retired shard still routable.
2. **Acked-write quorum** -- per shard, the leader has applied at least
   the acked prefix (``leader seq >= acked_seq``) and enough live replicas
   carry it to form a majority.  (The *value-level* half of the contract --
   acked writes read back after failover -- is enforced with charged reads
   by :meth:`~repro.cluster.cluster.ClusterDB.crash_leader`'s audit.)
3. **Exclusive file ownership** -- every live replica's engine references
   only files that exist on its own disk, and no two live replicas share a
   storage stack: after a rebalance, a moved MSTable file belongs to
   exactly one shard.
4. **Manifest-log integrity** (shared-storage clusters) -- every shard's
   manifest log is structurally healthy: cut ids strictly ascend, every
   retained cut's entry object exists in the store, and every data object
   a retained cut references exists (whole entries, no dangling refs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Set

from repro.cluster.shard import KEY_SPACE_HI, KEY_SPACE_LO
from repro.common.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import ClusterDB


def check_partition(cluster: "ClusterDB") -> None:
    """Router ranges partition the key space exactly."""
    shards = cluster.router.shards
    if not shards:
        raise InvariantViolation("cluster has no shards")
    cursor = KEY_SPACE_LO
    for shard in shards:
        if shard.retired:
            raise InvariantViolation(
                f"retired shard {shard.shard_id} still routable")
        if shard.lo != cursor:
            raise InvariantViolation(
                f"shard {shard.shard_id} starts at {shard.lo:#x}, "
                f"expected {cursor:#x} (gap or overlap)")
        if not shard.lo < shard.hi:
            raise InvariantViolation(
                f"shard {shard.shard_id} has empty range "
                f"[{shard.lo:#x}, {shard.hi:#x})")
        cursor = shard.hi
    if cursor != KEY_SPACE_HI:
        raise InvariantViolation(
            f"shard ranges end at {cursor:#x}, expected {KEY_SPACE_HI:#x}")


def check_replication(cluster: "ClusterDB") -> None:
    """Every acked write is applied on the leader and a quorum of replicas."""
    for shard in cluster.router.shards:
        group = shard.group
        acked = group.acked_seq
        leader_db = group.leader.db
        if leader_db._seq < acked:
            raise InvariantViolation(
                f"shard {shard.shard_id}: leader at seq {leader_db._seq} "
                f"< acked seq {acked}")
        live = group.live_replicas()
        carrying = sum(1 for r in live if r.db._seq >= acked)
        quorum = group.quorum()
        if carrying < quorum:
            raise InvariantViolation(
                f"shard {shard.shard_id}: acked seq {acked} on {carrying} "
                f"live replicas, quorum is {quorum}")


def check_file_ownership(cluster: "ClusterDB") -> None:
    """No file (or disk) is owned by two live replicas across shards."""
    seen_disks: Set[int] = set()
    for shard in cluster.router.shards:
        for replica in shard.group.live_replicas():
            db = replica.db
            disk = db.runtime.disk
            disk_id = id(disk)
            if disk_id in seen_disks:
                raise InvariantViolation(
                    f"shard {shard.shard_id} node {replica.node_id} shares "
                    f"a disk with another live replica")
            seen_disks.add(disk_id)
            on_disk = set(disk.files)
            for file_id in db.engine.live_file_ids():
                if file_id not in on_disk:
                    raise InvariantViolation(
                        f"shard {shard.shard_id} node {replica.node_id} "
                        f"references file {file_id} not on its disk")


def check_manifest_logs(cluster: "ClusterDB") -> None:
    """Every shard's shared manifest log is structurally healthy."""
    for shard_id in sorted(cluster.manifest_logs):
        problems = cluster.manifest_logs[shard_id].verify()
        if problems:
            raise InvariantViolation(
                f"shard {shard_id} manifest log unhealthy: "
                f"{'; '.join(problems)}")


def check_cluster_invariants(cluster: "ClusterDB") -> None:
    """Run the full cluster invariant catalog (raises on first violation)."""
    check_partition(cluster)
    check_replication(cluster)
    check_file_ownership(cluster)
    check_manifest_logs(cluster)
