"""repro.cluster: a sharded, replicated serving layer on the sim clock.

The multi-node subsystem: a simulated network fabric
(:mod:`~repro.cluster.network`), range-partitioned shards behind a routing
front door (:mod:`~repro.cluster.shard`, :mod:`~repro.cluster.router`),
leader/follower replication with quorum acks and failover
(:mod:`~repro.cluster.replica`), split/merge rebalance
(:mod:`~repro.cluster.rebalance`) and the :class:`ClusterDB` facade that
makes the whole thing drive like one :class:`~repro.db.iamdb.IamDB`
(:mod:`~repro.cluster.cluster`).  Everything runs on one shared
:class:`~repro.storage.simdisk.SimClock`; same seed, same report, byte for
byte.
"""

from repro.cluster.cluster import ClusterDB, ClusterOptions
from repro.cluster.invariants import check_cluster_invariants
from repro.cluster.network import NetworkOptions, SimNetwork
from repro.cluster.obs import ClusterTraceSession, attach_cluster_trace
from repro.cluster.rebalance import RebalanceOptions, Rebalancer
from repro.cluster.replica import (
    LeaderKill,
    Replica,
    ReplicaGroup,
    parse_cluster_fault_spec,
)
from repro.cluster.router import Router
from repro.cluster.shard import KEY_SPACE_HI, KEY_SPACE_LO, Shard, even_ranges

__all__ = [
    "ClusterDB",
    "ClusterOptions",
    "ClusterTraceSession",
    "KEY_SPACE_HI",
    "KEY_SPACE_LO",
    "LeaderKill",
    "NetworkOptions",
    "RebalanceOptions",
    "Rebalancer",
    "Replica",
    "ReplicaGroup",
    "Router",
    "Shard",
    "SimNetwork",
    "attach_cluster_trace",
    "check_cluster_invariants",
    "even_ranges",
    "parse_cluster_fault_spec",
]
