"""Shard split and cold-shard merge: data movement over the network.

Rebalance runs at deterministic op-count checkpoints (every
``check_interval_ops`` routed operations) and performs at most one action
per checkpoint:

* **split** -- a shard whose leader holds more than
  ``split_threshold_bytes`` of structural data (or, with the load trigger
  enabled, attracts more than ``load_split_fraction`` of the window's
  writes) is cut at the median key of its visible records into two fresh
  shards.
* **merge** -- two *adjacent* shards whose combined size is under
  ``merge_threshold_bytes`` collapse into one fresh shard, reclaiming the
  per-shard overhead of cold ranges.

Data moves the way a real system ships SSTables: the source leader's
visible records are read out (charged query I/O on the source), shipped to
every destination replica as a background network transfer
(:meth:`~repro.cluster.network.SimNetwork.reserve` debt drained through the
source pool), and bulk-ingested on each destination via the engine's own
flush path (``engine.submit_flush`` -- charged sequential writes, no WAL:
file ingestion is durable the moment the manifest checkpoints, exactly like
RocksDB's IngestExternalFile).  Destinations then checkpoint their manifest
so a later failover recovers the ingested data, and the sources are retired
-- their processes stop, their files drop from the cluster's ownership map.

Sequence numbers restart at 1..n on the destination: the shard's logical
content is a fresh copy, and every replica of the destination group ingests
the identical record list, so the group stays seq-aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.cluster.shard import Shard
from repro.common.errors import ConfigError
from repro.common.records import RecordTuple, encoded_size, make_put

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import ClusterDB
    from repro.db.iamdb import IamDB


@dataclass(frozen=True)
class RebalanceOptions:
    """Rebalance triggers; 0 disables a trigger entirely."""

    #: Split a shard whose leader structure exceeds this (0 = no size splits).
    split_threshold_bytes: int = 0
    #: Merge adjacent shards whose combined size is under this (0 = never).
    merge_threshold_bytes: int = 0
    #: Split a shard drawing more than this fraction of a window's writes
    #: (0.0 = no load splits).  Needs at least ``min_window_writes`` writes
    #: in the window to trigger, so idle clusters never thrash.
    load_split_fraction: float = 0.0
    min_window_writes: int = 64
    #: Routed ops between rebalance checks.
    check_interval_ops: int = 512

    def __post_init__(self) -> None:
        if self.split_threshold_bytes < 0 or self.merge_threshold_bytes < 0:
            raise ConfigError("rebalance thresholds must be >= 0")
        if not 0.0 <= self.load_split_fraction <= 1.0:
            raise ConfigError("load_split_fraction must be in [0, 1]")
        if self.check_interval_ops < 1:
            raise ConfigError("check_interval_ops must be >= 1")

    @property
    def enabled(self) -> bool:
        return (self.split_threshold_bytes > 0
                or self.merge_threshold_bytes > 0
                or self.load_split_fraction > 0.0)


class Rebalancer:
    """Applies :class:`RebalanceOptions` to one cluster."""

    def __init__(self, cluster: "ClusterDB",
                 options: RebalanceOptions) -> None:
        self.cluster = cluster
        self.options = options
        self.splits = 0
        self.merges = 0
        #: Bytes shipped over the network by rebalance moves.
        self.moved_bytes = 0
        #: Per-shard write counts at the last window boundary.
        self._write_marks: Dict[int, int] = {}

    # ---------------------------------------------------------------- trigger
    def maybe_rebalance(self) -> None:
        """Run at an op checkpoint; performs at most one split or merge."""
        o = self.options
        if not o.enabled:
            return
        router = self.cluster.router
        target = self._pick_split(router.shards)
        if target is not None:
            self.split(target)
            self._mark_window(router.shards)
            return
        pair = self._pick_merge(router.shards)
        if pair is not None:
            self.merge(pair[0], pair[1])
        self._mark_window(router.shards)

    def _mark_window(self, shards: List[Shard]) -> None:
        self._write_marks = {s.shard_id: s.writes for s in shards}

    def _pick_split(self, shards: List[Shard]) -> Optional[Shard]:
        o = self.options
        best: Optional[Tuple[int, int, Shard]] = None
        window_writes = [(s, s.writes - self._write_marks.get(s.shard_id, 0))
                         for s in shards]
        total_window = sum(w for _, w in window_writes)
        for shard, window in window_writes:
            nbytes = shard.data_bytes()
            oversized = (o.split_threshold_bytes > 0
                         and nbytes > o.split_threshold_bytes)
            hot = (o.load_split_fraction > 0.0
                   and total_window >= o.min_window_writes
                   and window > o.load_split_fraction * total_window)
            if not (oversized or hot):
                continue
            if best is None or (nbytes, -shard.lo) > (best[0], -best[1]):
                best = (nbytes, shard.lo, shard)
        return best[2] if best is not None else None

    def _pick_merge(self, shards: List[Shard]) -> Optional[Tuple[Shard, Shard]]:
        o = self.options
        if o.merge_threshold_bytes <= 0 or len(shards) < 2:
            return None
        for left, right in zip(shards, shards[1:]):
            if left.data_bytes() + right.data_bytes() < o.merge_threshold_bytes:
                return left, right
        return None

    # ---------------------------------------------------------------- actions
    def split(self, shard: Shard) -> Optional[Tuple[Shard, Shard]]:
        """Split ``shard`` at the median key; returns the new (left, right).

        Returns None (no-op) when the shard holds fewer than two records --
        there is no key to cut at.
        """
        cluster = self.cluster
        rows = self._extract(shard)
        mid = len(rows) // 2
        if mid == 0:
            return None
        boundary = rows[mid][0]
        if not shard.lo < boundary < shard.hi:
            return None
        if cluster.tracer.enabled:
            cluster.tracer.instant("rebalance", "split",
                                   shard=shard.shard_id, boundary=boundary,
                                   records=len(rows))
        left = cluster._make_shard(shard.lo, boundary)
        right = cluster._make_shard(boundary, shard.hi)
        self._move(shard, rows[:mid], left)
        self._move(shard, rows[mid:], right)
        self._retire(shard)
        cluster.router.replace([shard], [left, right])
        self.splits += 1
        cluster.metrics.bump("rebalance:split")
        return left, right

    def merge(self, left: Shard, right: Shard) -> Shard:
        """Collapse two adjacent shards into one fresh shard."""
        if left.hi != right.lo:
            raise ConfigError(
                f"merge needs adjacent shards, got [{left.lo},{left.hi}) "
                f"and [{right.lo},{right.hi})")
        cluster = self.cluster
        rows = self._extract(left) + self._extract(right)
        if cluster.tracer.enabled:
            cluster.tracer.instant("rebalance", "merge",
                                   left=left.shard_id, right=right.shard_id,
                                   records=len(rows))
        merged = cluster._make_shard(left.lo, right.hi)
        self._move(left, rows, merged)
        self._retire(left)
        self._retire(right)
        cluster.router.replace([left, right], [merged])
        self.merges += 1
        cluster.metrics.bump("rebalance:merge")
        return merged

    # -------------------------------------------------------------- mechanics
    def _extract(self, shard: Shard) -> List[Tuple[int, object]]:
        """Visible (key, value) rows of the source, charged as leader reads."""
        return shard.group.scan(None, None)

    def _move(self, source: Shard, rows: List[Tuple[int, object]],
              dest: Shard) -> None:
        """Ship ``rows`` from ``source``'s leader into every dest replica."""
        if not rows:
            return
        key_size = source.group.key_size
        records: List[RecordTuple] = [
            make_put(key, seq, value)
            for seq, (key, value) in enumerate(rows, start=1)]
        nbytes = sum(encoded_size(r, key_size) for r in records)
        src_runtime = source.group.leader.db.runtime
        src_node = source.group.leader.node_id
        network = self.cluster.network
        for replica in dest.group.live_replicas():
            dst_node = replica.node_id
            # The copy streams over the network as background work on the
            # source (FIFO behind earlier traffic on that link), overlapping
            # the destination's ingestion.
            src_runtime.submit_job(
                "rebalance:ship",
                lambda s=src_node, d=dst_node, n=nbytes: network.reserve(s, d, n))
            self._ingest(replica.db, records, len(rows))
            self.moved_bytes += nbytes
        # The transfer is synchronous at the rebalance level: both sides
        # drain before the router flips the shard map.
        src_runtime.quiesce()
        for replica in dest.group.live_replicas():
            replica.db.runtime.quiesce()
            self._checkpoint(replica.db)
        dest.group.acked_seq = dest.group.leader.db._seq

    def _ingest(self, db: "IamDB", records: List[RecordTuple],
                final_seq: int) -> None:
        """Bulk-ingest a sorted run through the engine's flush path."""
        capacity = max(1, db.engine.memtable_capacity)
        chunk: List[RecordTuple] = []
        chunk_bytes = 0
        for rec in records:
            chunk.append(rec)
            chunk_bytes += encoded_size(rec, db.key_size)
            if chunk_bytes >= capacity:
                db.engine.submit_flush(chunk, chunk_bytes)
                chunk = []
                chunk_bytes = 0
        if chunk:
            db.engine.submit_flush(chunk, chunk_bytes)
        db._seq = final_seq
        db.runtime.pump()

    def _checkpoint(self, db: "IamDB") -> None:
        """Persist the ingested structure (ingest bypasses the WAL)."""
        db.manifest.checkpoint({
            "engine": db.engine.checkpoint_state(),
            "seq": db._seq,
        })
        db.manifest.edits += 1

    def _retire(self, shard: Shard) -> None:
        """Stop the source replicas; their files leave the ownership map."""
        for replica in shard.group.live_replicas():
            replica.db.runtime.pool.abandon_all()
            replica.db._closed = True
            replica.alive = False
        if self.cluster.tracer.enabled:
            self.cluster.tracer.instant("rebalance", "retire",
                                        shard=shard.shard_id)

    # ------------------------------------------------------------- inspection
    def snapshot(self) -> Dict[str, int]:
        return {"splits": self.splits, "merges": self.merges,
                "moved_bytes": self.moved_bytes}
