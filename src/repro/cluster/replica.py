"""Leader/follower replication with acked-write semantics.

One :class:`ReplicaGroup` owns a shard's copies: ``replicas[0]`` is the
leader, the rest are followers, each a full :class:`~repro.db.iamdb.IamDB`
on its own :class:`~repro.storage.simdisk.SimDisk` sharing the cluster
clock.  Writes apply to the leader, then the WAL record ships synchronously
to every live follower over the simulated network (record bytes + framing);
each follower applies it through its own full write path (WAL, memtable,
flush), so the copies stay structurally independent but logically identical
-- same op order, same sequence numbers.

**Ack contract**: a write is *acked* once a majority of the group's live
replicas (leader included) hold it durably.  ``acked_seq`` tracks the
newest acked sequence number; the failover audit and the cluster
invariants (:mod:`repro.cluster.invariants`) both pin the contract: after
a leader kill, the promoted follower must serve every acked write.

**Failover** (:meth:`ReplicaGroup.kill_leader`): the leader process dies --
its in-flight background jobs are abandoned exactly like a power cut -- and
the most up-to-date live follower is promoted by restarting it through the
existing :meth:`~repro.db.iamdb.IamDB.crash_and_recover` machinery (promotion
is a restart: manifest restore + WAL replay).  Because acked writes are on a
majority, and replication is synchronous, the promoted follower's recovered
sequence can never fall below ``acked_seq``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, InvariantViolation
from repro.common.records import (
    DELETE,
    KEY,
    KIND,
    Key,
    SEQ,
    VALUE,
    Value,
    encoded_size,
    make_put,
)
from repro.db.iamdb import IamDB, SnapshotLike
from repro.faults.crash import CrashSpec
from repro.cluster.network import SimNetwork

if TYPE_CHECKING:  # pragma: no cover
    from repro.objstore.manifestlog import SharedManifestLog


@dataclass(frozen=True)
class LeaderKill:
    """One scheduled leader kill: shard position x global op index."""

    #: Index of the target shard in router order at fire time.
    shard: int
    #: Global cluster op index the kill fires before (1-based, <= fires).
    at_op: int


def parse_cluster_fault_spec(
        spec: str) -> Tuple[Optional[str], List[LeaderKill]]:
    """Split a cluster ``--faults`` spec into (device spec, leader kills).

    ``kill=SHARD:OP`` entries schedule leader kills (shard position in
    router order, fired just before the given global op index); every other
    ``key=value`` entry passes through verbatim to
    :func:`repro.faults.plan.parse_fault_spec` for per-replica transient
    device faults.  Returns ``(device_spec_or_None, kills)``.
    """
    passthrough: List[str] = []
    kills: List[LeaderKill] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        if key.strip() == "kill":
            shard_s, sep, op_s = value.strip().partition(":")
            if not sep:
                raise ConfigError(
                    f"bad kill entry {part!r} (want kill=SHARD:OP)")
            try:
                kills.append(LeaderKill(shard=int(shard_s), at_op=int(op_s)))
            except ValueError as exc:
                raise ConfigError(f"bad kill entry {part!r}: {exc}") from None
        else:
            passthrough.append(part)
    kills.sort(key=lambda k: (k.at_op, k.shard))
    return (",".join(passthrough) if passthrough else None), kills


class Replica:
    """One copy of a shard: a full DB bound to a network node id."""

    __slots__ = ("node_id", "db", "alive")

    def __init__(self, node_id: int, db: IamDB) -> None:
        self.node_id = node_id
        self.db = db
        self.alive = True


class ReplicaGroup:
    """A shard's replicas; index 0 is the current leader."""

    def __init__(self, shard_id: int, replicas: List[Replica],
                 network: SimNetwork) -> None:
        if not replicas:
            raise ConfigError("a replica group needs at least one replica")
        self.shard_id = shard_id
        self.replicas = replicas
        self.network = network
        #: Newest sequence number acked to the client (durable on a quorum).
        self.acked_seq = 0
        #: Leader kills survived (for the cluster report).
        self.failovers = 0
        self.key_size = replicas[0].db.key_size

    # -------------------------------------------------------------- topology
    @property
    def leader(self) -> Replica:
        return self.replicas[0]

    def live_replicas(self) -> List[Replica]:
        return [r for r in self.replicas if r.alive]

    def quorum(self) -> int:
        """Majority of the *live* group (leader included)."""
        return len(self.live_replicas()) // 2 + 1

    # ----------------------------------------------------------------- writes
    def _replicate(self, op: str, key: Key, value: Value) -> None:
        """Apply one write to the leader, ship it, ack at quorum."""
        leader = self.leader
        if op == "put":
            leader.db.put(key, value)
        else:
            leader.db.delete(key)
        seq = leader.db._seq
        # Ship the WAL record to every live follower; the payload is the
        # record's encoded size (same bytes the follower's WAL will append).
        rec_bytes = encoded_size(make_put(key, seq, value), self.key_size)
        acks = 1  # the leader's own durable copy
        quorum = self.quorum()
        acked = acks >= quorum
        for follower in self.replicas[1:]:
            if not follower.alive:
                continue
            self.network.send(leader.node_id, follower.node_id, rec_bytes)
            if op == "put":
                follower.db.put(key, value)
            else:
                follower.db.delete(key)
            self.network.send(follower.node_id, leader.node_id, 0)
            acks += 1
            if not acked and acks >= quorum:
                acked = True
        if not acked:
            raise InvariantViolation(
                f"shard {self.shard_id}: write reached {acks} replicas, "
                f"quorum is {quorum}")
        self.acked_seq = seq

    def put(self, key: Key, value: Value) -> None:
        self._replicate("put", key, value)

    def delete(self, key: Key) -> None:
        self._replicate("delete", key, value=0)

    # -------------------------------------------------------------- follower add
    def add_follower(self, replica: Replica, *, mode: str = "objstore",
                     log: Optional["SharedManifestLog"] = None,
                     ) -> Dict[str, object]:
        """Attach a brand-new follower, caught up before it joins the group.

        ``mode="objstore"``: the follower bootstraps itself from the shard's
        shared manifest log -- entry replay plus data-object fetches charged
        to the *follower's* runtime; zero leader network bytes for the
        flushed prefix.  ``mode="ship"``: the pre-shared-storage baseline --
        the leader ships its checkpointed state and every live file's bytes
        over its own network link.  Both modes then ship the leader's WAL
        tail (records newer than the bootstrap cut), applied through the
        follower's full write path so sequence numbers line up exactly.
        """
        leader = self.leader
        report: Dict[str, object]
        if mode == "objstore":
            if log is None:
                raise ConfigError("objstore follower mode needs the shard's "
                                  "manifest log")
            from repro.objstore.tiering import bootstrap_from_store
            boot = bootstrap_from_store(replica.db, log)
            base_seq = int(boot["seq"])
            report = {"mode": mode, "cut_id": boot["cut_id"],
                      "bootstrap_seq": base_seq,
                      "objects_fetched": boot["objects"],
                      "store_bytes_down": boot["bytes_down"]}
        elif mode == "ship":
            base_seq = 0
            shipped_bytes = 0
            state = leader.db.manifest.restore()
            if state is not None:
                disk = leader.db.runtime.disk
                for fid in sorted(leader.db.engine.live_file_ids()):
                    f = disk.files.get(fid)
                    if f is not None:
                        self.network.send(leader.node_id, replica.node_id,
                                          f.nbytes)
                        shipped_bytes += f.nbytes
                replica.db.engine.restore_state(state["engine"])
                replica.db.manifest.checkpoint(state)
                replica.db.manifest.edits += 1
                replica.db._seq = int(state["seq"])
                base_seq = int(state["seq"])
            report = {"mode": mode, "bootstrap_seq": base_seq,
                      "shipped_bytes": shipped_bytes}
        else:
            raise ConfigError(f"unknown follower mode {mode!r}")
        # Catch-up: only WAL records newer than the bootstrap cut cross the
        # leader's link (the WAL suffix is contiguous from the flushed
        # prefix, so applied seqs line up with the leader's).
        tail = 0
        for rec in leader.db.wal.replay():
            if rec[SEQ] <= base_seq:
                continue
            rec_bytes = encoded_size(rec, self.key_size)
            self.network.send(leader.node_id, replica.node_id, rec_bytes)
            if rec[KIND] == DELETE:
                replica.db.delete(rec[KEY])
            else:
                replica.db.put(rec[KEY], rec[VALUE])
            self.network.send(replica.node_id, leader.node_id, 0)
            tail += 1
        if replica.db._seq != leader.db._seq:
            raise InvariantViolation(
                f"shard {self.shard_id}: new follower caught up to seq "
                f"{replica.db._seq}, leader at {leader.db._seq}")
        self.replicas.append(replica)
        report["wal_tail_records"] = tail
        report["follower_node"] = replica.node_id
        report["seq"] = replica.db._seq
        return report

    # ------------------------------------------------------------------ reads
    def get(self, key: Key, snapshot: SnapshotLike = None) -> Optional[Value]:
        """Leader read (the group serves linearizable reads from the leader)."""
        return self.leader.db.get(key, snapshot)

    def multi_get(self, keys: List[Key],
                  snapshot: SnapshotLike = None) -> List[Optional[Value]]:
        """Leader batched read (one storage-level batch per routed RPC)."""
        return self.leader.db.multi_get(keys, snapshot)

    def scan(self, lo_key: Optional[Key], hi_key: Optional[Key], *,
             limit: Optional[int] = None) -> List[Tuple[Key, object]]:
        return self.leader.db.scan(lo_key, hi_key, limit=limit)

    # --------------------------------------------------------------- failover
    def kill_leader(self) -> Dict[str, object]:
        """Kill the leader process and promote the best live follower.

        Returns a deterministic failover report.  Raises
        :class:`InvariantViolation` when no live follower remains (the shard
        would be lost; the cluster layer screens this before calling) or
        when promotion recovers less than the acked prefix.
        """
        dead = self.leader
        dead.alive = False
        # The process dies: in-flight background work is dropped on the
        # floor, exactly like IamDB.crash_and_recover's crash half.  The
        # dead replica's state is never read again.
        dead.db.runtime.pool.abandon_all()
        candidates = [r for r in self.replicas[1:] if r.alive]
        if not candidates:
            raise InvariantViolation(
                f"shard {self.shard_id}: leader killed with no live follower")
        # Promote the most up-to-date follower (max applied seq; ties break
        # by list order, which is deterministic).
        promoted = candidates[0]
        for r in candidates[1:]:
            if r.db._seq > promoted.db._seq:
                promoted = r
        # Promotion is a restart into leadership: recover durable state via
        # the standard crash/recovery machinery (manifest + WAL replay).
        # Replicated records were shipped through the follower's synchronous
        # WAL append, so none of its tail is torn.
        report = promoted.db.crash_and_recover(CrashSpec(torn_tail_records=0))
        if promoted.db._seq < self.acked_seq:
            raise InvariantViolation(
                f"shard {self.shard_id}: promoted follower recovered seq "
                f"{promoted.db._seq} < acked seq {self.acked_seq}")
        self.replicas = [promoted] + [r for r in self.replicas
                                      if r.alive and r is not promoted]
        self.failovers += 1
        return {
            "shard": self.shard_id,
            "dead_node": dead.node_id,
            "promoted_node": promoted.node_id,
            "acked_seq": self.acked_seq,
            "recovered_seq": report.recovered_seq,
            "replayed_records": report.replayed_records,
            "live_replicas": len(self.live_replicas()),
        }
