"""Sorted sequences and their block layout.

A :class:`Sequence` is one sorted run inside an MSTable (§4.1): records are
partitioned into fixed-size data blocks; the index (block first-keys) and the
Bloom filter form the sequence's metadata, which the paper assumes is always
cached (§2.1), so metadata access costs no device I/O.  Record *content* lives
in Python lists (the simulation substrate); device reads are charged per
block through :meth:`repro.storage.runtime.Runtime.fg_read_blocks`.
"""

from __future__ import annotations

import bisect
from operator import itemgetter
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.common.errors import InvariantViolation
from repro.common.records import KEY, Key, RECORD_OVERHEAD, RecordTuple, SEQ
from repro.filters.bloom import BloomFilter
from repro.storage.runtime import Runtime

_key_of = itemgetter(0)

#: Per-block index entry overhead charged as metadata (key + offset).
INDEX_ENTRY_BYTES = 24


class Sequence:
    """One immutable sorted run: records + block index + Bloom filter."""

    __slots__ = (
        "records",
        "nbytes",
        "metadata_bytes",
        "first_block",
        "n_blocks",
        "block_start_idx",
        "bloom",
        "min_key",
        "max_key",
        "min_seq",
        "max_seq",
        "_keys_arr",
        "_seqs_arr",
        "_kinds_arr",
        "_vals_arr",
    )

    def __init__(self, records: List[RecordTuple], *, key_size: int, block_size: int,
                 bloom_bits_per_key: int, first_block: int) -> None:
        if not records:
            raise InvariantViolation("a Sequence must hold at least one record")
        self.records = records
        self.first_block = first_block
        # Block layout: greedy fill up to block_size encoded bytes per block.
        # Each block is the longest record prefix whose encoded bytes fit
        # (always at least one record), found by bisecting the prefix sums --
        # O(blocks log n) instead of a per-record Python loop.
        fixed = key_size + RECORD_OVERHEAD
        prefix: List[int] = [0]
        acc = 0
        append = prefix.append
        for rec in records:
            v = rec[3]
            acc += fixed + (v if type(v) is int else len(v))
            append(acc)
        n = len(records)
        starts: List[int] = [0]
        start = 0
        while True:
            stop = bisect.bisect_right(prefix, prefix[start] + block_size) - 1
            if stop <= start:
                stop = start + 1  # single record larger than a block
            if stop >= n:
                break
            starts.append(stop)
            start = stop
        seqs = [rec[SEQ] for rec in records]
        min_seq = min(seqs)
        max_seq = max(seqs)
        self.nbytes = acc
        self.block_start_idx = starts
        self.n_blocks = len(starts)
        self.min_key = records[0][KEY]
        self.max_key = records[-1][KEY]
        self.min_seq = min_seq
        self.max_seq = max_seq
        self.bloom = BloomFilter.build([r[KEY] for r in records], bloom_bits_per_key)
        self.metadata_bytes = self.bloom.nbytes + INDEX_ENTRY_BYTES * self.n_blocks
        self._keys_arr: Optional[np.ndarray] = None
        self._seqs_arr: Optional[np.ndarray] = None
        self._kinds_arr: Optional[np.ndarray] = None
        self._vals_arr: object = None  # ndarray | None (unbuilt) | False (n/a)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------- block math
    def _record_span(self, lo_key: Optional[Key],
                     hi_key: Optional[Key]) -> Tuple[int, int]:
        """Record index range [i, j) with lo_key <= key <= hi_key (inclusive)."""
        recs = self.records
        i = 0 if lo_key is None else bisect.bisect_left(recs, lo_key, key=_key_of)
        j = len(recs) if hi_key is None else bisect.bisect_right(recs, hi_key, key=_key_of)
        return i, j

    def keys_array(self) -> Optional[np.ndarray]:
        """Cached uint64 key column (the batched block index).

        Lazily built on the first batched lookup; ``None`` when the keys are
        not uint64-representable (callers fall back to the scalar path).
        Sequences are immutable, so the cache never invalidates.
        """
        arr = self._keys_arr
        if arr is None:
            try:
                arr = np.fromiter((r[0] for r in self.records),
                                  dtype=np.uint64, count=len(self.records))
            except (OverflowError, TypeError, ValueError):
                return None
            self._keys_arr = arr
        return arr

    def aux_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached (seq, kind) columns for the vectorized scan planner.

        Raises OverflowError/TypeError when the sequence numbers are not
        uint64-representable (callers fall back to the pull-based path).
        Sequences are immutable, so the cache never invalidates.
        """
        seqs = self._seqs_arr
        if seqs is None:
            recs = self.records
            n = len(recs)
            seqs = np.fromiter((r[1] for r in recs), dtype=np.uint64, count=n)
            self._kinds_arr = np.fromiter((r[2] for r in recs),
                                          dtype=np.uint8, count=n)
            self._seqs_arr = seqs
        return seqs, self._kinds_arr

    def vals_array(self) -> Optional[np.ndarray]:
        """Cached uint64 value column, or None when values aren't small ints.

        Simulated values are synthetic byte sizes (ints), so scans can
        assemble their output column-wise; byte-string or out-of-range
        values disable the cache permanently for this sequence.
        """
        vals = self._vals_arr
        if vals is False:
            return None
        if vals is None:
            recs = self.records
            try:
                vals = np.fromiter((r[3] for r in recs), dtype=np.uint64,
                                   count=len(recs))
            except (OverflowError, TypeError, ValueError):
                self._vals_arr = False
                return None
            self._vals_arr = vals
        return vals

    def spans_for_keys(self, keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_record_span` for exact-match lookups.

        ``keys`` must be uint64; raises TypeError when the cached key column
        is unavailable (non-integer record keys).
        """
        col = self.keys_array()
        if col is None:
            raise TypeError("sequence keys are not uint64-representable")
        return (np.searchsorted(col, keys, side="left"),
                np.searchsorted(col, keys, side="right"))

    def span_for_range(self, lo_key: Optional[Key],
                       hi_key: Optional[Key]) -> Tuple[int, int]:
        """:meth:`_record_span` using the cached key column when possible."""
        col = self.keys_array()
        if col is None:
            return self._record_span(lo_key, hi_key)
        i = 0
        j = len(self.records)
        try:
            if lo_key is not None:
                i = int(np.searchsorted(col, np.uint64(lo_key), side="left"))
            if hi_key is not None:
                j = int(np.searchsorted(col, np.uint64(hi_key), side="right"))
        except (OverflowError, TypeError, ValueError):
            return self._record_span(lo_key, hi_key)
        return i, j

    def _blocks_for_span(self, i: int, j: int) -> range:
        """File-relative block numbers covering record indices [i, j)."""
        if i >= j:
            return range(0)
        starts = self.block_start_idx
        b_lo = bisect.bisect_right(starts, i) - 1
        b_hi = bisect.bisect_right(starts, j - 1) - 1
        return range(self.first_block + b_lo, self.first_block + b_hi + 1)

    def block_numbers(self) -> range:
        """All file-relative block numbers of this sequence."""
        return range(self.first_block, self.first_block + self.n_blocks)

    # ------------------------------------------------------------------ reads
    def get(self, runtime: Runtime, file_id: int, key: Key,
            snapshot: Optional[int] = None) -> Tuple[Optional[RecordTuple], float]:
        """Newest visible version of ``key``; returns (record|None, latency).

        Charges block reads only when the Bloom filter and key range admit
        the key (metadata checks are free, §2.1).
        """
        if key < self.min_key or key > self.max_key:
            return None, 0.0
        metrics = runtime.metrics
        metrics.bloom_probes += 1
        if not self.bloom.might_contain(key):
            metrics.bloom_negatives += 1
            return None, 0.0
        i, j = self._record_span(key, key)
        if i >= j:
            # Bloom false positive: the data block is still fetched and
            # searched before the miss is known.
            blocks = self._blocks_for_span(i, i + 1) if i < len(self.records) else \
                self._blocks_for_span(len(self.records) - 1, len(self.records))
            latency = runtime.fg_read_blocks(file_id, blocks)
            return None, latency
        latency = runtime.fg_read_blocks(file_id, self._blocks_for_span(i, j))
        recs = self.records
        if snapshot is None:
            return recs[i], latency
        for idx in range(i, j):
            if recs[idx][SEQ] <= snapshot:
                return recs[idx], latency
        return None, latency

    def read_range(self, runtime: Runtime, file_id: int, lo_key: Optional[Key],
                   hi_key: Optional[Key]) -> Tuple[List[RecordTuple], float]:
        """Records with lo <= key <= hi (inclusive bounds, None = open).

        Charges the covering block reads; returns (records, latency).
        """
        i, j = self._record_span(lo_key, hi_key)
        if i >= j:
            return [], 0.0
        latency = runtime.fg_read_blocks(file_id, self._blocks_for_span(i, j))
        return self.records[i:j], latency

    def read_all(self, runtime: Runtime, file_id: int) -> Tuple[List[RecordTuple], float]:
        latency = runtime.fg_read_blocks(file_id, self.block_numbers())
        return self.records, latency

    def cursor(self, runtime: Runtime, file_id: int, lo_key: Optional[Key] = None,
               hi_key: Optional[Key] = None,
               readahead_blocks: int = 8) -> Iterator[RecordTuple]:
        """Lazily-charging forward iterator over [lo, hi] (inclusive).

        Blocks are charged as the cursor reaches them, ``readahead_blocks``
        at a time (the paper's testbed enables filesystem read-ahead, §6.1),
        so a limit-bounded scan only pays for what it consumes.  Positioning
        uses the cached index and is free.
        """
        i, j = self._record_span(lo_key, hi_key)
        recs = self.records
        starts = self.block_start_idx
        first = self.first_block
        last_block = first + self.n_blocks  # exclusive
        charged_through = -1  # absolute block number charged so far
        idx = i
        # Which block does record `idx` live in?
        b = bisect.bisect_right(starts, idx) - 1 if i < j else 0
        next_start = starts[b + 1] if b + 1 < len(starts) else len(recs)
        while idx < j:
            if idx >= next_start:
                b += 1
                next_start = starts[b + 1] if b + 1 < len(starts) else len(recs)
            abs_block = first + b
            if abs_block > charged_through:
                stop = min(abs_block + readahead_blocks, last_block)
                runtime.fg_read_blocks(file_id, range(abs_block, stop))
                charged_through = stop - 1
            yield recs[idx]
            idx += 1
