"""On-disk table formats: sorted sequences, SSTables and MSTables."""

from repro.table.block import Sequence
from repro.table.merge import merge_runs
from repro.table.mstable import MSTable

__all__ = ["Sequence", "MSTable", "merge_runs"]
