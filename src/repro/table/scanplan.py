"""Vectorized scan assembly: plan the whole merge, then replay its charges.

:func:`repro.table.scan.merge_scan` mirrors the scalar scan pipeline pull
for pull -- correct everywhere, but still one Python step per merged
record.  This module goes one level further for the common case (integer
keys): it gathers the in-range slices of every stream's cached key/seq/kind
columns, computes the global merge order with one ``np.lexsort`` (unique
``(key, seq)`` pairs make the order total), derives the visible output and
the termination rank with array ops, and then replays the exact foreground
charge sequence the scalar cursor pipeline would have issued.

The charge model
----------------
Everything simulation-observable about a scan flows through the
``fg_read_blocks`` calls of :meth:`repro.table.block.Sequence.cursor`
(read-ahead chunks of ``_RA`` blocks).  In the scalar ``heapq.merge``
pipeline each charge is triggered by one *pull*:

* the initial fill pulls one record per top-level stream, in stream order,
  before the first yield (trigger rank ``-1``);
* a sequence's later record is pulled right after its span predecessor is
  yielded (trigger = the predecessor's merge rank);
* a chain creates the next node's states -- pulling one record per
  sequence, in sequence order -- when it is pulled past its current node,
  i.e. right after the node's last in-range record is yielded (trigger =
  that record's rank; empty nodes cascade without charging).

A pull fires iff its trigger rank is below the termination rank ``M`` (the
rank whose push ends the scan: the first key ``>= hi_key``, the record
that fills ``limit``, or exhaustion).  Sorting the charge events by
(trigger, generation order) therefore reproduces the scalar charge
sequence exactly -- same clock, same page-cache trajectory.

Limit-bounded scans are planned against truncated spans (``~limit + 64``
records per sequence, whole trailing node-chain tails reduced to their
fill charges); the plan is valid iff the scan terminates strictly below
the smallest excluded key, else it retries with a wider cut.  Returns
None whenever the record shapes don't vectorize; the caller then runs
``merge_scan`` over the same, untouched streams.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Tuple

import numpy as np

from repro.common.records import DELETE, Key
from repro.table.scan import _ChainState, _ListStream
from repro.check.effects.registry import observation_only

#: Cursor read-ahead (blocks per charge chunk) -- must match Sequence.cursor.
_RA = 8

_RETRY = object()


@observation_only
def planned_scan(streams: list, *, snapshot: Optional[int] = None,
                 hi_key: Optional[Key] = None,
                 limit: Optional[int] = None) -> Optional[List[Tuple[Key, object]]]:
    """Run a scan as one vectorized plan; None when it doesn't apply.

    ``streams`` are the untouched pull states ``merge_scan`` would consume
    (memtable lists first, then the engine plan).  On success the streams
    are never pulled: the output is assembled from the cached columns and
    the charges are replayed directly.
    """
    if hi_key is not None and not isinstance(hi_key, int):
        return None
    if not streams:
        return []
    n_stop = None if limit is None else (limit if limit >= 1 else 1)
    cap = None if n_stop is None else max(96, n_stop + 64)
    try:
        while True:
            res = _attempt(streams, snapshot, hi_key, n_stop, cap)
            if res is not _RETRY:
                out, events, runtime = res
                break
            cap *= 8
            if cap > (1 << 40):  # defensive: never loop forever
                return None
    except (OverflowError, TypeError, ValueError):
        return None
    for _trigger, _gen, fid, blocks in events:
        runtime.fg_read_blocks(fid, blocks)
    return out


def _attempt(streams, snapshot, hi_key, n_stop, cap):
    """One planning pass at truncation width ``cap`` (None = no cut)."""
    key_parts: List[np.ndarray] = []
    seq_parts: List[np.ndarray] = []
    kind_parts: List[np.ndarray] = []
    val_parts: List[np.ndarray] = []  # column-wise output; dropped on flag
    vals_ok = True
    rec_parts: List[Tuple[list, int]] = []  # (records, span start) per comp
    lens: List[int] = []
    # Per sequence component: (fid, starts, first_block, n_blocks, i, charge_end)
    charge_info: List[Optional[tuple]] = []
    # Per chain: (runtime, [(comp_idxs, truncated_any)], fill_only_events)
    chains = []
    cut_key: Optional[int] = None
    runtime = None

    for s in streams:
        if isinstance(s, _ListStream):
            if s.pos:
                return None  # partially consumed stream: not plannable
            recs = s.recs
            n = len(recs)
            if not n:
                continue
            key_parts.append(np.fromiter((r[0] for r in recs),
                                         dtype=np.uint64, count=n))
            seq_parts.append(np.fromiter((r[1] for r in recs),
                                         dtype=np.uint64, count=n))
            kind_parts.append(np.fromiter((r[2] for r in recs),
                                          dtype=np.uint8, count=n))
            if vals_ok:
                try:
                    val_parts.append(np.fromiter((r[3] for r in recs),
                                                 dtype=np.uint64, count=n))
                except (OverflowError, TypeError, ValueError):
                    vals_ok = False
            rec_parts.append((recs, 0))
            lens.append(n)
            charge_info.append(None)
        elif isinstance(s, _ChainState):
            if s.ti or s.current is not None:
                return None  # partially consumed stream: not plannable
            runtime = s.runtime
            lo = s.lo_key
            hi = s.hi_key
            budget = cap
            tables_meta = []
            fill_only = None
            for ti, table in enumerate(s.tables):
                if budget is not None and budget <= 0:
                    # Chain tail cut: the dropped node's records all sort
                    # past the (validated) termination rank, but its state
                    # fill -- one first-chunk charge per sequence -- still
                    # fires when the chain advances past the last kept
                    # node.  Later nodes need that node to exhaust first,
                    # which cannot happen below M.
                    fill_only = []
                    first_key = None
                    for seq in table.sequences:
                        i2, j2 = seq.span_for_range(None, hi)
                        if j2 <= i2:
                            continue
                        k0 = seq.records[i2][0]
                        if not isinstance(k0, int):
                            raise TypeError("non-integer key in chain tail")
                        if first_key is None or k0 < first_key:
                            first_key = k0
                        starts = seq.block_start_idx
                        c0 = bisect_right(starts, i2) - 1
                        stop = min(c0 + _RA, seq.n_blocks)
                        fill_only.append((table.file_id,
                                          range(seq.first_block + c0,
                                                seq.first_block + stop)))
                    if first_key is not None and (cut_key is None
                                                  or first_key < cut_key):
                        cut_key = first_key
                    break
                comp_idxs = []
                truncated_any = False
                kept = 0
                for seq in table.sequences:
                    if ti == 0 or hi is not None:
                        i, j = seq.span_for_range(lo if ti == 0 else None, hi)
                    else:
                        i, j = 0, len(seq.records)  # interior table: full span
                    if j <= i:
                        continue
                    j_eff = j
                    if cap is not None and j - i > cap:
                        j_eff = i + cap
                        truncated_any = True
                        k_cut = seq.records[j_eff][0]
                        if not isinstance(k_cut, int):
                            raise TypeError("non-integer key at span cut")
                        if cut_key is None or k_cut < cut_key:
                            cut_key = k_cut
                    col = seq.keys_array()
                    if col is None:
                        raise TypeError("sequence keys not uint64")
                    seqs_col, kinds_col = seq.aux_arrays()
                    comp_idxs.append(len(lens))
                    key_parts.append(col[i:j_eff])
                    seq_parts.append(seqs_col[i:j_eff])
                    kind_parts.append(kinds_col[i:j_eff])
                    if vals_ok:
                        vals_col = seq.vals_array()
                        if vals_col is None:
                            vals_ok = False
                        else:
                            val_parts.append(vals_col[i:j_eff])
                    rec_parts.append((seq.records, i))
                    lens.append(j_eff - i)
                    # A truncated span still pulls (and may charge) one
                    # record past the cut before the plan's validity bound
                    # stops it -- mirror that single-record overshoot.
                    charge_end = j_eff + 1 if j_eff < j else j
                    charge_info.append((table.file_id, seq.block_start_idx,
                                        seq.first_block, seq.n_blocks,
                                        i, charge_end))
                    kept += j_eff - i
                if budget is not None:
                    budget -= kept
                tables_meta.append((comp_idxs, truncated_any))
            chains.append((tables_meta, fill_only))
        else:
            return None

    if not lens:
        return [], [], runtime

    # Cut-key prefilter: in a truncated plan every record with key >=
    # cut_key sorts past the (validated) termination rank M, so it can
    # never be emitted and never triggers a charge below M.  Dropping
    # those tails before the sort shrinks T toward M; the only scalar
    # effect they keep is a sequence's state-fill charge, preserved by
    # retaining filter-emptied components (their chunk loop stops at the
    # fill because the missing ranks are all >= M).
    filtered = [False] * len(lens)
    if cut_key is not None and cut_key < (1 << 64):
        ck = np.uint64(cut_key)
        for pi, kp in enumerate(key_parts):
            jf = int(np.searchsorted(kp, ck, side="left"))
            if jf < kp.size:
                key_parts[pi] = kp[:jf]
                seq_parts[pi] = seq_parts[pi][:jf]
                kind_parts[pi] = kind_parts[pi][:jf]
                if vals_ok:
                    val_parts[pi] = val_parts[pi][:jf]
                lens[pi] = jf
                filtered[pi] = True

    offsets = np.zeros(len(lens) + 1, dtype=np.intp)
    np.cumsum(lens, out=offsets[1:])
    keys_g = np.concatenate(key_parts)
    seqs_g = np.concatenate(seq_parts)
    kinds_g = np.concatenate(kind_parts)
    T = int(keys_g.size)
    if not T:
        # Every gathered record was filtered out: the scan cannot prove
        # its termination below the cut, so widen and retry.
        return _RETRY
    # Total order by (key asc, seq desc): unique (key, seq) pairs, so the
    # bit-complement trick needs no tie-breaking.  When key and sequence
    # widths fit one word, pack them into a single composite and do one
    # stable (radix) argsort -- half the cost of the two-pass lexsort.
    s_bits = int(seqs_g.max()).bit_length()
    total_bits = int(keys_g.max()).bit_length() + s_bits
    if s_bits < 64 and total_bits <= 64:
        smask = np.uint64((1 << s_bits) - 1)
        composite = np.left_shift(keys_g, np.uint64(s_bits))
        composite |= seqs_g ^ smask
        if total_bits <= 32:
            # Half-width radix passes: the dominant per-record sort cost.
            composite = composite.astype(np.uint32)
        order = np.argsort(composite, kind="stable")
    else:
        order = np.lexsort((np.invert(seqs_g), keys_g))
    ranks = np.empty(T, dtype=np.intp)
    ranks[order] = np.arange(T, dtype=np.intp)
    skeys = keys_g[order]

    if hi_key is None:
        R = T
    elif hi_key < 0:
        R = 0
    elif hi_key >= (1 << 64):
        R = T
    else:
        R = int(np.searchsorted(skeys, np.uint64(hi_key), side="left"))

    if R == 0:
        # The very first merged record already sits at/above hi_key: the
        # scan ends at rank 0, after the initial fill.
        emit = np.empty(0, dtype=np.intp)
        M = 0
    else:
        pk = skeys[:R]
        newkey = np.empty(R, dtype=bool)
        newkey[0] = True
        np.not_equal(pk[1:], pk[:-1], out=newkey[1:])
        if snapshot is None:
            first_vis = newkey
        else:
            cand = seqs_g[order[:R]] <= np.uint64(snapshot)
            cnt = np.cumsum(cand)
            ex_before = (cnt - cand)[newkey]
            gid = np.cumsum(newkey) - 1
            first_vis = cand & ((cnt - ex_before[gid]) == 1)
        out_mask = first_vis & (kinds_g[order[:R]] != DELETE)
        vis = np.flatnonzero(out_mask)
        if n_stop is not None and vis.size >= n_stop:
            M = int(vis[n_stop - 1])
            emit = vis[:n_stop]
        elif R < T:
            M = R
            emit = vis
        else:
            M = T
            emit = vis

    if cut_key is not None:
        # Truncation is valid only when the scan provably terminates below
        # every excluded record.
        if M >= T or int(skeys[M]) >= cut_key:
            return _RETRY

    # ---------------------------------------------------------- charge events
    events: List[Tuple[int, int, int, range]] = []
    gen = 0
    for tables_meta, fill_only in chains:
        prev = -1  # merge rank of the last record of the last non-empty node
        for comp_idxs, truncated_any in tables_meta:
            if not comp_idxs:
                continue
            fill_tr = prev
            last = -1
            cut_any = truncated_any
            for ci in comp_idxs:
                fid, starts, first, n_blocks, i, charge_end = charge_info[ci]
                g0 = int(offsets[ci])
                m = lens[ci]
                r = ranks[g0:g0 + m]
                c0 = bisect_right(starts, i) - 1
                last_b = bisect_right(starts, charge_end - 1) - 1
                b = c0
                p = i
                while True:
                    if p == i:
                        trigger = fill_tr
                    elif p - 1 - i >= m:
                        break  # predecessor was cut-filtered: rank >= M
                    else:
                        trigger = int(r[p - 1 - i])
                    if trigger >= M:
                        break  # triggers ascend: nothing later fires either
                    stop = min(b + _RA, n_blocks)
                    events.append((trigger, gen, fid,
                                   range(first + b, first + stop)))
                    gen += 1
                    b += _RA
                    if b > last_b:
                        break
                    p = starts[b]
                if filtered[ci]:
                    cut_any = True  # true tail rank >= M
                elif (tail := int(r[m - 1])) > last:
                    last = tail
            prev = T if cut_any else last
        if fill_only is not None and prev < M:
            for fid, blocks in fill_only:
                events.append((prev, gen, fid, blocks))
                gen += 1
    events.sort(key=lambda e: (e[0], e[1]))

    # ---------------------------------------------------------------- output
    out: List[Tuple[Key, object]] = []
    if emit.size:
        if vals_ok:
            # Column-wise assembly: the cached value arrays make the whole
            # result two gathers + one zip, no per-row record indexing.
            vals_g = np.concatenate(val_parts)
            out = list(zip(skeys[emit].tolist(),
                           vals_g[order[emit]].tolist()))
        else:
            gs = order[emit]
            cis = np.searchsorted(offsets, gs, side="right") - 1
            locs = gs - offsets[cis]
            for ci, loc in zip(cis.tolist(), locs.tolist()):
                recs, base = rec_parts[ci]
                rec = recs[base + loc]
                out.append((rec[0], rec[3]))
    return out, events, runtime
