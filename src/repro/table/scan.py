"""Batched scan assembly: a charge-order mirror of the scalar merge path.

The scalar scan pipeline is ``heapq.merge`` over lazily-charging cursors fed
into :func:`repro.db.iterator.merge_visible`.  Everything observable about
that pipeline -- the simulated clock, the page-cache state, the metrics --
flows through the ``fg_read_blocks`` calls the sequence cursors issue, so a
batched assembler is *state-identical* exactly when it issues the same
charges in the same order and yields the same visible records.

This module rebuilds the pipeline as explicit pull states instead of stacked
generators:

* :class:`_SeqState` mirrors :meth:`repro.table.block.Sequence.cursor`
  record for record and charge for charge (same read-ahead chunking).
* :class:`_ChainState` mirrors the per-level ``yield from`` chain over node
  cursors; multi-sequence nodes get a :class:`_RawMerge`, the lazy mirror of
  the ``heapq.merge`` inside :meth:`repro.table.mstable.MSTable.cursor`.
* :func:`merge_scan` mirrors ``merge_visible`` over the top-level streams,
  with one structural speedup: while one stream's keys stay strictly below
  every other head, consecutive pulls must come from that stream (unique
  ``(key, seq)`` pairs make sort-key ties impossible), so the assembler
  drains it in a tight bulk loop -- no per-record heap dance -- which is
  where the batched scan wins its time.  Between two charges of a bulk run
  no other stream is pulled, so the charge order is untouched.

:class:`MergeScanner` exposes the same machinery one record at a time for
:class:`repro.db.iterator.DbIterator` (``seek`` repositions the states via
the cached per-sequence key columns instead of re-running bisect walks).
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence as SequenceType, Tuple

from repro.common.records import DELETE, Key, RecordTuple, sort_key
from repro.storage.runtime import Runtime

_SENTINEL = object()


class _Sink:
    """The visibility consumer: a line-for-line mirror of ``merge_visible``."""

    __slots__ = ("out", "served", "snapshot", "hi_key", "limit", "count", "done")

    def __init__(self, snapshot: Optional[int], hi_key: Optional[Key],
                 limit: Optional[int]) -> None:
        self.out: List[Tuple[Key, object]] = []
        self.served: object = _SENTINEL
        self.snapshot = snapshot
        self.hi_key = hi_key
        self.limit = limit
        self.count = 0
        self.done = False

    def push(self, rec: RecordTuple) -> bool:
        """Consume one merged record; returns True when the scan is over."""
        key = rec[0]
        hi = self.hi_key
        if hi is not None and key >= hi:
            self.done = True
            return True
        served = self.served
        if key is served or key == served:
            return False
        if self.snapshot is not None and rec[1] > self.snapshot:
            return False
        self.served = key
        if rec[2] == DELETE:
            return False
        self.out.append((key, rec[3]))
        self.count += 1
        if self.limit is not None and self.count >= self.limit:
            self.done = True
            return True
        return False


class _ListStream:
    """In-memory sorted records (memtable / immutable snapshot lists)."""

    __slots__ = ("recs", "pos")

    def __init__(self, recs: SequenceType[RecordTuple]) -> None:
        self.recs = recs
        self.pos = 0

    def pull(self) -> Optional[RecordTuple]:
        pos = self.pos
        if pos >= len(self.recs):
            return None
        self.pos = pos + 1
        return self.recs[pos]

    def bulk_into(self, sink: _Sink,
                  stop_key: Optional[Key]) -> Optional[RecordTuple]:
        recs = self.recs
        n = len(recs)
        pos = self.pos
        push = sink.push
        while pos < n:
            rec = recs[pos]
            pos += 1
            if stop_key is not None and rec[0] >= stop_key:
                self.pos = pos
                return rec
            if push(rec):
                self.pos = pos
                return rec
        self.pos = pos
        return None

    def reseek(self, key: Key) -> None:
        self.pos = bisect.bisect_left(self.recs, key, key=lambda r: r[0])


class _SeqState:
    """Pull mirror of :meth:`Sequence.cursor`: same records, same charges."""

    __slots__ = ("runtime", "file_id", "seq", "recs", "starts", "first",
                 "last_block", "idx", "j", "b", "next_start", "charged_through",
                 "readahead")

    def __init__(self, runtime: Runtime, file_id: int, seq, lo_key: Optional[Key],
                 hi_key: Optional[Key], readahead: int = 8) -> None:
        i, j = seq.span_for_range(lo_key, hi_key)
        self.runtime = runtime
        self.file_id = file_id
        self.seq = seq
        recs = seq.records
        self.recs = recs
        starts = seq.block_start_idx
        self.starts = starts
        self.first = seq.first_block
        self.last_block = seq.first_block + seq.n_blocks  # exclusive
        self.idx = i
        self.j = j
        self.b = bisect.bisect_right(starts, i) - 1 if i < j else 0
        self.next_start = starts[self.b + 1] if self.b + 1 < len(starts) else len(recs)
        self.charged_through = -1
        self.readahead = readahead

    def pull(self) -> Optional[RecordTuple]:
        idx = self.idx
        if idx >= self.j:
            return None
        if idx >= self.next_start:
            self.b += 1
            starts = self.starts
            b1 = self.b + 1
            self.next_start = starts[b1] if b1 < len(starts) else len(self.recs)
        abs_block = self.first + self.b
        if abs_block > self.charged_through:
            stop = min(abs_block + self.readahead, self.last_block)
            self.runtime.fg_read_blocks(self.file_id, range(abs_block, stop))
            self.charged_through = stop - 1
        self.idx = idx + 1
        return self.recs[idx]

    def bulk_into(self, sink: _Sink,
                  stop_key: Optional[Key]) -> Optional[RecordTuple]:
        """Drain records with key < ``stop_key`` into the sink (tight loop).

        Returns the first pulled-but-unconsumed record (the stream's new
        head, already charged -- exactly the state the scalar merge leaves
        behind) or None when the span is exhausted.
        """
        recs = self.recs
        starts = self.starts
        n_starts = len(starts)
        nrec = len(recs)
        first = self.first
        last_block = self.last_block
        readahead = self.readahead
        fg = self.runtime.fg_read_blocks
        fid = self.file_id
        push = sink.push
        idx = self.idx
        j = self.j
        b = self.b
        next_start = self.next_start
        charged_through = self.charged_through
        try:
            while idx < j:
                if idx >= next_start:
                    b += 1
                    next_start = starts[b + 1] if b + 1 < n_starts else nrec
                abs_block = first + b
                if abs_block > charged_through:
                    stop = min(abs_block + readahead, last_block)
                    fg(fid, range(abs_block, stop))
                    charged_through = stop - 1
                rec = recs[idx]
                idx += 1
                if stop_key is not None and rec[0] >= stop_key:
                    return rec
                if push(rec):
                    return rec
            return None
        finally:
            self.idx = idx
            self.b = b
            self.next_start = next_start
            self.charged_through = charged_through

    def reseek(self, key: Optional[Key], hi_key: Optional[Key]) -> None:
        """Reposition using the cached key column; block charges reset so
        every consumed block is touched again (mostly cache hits)."""
        i, j = self.seq.span_for_range(key, hi_key)
        self.idx = i
        self.j = j
        starts = self.starts
        self.b = bisect.bisect_right(starts, i) - 1 if i < j else 0
        self.next_start = starts[self.b + 1] if self.b + 1 < len(starts) else len(self.recs)
        self.charged_through = -1


class _RawMerge:
    """Lazy mirror of the ``heapq.merge`` inside a multi-sequence node.

    The replacement for a returned head is pulled on the *next* ``pull()``
    ("owe" protocol), matching the suspended-generator timing of the scalar
    merge so charges never reorder across sequences.
    """

    __slots__ = ("states", "heads", "skeys", "owe")

    def __init__(self, states: List[_SeqState]) -> None:
        # Build order matches heapq.merge's first-next fill: one pull per
        # stream, in sequence order.
        self.states: List[_SeqState] = []
        self.heads: List[RecordTuple] = []
        self.skeys: List[Tuple[Key, int]] = []
        for st in states:
            rec = st.pull()
            if rec is not None:
                self.states.append(st)
                self.heads.append(rec)
                self.skeys.append(sort_key(rec))
        self.owe = -1

    def pull(self) -> Optional[RecordTuple]:
        owe = self.owe
        if owe >= 0:
            rec = self.states[owe].pull()
            if rec is None:
                del self.states[owe], self.heads[owe], self.skeys[owe]
            else:
                self.heads[owe] = rec
                self.skeys[owe] = sort_key(rec)
            self.owe = -1
        heads = self.heads
        if not heads:
            return None
        t = 0
        if len(heads) > 1:
            skeys = self.skeys
            best = skeys[0]
            for i in range(1, len(skeys)):
                if skeys[i] < best:
                    best = skeys[i]
                    t = i
        self.owe = t
        return heads[t]


class _ChainState:
    """Pull mirror of a per-level node chain (``yield from`` over cursors).

    Node states are created lazily as the chain reaches them, so a node's
    first-block charges land exactly when the scalar chain generator would
    have issued them.
    """

    __slots__ = ("runtime", "tables", "lo_key", "hi_key", "ti", "current",
                 "_max_keys")

    def __init__(self, runtime: Runtime, tables: list, lo_key: Optional[Key],
                 hi_key: Optional[Key]) -> None:
        self.runtime = runtime
        self.tables = tables
        self.lo_key = lo_key
        self.hi_key = hi_key
        self.ti = 0
        self.current = None
        self._max_keys = None

    def _node_state(self, table):
        states = [
            _SeqState(self.runtime, table.file_id, seq, self.lo_key, self.hi_key)
            for seq in table.sequences
        ]
        if len(states) == 1:
            return states[0]
        return _RawMerge(states)

    def pull(self) -> Optional[RecordTuple]:
        while True:
            cur = self.current
            if cur is None:
                if self.ti >= len(self.tables):
                    return None
                cur = self.current = self._node_state(self.tables[self.ti])
                self.ti += 1
            rec = cur.pull()
            if rec is not None:
                return rec
            self.current = None

    def bulk_into(self, sink: _Sink,
                  stop_key: Optional[Key]) -> Optional[RecordTuple]:
        while True:
            cur = self.current
            if cur is None:
                if self.ti >= len(self.tables):
                    return None
                cur = self.current = self._node_state(self.tables[self.ti])
                self.ti += 1
            if isinstance(cur, _SeqState):
                rec = cur.bulk_into(sink, stop_key)
                if rec is not None:
                    return rec
                if sink.done:
                    return None
                self.current = None
                continue
            # Multi-sequence node: per-record pulls through the raw merge.
            while True:
                rec = cur.pull()
                if rec is None:
                    self.current = None
                    break
                if stop_key is not None and rec[0] >= stop_key:
                    return rec
                if sink.push(rec):
                    return rec

    def reseek(self, key: Optional[Key]) -> None:
        """Jump to the first node whose data may reach ``key`` using the
        cached per-chain fence column (no per-level bisect walk)."""
        tables = self.tables
        maxes = self._max_keys
        if maxes is None:
            maxes = self._max_keys = [t.max_key for t in tables]
        ti = 0 if key is None else bisect.bisect_left(maxes, key)
        self.ti = ti
        self.lo_key = key
        if ti >= len(tables):
            self.current = None
            return
        self.current = self._node_state(tables[ti])
        self.ti = ti + 1


def chain_stream(runtime: Runtime, tables: list, lo_key: Optional[Key],
                 hi_key: Optional[Key]) -> _ChainState:
    """One engine-plan stream: a level's overlapping node tables in order."""
    return _ChainState(runtime, tables, lo_key, hi_key)


def table_stream(runtime: Runtime, table, lo_key: Optional[Key],
                 hi_key: Optional[Key]) -> _ChainState:
    """One engine-plan stream for a single table (L0 files)."""
    return _ChainState(runtime, [table], lo_key, hi_key)


def list_stream(recs: SequenceType[RecordTuple]) -> _ListStream:
    return _ListStream(recs)


def merge_scan(streams: list, *, snapshot: Optional[int] = None,
               hi_key: Optional[Key] = None,
               limit: Optional[int] = None) -> List[Tuple[Key, object]]:
    """Batched ``merge_visible``: same records, same charge order, no heap.

    ``streams`` are pull states in the scalar stream order (memtable first,
    then the engine plan).  A single stream is drained directly, mirroring
    ``merge_visible``'s no-merge fast path.
    """
    sink = _Sink(snapshot, hi_key, limit)
    if not streams:
        return sink.out
    if len(streams) == 1:
        streams[0].bulk_into(sink, None)
        return sink.out
    # Initial fill, in stream order (heapq.merge's lazy first-next fill
    # happens before any record is yielded, so the relative charge order is
    # the same).
    states = []
    heads = []
    skeys = []
    for st in streams:
        rec = st.pull()
        if rec is not None:
            states.append(st)
            heads.append(rec)
            skeys.append(sort_key(rec))
    while len(states) > 1:
        t = 0
        best = skeys[0]
        for i in range(1, len(skeys)):
            if skeys[i] < best:
                best = skeys[i]
                t = i
        if sink.push(heads[t]):
            return sink.out
        # Everything strictly below the next-best head must come from this
        # stream; drain it in bulk, then re-enter the merge with its new
        # (already-charged) head.
        stop_key = None
        for i in range(len(skeys)):
            if i != t and (stop_key is None or skeys[i][0] < stop_key):
                stop_key = skeys[i][0]
        rec = states[t].bulk_into(sink, stop_key)
        if sink.done:
            return sink.out
        if rec is None:
            del states[t], heads[t], skeys[t]
        else:
            heads[t] = rec
            skeys[t] = sort_key(rec)
    if states:
        if sink.push(heads[0]):
            return sink.out
        states[0].bulk_into(sink, None)
    return sink.out


class MergeScanner:
    """One-record-at-a-time view of the batched merge, for DbIterator.

    Pulls are owe-lazy (a returned head's replacement is fetched on the next
    call), so abandoning the scanner mid-stream issues no further charges.
    """

    __slots__ = ("streams", "states", "heads", "skeys", "owe", "built")

    def __init__(self, streams: list) -> None:
        self.streams = streams
        self.states: List[object] = []
        self.heads: List[RecordTuple] = []
        self.skeys: List[Tuple[Key, int]] = []
        self.owe = -1
        self.built = False

    def reset(self) -> None:
        """Forget merge state (after the underlying streams were reseeked)."""
        self.states = []
        self.heads = []
        self.skeys = []
        self.owe = -1
        self.built = False

    def pull(self) -> Optional[RecordTuple]:
        if not self.built:
            for st in self.streams:
                rec = st.pull()
                if rec is not None:
                    self.states.append(st)
                    self.heads.append(rec)
                    self.skeys.append(sort_key(rec))
            self.built = True
        owe = self.owe
        if owe >= 0:
            rec = self.states[owe].pull()
            if rec is None:
                del self.states[owe], self.heads[owe], self.skeys[owe]
            else:
                self.heads[owe] = rec
                self.skeys[owe] = sort_key(rec)
            self.owe = -1
        heads = self.heads
        if not heads:
            return None
        t = 0
        if len(heads) > 1:
            skeys = self.skeys
            best = skeys[0]
            for i in range(1, len(skeys)):
                if skeys[i] < best:
                    best = skeys[i]
                    t = i
        self.owe = t
        return heads[t]
