"""MSTable: the Multiple Sequence Table (§4.1).

An MSTable is one on-disk node file.  Data blocks fill from the beginning;
the clustered metadata (block indexes + Bloom filters) grows from the end;
the middle hole is sparse and occupies no space.  An SSTable is simply an
MSTable holding exactly one sequence, so the LSM engines reuse this class.

Sequences are kept in append order; because data always moves down the tree
in memtable-flush cohorts, a later sequence only ever holds newer records
than an earlier one.  Point reads therefore probe sequences newest-first and
stop at the first visible hit (§5.2).
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.common.errors import InvariantViolation
from repro.common.records import Key, RecordTuple, SEQ, sort_key
from repro.storage.runtime import Runtime
from repro.table.block import Sequence
from repro.check.effects.registry import observation_only


class MSTable:
    """One on-disk node file holding one or more sorted sequences."""

    __slots__ = ("runtime", "file", "sequences", "next_block", "key_size",
                 "bloom_bits_per_key", "deleted")

    def __init__(self, runtime: Runtime, *, key_size: int, bloom_bits_per_key: int) -> None:
        self.runtime = runtime
        self.file = runtime.create_file()
        self.sequences: List[Sequence] = []
        self.next_block = 0
        self.key_size = key_size
        self.bloom_bits_per_key = bloom_bits_per_key
        self.deleted = False

    # ------------------------------------------------------------- properties
    @property
    def file_id(self) -> int:
        return self.file.file_id

    @property
    def n_sequences(self) -> int:
        return len(self.sequences)

    @property
    def data_bytes(self) -> int:
        return sum(s.nbytes for s in self.sequences)

    @property
    def metadata_bytes(self) -> int:
        return sum(s.metadata_bytes for s in self.sequences)

    @property
    def n_records(self) -> int:
        return sum(len(s) for s in self.sequences)

    @property
    def min_key(self) -> Key:
        return min(s.min_key for s in self.sequences)

    @property
    def max_key(self) -> Key:
        return max(s.max_key for s in self.sequences)

    @property
    def max_seq(self) -> int:
        return max(s.max_seq for s in self.sequences)

    def resident_bytes(self) -> int:
        """``mincore`` probe: cached bytes of this file (§5.1.3)."""
        return self.runtime.cache.resident_bytes(self.file_id)

    # ---------------------------------------------------------------- writing
    def append_sequence(self, records: List[RecordTuple], *, level: int) -> Tuple[Sequence, float]:
        """Append one sorted run; returns (sequence, device-time debt).

        Charges a sequential background write of data + metadata attributed
        to ``level``; the written data blocks enter the page cache.
        """
        if self.deleted:
            raise InvariantViolation("append to a deleted MSTable")
        seq = Sequence(
            records,
            key_size=self.key_size,
            block_size=self.runtime.block_size,
            bloom_bits_per_key=self.bloom_bits_per_key,
            first_block=self.next_block,
        )
        self.next_block += seq.n_blocks
        self.sequences.append(seq)
        debt = self.runtime.bg_write_run(
            self.file,
            seq.nbytes + seq.metadata_bytes,
            level=level,
            first_block=seq.first_block,
            n_cache_blocks=seq.n_blocks,
        )
        return seq, debt

    @staticmethod
    def build(runtime: Runtime, records: List[RecordTuple], *, key_size: int,
              bloom_bits_per_key: int, level: int) -> Tuple["MSTable", float]:
        """Create a fresh single-sequence table (merge output / SSTable)."""
        table = MSTable(runtime, key_size=key_size, bloom_bits_per_key=bloom_bits_per_key)
        _, debt = table.append_sequence(records, level=level)
        return table, debt

    def delete(self) -> None:
        """Release the file (after a merge/split replaced this node)."""
        if not self.deleted:
            self.deleted = True
            self.runtime.delete_file(self.file)

    # --------------------------------------------------------------- recovery
    def snapshot(self) -> Tuple[int, int, int, Tuple[Sequence, ...]]:
        """Owned pure-data snapshot for manifest checkpoints.

        Sequences are immutable once built, so sharing them by reference is
        safe; the tuple pins the sequence *list* (the mutable part) and the
        layout cursor.  No file/node references leak out.
        """
        return (self.key_size, self.bloom_bits_per_key, self.next_block,
                tuple(self.sequences))

    @staticmethod
    def from_snapshot(runtime: Runtime,
                      snap: Tuple[int, int, int, Tuple[Sequence, ...]]) -> "MSTable":
        """Rebuild a table from a :meth:`snapshot` onto a fresh file.

        Space accounting only -- recovery re-opens tables, it does not
        rewrite them -- and the fresh file starts cache-cold.
        """
        key_size, bloom_bits, next_block, sequences = snap
        table = MSTable(runtime, key_size=key_size,
                        bloom_bits_per_key=bloom_bits)
        table.sequences = list(sequences)
        table.next_block = next_block
        nbytes = sum(s.nbytes + s.metadata_bytes for s in sequences)
        if nbytes:
            table.file.grow(nbytes)
        return table

    # ---------------------------------------------------------------- reading
    def get(self, key: Key,
            snapshot: Optional[int] = None) -> Tuple[Optional[RecordTuple], float]:
        """Newest visible version across sequences; (record|None, latency)."""
        latency = 0.0
        for seq in reversed(self.sequences):
            if snapshot is not None and seq.min_seq > snapshot:
                continue
            rec, lat = seq.get(self.runtime, self.file_id, key, snapshot)
            latency += lat
            if rec is not None:
                return rec, latency
        return None, latency

    @observation_only
    def plan_gets(self, key_arr: np.ndarray, live: List[int],
                  snapshot: Optional[int],
                  probes: List[List[Tuple[int, range]]],
                  results: List[Optional[RecordTuple]],
                  counters: List[int]) -> List[int]:
        """Phase-A planner for batched point lookups -- no device I/O here.

        ``live`` holds positions into ``key_arr`` (uint64) still unresolved;
        returns the positions this table leaves unresolved.  Appends each
        position's ``(file_id, blocks)`` charges to ``probes`` in exactly
        the order the scalar :meth:`get` walk issues them (sequences
        newest-first, Bloom false positives included), so replaying
        ``probes`` position by position reproduces the scalar clock, cache
        and metrics trajectory.  ``counters`` accumulates
        ``[bloom_probes, bloom_negatives]``.  Raises TypeError when a
        sequence's key column is not uint64-representable (the caller then
        falls back to the scalar path).
        """
        fid = self.file_id
        for seq in reversed(self.sequences):
            if not live:
                break
            if snapshot is not None and seq.min_seq > snapshot:
                continue
            live_arr = np.fromiter(live, dtype=np.intp, count=len(live))
            sub = key_arr[live_arr]
            mask = (sub >= np.uint64(seq.min_key)) & (sub <= np.uint64(seq.max_key))
            if not mask.any():
                continue
            cand_pos = live_arr[mask]
            cand_keys = sub[mask]
            counters[0] += cand_pos.size
            admit = seq.bloom.contains_many(cand_keys)
            n_admit = int(admit.sum())
            counters[1] += cand_pos.size - n_admit
            if not n_admit:
                continue
            hit_pos = cand_pos[admit]
            hit_keys = cand_keys[admit]
            i_arr, j_arr = seq.spans_for_keys(hit_keys)
            recs = seq.records
            nrec = len(recs)
            resolved = None
            for t in range(hit_pos.size):
                g = int(hit_pos[t])
                i = int(i_arr[t])
                j = int(j_arr[t])
                if i >= j:
                    # Bloom false positive: the data block is still fetched
                    # and searched before the miss is known (same block the
                    # scalar miss touches).
                    if i < nrec:
                        blocks = seq._blocks_for_span(i, i + 1)
                    else:
                        blocks = seq._blocks_for_span(nrec - 1, nrec)
                    probes[g].append((fid, blocks))
                    continue
                probes[g].append((fid, seq._blocks_for_span(i, j)))
                if snapshot is None:
                    rec = recs[i]
                else:
                    rec = None
                    for q in range(i, j):
                        if recs[q][SEQ] <= snapshot:
                            rec = recs[q]
                            break
                    if rec is None:
                        continue  # span charged, no visible version: keep looking
                results[g] = rec
                if resolved is None:
                    resolved = set()
                resolved.add(g)
            if resolved:
                live = [g for g in live if g not in resolved]
        return live

    def read_range(self, lo_key: Optional[Key],
                   hi_key: Optional[Key]) -> Tuple[List[List[RecordTuple]], float]:
        """Range slice of every sequence (newest first); charges block reads."""
        out: List[List[RecordTuple]] = []
        latency = 0.0
        for seq in reversed(self.sequences):
            recs, lat = seq.read_range(self.runtime, self.file_id, lo_key, hi_key)
            latency += lat
            if recs:
                out.append(recs)
        return out, latency

    def read_all_records(self) -> Tuple[List[List[RecordTuple]], float]:
        """Every sequence's records (newest first); charges full reads."""
        out = []
        latency = 0.0
        for seq in reversed(self.sequences):
            recs, lat = seq.read_all(self.runtime, self.file_id)
            latency += lat
            out.append(recs)
        return out, latency

    def cursor(self, lo_key: Optional[Key] = None,
               hi_key: Optional[Key] = None) -> Iterator[RecordTuple]:
        """Merged lazily-charging iterator over the whole node's range slice.

        Opens one cursor per sequence (each seeks independently -- the
        multi-sequence scan cost of append trees, §5.3.2) and merges them.
        """
        cursors = [
            seq.cursor(self.runtime, self.file_id, lo_key, hi_key)
            for seq in self.sequences
        ]
        if len(cursors) == 1:
            return cursors[0]
        return heapq.merge(*cursors, key=sort_key)

    def compaction_read_debt(self) -> float:
        """Background-read debt for consuming this table in a compaction.

        Resident bytes are free (read from page cache); the paper's mixed
        level counts on exactly this (§5.1.2).
        """
        total = self.data_bytes
        resident = min(self.resident_bytes(), total)
        return self.runtime.bg_read_run(self.file_id, total, resident_bytes=resident)
