"""K-way merging of sorted runs with MVCC garbage collection.

Merges (during compactions, leaf flushes, and IAM's merging levels) remove
outdated records while keeping every version some live snapshot still needs
(§5.2: "the actual deletes and updates are deferred and fulfilled during later
compactions").  Tombstones are only eliminated at the bottom level, where no
older data can exist beneath them.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Sequence as PySequence

from repro.common.records import DELETE, KEY, KIND, RecordTuple, SEQ, sort_key


def merge_runs(runs: PySequence[List[RecordTuple]], *,
               drop_tombstones: bool = False,
               snapshots: Optional[PySequence[int]] = None) -> List[RecordTuple]:
    """Merge sorted runs into one, discarding obsolete versions.

    ``runs`` are (key asc, seq desc) sorted; the output is too.  A version is
    kept iff it is the newest version visible to the "latest" view or to one
    of the live ``snapshots`` *within this merge*.  With ``drop_tombstones``
    (bottom level only) surviving tombstones are elided entirely.
    """
    if not runs:
        return []
    if len(runs) == 1:
        stream: Iterable[RecordTuple] = runs[0]
    else:
        stream = heapq.merge(*runs, key=sort_key)

    # Views that must stay observable, newest first; None stands for "latest".
    snap_desc: List[int] = sorted(set(snapshots), reverse=True) if snapshots else []

    out: List[RecordTuple] = []
    kept: List[RecordTuple] = []  # versions of the current key, newest first
    cur_key = object()
    views_left: List[int] = []
    served_latest = False

    def emit() -> None:
        # A tombstone is only removable at the bottom when nothing older of
        # its key survives beneath it -- otherwise dropping it would
        # resurrect the older version for newer views.
        if drop_tombstones:
            while kept and kept[-1][KIND] == DELETE:
                kept.pop()
        out.extend(kept)
        kept.clear()

    for rec in stream:
        key = rec[KEY]
        if key is not cur_key and key != cur_key:
            emit()
            cur_key = key
            views_left = list(snap_desc)
            served_latest = False
        seq = rec[SEQ]
        keep = False
        if not served_latest:
            served_latest = True
            keep = True
        # Serve every snapshot view this version is the newest visible for.
        while views_left and views_left[0] >= seq:
            views_left.pop(0)
            keep = True
        if keep:
            kept.append(rec)
    emit()
    return out


def merged_size_records(runs: PySequence[List[RecordTuple]]) -> int:
    """Total input records across runs (diagnostics)."""
    return sum(len(r) for r in runs)
