"""K-way merging of sorted runs with MVCC garbage collection.

Merges (during compactions, leaf flushes, and IAM's merging levels) remove
outdated records while keeping every version some live snapshot still needs
(§5.2: "the actual deletes and updates are deferred and fulfilled during later
compactions").  Tombstones are only eliminated at the bottom level, where no
older data can exist beneath them.

The kernel is tiered by how much work the inputs actually need:

* **No live snapshots** (the overwhelmingly common case during loads): only
  the newest version of each key can survive, so a single dictionary pass
  dedups keys without ever materializing the merged stream.
* **≤ 2 runs**: a pairwise index-pointer list merge -- no heap, no per-record
  key-function calls.
* **k > 2 runs**: ``heapq.merge`` as before.

Snapshot bookkeeping walks the per-key view list with an advancing index;
the seed's ``views_left.pop(0)`` shifted the whole list per served view.
All paths are record-identical to
:func:`repro.bench.reference.reference_merge_runs` (enforced by
``tests/test_merge_equivalence.py``).
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Sequence as PySequence

from repro.common.records import DELETE, KEY, KIND, RecordTuple, SEQ, sort_key


def _merge2(a: List[RecordTuple], b: List[RecordTuple]) -> List[RecordTuple]:
    """Pairwise merge of two (key asc, seq desc) sorted runs."""
    out: List[RecordTuple] = []
    append = out.append
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        ra = a[i]
        rb = b[j]
        # (key asc, seq desc): ra first if key smaller, or same key newer.
        ka, kb = ra[0], rb[0]
        if ka < kb or (ka == kb and ra[1] > rb[1]):
            append(ra)
            i += 1
        else:
            append(rb)
            j += 1
    if i < na:
        out.extend(a[i:])
    elif j < nb:
        out.extend(b[j:])
    return out


def _dedup_newest(runs: PySequence[List[RecordTuple]],
                  drop_tombstones: bool) -> List[RecordTuple]:
    """No-snapshot fast path: keep only the newest version of each key.

    With no live snapshots every older version is unreachable, and a
    surviving tombstone is elided iff ``drop_tombstones`` (it is then by
    construction the oldest -- and only -- kept version of its key).
    """
    if len(runs) == 1:
        # The run is (key asc, seq desc): the first record per key is newest.
        out: List[RecordTuple] = []
        append = out.append
        prev = _SENTINEL
        if drop_tombstones:
            for rec in runs[0]:
                key = rec[0]
                if key != prev:
                    prev = key
                    if rec[2] != DELETE:
                        append(rec)
        else:
            for rec in runs[0]:
                key = rec[0]
                if key != prev:
                    prev = key
                    append(rec)
        return out
    best: dict = {}
    get = best.get
    for run in runs:
        for rec in run:
            key = rec[0]
            cur = get(key)
            if cur is None or rec[1] > cur[1]:
                best[key] = rec
    if drop_tombstones:
        return [best[k] for k in sorted(best) if best[k][2] != DELETE]
    return [best[k] for k in sorted(best)]


_SENTINEL = object()


def merge_runs(runs: PySequence[List[RecordTuple]], *,
               drop_tombstones: bool = False,
               snapshots: Optional[PySequence[int]] = None) -> List[RecordTuple]:
    """Merge sorted runs into one, discarding obsolete versions.

    ``runs`` are (key asc, seq desc) sorted; the output is too.  A version is
    kept iff it is the newest version visible to the "latest" view or to one
    of the live ``snapshots`` *within this merge*.  With ``drop_tombstones``
    (bottom level only) surviving tombstones are elided entirely.
    """
    if not runs:
        return []

    # Views that must stay observable, newest first; None stands for "latest".
    snap_desc: List[int] = sorted(set(snapshots), reverse=True) if snapshots else []
    if not snap_desc:
        return _dedup_newest(runs, drop_tombstones)

    if len(runs) == 1:
        stream: Iterable[RecordTuple] = runs[0]
    elif len(runs) == 2:
        stream = _merge2(runs[0], runs[1])
    else:
        stream = heapq.merge(*runs, key=sort_key)

    n_views = len(snap_desc)
    out: List[RecordTuple] = []
    kept: List[RecordTuple] = []  # versions of the current key, newest first
    cur_key = _SENTINEL
    vi = n_views  # index into snap_desc: views [vi:] are still unserved
    served_latest = False

    def emit() -> None:
        # A tombstone is only removable at the bottom when nothing older of
        # its key survives beneath it -- otherwise dropping it would
        # resurrect the older version for newer views.
        if drop_tombstones:
            while kept and kept[-1][KIND] == DELETE:
                kept.pop()
        out.extend(kept)
        kept.clear()

    for rec in stream:
        key = rec[KEY]
        if key != cur_key:
            emit()
            cur_key = key
            vi = 0
            served_latest = False
        seq = rec[SEQ]
        keep = False
        if not served_latest:
            served_latest = True
            keep = True
        # Serve every snapshot view this version is the newest visible for.
        while vi < n_views and snap_desc[vi] >= seq:
            vi += 1
            keep = True
        if keep:
            kept.append(rec)
    emit()
    return out


def merged_size_records(runs: PySequence[List[RecordTuple]]) -> int:
    """Total input records across runs (diagnostics)."""
    return sum(len(r) for r in runs)
