"""Stability metrics: windowed throughput, stall blame, tail timelines.

Luo & Carey ("On Performance Stability in LSM-based Storage Systems",
PAPERS.md) argue that mean throughput hides exactly the behavior that
matters operationally: write stalls and bursty background scheduling show
up as windowed-throughput *variance* and p99/p99.9 latency, not in the
mean.  This module turns the raw :class:`~repro.obs.sampler.TimeseriesSampler`
grid and the per-op-class histograms into the paper's stability digests:

* :func:`throughput_stats` -- duration-weighted windowed-throughput
  mean/variance/min-window over sampler rows.  The duration-weighted mean
  of the window rates equals global ops / global time *exactly* (tested),
  so "mean" here is the honest number, and variance/CV quantify how
  bursty the run was around it.
* :func:`stall_window` -- blamed seconds per stall class across a row
  range, as a fraction of the window's simulated duration.
* :func:`percentile_timeline` -- the p50/p99/p99.9 timeline of one op
  class from the sampler's windowed histogram deltas.
* :class:`StabilityProbe` -- the harness-facing wrapper: enables
  histograms, attaches a sampler, and renders per-phase window reports
  (used by ``repro.bench.stability`` and the figure benchmarks).

Everything here is observation-only by registry prefix (see
``repro.check.effects.registry``): it reads sampler rows and metric
snapshots, never the other way around.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence

from repro.metrics.stalls import STALL_CLASSES
from repro.obs.sampler import DEFAULT_INTERVAL_S, TimeseriesSampler

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.iamdb import IamDB

Row = Mapping[str, object]


def _row_float(row: Row, key: str) -> float:
    value = row.get(key, 0.0)
    return float(value) if isinstance(value, (int, float)) else 0.0


def throughput_stats(rows: Sequence[Row]) -> Dict[str, float]:
    """Windowed-throughput digest over consecutive sampler rows.

    Windows are the deltas between consecutive rows' *cumulative* ``ops``
    and ``ts`` fields (robust to slicing a row range out of a longer run).
    Rates are weighted by window duration, so ``mean_ops_s`` equals total
    ops over total time exactly; ``variance`` / ``cv`` are the duration-
    weighted spread of per-window rates around that mean, and
    ``min_window_ops_s`` is the worst window -- the number a stall crushes.
    Needs at least two rows; returns an all-zero digest otherwise.
    """
    zero = {"duration_s": 0.0, "ops": 0.0, "n_windows": 0.0,
            "mean_ops_s": 0.0, "variance": 0.0, "std": 0.0, "cv": 0.0,
            "min_window_ops_s": 0.0, "max_window_ops_s": 0.0}
    if len(rows) < 2:
        return zero
    rates: List[float] = []
    weights: List[float] = []
    carried = 0.0
    for prev, cur in zip(rows, rows[1:]):
        dur = _row_float(cur, "ts") - _row_float(prev, "ts")
        ops = _row_float(cur, "ops") - _row_float(prev, "ops") + carried
        if dur <= 0.0:
            # Zero-duration row pair (e.g. the run-end flush landing on the
            # last grid sample's instant): its ops belong to the
            # neighboring window, never on the floor.
            carried = ops
            continue
        carried = 0.0
        rates.append(ops / dur)
        weights.append(dur)
    if carried and rates:
        rates[-1] += carried / weights[-1]
    total_time = sum(weights)
    if not rates or total_time <= 0.0:
        return zero
    total_ops = sum(r * w for r, w in zip(rates, weights))
    mean = total_ops / total_time
    variance = sum(w * (r - mean) ** 2 for r, w in zip(rates, weights))
    variance /= total_time
    std = variance ** 0.5
    return {
        "duration_s": total_time,
        "ops": total_ops,
        "n_windows": float(len(rates)),
        "mean_ops_s": mean,
        "variance": variance,
        "std": std,
        "cv": (std / mean) if mean > 0.0 else 0.0,
        "min_window_ops_s": min(rates),
        "max_window_ops_s": max(rates),
    }


def stall_window(rows: Sequence[Row]) -> Dict[str, object]:
    """Blamed seconds per stall class across a row range.

    Uses the sampler's cumulative ``stall_s_by_class`` column (hard stalls
    + soft gate delays); the fraction is of the window's simulated
    duration.  Returns zeros when the range has fewer than two rows.
    """
    by_class = {cls: 0.0 for cls in STALL_CLASSES}
    duration = 0.0
    if len(rows) >= 2:
        first, last = rows[0], rows[-1]
        duration = _row_float(last, "ts") - _row_float(first, "ts")
        raw_a, raw_b = first.get("stall_s_by_class"), last.get("stall_s_by_class")
        if isinstance(raw_a, dict) and isinstance(raw_b, dict):
            for cls in STALL_CLASSES:
                by_class[cls] = (float(raw_b.get(cls, 0.0))
                                 - float(raw_a.get(cls, 0.0)))
    total = sum(by_class.values())
    return {
        "total_s": total,
        "by_class": by_class,
        "stall_fraction": (total / duration) if duration > 0.0 else 0.0,
    }


def percentile_timeline(rows: Sequence[Row], op: str) -> List[Dict[str, float]]:
    """(ts, p50, p99, p999, count) points for one op class's windows.

    Reads the sampler's ``latency_window`` column (present when the DB's
    histograms are enabled); windows with no samples of ``op`` are skipped,
    so the timeline only has real points.
    """
    out: List[Dict[str, float]] = []
    for row in rows:
        raw = row.get("latency_window")
        if not isinstance(raw, dict):
            continue
        per_op = raw.get(op)
        if not isinstance(per_op, dict):
            continue
        point = {"ts": _row_float(row, "ts")}
        for key in ("p50", "p99", "p999", "count"):
            point[key] = float(per_op.get(key, 0.0))
        out.append(point)
    return out


def downsample(points: Sequence[Dict[str, float]],
               n_max: int) -> List[Dict[str, float]]:
    """At most ``n_max`` evenly spaced points, always keeping the ends."""
    if len(points) <= n_max:
        return list(points)
    if n_max <= 1:
        return [points[-1]]
    last = len(points) - 1
    picks = sorted({(i * last) // (n_max - 1) for i in range(n_max)})
    return [points[i] for i in picks]


class Mark:
    """An anchor row for a :class:`StabilityProbe` window."""

    __slots__ = ("row_index", "hist", "ts")

    def __init__(self, row_index: int, hist: Dict[str, Dict[str, object]],
                 ts: float) -> None:
        self.row_index = row_index
        self.hist = hist
        self.ts = ts


class StabilityProbe:
    """Turn one DB run into per-phase stability reports.

    Enables the DB's per-op-class latency histograms and attaches a
    :class:`TimeseriesSampler`; :meth:`mark` anchors a phase boundary (one
    forced sample row + histogram snapshots) and :meth:`window_report`
    renders the stability digest of everything since a mark.  The probe is
    pay-for-what-you-use observability -- it never perturbs the simulated
    run (effect-gate checked).
    """

    def __init__(self, db: "IamDB",
                 interval_s: float = DEFAULT_INTERVAL_S) -> None:
        self.db = db
        db.metrics.enable_histograms()
        self.sampler = TimeseriesSampler(db, interval_s)
        db.runtime.attach_sampler(self.sampler)

    def mark(self) -> Mark:
        """Anchor a phase boundary; returns the mark to report against."""
        self.sampler.sample()
        return Mark(row_index=len(self.sampler.rows) - 1,
                    hist=self.db.metrics.hist_snapshots(),
                    ts=self.db.runtime.clock.now)

    def latency_since(self, mark: Mark) -> Dict[str, Dict[str, float]]:
        """Per-op-class percentile digest of samples since ``mark``."""
        out: Dict[str, Dict[str, float]] = {}
        for op in sorted(self.db.metrics.op_hist):
            delta = self.db.metrics.op_hist[op].delta_since(
                mark.hist.get(op, {}))
            if delta.count > 0:
                out[op] = delta.percentiles()
        return out

    def window_report(self, mark: Mark, *,
                      timeline_points: int = 32) -> Dict[str, object]:
        """The stability digest of everything since ``mark``.

        Flushes the sampler's final partial window first, so the report
        always covers the full phase.  ``timeline`` series are downsampled
        to at most ``timeline_points`` entries (ends always kept).
        """
        self.sampler.finalize()
        rows = self.sampler.rows[mark.row_index:]
        latency = self.latency_since(mark)
        throughput = [
            {"ts": _row_float(r, "ts"),
             "ops_per_s": _row_float(r, "throughput_ops_s")}
            for r in rows[1:]]
        timeline: Dict[str, object] = {
            "throughput": downsample(throughput, timeline_points),
            "latency": {op: downsample(percentile_timeline(rows, op),
                                       timeline_points)
                        for op in sorted(latency)},
        }
        last_ts = _row_float(rows[-1], "ts") if rows else mark.ts
        return {
            "sim_seconds": last_ts - mark.ts,
            "throughput": throughput_stats(rows),
            "stalls": stall_window(rows),
            "latency": latency,
            "timeline": timeline,
        }
