"""Observability: sim-time event tracing and timeseries telemetry.

See DESIGN.md "Observability" for the event catalog and span model.
"""

from repro.obs.export import (
    chrome_trace,
    jsonl_lines,
    merge_chrome_traces,
    to_jsonl,
    validate_chrome_trace,
    write_json,
)
from repro.obs.sampler import DEFAULT_INTERVAL_S, TimeseriesSampler
from repro.obs.session import TraceConfig, TraceSession, attach_trace
from repro.obs.stability import (
    StabilityProbe,
    downsample,
    percentile_timeline,
    stall_window,
    throughput_stats,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceOptions,
    Tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "TraceOptions",
    "Tracer",
    "TimeseriesSampler",
    "DEFAULT_INTERVAL_S",
    "TraceConfig",
    "TraceSession",
    "attach_trace",
    "chrome_trace",
    "jsonl_lines",
    "merge_chrome_traces",
    "to_jsonl",
    "validate_chrome_trace",
    "write_json",
    "StabilityProbe",
    "throughput_stats",
    "stall_window",
    "percentile_timeline",
    "downsample",
]
