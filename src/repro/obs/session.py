"""Attach/detach tracing to a live DB, plus the "top"-style text summary.

:func:`attach_trace` is the one entry point the CLI, benchmarks and examples
use: it wires a :class:`~repro.obs.tracer.Tracer` and a
:class:`~repro.obs.sampler.TimeseriesSampler` into a DB's runtime and
returns a :class:`TraceSession` that knows how to export and summarize the
run.  Tracing is observation-only -- the traced run's WA, tree shape and
clock are byte-identical to an untraced run (the determinism tests pin this
down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.metrics.stalls import STALL_CLASSES
from repro.obs.export import chrome_trace, to_jsonl, write_json
from repro.obs.sampler import DEFAULT_INTERVAL_S, TimeseriesSampler
from repro.obs.tracer import PH_END, TraceOptions, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.iamdb import IamDB


@dataclass(frozen=True)
class TraceConfig:
    """Configuration for one trace session."""

    ring_capacity: int = 1 << 16
    sample_interval_s: float = DEFAULT_INTERVAL_S


class TraceSession:
    """One DB's tracer + sampler, with export and summary helpers."""

    def __init__(self, db: "IamDB", config: Optional[TraceConfig] = None) -> None:
        self.config = config if config is not None else TraceConfig()
        self.db = db
        self.tracer = Tracer(db.runtime.clock,
                             TraceOptions(ring_capacity=self.config.ring_capacity))
        self.sampler = TimeseriesSampler(db, self.config.sample_interval_s)
        db.runtime.attach_tracer(self.tracer)
        db.runtime.attach_sampler(self.sampler)
        self._finished = False

    # --------------------------------------------------------------- lifecycle
    def finish(self) -> None:
        """Flush the final partial window (idempotent; call after the workload)."""
        if not self._finished:
            self._finished = True
            self.sampler.finalize()

    # ----------------------------------------------------------------- exports
    def to_jsonl(self) -> str:
        return to_jsonl(self.tracer, self.sampler)

    def to_chrome(self, *, pid: int = 1,
                  process_name: Optional[str] = None) -> Dict[str, object]:
        name = process_name if process_name is not None else self.db.engine.name
        return chrome_trace(self.tracer, self.sampler, pid=pid,
                            process_name=name)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_jsonl())

    def write_chrome(self, path: str, *, pid: int = 1,
                     process_name: Optional[str] = None) -> None:
        write_json(path, self.to_chrome(pid=pid, process_name=process_name))

    # ----------------------------------------------------------------- summary
    def _busiest_jobs(self) -> List[Tuple[str, int, float]]:
        """(job name, completions, total debt seconds), busiest first.

        Aggregated over the events still in the ring (a bounded window when
        the ring overflowed; the header reports the drop count).
        """
        totals: Dict[str, Tuple[int, float]] = {}
        for _ts, ph, cat, name, _sid, args in self.tracer.events:
            if ph != PH_END or cat != "job":
                continue
            debt = 0.0
            if args is not None:
                raw = args.get("debt_s")
                if isinstance(raw, (int, float)):
                    debt = float(raw)
            count, acc = totals.get(name, (0, 0.0))
            totals[name] = (count + 1, acc + debt)
        rows = [(name, count, acc) for name, (count, acc) in totals.items()]
        rows.sort(key=lambda r: (-r[2], -r[1], r[0]))
        return rows

    def _level_write_timeline(self, n_checkpoints: int = 5) -> List[str]:
        rows = self.sampler.rows
        if not rows:
            return ["  (no samples)"]
        levels = sorted({lvl for r in rows
                         for lvl in r["level_write_bytes"]})  # type: ignore[union-attr]
        if not levels:
            return ["  (no level writes yet)"]
        picks = sorted({0, len(rows) - 1,
                        *(i * (len(rows) - 1) // max(1, n_checkpoints - 1)
                          for i in range(n_checkpoints))})
        header = "  " + f"{'sim time':>12} " + " ".join(
            f"{'L' + str(lvl) + ' MB':>10}" for lvl in levels)
        out = [header]
        for i in picks:
            row = rows[i]
            lw = row["level_write_bytes"]
            cells = " ".join(
                f"{lw.get(lvl, 0) / 1e6:>10.2f}"  # type: ignore[union-attr]
                for lvl in levels)
            out.append(f"  {float(row['ts']) * 1e3:>10.2f}ms {cells}")  # type: ignore[arg-type]
        return out

    def summary(self) -> str:
        """A "top"-style text digest of the traced run."""
        self.finish()
        db = self.db
        tracer = self.tracer
        metrics = db.metrics
        lines = [
            f"trace summary: engine={db.engine.name} "
            f"sim_time={db.runtime.clock.now * 1e3:.2f}ms",
            f"  events={tracer.event_count()} (in ring={len(tracer)}, "
            f"dropped={tracer.dropped})  spans {tracer.spans_opened} opened / "
            f"{tracer.spans_closed} closed  samples={len(self.sampler.rows)}",
            "",
            "busiest background jobs (by device time, ring window):",
        ]
        jobs = self._busiest_jobs()
        if jobs:
            for name, count, debt in jobs[:8]:
                lines.append(f"  {name:<24} x{count:<6} {debt * 1e3:>10.3f}ms device time")
        else:
            lines.append("  (no background jobs completed)")
        lines.append("")
        lines.append("longest stalls:")
        stalls = sorted(metrics.stalls.items(),
                        key=lambda kv: (-kv[1].max_s, kv[0]))
        if stalls:
            for reason, st in stalls[:8]:
                lines.append(
                    f"  {reason:<24} x{st.count:<6} total {st.total_s * 1e3:>9.3f}ms "
                    f"max {st.max_s * 1e3:>9.3f}ms")
        else:
            lines.append("  (no stalls)")
        lines.append("")
        lines.append("blame (stalls + write-gate delays, by class):")
        breakdown = metrics.stall_breakdown()
        now = db.runtime.clock.now
        if breakdown.total_s > 0.0:
            for cls in STALL_CLASSES:
                count, total_s, max_s = breakdown.classes[cls]
                if count == 0:
                    continue
                frac = (total_s / now) if now > 0.0 else 0.0
                lines.append(
                    f"  {cls:<12} x{count:<6} total {total_s * 1e3:>9.3f}ms "
                    f"max {max_s * 1e3:>9.3f}ms  {frac * 100:>5.1f}% of run")
        else:
            lines.append("  (no blamed time)")
        if metrics.hist_enabled and metrics.op_hist:
            lines.append("")
            lines.append("latency percentiles (sim ms):")
            for op, pcts in sorted(metrics.hist_percentiles().items()):
                lines.append(
                    f"  {op:<10} p50 {pcts['p50'] * 1e3:>9.4f} "
                    f"p99 {pcts['p99'] * 1e3:>9.4f} "
                    f"p99.9 {pcts['p999'] * 1e3:>9.4f} "
                    f"max {pcts['max'] * 1e3:>9.4f}  (n={int(pcts['count'])})")
        lines.append("")
        lines.append("per-level write bytes over time:")
        lines.extend(self._level_write_timeline())
        lines.append("")
        lines.append("event counts:")
        counts = sorted(tracer.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, n in counts[:12]:
            lines.append(f"  {name:<24} {n:>8}")
        return "\n".join(lines)


def attach_trace(db: "IamDB",
                 config: Optional[TraceConfig] = None) -> TraceSession:
    """Wire a tracer + sampler into ``db`` and return the live session."""
    return TraceSession(db, config)
