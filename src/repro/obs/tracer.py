"""Structured sim-time event tracer (the repo's observability core).

The paper's headline phenomena are *temporal* -- LevelDB's multi-second
stalls, the "serious data overflows" of §6.2, IAM's stable throughput
timeline (Fig. 8) -- so the tracer records *when* things happen on the
**simulated clock only**.  No wall-clock source is ever read (the REP001
determinism lint covers this package): two runs with the same seed and
options produce byte-identical traces.

Two event shapes:

* **instant events** (`ph="i"`) -- flushes, appends, merges, splits,
  combines, move-downs, write-gate slowdowns, stalls, memtable rotations,
  cache evictions, retunes, recoveries.
* **spans** (`ph="b"` / `ph="e"`) -- one per background job, opened when a
  thread activates the job (its structural effect runs) and closed when its
  device-time debt is fully drained.  Spans are keyed by the job's
  deterministic ``job_id``, so every begin has exactly one matching end.

Events are buffered in a bounded ring (oldest dropped first, drop count
kept) and exported by :mod:`repro.obs.export` as JSONL or Chrome
trace-event JSON loadable in Perfetto.

The disabled path is pay-for-what-you-use: call sites guard on
``tracer.enabled`` (a plain class attribute) and the shared
:data:`NULL_TRACER` sink turns every hook into an early return, so a run
without tracing does no extra allocation on the hot path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple


class ClockLike:
    """Structural stand-in for :class:`repro.storage.simdisk.SimClock`.

    Kept as a plain attribute holder (not a Protocol) so this module has no
    dependency on the storage package and no runtime ``isinstance`` cost.
    """

    now: float = 0.0


#: One recorded event: (ts_s, ph, cat, name, span_id, args).
#: ``ph`` is "i" (instant), "b" (span begin) or "e" (span end); ``span_id``
#: is None for instants; ``args`` is None when the event carries no payload.
Event = Tuple[float, str, str, str, Optional[int], Optional[Dict[str, object]]]

#: Event phases understood by the exporters.
PH_INSTANT = "i"
PH_BEGIN = "b"
PH_END = "e"


@dataclass(frozen=True)
class TraceOptions:
    """Tracer configuration.

    ``ring_capacity`` bounds the in-memory event buffer; when full, the
    oldest events are dropped (and counted in ``Tracer.dropped``) so a long
    run keeps its most recent window instead of growing without bound.
    """

    ring_capacity: int = 1 << 16


class NullTracer:
    """The disabled sink: every hook is a no-op.

    This is also the base class of the real :class:`Tracer`, so annotations
    throughout the storage stack can use ``NullTracer`` and call sites stay
    monomorphic.  ``enabled`` is a class attribute -- checking it costs two
    attribute loads, no call.
    """

    enabled: bool = False

    def instant(self, cat: str, name: str, **args: object) -> None:
        """Record an instant event (no-op when disabled)."""

    def begin(self, cat: str, name: str, span_id: int, **args: object) -> None:
        """Open a span (no-op when disabled)."""

    def end(self, cat: str, name: str, span_id: int, **args: object) -> None:
        """Close a span (no-op when disabled)."""


#: Shared disabled sink installed by default on every Runtime/BackgroundPool.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Recording tracer bound to one DB instance's simulated clock."""

    enabled = True

    def __init__(self, clock: ClockLike,
                 options: Optional[TraceOptions] = None) -> None:
        self.clock = clock
        self.options = options if options is not None else TraceOptions()
        self.events: Deque[Event] = deque()
        self._capacity = max(1, self.options.ring_capacity)
        #: Events evicted from the ring (ring overflow, not an error).
        self.dropped = 0
        #: Per-event-name counters; survive ring overflow (summary input).
        self.counts: Dict[str, int] = {}
        #: Spans opened/closed since creation (balance survives overflow).
        self.spans_opened = 0
        self.spans_closed = 0
        #: Currently-open spans: id -> (cat, name).  The Chrome exporter
        #: closes these as "inflight" so viewers always see balanced pairs.
        self.open_spans: Dict[int, Tuple[str, str]] = {}

    # ------------------------------------------------------------------- sink
    def _push(self, event: Event) -> None:
        if len(self.events) >= self._capacity:
            self.events.popleft()
            self.dropped += 1
        self.events.append(event)

    def instant(self, cat: str, name: str, **args: object) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        self._push((self.clock.now, PH_INSTANT, cat, name, None,
                    args if args else None))

    def begin(self, cat: str, name: str, span_id: int, **args: object) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        self.spans_opened += 1
        self.open_spans[span_id] = (cat, name)
        self._push((self.clock.now, PH_BEGIN, cat, name, span_id,
                    args if args else None))

    def end(self, cat: str, name: str, span_id: int, **args: object) -> None:
        self.spans_closed += 1
        self.open_spans.pop(span_id, None)
        self._push((self.clock.now, PH_END, cat, name, span_id,
                    args if args else None))

    # ------------------------------------------------------------- inspection
    def __len__(self) -> int:
        return len(self.events)

    def event_count(self) -> int:
        """Total events recorded, including those dropped from the ring."""
        return len(self.events) + self.dropped
