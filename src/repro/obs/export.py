"""Deterministic trace exporters: JSONL and Chrome trace-event JSON.

Both formats are rendered with ``sort_keys=True`` and compact separators so
that two runs with the same seed and options produce **byte-identical**
output -- the property the determinism tests pin down.

* **JSONL** -- one JSON object per line: every tracer event in recording
  order, followed by every sampler row (``"ph": "sample"``).  The analysis-
  friendly format (``pandas.read_json(lines=True)`` or ``jq``).
* **Chrome trace-event JSON** -- the ``{"traceEvents": [...]}`` envelope
  understood by Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``.
  Instants map to ``ph: "i"``, background-job spans to async ``ph: "b"/"e"``
  pairs keyed by the job id, and sampler rows become ``ph: "C"`` counter
  tracks (throughput, pending debt, WA, cache hit rate, per-level bytes).

Timestamps are simulated seconds in JSONL and simulated *microseconds* in
the Chrome format (the unit trace viewers expect).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.obs.sampler import TimeseriesSampler
from repro.obs.tracer import PH_BEGIN, PH_END, PH_INSTANT, Tracer

#: Phases emitted by this module / accepted by the validator.
_VALID_PHASES = frozenset({PH_INSTANT, PH_BEGIN, PH_END, "C", "M"})


def _dumps(obj: object) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------- JSONL
def jsonl_lines(tracer: Tracer,
                sampler: Optional[TimeseriesSampler] = None) -> List[str]:
    """All trace events (then sampler rows) as compact JSON lines."""
    lines: List[str] = []
    for ts, ph, cat, name, span_id, args in tracer.events:
        obj: Dict[str, object] = {"ts": ts, "ph": ph, "cat": cat, "name": name}
        if span_id is not None:
            obj["id"] = span_id
        if args is not None:
            obj["args"] = args
        lines.append(_dumps(obj))
    if sampler is not None:
        for row in sampler.rows:
            obj = {"ph": "sample"}
            obj.update(row)
            lines.append(_dumps(obj))
    return lines


def to_jsonl(tracer: Tracer,
             sampler: Optional[TimeseriesSampler] = None) -> str:
    lines = jsonl_lines(tracer, sampler)
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------- Chrome trace
def _us(ts_s: float) -> float:
    """Simulated seconds -> microseconds, rounded to a stable picosecond grid."""
    return round(ts_s * 1e6, 6)


def chrome_trace(tracer: Tracer,
                 sampler: Optional[TimeseriesSampler] = None, *,
                 pid: int = 1,
                 process_name: str = "repro") -> Dict[str, object]:
    """Render one DB's trace as a Chrome trace-event JSON object."""
    events: List[Dict[str, object]] = [
        {"ph": "M", "pid": pid, "tid": 0, "ts": 0,
         "name": "process_name", "args": {"name": process_name}},
        {"ph": "M", "pid": pid, "tid": 0, "ts": 0,
         "name": "thread_name", "args": {"name": "sim"}},
    ]
    for ts, ph, cat, name, span_id, args in tracer.events:
        ev: Dict[str, object] = {"ph": ph, "pid": pid, "tid": 0,
                                 "ts": _us(ts), "cat": cat, "name": name}
        if ph == PH_INSTANT:
            ev["s"] = "t"
        else:
            ev["id"] = span_id
        if args is not None:
            ev["args"] = args
        events.append(ev)
    # Close any span whose job was still in flight when the trace was cut,
    # so every async begin has a matching end (viewers and the validator
    # both require balanced pairs).
    for span_id in sorted(tracer.open_spans):
        cat, name = tracer.open_spans[span_id]
        events.append({"ph": PH_END, "pid": pid, "tid": 0,
                       "ts": _us(tracer.clock.now), "cat": cat, "name": name,
                       "id": span_id, "args": {"inflight": 1}})
    if sampler is not None:
        events.extend(_counter_events(sampler, pid))
    if tracer.dropped:
        events.append({"ph": "M", "pid": pid, "tid": 0, "ts": 0,
                       "name": "trace_ring_dropped",
                       "args": {"dropped": tracer.dropped}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _counter_events(sampler: TimeseriesSampler,
                    pid: int) -> List[Dict[str, object]]:
    out: List[Dict[str, object]] = []
    for row in sampler.rows:
        ts = _us(float(row["ts"]))  # type: ignore[arg-type]

        def counter(name: str, args: Dict[str, object]) -> None:
            out.append({"ph": "C", "pid": pid, "tid": 0, "ts": ts,
                        "cat": "sample", "name": name, "args": args})

        counter("throughput (ops/s)",
                {"ops_per_s": row["throughput_ops_s"]})
        counter("pending debt (s)", {"debt_s": row["pending_debt_s"]})
        counter("write amplification", {"wa": row["write_amplification"]})
        counter("cache hit rate", {"rate": row["cache_hit_rate"]})
        counter("total stall (s)", {"stall_s": row["total_stall_s"]})
        level_bytes = row["level_data_bytes"]
        if isinstance(level_bytes, dict) and level_bytes:
            counter("level bytes",
                    {f"L{lvl}": n for lvl, n in sorted(level_bytes.items())})
        by_class = row.get("stall_s_by_class")
        if isinstance(by_class, dict) and any(v > 0.0 for v in by_class.values()):
            counter("stall by class (s)",
                    {str(cls): s for cls, s in by_class.items()})
        lat_window = row.get("latency_window")
        if isinstance(lat_window, dict) and lat_window:
            counter("p99 latency (s)",
                    {op: d["p99"] for op, d in sorted(lat_window.items())})
            counter("p99.9 latency (s)",
                    {op: d["p999"] for op, d in sorted(lat_window.items())})
    return out


def merge_chrome_traces(traces: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Combine per-DB traces (distinct pids) into one side-by-side file."""
    events: List[object] = []
    for t in traces:
        events.extend(t.get("traceEvents", []))  # type: ignore[arg-type]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ------------------------------------------------------------------ validation
def validate_chrome_trace(trace: object) -> List[str]:
    """Schema-check a Chrome trace-event object; returns problems (empty = ok).

    Checks the envelope, the per-event required fields, and that every async
    span begin has exactly one matching end (per pid/cat/name/id).
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return ["trace is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    spans: Dict[object, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        name = ev.get("name")
        if not isinstance(ph, str) or ph not in _VALID_PHASES:
            problems.append(f"event {i} has invalid ph {ph!r}")
            continue
        if not isinstance(name, str) or not name:
            problems.append(f"event {i} lacks a name")
        if ph == "M":
            continue
        if not isinstance(ev.get("ts"), (int, float)):
            problems.append(f"event {i} ({name}) lacks a numeric ts")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"event {i} ({name}) lacks an integer pid")
        if ph in (PH_BEGIN, PH_END):
            if "id" not in ev:
                problems.append(f"event {i} ({name}) is a span without an id")
            else:
                key = (ev.get("pid"), ev.get("cat"), name, ev["id"])
                spans[key] = spans.get(key, 0) + (1 if ph == PH_BEGIN else -1)
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"event {i} ({name}) counter lacks args")
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                problems.append(f"event {i} ({name}) counter args not numeric")
    for key, balance in spans.items():
        if balance != 0:
            problems.append(f"span {key} unbalanced (begin-end = {balance})")
    return problems


def write_json(path: str, obj: Dict[str, object]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(_dumps(obj))
        fh.write("\n")
