"""Sim-time timeseries sampler (Fig. 8-style telemetry).

Snapshots the storage stack at a configurable simulated-time interval:
per-level data bytes, sequence counts per node, running write/read/space
amplification, cache hit rate, pending compaction debt, cumulative stall
time, windowed operation throughput, and read-path rates (point lookups/s,
blocks touched per lookup, Bloom negative rate).  The rows reproduce the paper's
throughput/stability timelines (Fig. 8) and LevelDB's overflow story (§6.2)
directly from one traced run.

Sampling is driven from :meth:`repro.storage.runtime.Runtime.pump` -- the
per-operation heartbeat of every DB -- and is therefore deterministic: a
sample is due whenever the simulated clock has crossed the next grid point,
so two runs with the same seed sample at identical instants.  The sampler
only *reads* state (metric deltas come from
:meth:`~repro.metrics.amplification.MetricsRegistry.snapshot`, never
``reset``), keeping traced runs byte-identical to untraced ones.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.check.effects.registry import observation_only
from repro.metrics.latency import HIST_QUANTILES
from repro.metrics.stalls import STALL_CLASSES, StallBreakdown

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.iamdb import IamDB

#: Default sampling interval in simulated seconds.  Scaled runs complete in
#: a few hundred sim-milliseconds (see BENCH_perf.json ``sim_seconds``), so
#: 5 sim-ms yields on the order of 100 rows for a full load.
DEFAULT_INTERVAL_S = 0.005


class TimeseriesSampler:
    """Periodic read-only snapshots of one DB's metrics and tree shape."""

    def __init__(self, db: "IamDB", interval_s: float = DEFAULT_INTERVAL_S) -> None:
        if interval_s <= 0.0:
            interval_s = DEFAULT_INTERVAL_S
        self.db = db
        self.interval_s = interval_s
        self.rows: List[Dict[str, object]] = []
        now = db.runtime.clock.now
        self._next_due = now + interval_s
        self._last_ts = now
        self._last_ops = self._op_total(db.metrics.snapshot())
        self._last_hits = db.metrics.cache_hits
        self._last_misses = db.metrics.cache_misses
        self._last_reads = self._read_count(db.metrics.snapshot())
        self._last_bloom_probes = db.metrics.bloom_probes
        self._last_bloom_negatives = db.metrics.bloom_negatives
        self._last_objstore_up = db.metrics.objstore_bytes_up
        self._last_objstore_down = db.metrics.objstore_bytes_down
        self._last_objstore_requests = self._objstore_requests(
            db.metrics.snapshot())
        #: Per-op-class histogram snapshots at the last sample (windowed
        #: percentile timelines; empty while histograms are disabled).
        self._last_hist: Dict[str, Dict[str, object]] = {}

    # ---------------------------------------------------------------- driving
    @property
    def next_due(self) -> float:
        return self._next_due

    def maybe_sample(self) -> None:
        """Take a sample when the clock has crossed the next grid point."""
        if self.db.runtime.clock.now >= self._next_due:
            self.sample()

    @observation_only
    def finalize(self) -> None:
        """Flush the final partial window at run end.

        ``maybe_sample`` only fires when the clock *crosses* a grid point,
        so a run ending mid-window would silently drop everything since the
        last row -- the tail of every throughput/latency timeline.  Called
        by :meth:`repro.obs.session.TraceSession.finish` (and directly by
        harnesses that drive the sampler without a session); takes one last
        row iff time advanced or ops completed since the previous row, so
        repeated calls do not append duplicate rows.
        """
        if not self.rows:
            self.sample()
            return
        now = self.db.runtime.clock.now
        if (now > self._last_ts
                or self._op_total(self.db.metrics.snapshot()) != self._last_ops):
            self.sample()

    @staticmethod
    def _op_total(snapshot: Dict[str, object]) -> int:
        counts = snapshot["op_counts"]
        total = 0
        for n in counts.values():  # type: ignore[union-attr]
            total += int(n)
        return total

    @staticmethod
    def _read_count(snapshot: Dict[str, object]) -> int:
        counts = snapshot["op_counts"]
        return int(counts.get("read", 0))  # type: ignore[union-attr]

    @staticmethod
    def _objstore_requests(snapshot: Dict[str, object]) -> int:
        """Total object-store requests (every ``objstore:*`` event)."""
        events = snapshot["events"]
        total = 0
        for name, n in events.items():  # type: ignore[union-attr]
            if str(name).startswith("objstore:"):
                total += int(n)
        return total

    # --------------------------------------------------------------- sampling
    def _sequence_shape(self) -> Dict[str, int]:
        """(total sequences, max per node, node count) across the structure."""
        total = 0
        max_per_node = 0
        nodes = 0
        levels = getattr(self.db.engine, "levels", None)
        if levels is None:
            return {"nodes": 0, "seqs_total": 0, "seqs_max_per_node": 0}
        for level in levels:
            for node in level:
                n = getattr(node, "n_sequences", 0)
                nodes += 1
                total += n
                if n > max_per_node:
                    max_per_node = n
        return {"nodes": nodes, "seqs_total": total,
                "seqs_max_per_node": max_per_node}

    def sample(self) -> Dict[str, object]:
        """Take one snapshot row now; advances the sampling grid past "now"."""
        db = self.db
        runtime = db.runtime
        metrics = db.metrics
        now = runtime.clock.now
        snap = metrics.snapshot()
        ops = self._op_total(snap)
        window_s = now - self._last_ts
        ops_window = ops - self._last_ops
        hits = metrics.cache_hits
        misses = metrics.cache_misses
        dh = hits - self._last_hits
        dm = misses - self._last_misses
        reads = self._read_count(snap)
        dreads = reads - self._last_reads
        bp = metrics.bloom_probes
        bn = metrics.bloom_negatives
        dbp = bp - self._last_bloom_probes
        dbn = bn - self._last_bloom_negatives
        row: Dict[str, object] = {
            "ts": now,
            "level_data_bytes": {int(k): int(v)
                                 for k, v in sorted(db.engine.level_data_bytes().items())},
            "level_write_bytes": {int(k): int(v)
                                  for k, v in sorted(metrics.level_write_bytes.items())},
            "write_amplification": metrics.write_amplification(),
            "read_amplification": metrics.read_amplification(),
            "space_used_bytes": runtime.space_used_bytes(),
            "space_amplification": metrics.space_amplification(
                runtime.space_used_bytes(), metrics.user_bytes),
            "cache_hit_rate": metrics.cache_hit_rate(),
            "cache_hit_rate_window": (dh / (dh + dm)) if (dh + dm) > 0 else 0.0,
            "cache_used_bytes": runtime.cache.used_bytes,
            "pending_debt_s": runtime.pool.pending_debt_s,
            "queued_jobs": len(runtime.pool.queue),
            "active_jobs": len(runtime.pool.active),
            "total_stall_s": metrics.total_stall_s,
            "ops": ops,
            "ops_window": ops_window,
            "throughput_ops_s": (ops_window / window_s) if window_s > 0.0 else 0.0,
            # Read-path telemetry (windowed): point-lookup throughput, data
            # blocks touched per lookup, and the Bloom-filter negative rate
            # -- the three signals the batched multi_get path must preserve.
            "reads": reads,
            "reads_window": dreads,
            "point_lookup_rate": (dreads / window_s) if window_s > 0.0 else 0.0,
            "blocks_per_read_window": ((dh + dm) / dreads) if dreads > 0 else 0.0,
            "bloom_negative_rate_window": (dbn / dbp) if dbp > 0 else 0.0,
            # Shared-storage telemetry (windowed): tiering upload/fetch
            # traffic and the request count against the object store.
            "objstore_bytes_up": metrics.objstore_bytes_up,
            "objstore_bytes_down": metrics.objstore_bytes_down,
            "objstore_bytes_up_window":
                metrics.objstore_bytes_up - self._last_objstore_up,
            "objstore_bytes_down_window":
                metrics.objstore_bytes_down - self._last_objstore_down,
            "objstore_requests_window":
                self._objstore_requests(snap) - self._last_objstore_requests,
        }
        # Stall attribution: cumulative blamed seconds per class (hard
        # stalls + soft gate delays; see repro.metrics.stalls).
        breakdown = StallBreakdown.from_metrics(metrics.stalls,
                                                metrics.gate_delays)
        row["stall_s_by_class"] = breakdown.class_seconds()
        if metrics.hist_enabled:
            # Windowed per-op-class latency percentiles from histogram
            # deltas -- the p99/p99.9 timelines of the stability reports.
            lat_window: Dict[str, Dict[str, float]] = {}
            for op in sorted(metrics.op_hist):
                delta = metrics.op_hist[op].delta_since(
                    self._last_hist.get(op, {}))
                if delta.count > 0:
                    per_op = {key: delta.percentile(q)
                              for key, q in HIST_QUANTILES}
                    per_op["count"] = float(delta.count)
                    lat_window[op] = per_op
            row["latency_window"] = lat_window
            self._last_hist = metrics.hist_snapshots()
        row.update(self._sequence_shape())
        self.rows.append(row)
        self._last_ts = now
        self._last_ops = ops
        self._last_hits = hits
        self._last_misses = misses
        self._last_reads = reads
        self._last_bloom_probes = bp
        self._last_bloom_negatives = bn
        self._last_objstore_up = metrics.objstore_bytes_up
        self._last_objstore_down = metrics.objstore_bytes_down
        self._last_objstore_requests = self._objstore_requests(snap)
        # Advance the grid strictly past "now" (a stall may jump several
        # intervals; one row represents the whole jump).
        step = self.interval_s
        due = self._next_due
        if due <= now:
            behind = now - due
            due += (int(behind / step) + 1) * step
        self._next_due = due
        return row

    # ------------------------------------------------------------- inspection
    def throughput_timeline(self) -> List[Dict[str, float]]:
        """(ts, ops/s) pairs -- the Fig. 8 stable-throughput axis."""
        return [{"ts": float(r["ts"]),  # type: ignore[arg-type]
                 "ops_per_s": float(r["throughput_ops_s"])}  # type: ignore[arg-type]
                for r in self.rows]
