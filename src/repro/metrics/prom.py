"""Prometheus text exposition of a metrics snapshot.

Renders a :meth:`repro.metrics.MetricsRegistry.snapshot` dict (or a
cluster-merged snapshot from :func:`repro.metrics.merge_snapshots`) in the
Prometheus text format, so any run -- single DB or sharded cluster -- can
be scraped, diffed, or pushed into external dashboards.  The "timestamps"
here are simulated seconds; series are emitted without wall timestamps on
purpose (the exposition is deterministic: same snapshot, same bytes).

Conventions follow the exposition format spec:

* monotone counters get a ``_total`` suffix,
* per-op-class latency histograms use cumulative ``_bucket{le="..."}``
  series plus ``_sum``/``_count`` (bucket bounds are the histogram's fixed
  log-linear upper bounds, so ``le`` values are stable across runs),
* everything else is a gauge.

Output lines are sorted within each metric family and families are
emitted in a fixed order -- byte-identical output for identical
snapshots, which is what the determinism tests pin.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple, Union, cast

from repro.metrics.latency import LatencyHistogram, bucket_bounds

#: Scalar snapshot counters exposed as ``<ns>_<name>_total``.
_SCALAR_COUNTERS: Tuple[Tuple[str, str], ...] = (
    ("user_bytes", "Bytes of user payload written (puts + deletes)."),
    ("wal_bytes", "WAL bytes written (excluded from write amplification)."),
    ("compaction_read_bytes", "Bytes read by flushes and compactions."),
    ("query_seeks", "Random device I/Os issued by queries."),
    ("cache_hits", "Query block reads served by the page cache."),
    ("cache_misses", "Query block reads that missed the page cache."),
    ("bloom_probes", "Bloom filter membership probes."),
    ("bloom_negatives", "Bloom probes that skipped a sequence."),
    ("objstore_bytes_up", "Bytes uploaded to the shared object store."),
    ("objstore_bytes_down", "Bytes fetched from the shared object store."),
)


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt(value: object) -> str:
    """Prometheus sample value: ints stay ints, floats use shortest repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))  # type: ignore[arg-type]


def _family(lines: List[str], name: str, kind: str, help_text: str) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def _labeled(name: str, labels: Mapping[str, str]) -> str:
    if not labels:
        return name
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in labels.items())
    return f"{name}{{{body}}}"


def _triple_map(snap: Mapping[str, object],
                key: str) -> Dict[str, Tuple[int, float, float]]:
    raw = snap.get(key)
    if not isinstance(raw, dict):
        return {}
    return {str(r): (int(t[0]), float(t[1]), float(t[2]))
            for r, t in raw.items()}


def _render_stall_family(lines: List[str], ns: str, stem: str, noun: str,
                         triples: Dict[str, Tuple[int, float, float]]) -> None:
    if not triples:
        return
    _family(lines, f"{ns}_{stem}_total", "counter",
            f"Number of {noun}, by reason.")
    for reason in sorted(triples):
        lines.append(f"{_labeled(f'{ns}_{stem}_total', {'reason': reason})}"
                     f" {_fmt(triples[reason][0])}")
    _family(lines, f"{ns}_{stem}_seconds_total", "counter",
            f"Total simulated seconds lost to {noun}, by reason.")
    for reason in sorted(triples):
        lines.append(
            f"{_labeled(f'{ns}_{stem}_seconds_total', {'reason': reason})}"
            f" {_fmt(triples[reason][1])}")
    _family(lines, f"{ns}_{stem}_max_seconds", "gauge",
            f"Longest single one of the {noun}, by reason.")
    for reason in sorted(triples):
        lines.append(
            f"{_labeled(f'{ns}_{stem}_max_seconds', {'reason': reason})}"
            f" {_fmt(triples[reason][2])}")


def render_prom(snapshot: Mapping[str, object], *, namespace: str = "repro",
                extra_gauges: Optional[Mapping[str, Union[float,
                                                          Tuple[str, float]]]] = None,
                ) -> str:
    """Render one snapshot in the Prometheus text exposition format.

    ``extra_gauges`` maps metric stem -> value (or (help text, value)) for
    context the snapshot itself does not carry (simulated time, shard
    count...).
    """
    ns = namespace
    lines: List[str] = []
    for key, help_text in _SCALAR_COUNTERS:
        value = snapshot.get(key)
        if not isinstance(value, (int, float)):
            continue
        name = f"{ns}_{key}_total"
        _family(lines, name, "counter", help_text)
        lines.append(f"{name} {_fmt(value)}")

    raw_lw = snapshot.get("level_write_bytes")
    if isinstance(raw_lw, dict) and raw_lw:
        name = f"{ns}_level_write_bytes_total"
        _family(lines, name, "counter",
                "Flush/compaction bytes, attributed to destination level.")
        for level in sorted(raw_lw):
            lines.append(f"{_labeled(name, {'level': str(level)})}"
                         f" {_fmt(raw_lw[level])}")

    raw_events = snapshot.get("events")
    if isinstance(raw_events, dict) and raw_events:
        name = f"{ns}_events_total"
        _family(lines, name, "counter",
                "Structural events (flushes, merges, splits, stalls...).")
        for event in sorted(raw_events):
            lines.append(f"{_labeled(name, {'event': str(event)})}"
                         f" {_fmt(raw_events[event])}")

    raw_ops = snapshot.get("op_counts")
    if isinstance(raw_ops, dict) and raw_ops:
        name = f"{ns}_ops_total"
        _family(lines, name, "counter", "Operations recorded, by type.")
        for op in sorted(raw_ops):
            lines.append(f"{_labeled(name, {'op': str(op)})}"
                         f" {_fmt(raw_ops[op])}")

    _render_stall_family(lines, ns, "stall", "hard foreground stalls",
                         _triple_map(snapshot, "stalls"))
    _render_stall_family(lines, ns, "gate_delay", "soft write-gate delays",
                         _triple_map(snapshot, "gate_delays"))

    raw_hist = snapshot.get("latency_hist")
    if isinstance(raw_hist, dict) and raw_hist:
        name = f"{ns}_op_latency_seconds"
        _family(lines, name, "histogram",
                "Per-op-class latency on the simulated clock.")
        for op in sorted(raw_hist):
            hist = LatencyHistogram.from_snapshot(raw_hist[op])
            snap = hist.snapshot()
            cumulative = int(snap["zero"])  # type: ignore[call-overload]
            buckets = cast(Dict[str, int], snap["buckets"])
            if cumulative:
                lines.append(
                    f"{_labeled(name + '_bucket', {'op': op, 'le': '0.0'})}"
                    f" {cumulative}")
            for idx in sorted(int(k) for k in buckets):
                cumulative += int(buckets[str(idx)])
                le = repr(bucket_bounds(idx)[1])
                lines.append(
                    f"{_labeled(name + '_bucket', {'op': op, 'le': le})}"
                    f" {cumulative}")
            lines.append(
                f"{_labeled(name + '_bucket', {'op': op, 'le': '+Inf'})}"
                f" {hist.count}")
            lines.append(f"{_labeled(name + '_sum', {'op': op})}"
                         f" {_fmt(hist.total)}")
            lines.append(f"{_labeled(name + '_count', {'op': op})}"
                         f" {hist.count}")

    for key, help_text in (("write_amplification",
                            "Device bytes written per user byte (WAL excl.)."),
                           ("cache_hit_rate",
                            "Query-read cache hit fraction."),
                           ("total_stall_s",
                            "Total hard-stall simulated seconds."),
                           ("total_gate_delay_s",
                            "Total soft gate-delay simulated seconds.")):
        value = snapshot.get(key)
        if isinstance(value, (int, float)):
            name = f"{ns}_{key.removesuffix('_s')}" \
                if key.endswith("_s") else f"{ns}_{key}"
            if key.endswith("_s"):
                name += "_seconds"
            _family(lines, name, "gauge", help_text)
            lines.append(f"{name} {_fmt(float(value))}")

    for stem in sorted(extra_gauges or {}):
        raw_gauge = (extra_gauges or {})[stem]
        if isinstance(raw_gauge, tuple):
            help_text, value = raw_gauge
        else:
            help_text, value = f"Harness-provided gauge {stem}.", raw_gauge
        name = f"{ns}_{stem}"
        _family(lines, name, "gauge", help_text)
        lines.append(f"{name} {_fmt(float(value))}")

    return "\n".join(lines) + "\n"
