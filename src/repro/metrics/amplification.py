"""Amplification accounting (paper §5.3 definitions).

* **Write amplification** -- device bytes written by flushes/compactions
  divided by user-written bytes.  The paper excludes WAL bytes (§6.2), so the
  registry tracks WAL traffic separately.  Per-level attribution matches the
  paper's Tables 3 and 4: a write is charged to the level it lands in.
* **Read amplification** -- random disk I/Os (seeks) per query.
* **Space amplification** -- on-disk bytes over the logical database size.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.check.effects.registry import observation_only
from repro.metrics.latency import (LatencyHistogram, LatencyRecorder,
                                   merge_histogram_snapshots)
from repro.metrics.stalls import StallBreakdown


class StallStat:
    """Structured record of foreground stalls sharing one reason."""

    __slots__ = ("count", "total_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        if duration_s > self.max_s:
            self.max_s = duration_s


class MetricsRegistry:
    """Counters shared by one DB instance and its storage stack."""

    def __init__(self) -> None:
        #: Bytes of user payload written (puts + deletes, encoded size).
        self.user_bytes = 0
        #: WAL bytes (excluded from write amplification, per §6.2).
        self.wal_bytes = 0
        #: Flush/compaction bytes written, attributed to the destination level.
        self.level_write_bytes: Dict[int, int] = defaultdict(int)
        #: Bytes read by compactions (device time cost, not part of WA).
        self.compaction_read_bytes = 0
        #: Random device I/Os issued by queries (read amplification numerator).
        self.query_seeks = 0
        #: Query block reads that hit the page cache.
        self.cache_hits = 0
        #: Query block reads that missed the page cache.
        self.cache_misses = 0
        #: Bloom filter membership probes issued by point lookups.
        self.bloom_probes = 0
        #: Bloom probes that rejected the key (sequence skipped, no I/O).
        self.bloom_negatives = 0
        #: Bytes uploaded to the shared object store (mirroring).
        self.objstore_bytes_up = 0
        #: Bytes downloaded from the shared object store (bootstrap, tiered
        #: reads, time travel).
        self.objstore_bytes_down = 0
        #: Event counters: splits, combines, merges, appends, moves, stalls...
        self.events: Dict[str, int] = defaultdict(int)
        #: Latency recorder per operation type ("insert", "read", "scan"...).
        self.latency: Dict[str, LatencyRecorder] = defaultdict(LatencyRecorder)
        #: Structured stalls by reason: count, total and longest duration.
        self.stalls: Dict[str, StallStat] = {}
        #: Soft write-gate pacing delays by reason (admitted-late, not
        #: blocked -- kept out of ``stalls`` so ``total_stall_s`` keeps its
        #: hard-stall meaning; StallBreakdown reports both).
        self.gate_delays: Dict[str, StallStat] = {}
        #: Opt-in per-op-class latency histograms (see enable_histograms).
        self.hist_enabled = False
        #: Log-linear histogram per op class ("put", "get", "multi_get",
        #: "scan"); populated only while ``hist_enabled`` is True.
        self.op_hist: Dict[str, LatencyHistogram] = {}

    # ------------------------------------------------------------------ write
    def add_user_bytes(self, nbytes: int) -> None:
        self.user_bytes += nbytes

    def add_wal_bytes(self, nbytes: int) -> None:
        self.wal_bytes += nbytes

    def add_level_write(self, level: int, nbytes: int) -> None:
        self.level_write_bytes[level] += nbytes

    def add_compaction_read(self, nbytes: int) -> None:
        self.compaction_read_bytes += nbytes

    # ------------------------------------------------------------------- read
    def add_query_io(self, *, seeks: int, hits: int, misses: int) -> None:
        self.query_seeks += seeks
        self.cache_hits += hits
        self.cache_misses += misses

    def add_bloom_probes(self, probes: int, negatives: int) -> None:
        self.bloom_probes += probes
        self.bloom_negatives += negatives

    # ----------------------------------------------------------- object store
    def add_objstore_up(self, nbytes: int) -> None:
        self.objstore_bytes_up += nbytes

    def add_objstore_down(self, nbytes: int) -> None:
        self.objstore_bytes_down += nbytes

    def bump(self, event: str, n: int = 1) -> None:
        self.events[event] += n

    def record_latency(self, op: str, latency_s: float) -> None:
        self.latency[op].record(latency_s)

    # ------------------------------------------------------------- histograms
    @observation_only
    def enable_histograms(self) -> None:
        """Turn on per-op-class latency histograms (pay-for-what-you-use).

        Off by default: the disabled path is a single attribute test in
        :meth:`observe`, and runs with histograms off are byte-identical
        to runs without this feature (proved in
        ``tests/test_stability.py``).
        """
        self.hist_enabled = True

    @observation_only
    def observe(self, op_class: str, latency_s: float) -> None:
        """Record one op latency into the op-class histogram (if enabled).

        Op classes are the user-facing verbs -- "put", "get", "multi_get",
        "scan" -- distinct from the :attr:`latency` recorder keys (which
        predate this and fold get/multi_get into "read").
        """
        if not self.hist_enabled:
            return
        hist = self.op_hist.get(op_class)
        if hist is None:
            hist = LatencyHistogram()
            self.op_hist[op_class] = hist
        hist.record(latency_s)

    @observation_only
    def hist_snapshots(self) -> Dict[str, Dict[str, object]]:
        """Snapshot of every op-class histogram (empty when disabled)."""
        return {op: self.op_hist[op].snapshot() for op in sorted(self.op_hist)}

    @observation_only
    def hist_percentiles(self) -> Dict[str, Dict[str, float]]:
        """p50/p99/p999/max/mean/count per op class (empty when disabled)."""
        return {op: self.op_hist[op].percentiles()
                for op in sorted(self.op_hist)}

    # ----------------------------------------------------------------- stalls
    def add_stall(self, reason: str, duration_s: float) -> None:
        """Record one foreground stall with its reason and duration."""
        stat = self.stalls.get(reason)
        if stat is None:
            stat = StallStat()
            self.stalls[reason] = stat
        stat.record(duration_s)

    def add_gate_delay(self, reason: str, duration_s: float) -> None:
        """Record one soft write-gate pacing delay (admitted late)."""
        stat = self.gate_delays.get(reason)
        if stat is None:
            stat = StallStat()
            self.gate_delays[reason] = stat
        stat.record(duration_s)

    @property
    def total_gate_delay_s(self) -> float:
        return sum(st.total_s for st in self.gate_delays.values())

    @observation_only
    def stall_breakdown(self) -> StallBreakdown:
        """Blame-class rollup of hard stalls + soft gate delays."""
        return StallBreakdown.from_metrics(self.stalls, self.gate_delays)

    @property
    def total_stall_s(self) -> float:
        return sum(st.total_s for st in self.stalls.values())

    def longest_stall(self) -> Optional[Tuple[str, float]]:
        """(reason, duration) of the single longest stall, or None."""
        best: Optional[Tuple[str, float]] = None
        for reason in sorted(self.stalls):
            st = self.stalls[reason]
            if best is None or st.max_s > best[1]:
                best = (reason, st.max_s)
        return best

    # ------------------------------------------------------------ derived WA
    @property
    def compaction_write_bytes(self) -> int:
        return sum(self.level_write_bytes.values())

    def write_amplification(self, *, include_wal: bool = False) -> float:
        """Total write amplification; WAL excluded by default (paper §6.2)."""
        if self.user_bytes == 0:
            return 0.0
        total = self.compaction_write_bytes
        if include_wal:
            total += self.wal_bytes
        return total / self.user_bytes

    def per_level_write_amplification(self) -> Dict[int, float]:
        """Write amplification attributed per destination level (Tables 3/4)."""
        if self.user_bytes == 0:
            return {}
        return {
            level: nbytes / self.user_bytes
            for level, nbytes in sorted(self.level_write_bytes.items())
        }

    def read_amplification(self, ops: Iterable[str] = ("read", "scan")) -> float:
        """Average random I/Os per recorded query of the given op types."""
        n_ops = sum(self.latency[op].count for op in ops if op in self.latency)
        if n_ops == 0:
            return 0.0
        return self.query_seeks / n_ops

    @staticmethod
    def space_amplification(disk_bytes: int, logical_bytes: int) -> float:
        if logical_bytes <= 0:
            return 0.0
        return disk_bytes / logical_bytes

    def cache_hit_rate(self) -> float:
        """Query-read cache hit fraction; 0.0 when no reads occurred."""
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return 0.0
        return self.cache_hits / total

    def summary(self) -> Dict[str, float]:
        return {
            "user_bytes": float(self.user_bytes),
            "wal_bytes": float(self.wal_bytes),
            "compaction_write_bytes": float(self.compaction_write_bytes),
            "write_amplification": self.write_amplification(),
            "query_seeks": float(self.query_seeks),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "cache_hit_rate": self.cache_hit_rate(),
            "total_stall_s": self.total_stall_s,
        }

    # --------------------------------------------------------------- sampling
    def snapshot(self) -> Dict[str, object]:
        """A copy of every counter -- delta sampling without perturbation."""
        return {
            "user_bytes": self.user_bytes,
            "wal_bytes": self.wal_bytes,
            "level_write_bytes": dict(self.level_write_bytes),
            "compaction_read_bytes": self.compaction_read_bytes,
            "query_seeks": self.query_seeks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "bloom_probes": self.bloom_probes,
            "bloom_negatives": self.bloom_negatives,
            "objstore_bytes_up": self.objstore_bytes_up,
            "objstore_bytes_down": self.objstore_bytes_down,
            "events": dict(self.events),
            "op_counts": {op: rec.count for op, rec in self.latency.items()},
            "stalls": {reason: (st.count, st.total_s, st.max_s)
                       for reason, st in self.stalls.items()},
            "gate_delays": {reason: (st.count, st.total_s, st.max_s)
                            for reason, st in self.gate_delays.items()},
            **({"latency_hist": self.hist_snapshots()}
               if self.hist_enabled else {}),
        }

    @observation_only
    def render_prom(self, *, extra_gauges: Optional[
            Dict[str, Union[float, Tuple[str, float]]]] = None) -> str:
        """Prometheus text exposition of this registry (plus derived rates).

        See :mod:`repro.metrics.prom`; deterministic for a given state.
        """
        from repro.metrics.prom import render_prom
        snap = self.snapshot()
        snap["write_amplification"] = self.write_amplification()
        snap["cache_hit_rate"] = self.cache_hit_rate()
        snap["total_stall_s"] = self.total_stall_s
        snap["total_gate_delay_s"] = self.total_gate_delay_s
        return render_prom(snap, extra_gauges=extra_gauges)

    def reset(self) -> None:
        """Zero every counter (fresh-registry state, same object identity)."""
        self.user_bytes = 0
        self.wal_bytes = 0
        self.level_write_bytes.clear()
        self.compaction_read_bytes = 0
        self.query_seeks = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.bloom_probes = 0
        self.bloom_negatives = 0
        self.objstore_bytes_up = 0
        self.objstore_bytes_down = 0
        self.events.clear()
        self.latency.clear()
        self.stalls.clear()
        self.gate_delays.clear()
        self.op_hist.clear()  # hist_enabled is configuration, not a counter


def merge_snapshots(snapshots: "Iterable[Dict[str, object]]") -> Dict[str, object]:
    """Combine :meth:`MetricsRegistry.snapshot` dicts across instances.

    Cluster reports aggregate one snapshot per shard: scalar counters and
    the nested ``level_write_bytes`` / ``events`` / ``op_counts`` dicts are
    summed, stalls and gate delays merge as (count sum, total sum, max of
    max), per-op-class latency histograms merge by bucket-count addition
    (so merged percentiles equal percentiles of the concatenated sample
    stream -- see ``tests/test_latency_histogram.py``), and the derived
    rates are recomputed from the merged totals -- the cache hit rate is
    the byte-weighted rate, not the mean of per-shard rates.
    """
    scalar_keys = ("user_bytes", "wal_bytes", "compaction_read_bytes",
                   "query_seeks", "cache_hits", "cache_misses",
                   "bloom_probes", "bloom_negatives",
                   "objstore_bytes_up", "objstore_bytes_down")
    merged: Dict[str, object] = {key: 0 for key in scalar_keys}
    level_writes: Dict[int, int] = {}
    events: Dict[str, int] = {}
    op_counts: Dict[str, int] = {}
    stalls: Dict[str, Tuple[int, float, float]] = {}
    gate_delays: Dict[str, Tuple[int, float, float]] = {}
    hist_snaps: Dict[str, list] = {}
    for snap in snapshots:
        for key in scalar_keys:
            value = snap.get(key, 0)
            if isinstance(value, int):
                merged[key] = merged[key] + value  # type: ignore[operator]
        raw_lw = snap.get("level_write_bytes")
        if isinstance(raw_lw, dict):
            for level, nbytes in raw_lw.items():
                level_writes[level] = level_writes.get(level, 0) + nbytes
        raw_events = snap.get("events")
        if isinstance(raw_events, dict):
            for name, count in raw_events.items():
                events[name] = events.get(name, 0) + count
        raw_ops = snap.get("op_counts")
        if isinstance(raw_ops, dict):
            for op, count in raw_ops.items():
                op_counts[op] = op_counts.get(op, 0) + count
        raw_stalls = snap.get("stalls")
        if isinstance(raw_stalls, dict):
            for reason, (count, total_s, max_s) in raw_stalls.items():
                prev = stalls.get(reason, (0, 0.0, 0.0))
                stalls[reason] = (prev[0] + count, prev[1] + total_s,
                                  max(prev[2], max_s))
        raw_gates = snap.get("gate_delays")
        if isinstance(raw_gates, dict):
            for reason, (count, total_s, max_s) in raw_gates.items():
                prev = gate_delays.get(reason, (0, 0.0, 0.0))
                gate_delays[reason] = (prev[0] + count, prev[1] + total_s,
                                       max(prev[2], max_s))
        raw_hist = snap.get("latency_hist")
        if isinstance(raw_hist, dict):
            for op, hist_snap in raw_hist.items():
                hist_snaps.setdefault(op, []).append(hist_snap)
    merged["level_write_bytes"] = dict(sorted(level_writes.items()))
    merged["events"] = dict(sorted(events.items()))
    merged["op_counts"] = dict(sorted(op_counts.items()))
    merged["stalls"] = {reason: stalls[reason] for reason in sorted(stalls)}
    merged["gate_delays"] = {reason: gate_delays[reason]
                             for reason in sorted(gate_delays)}
    if hist_snaps:
        merged["latency_hist"] = {
            op: merge_histogram_snapshots(hist_snaps[op])
            for op in sorted(hist_snaps)}
    user = merged["user_bytes"]
    compaction = sum(level_writes.values())
    merged["compaction_write_bytes"] = compaction
    merged["write_amplification"] = (
        compaction / user if isinstance(user, int) and user > 0 else 0.0)
    hits = merged["cache_hits"]
    misses = merged["cache_misses"]
    looked = (hits + misses  # type: ignore[operator]
              if isinstance(hits, int) and isinstance(misses, int) else 0)
    merged["cache_hit_rate"] = (
        hits / looked if isinstance(hits, int) and looked > 0 else 0.0)
    merged["total_stall_s"] = sum(t for _, t, _ in stalls.values())
    merged["longest_stall_s"] = max(
        (m for _, _, m in stalls.values()), default=0.0)
    merged["total_gate_delay_s"] = sum(t for _, t, _ in gate_delays.values())
    return merged
