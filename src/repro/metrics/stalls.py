"""Stall attribution: blame classes over structured stall reasons.

The storage stack already records *why* every foreground wait happened --
``BackgroundPool.wait_for`` and the engine write gates tag each stall with
a reason string ("memtable-rotation", "l0-stop", "wait:compact:L2", ...).
This module rolls those reasons up into a small fixed set of **blame
classes** so timelines, ``stats()`` and the trace summary can answer "who
ate my throughput?" without a per-reason legend:

* ``write-gate``  -- soft admission pacing: debt/L0 slowdowns and the
  fault-injection degraded gate.  These are *gate delays* (the write is
  admitted late, the clock advances inline), tracked separately from hard
  stalls in :class:`~repro.metrics.amplification.MetricsRegistry`.
* ``pacing``      -- token-bucket admission at the sustainable ingest rate
  ("pace:<mechanism>"); the stability scheduler's smooth replacement for
  the cliff-edge slowdown bands.
* ``flush-wait``  -- blocked on a memtable flush ("memtable-rotation",
  "explicit-flush").
* ``l0-stop``     -- the hard L0 write stop (leveled engines).
* ``pool-queue``  -- waiting for a specific background job to drain
  ("wait:<job>").
* ``network``     -- cluster router admission and link pacing.
* ``objstore``    -- queued behind the shared object store's request
  channel ("objstore-append" for durable log/object uploads,
  "objstore-fetch" for bootstrap gets and cache fills).
* ``other``       -- any reason the map does not recognize (kept visible,
  never silently dropped).  Structured prefixes ("wait:", "pace:",
  "slowdown:") always land in their named class, so new emit sites that
  follow the prefix convention can never silently grow this bucket.

Everything here is pure bookkeeping over snapshots -- observation-only by
registry prefix (see ``repro.check.effects.registry``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

if TYPE_CHECKING:  # no runtime import: amplification imports this module
    from repro.metrics.amplification import StallStat

#: The fixed blame classes, in report order.
STALL_CLASSES: Tuple[str, ...] = (
    "write-gate", "pacing", "flush-wait", "l0-stop", "pool-queue", "network",
    "objstore", "other",
)

#: (count, total_s, max_s) -- the wire form of one reason's aggregate.
StallTriple = Tuple[int, float, float]


def classify_stall_reason(reason: str) -> str:
    """Map one structured stall reason to its blame class."""
    if reason in ("memtable-rotation", "explicit-flush"):
        return "flush-wait"
    if reason == "l0-stop":
        return "l0-stop"
    if reason in ("router-admission", "net-link"):
        return "network"
    if reason.startswith("objstore"):
        return "objstore"
    if reason.startswith("wait:"):
        return "pool-queue"
    if reason.startswith("pace:"):
        return "pacing"
    if reason.startswith("slowdown:") or reason == "fault-degraded":
        return "write-gate"
    return "other"


class StallBreakdown:
    """Per-class and per-reason aggregate of stalls + gate delays.

    Built from snapshot-style ``reason -> (count, total_s, max_s)`` maps so
    the same code serves a live registry, a single snapshot, and a merged
    cluster snapshot.  ``total_s`` is hard stalls *plus* soft gate delays;
    the two components stay separately visible because the paper's
    stability argument treats "writes blocked" and "writes paced"
    differently (Luo & Carey's stop vs slowdown distinction).
    """

    __slots__ = ("classes", "reasons", "stall_s", "gate_delay_s")

    def __init__(self,
                 stalls: Mapping[str, StallTriple],
                 gate_delays: Mapping[str, StallTriple]) -> None:
        self.reasons: Dict[str, StallTriple] = {}
        self.classes: Dict[str, StallTriple] = {
            cls: (0, 0.0, 0.0) for cls in STALL_CLASSES}
        self.stall_s = 0.0
        self.gate_delay_s = 0.0
        for reason, triple in sorted(stalls.items()):
            self._add(reason, triple)
            self.stall_s += triple[1]
        for reason, triple in sorted(gate_delays.items()):
            self._add(reason, triple)
            self.gate_delay_s += triple[1]

    def _add(self, reason: str, triple: StallTriple) -> None:
        prev = self.reasons.get(reason, (0, 0.0, 0.0))
        self.reasons[reason] = (prev[0] + triple[0], prev[1] + triple[1],
                                max(prev[2], triple[2]))
        cls = classify_stall_reason(reason)
        cprev = self.classes[cls]
        self.classes[cls] = (cprev[0] + triple[0], cprev[1] + triple[1],
                             max(cprev[2], triple[2]))

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_metrics(cls, stalls: Mapping[str, "StallStat"],
                     gate_delays: Mapping[str, "StallStat"]) -> "StallBreakdown":
        """Build from live :class:`StallStat` maps (a registry's fields)."""
        return cls(
            {r: (st.count, st.total_s, st.max_s) for r, st in stalls.items()},
            {r: (st.count, st.total_s, st.max_s)
             for r, st in gate_delays.items()},
        )

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, object]) -> "StallBreakdown":
        """Build from a (possibly merged) registry snapshot dict."""
        def _triples(key: str) -> Dict[str, StallTriple]:
            raw = snap.get(key)
            if not isinstance(raw, dict):
                return {}
            return {str(r): (int(t[0]), float(t[1]), float(t[2]))
                    for r, t in raw.items()}
        return cls(_triples("stalls"), _triples("gate_delays"))

    # ---------------------------------------------------------------- reports
    @property
    def total_s(self) -> float:
        """Hard stall seconds + soft gate-delay seconds."""
        return self.stall_s + self.gate_delay_s

    def class_seconds(self) -> Dict[str, float]:
        """Blamed seconds per class (all classes, zeros included)."""
        return {cls: self.classes[cls][1] for cls in STALL_CLASSES}

    def longest(self) -> Tuple[str, float]:
        """(reason, seconds) of the single longest stall/delay, or ("", 0)."""
        best_reason, best = "", 0.0
        for reason in sorted(self.reasons):
            m = self.reasons[reason][2]
            if m > best:
                best_reason, best = reason, m
        return best_reason, best

    def as_dict(self, sim_seconds: Optional[float] = None) -> Dict[str, object]:
        """JSON-able report; adds ``blamed_fraction`` when a duration given."""
        out: Dict[str, object] = {
            "total_s": self.total_s,
            "stall_s": self.stall_s,
            "gate_delay_s": self.gate_delay_s,
            "classes": {
                cls: {"count": trip[0], "total_s": trip[1], "max_s": trip[2]}
                for cls, trip in self.classes.items()},
            "reasons": {
                r: {"count": trip[0], "total_s": trip[1], "max_s": trip[2]}
                for r, trip in sorted(self.reasons.items())},
        }
        if sim_seconds is not None and sim_seconds > 0.0:
            out["blamed_fraction"] = self.total_s / sim_seconds
        return out
