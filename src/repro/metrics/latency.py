"""Latency recording on the simulated clock.

Latencies are simulated seconds, not wall-clock time.  A recorder keeps every
sample (simulation runs are op-count bounded, so sample counts stay modest)
and computes percentiles lazily with numpy.
"""

from __future__ import annotations

from array import array
from typing import Dict

import numpy as np


def percentile(samples, q: float) -> float:
    """The ``q``-th percentile (0..100) of ``samples``; 0.0 when empty."""
    if len(samples) == 0:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


class LatencyRecorder:
    """Accumulates per-operation latencies for one operation type."""

    __slots__ = ("_samples", "_max", "_sum")

    def __init__(self) -> None:
        self._samples = array("d")
        self._max = 0.0
        self._sum = 0.0

    def record(self, latency_s: float) -> None:
        self._samples.append(latency_s)
        self._sum += latency_s
        if latency_s > self._max:
            self._max = latency_s

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def max(self) -> float:
        return self._max

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / len(self._samples) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        return percentile(self._samples, q)

    def p99(self) -> float:
        return self.percentile(99.0)

    def tail_summary(self) -> Dict[str, float]:
        """The paper's tail-latency digest: p50 / p99 / max (seconds)."""
        return self.window_summary(0)

    def window_summary(self, start_index: int) -> Dict[str, float]:
        """Tail digest over samples recorded at/after ``start_index``.

        Lets one DB serve several back-to-back workload runs (as the paper
        reuses its 1 TB store) with per-run latency reporting.
        """
        window = self._samples[start_index:]
        if not window:
            return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        arr = np.asarray(window, dtype=np.float64)
        return {
            "count": float(len(arr)),
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50.0)),
            "p99": float(np.percentile(arr, 99.0)),
            "max": float(arr.max()),
        }

    def merged_with(self, other: "LatencyRecorder") -> "LatencyRecorder":
        out = LatencyRecorder()
        out._samples = array("d", self._samples)
        out._samples.extend(other._samples)
        out._max = max(self._max, other._max)
        out._sum = self._sum + other._sum
        return out
