"""Latency recording on the simulated clock.

Latencies are simulated seconds, not wall-clock time.  Two collectors live
here:

* :class:`LatencyRecorder` keeps **every sample** (simulation runs are
  op-count bounded, so sample counts stay modest) and computes percentiles
  lazily with numpy.  Exact, but O(samples) memory and not mergeable
  without shipping the raw stream.
* :class:`LatencyHistogram` keeps **fixed log-linear buckets** (HDR-style:
  a power-of-two octave split into :data:`HIST_SUBBUCKETS` linear
  sub-buckets, worst-case ~3.1% relative resolution at 32).  O(occupied
  buckets) memory, deterministic, and mergeable across shards by
  bucket-count
  addition -- percentiles of a merged histogram are *identical* to
  percentiles of the histogram built from the concatenated sample stream,
  which is what makes cluster-level p99.9 honest.

Percentile semantics -- two conventions coexist and are named explicitly:

* :func:`percentile` is **linear interpolation** (numpy's default): the
  q-th percentile may be a value that never occurred.  Used by the
  paper-facing tail summaries, which predate this module's histograms.
* :func:`percentile_nearest_rank` is **nearest-rank**: the smallest sample
  such that at least ``ceil(q/100 * n)`` samples are <= it; always a real
  sample.  :meth:`LatencyHistogram.percentile` implements nearest-rank
  over bucket upper bounds, so histogram percentiles are upper bounds on
  the nearest-rank sample percentile, within one bucket's resolution.

Both conventions return 0.0 for an empty sample set or histogram -- never
raise.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Iterable, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.check.effects.registry import observation_only

#: Linear sub-buckets per power-of-two octave.  32 gives a worst-case
#: relative bucket width of 1/32 at the bottom of an octave (~3.1%), which
#: is far below run-to-run scheduling effects on the simulated clock.
HIST_SUBBUCKETS = 32

#: Quantiles reported by :meth:`LatencyHistogram.percentiles`, with the
#: JSON-friendly key used for each ("p99.9" would collide with attribute
#: naming conventions downstream, so the key drops the dot).
HIST_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 50.0), ("p99", 99.0), ("p999", 99.9),
)

SampleSeq = Union[Sequence[float], "array[float]"]


def percentile(samples: SampleSeq, q: float) -> float:
    """The ``q``-th percentile (0..100) of ``samples``; 0.0 when empty.

    Linear-interpolation convention (numpy default): the result may lie
    between two samples.  See module docstring for the two conventions.
    """
    if len(samples) == 0:
        return 0.0
    return float(np.percentile(np.asarray(samples, dtype=np.float64), q))


def percentile_nearest_rank(samples: SampleSeq, q: float) -> float:
    """Nearest-rank ``q``-th percentile of ``samples``; 0.0 when empty.

    Returns the smallest sample with at least ``ceil(q/100 * n)`` samples
    at or below it (rank clamped to [1, n]); the result is always one of
    the samples.  This is the convention :class:`LatencyHistogram`
    approximates with bucket upper bounds.
    """
    n = len(samples)
    if n == 0:
        return 0.0
    rank = math.ceil(q / 100.0 * n)
    rank = min(max(rank, 1), n)
    ordered = sorted(float(s) for s in samples)
    return ordered[rank - 1]


def bucket_index(value: float) -> int:
    """Log-linear bucket index for a positive latency value.

    ``value = m * 2**e`` with ``m in [0.5, 1)`` (``math.frexp``); the
    octave ``e`` is split into :data:`HIST_SUBBUCKETS` equal sub-buckets.
    Indices are negative for sub-second-scale values -- dict keys, never
    array offsets.
    """
    m, e = math.frexp(value)
    sub = int((m - 0.5) * (2 * HIST_SUBBUCKETS))
    if sub >= HIST_SUBBUCKETS:  # m == 1.0 - ulp rounding up
        sub = HIST_SUBBUCKETS - 1
    return e * HIST_SUBBUCKETS + sub


def bucket_bounds(index: int) -> Tuple[float, float]:
    """``(low, high]`` value bounds of a bucket index (exact, via ldexp)."""
    e, sub = divmod(index, HIST_SUBBUCKETS)
    low = math.ldexp(0.5 + sub / (2.0 * HIST_SUBBUCKETS), e)
    high = math.ldexp(0.5 + (sub + 1) / (2.0 * HIST_SUBBUCKETS), e)
    return low, high


class LatencyHistogram:
    """Fixed-bucket log-linear latency histogram (sim seconds).

    Deterministic: bucket boundaries are pure functions of the value (no
    auto-ranging, no resize), so two runs with identical sample streams
    produce identical snapshots, and shards merge by integer addition.
    Zero latencies (cache-hit reads that charge no device time) are
    common in the simulator and get a dedicated exact-zero bucket.
    """

    __slots__ = ("_zero", "_buckets", "_count", "_sum", "_max", "_min")

    def __init__(self) -> None:
        self._zero = 0
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._min = math.inf

    @observation_only
    def record(self, latency_s: float) -> None:
        self._count += 1
        self._sum += latency_s
        if latency_s > self._max:
            self._max = latency_s
        if latency_s < self._min:
            self._min = latency_s
        if latency_s <= 0.0:
            self._zero += 1
            return
        idx = bucket_index(latency_s)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def max(self) -> float:
        return self._max

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @observation_only
    def percentile(self, q: float) -> float:
        """Nearest-rank ``q``-th percentile; 0.0 when empty, never raises.

        Walks the cumulative bucket counts to the rank and reports that
        bucket's upper bound, clamped to the exact recorded maximum -- so
        ``percentile(100.0) == max`` exactly, and every other quantile is
        an upper bound within one bucket width (<= 1/HIST_SUBBUCKETS
        relative error) of the sample nearest-rank percentile.
        """
        if self._count == 0:
            return 0.0
        rank = math.ceil(q / 100.0 * self._count)
        rank = min(max(rank, 1), self._count)
        if rank <= self._zero:
            return 0.0
        seen = self._zero
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                return min(bucket_bounds(idx)[1], self._max)
        return self._max  # unreachable: counts always sum to _count

    @observation_only
    def percentiles(self) -> Dict[str, float]:
        """The stability digest: p50/p99/p999 + exact max/mean/count."""
        out: Dict[str, float] = {
            key: self.percentile(q) for key, q in HIST_QUANTILES}
        out["max"] = self._max if self._count else 0.0
        out["mean"] = self.mean
        out["count"] = float(self._count)
        return out

    # ---------------------------------------------------------------- merging
    @observation_only
    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other`` into this histogram (bucket-count addition)."""
        self._zero += other._zero
        for idx, n in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + n
        self._count += other._count
        self._sum += other._sum
        if other._max > self._max:
            self._max = other._max
        if other._min < self._min:
            self._min = other._min

    @classmethod
    def merged(cls, hists: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        out = cls()
        for h in hists:
            out.merge(h)
        return out

    # -------------------------------------------------------------- snapshots
    @observation_only
    def snapshot(self) -> Dict[str, object]:
        """JSON-able copy: counts keyed by *string* bucket index.

        String keys survive a JSON round trip unchanged, which keeps
        cluster reports (shard snapshot -> merge -> dump) byte-stable.
        """
        return {
            "count": self._count,
            "sum": self._sum,
            "max": self._max,
            "min": self._min if self._count else 0.0,
            "zero": self._zero,
            "buckets": {str(idx): self._buckets[idx]
                        for idx in sorted(self._buckets)},
        }

    @classmethod
    def from_snapshot(cls, snap: Mapping[str, object]) -> "LatencyHistogram":
        out = cls()
        out._count = int(snap.get("count", 0))  # type: ignore[call-overload]
        out._sum = float(snap.get("sum", 0.0))  # type: ignore[arg-type]
        out._max = float(snap.get("max", 0.0))  # type: ignore[arg-type]
        raw_min = float(snap.get("min", 0.0))  # type: ignore[arg-type]
        out._min = raw_min if out._count else math.inf
        out._zero = int(snap.get("zero", 0))  # type: ignore[call-overload]
        raw = snap.get("buckets")
        if isinstance(raw, dict):
            out._buckets = {int(k): int(v) for k, v in raw.items()}
        return out

    @observation_only
    def delta_since(self, prev: Mapping[str, object]) -> "LatencyHistogram":
        """Histogram of samples recorded *after* snapshot ``prev``.

        Bucket counts subtract exactly; the window's max/min are not
        recoverable from cumulative snapshots, so they are approximated by
        the highest/lowest occupied delta bucket's bounds (clamped to the
        lifetime max).  Windowed percentile timelines only need the bucket
        counts, which are exact.
        """
        out = LatencyHistogram()
        prev_count = int(prev.get("count", 0))  # type: ignore[call-overload]
        prev_zero = int(prev.get("zero", 0))  # type: ignore[call-overload]
        prev_sum = float(prev.get("sum", 0.0))  # type: ignore[arg-type]
        out._count = self._count - prev_count
        out._zero = self._zero - prev_zero
        out._sum = self._sum - prev_sum
        prev_buckets = prev.get("buckets")
        old: Dict[int, int] = {}
        if isinstance(prev_buckets, dict):
            old = {int(k): int(v) for k, v in prev_buckets.items()}
        for idx in sorted(self._buckets):
            n = self._buckets[idx] - old.get(idx, 0)
            if n > 0:
                out._buckets[idx] = n
        if out._buckets:
            lo_idx = min(out._buckets)
            hi_idx = max(out._buckets)
            out._min = bucket_bounds(lo_idx)[0]
            out._max = min(bucket_bounds(hi_idx)[1], self._max)
        elif out._zero > 0:
            out._min = 0.0
            out._max = 0.0
        return out


def merge_histogram_snapshots(
        snaps: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """Merge :meth:`LatencyHistogram.snapshot` dicts (cluster aggregation)."""
    merged = LatencyHistogram()
    for snap in snaps:
        merged.merge(LatencyHistogram.from_snapshot(snap))
    return merged.snapshot()


class LatencyRecorder:
    """Accumulates per-operation latencies for one operation type."""

    __slots__ = ("_samples", "_max", "_sum")

    def __init__(self) -> None:
        self._samples = array("d")
        self._max = 0.0
        self._sum = 0.0

    def record(self, latency_s: float) -> None:
        self._samples.append(latency_s)
        self._sum += latency_s
        if latency_s > self._max:
            self._max = latency_s

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def max(self) -> float:
        return self._max

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / len(self._samples) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolation percentile (see module docstring)."""
        return percentile(self._samples, q)

    def percentile_nearest_rank(self, q: float) -> float:
        """Nearest-rank percentile -- always a recorded sample value."""
        return percentile_nearest_rank(self._samples, q)

    def p99(self) -> float:
        return self.percentile(99.0)

    def tail_summary(self) -> Dict[str, float]:
        """The paper's tail-latency digest: p50 / p99 / max (seconds)."""
        return self.window_summary(0)

    def window_summary(self, start_index: int) -> Dict[str, float]:
        """Tail digest over samples recorded at/after ``start_index``.

        Lets one DB serve several back-to-back workload runs (as the paper
        reuses its 1 TB store) with per-run latency reporting.
        """
        window = self._samples[start_index:]
        if not window:
            return {"count": 0.0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        arr = np.asarray(window, dtype=np.float64)
        return {
            "count": float(len(arr)),
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50.0)),
            "p99": float(np.percentile(arr, 99.0)),
            "max": float(arr.max()),
        }

    def merged_with(self, other: "LatencyRecorder") -> "LatencyRecorder":
        out = LatencyRecorder()
        out._samples = array("d", self._samples)
        out._samples.extend(other._samples)
        out._max = max(self._max, other._max)
        out._sum = self._sum + other._sum
        return out
