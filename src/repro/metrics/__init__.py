"""Measurement: amplification accounting, latency histograms, stall blame."""

from repro.metrics.amplification import MetricsRegistry, StallStat, merge_snapshots
from repro.metrics.latency import (HIST_SUBBUCKETS, LatencyHistogram,
                                   LatencyRecorder, merge_histogram_snapshots,
                                   percentile, percentile_nearest_rank)
from repro.metrics.prom import render_prom
from repro.metrics.stalls import STALL_CLASSES, StallBreakdown, classify_stall_reason

__all__ = ["MetricsRegistry", "StallStat", "LatencyRecorder", "merge_snapshots",
           "percentile", "percentile_nearest_rank", "LatencyHistogram",
           "HIST_SUBBUCKETS", "merge_histogram_snapshots", "render_prom",
           "STALL_CLASSES", "StallBreakdown", "classify_stall_reason"]
