"""Measurement: amplification accounting and latency histograms."""

from repro.metrics.amplification import MetricsRegistry, StallStat, merge_snapshots
from repro.metrics.latency import LatencyRecorder, percentile

__all__ = ["MetricsRegistry", "StallStat", "LatencyRecorder", "merge_snapshots",
           "percentile"]
