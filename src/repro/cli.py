"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``load``         hash-load records into an engine and report WA/throughput
``fillseq``      sequential load
``ycsb``         run a YCSB workload (A-G) on a freshly loaded store
``cluster``      run a workload on a sharded, replicated multi-node cluster
``objstore``     cluster run against the shared object-store tier
                 (manifest-log mirroring, follower bootstrap, time travel)
``trace``        run a workload with sim-time tracing; export + summarize
``compare``      run one load across several engines side by side
``experiment``   regenerate a paper table/figure via the bench harness
``perf``         run the hot-path microbenchmarks (BENCH_perf.json)
``stability``    run the stability suite (BENCH_stability.json)
``check``        determinism lint + typing gate + sanitizer smoke run
``faults``       crash-point matrix: crash everywhere, assert durability
``info``         print the scaled configuration in effect

``load``, ``ycsb`` and ``experiment`` accept ``--sanitize``: every DB built
for the run gets the runtime sanitizer attached (observation-only; identical
results, fails fast on a structural invariant violation).  ``load`` and
``ycsb`` also accept ``--trace PATH``: the run is traced (observation-only)
and the trace written to PATH -- Chrome trace-event JSON by default, JSONL
when PATH ends in ``.jsonl`` -- and ``--faults SPEC``: deterministic
transient device faults are injected per the spec (e.g.
``rate=0.01,seed=7`` or ``rate=0.5,time=0.001:0.002``; see
``repro.faults.plan.parse_fault_spec``).

Examples
--------

::

    python -m repro load --engine iam --records 50000 --device hdd
    python -m repro ycsb --workload E --engine lsa --ops 2000
    python -m repro trace ycsb-a --engine leveldb --records 20000
    python -m repro compare --records 30000 --engines L R-1t A-1t I-1t
    python -m repro experiment table3
    python -m repro check --list-rules
    python -m repro load --records 20000 --faults rate=0.01,seed=7
    python -m repro faults --ops 300 --per-site 1 --out fault-matrix.json
    python -m repro cluster ycsb --shards 4 --replicas 2 --workload A
    python -m repro cluster ycsb --shards 4 --replicas 2 \
        --faults kill=1:2000,rate=0.001,seed=7 --trace cluster.json --validate
    python -m repro objstore load --records 20000 --store-latency 2000 \
        --bootstrap-follower 0 --as-of 4
    python -m repro objstore ycsb --workload B --offload-compaction \
        --faults kill=0:2500 --trace objstore.json --validate
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import harness
from repro.bench.report import format_table, normalize_to
from repro.bench.scale import (
    ENGINE_CONFIGS,
    HDD_100G,
    HDD_1T,
    KEY_SIZE,
    SSD_100G,
    make_db,
)
from repro.common.options import HDD, IamOptions, LsaOptions, LsmOptions, SSD, StorageOptions
from repro.db.iamdb import IamDB
from repro.workloads import YCSB_WORKLOADS, fill_seq, hash_load, run_ycsb

ENGINES = ("iam", "lsa", "leveldb", "rocksdb", "flsm", "lsmtrie")
SETUPS = {"ssd-100g": SSD_100G, "hdd-100g": HDD_100G, "hdd-1t": HDD_1T}


def _engine_options(engine: str, threads: int, *, scheduler: str = "fair",
                    compaction_selector: str = "provider",
                    legacy_gate: bool = False):
    kw = dict(key_size=KEY_SIZE, background_threads=threads,
              scheduler=scheduler, compaction_selector=compaction_selector,
              legacy_gate=legacy_gate)
    if engine in ("iam", "lsa"):
        return IamOptions(**kw)
    if engine == "lsmtrie":
        return LsaOptions(**kw)
    if engine == "rocksdb":
        return LsmOptions.rocksdb(**kw)
    return LsmOptions.leveldb(**kw)


def _scheduling_kw(args) -> dict:
    """Scheduler/pacer knobs from the shared CLI flags (defaults when absent)."""
    return {
        "scheduler": getattr(args, "scheduler", "fair"),
        "compaction_selector": getattr(args, "compaction_selector", "provider"),
        "legacy_gate": getattr(args, "legacy_gate", False),
    }


def _build_db(engine: str, device: str, memory_mb: float, threads: int,
              **scheduling) -> IamDB:
    dev = HDD if device == "hdd" else SSD
    storage = StorageOptions(device=dev, page_cache_bytes=int(memory_mb * 1e6))
    opts = _engine_options(engine, threads, **scheduling)
    return IamDB(engine, engine_options=opts, storage_options=storage)


def _report_rows(rep, db) -> list:
    ins = db.metrics.latency.get("insert")
    return [
        round(rep.write_amplification, 3),
        round(rep.throughput),
        f"{ins.p99() * 1e6:.1f}us" if ins and ins.count else "-",
        f"{ins.max * 1e3:.2f}ms" if ins and ins.count else "-",
        round(rep.space_used_bytes / 1e6, 2),
    ]


def _apply_sanitize(args) -> None:
    """Install process-wide sanitizer defaults for ``--sanitize`` runs."""
    if getattr(args, "sanitize", False):
        from repro.check.sanitizer import SanitizerOptions, set_default_options
        set_default_options(SanitizerOptions())


def _maybe_trace(args, db):
    """Attach a trace session when ``--trace PATH`` was given."""
    if not getattr(args, "trace", None):
        return None
    from repro.obs import attach_trace
    return attach_trace(db)


def _maybe_faults(args, db):
    """Arm fault injection when ``--faults SPEC`` was given; returns injector."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from repro.faults.plan import parse_fault_spec
    return db.runtime.attach_faults(parse_fault_spec(spec))


def _report_faults(injector) -> None:
    if injector is not None:
        print(f"\nfaults: {injector.snapshot()}")


def _finish_trace(session, path: str) -> None:
    """Write the finished session to ``path`` (JSONL iff ``.jsonl``)."""
    session.finish()
    if path.endswith(".jsonl"):
        session.write_jsonl(path)
    else:
        session.write_chrome(path)
    print(f"\nwrote trace to {path}")


def cmd_load(args) -> int:
    _apply_sanitize(args)
    db = _build_db(args.engine, args.device, args.memory_mb, args.threads,
                   **_scheduling_kw(args))
    session = _maybe_trace(args, db)
    injector = _maybe_faults(args, db)
    fn = fill_seq if args.sequential else hash_load
    rep = fn(db, args.records, quiesce=args.quiesce)
    print(format_table(
        ["engine", "WA", "ops/s", "p99", "max", "space MB"],
        [[args.engine] + _report_rows(rep, db)],
        title=f"{'fillseq' if args.sequential else 'hash load'} of "
              f"{args.records} records ({args.device})"))
    print("\nstructure:", db.engine.describe())
    _report_faults(injector)
    if session is not None:
        _finish_trace(session, args.trace)
    db.close()
    return 0


def cmd_ycsb(args) -> int:
    _apply_sanitize(args)
    spec = YCSB_WORKLOADS[args.workload.upper()]
    db = _build_db(args.engine, args.device, args.memory_mb, args.threads,
                   **_scheduling_kw(args))
    session = _maybe_trace(args, db)
    injector = _maybe_faults(args, db)
    hash_load(db, args.records, quiesce=False)
    rep = run_ycsb(db, spec, args.ops, args.records)
    print(f"YCSB-{spec.name} on {args.engine} ({args.device}): "
          f"{rep.throughput:,.0f} ops/s over {rep.sim_seconds * 1e3:.2f} sim-ms")
    for op, digest in sorted(rep.latency.items()):
        print(f"  {op:>7}: n={digest['count']:>7.0f} "
              f"p50={digest['p50'] * 1e6:9.1f}us "
              f"p99={digest['p99'] * 1e6:9.1f}us "
              f"max={digest['max'] * 1e3:9.2f}ms")
    _report_faults(injector)
    if session is not None:
        _finish_trace(session, args.trace)
    db.close()
    return 0


TRACE_WORKLOADS = ("load", "fillseq") + tuple(f"ycsb-{c}" for c in "abcdefg")


def cmd_trace(args) -> int:
    from repro.obs import TraceConfig, attach_trace, validate_chrome_trace
    _apply_sanitize(args)
    db = _build_db(args.engine, args.device, args.memory_mb, args.threads,
                   **_scheduling_kw(args))
    config = TraceConfig() if args.interval is None else TraceConfig(
        sample_interval_s=args.interval)
    session = attach_trace(db, config)
    if args.prom:
        # Histograms feed the exposition's op-latency families; enabling
        # them up front keeps the whole run in the percentiles.
        db.metrics.enable_histograms()
    workload = args.workload.lower()
    if workload == "fillseq":
        fill_seq(db, args.records, quiesce=False)
    elif workload == "load":
        hash_load(db, args.records, quiesce=False)
    else:
        spec = YCSB_WORKLOADS[workload[-1].upper()]
        hash_load(db, args.records, quiesce=False)
        run_ycsb(db, spec, args.ops, args.records)
    # End-of-run barrier: in-flight jobs complete so their spans close.
    db.quiesce()
    session.finish()
    rc = 0
    if args.validate:
        problems = validate_chrome_trace(session.to_chrome())
        if problems:
            for p in problems:
                print(f"TRACE SCHEMA: {p}", file=sys.stderr)
            rc = 1
        else:
            print("trace schema ok")
    if args.out:
        session.write_chrome(args.out)
        print(f"wrote Chrome trace to {args.out} "
              "(load it at https://ui.perfetto.dev)")
    if args.jsonl:
        session.write_jsonl(args.jsonl)
        print(f"wrote JSONL trace to {args.jsonl}")
    if args.prom:
        text = db.metrics.render_prom(
            extra_gauges={"sim_time_seconds": db.runtime.clock.now})
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote Prometheus text exposition to {args.prom}")
    print()
    print(session.summary())
    db.close()
    return rc


def cmd_compare(args) -> int:
    rows = []
    tps = {}
    for config in args.engines:
        if config not in ENGINE_CONFIGS:
            print(f"unknown config {config!r}; choose from "
                  f"{', '.join(ENGINE_CONFIGS)}", file=sys.stderr)
            return 2
        db = make_db(config, SETUPS[args.setup])
        rep = hash_load(db, args.records, quiesce=False)
        tps[config] = rep.throughput
        rows.append([config] + _report_rows(rep, db))
        db.close()
    norm = normalize_to(args.engines[0], tps)
    for row, config in zip(rows, args.engines):
        row.append(round(norm[config], 2))
    print(format_table(
        ["config", "WA", "ops/s", "p99", "max", "space MB",
         f"vs {args.engines[0]}"],
        rows, title=f"hash load x{args.records} on {args.setup}"))
    return 0


EXPERIMENTS = {
    "table3": lambda: harness.exp_table3(),
    "table4": lambda: harness.exp_table4(),
    "fig6": lambda: harness.exp_fig6(),
    "fig8": lambda: harness.exp_fig8(),
    "fig9": lambda: harness.exp_fig9(),
    "fig10": lambda: harness.exp_fig10(),
    "load-latency": lambda: harness.exp_load_latency(),
    "flsm": lambda: harness.exp_flsm_seqwrite(),
}


def cmd_experiment(args) -> int:
    _apply_sanitize(args)
    fn = EXPERIMENTS.get(args.name)
    if fn is None:
        print(f"unknown experiment {args.name!r}; choose from "
              f"{', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    with harness.maybe_profile(args.profile):
        result = fn()
    import pprint
    pprint.pprint(result)
    return 0


def cmd_perf(args) -> int:
    from repro.bench.perf import main as perf_main
    return perf_main(args.perf_args)


def cmd_stability(args) -> int:
    from repro.bench.stability import main as stability_main
    return stability_main(args.stability_args)


def cmd_check(args) -> int:
    from repro.check.runner import main as check_main
    return check_main(args.check_args)


def cmd_faults(args) -> int:
    """Crash-point matrix: crash at every reachable site, verify recovery."""
    import json
    from repro.faults.crash import run_crash_matrix
    report = run_crash_matrix(
        tuple(args.engines), n_ops=args.ops, per_site=args.per_site,
        seed=args.seed, torn_variants=tuple(args.torn),
        sanitize=not args.no_sanitize)
    for engine, counts in report["sites"].items():
        print(f"{engine}: sites {counts}")
    print(f"{report['n_cases']} crash cases, "
          f"{report['n_failures']} contract failures")
    for case in report["failures"]:
        print(f"  FAIL {case['engine']} {case['site']} "
              f"occ={case['occurrence']} torn={case['torn']}: "
              f"{case.get('error')}", file=sys.stderr)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote fault-matrix report to {args.out}")
    return 1 if report["n_failures"] else 0


def cmd_cluster(args) -> int:
    """Sharded, replicated cluster run: load (+ optional YCSB), full report."""
    import json
    from repro.cluster import (
        ClusterDB,
        ClusterOptions,
        NetworkOptions,
        RebalanceOptions,
        attach_cluster_trace,
        parse_cluster_fault_spec,
    )
    from repro.common.errors import InvariantViolation
    from repro.obs import validate_chrome_trace
    _apply_sanitize(args)
    dev = HDD if args.device == "hdd" else SSD
    storage = StorageOptions(
        device=dev,
        page_cache_bytes=max(1, int(args.memory_mb * 1e6 / args.shards)))
    net_kwargs = {}
    if args.net_latency_us is not None:
        net_kwargs["latency_s"] = args.net_latency_us * 1e-6
    if args.net_bandwidth_mb is not None:
        net_kwargs["bandwidth"] = args.net_bandwidth_mb * 1e6
    rebalance = (RebalanceOptions(
        split_threshold_bytes=int(args.split_mb * 1e6))
        if args.split_mb else RebalanceOptions())
    cluster = ClusterDB(ClusterOptions(
        n_shards=args.shards, n_replicas=args.replicas, engine=args.engine,
        engine_options=_engine_options(args.engine, args.threads,
                                       **_scheduling_kw(args)),
        storage_options=storage, network=NetworkOptions(**net_kwargs),
        rebalance=rebalance))
    session = attach_cluster_trace(cluster) if args.trace or args.validate \
        else None
    if args.faults:
        from repro.faults.plan import parse_fault_spec
        dev_spec, kills = parse_cluster_fault_spec(args.faults)
        cluster.arm_faults(
            parse_fault_spec(dev_spec) if dev_spec else None, kills)
    rep = hash_load(cluster, args.records, quiesce=False)
    if args.mode == "ycsb":
        spec = YCSB_WORKLOADS[args.workload.upper()]
        rep = run_ycsb(cluster, spec, args.ops, args.records,
                       clients=args.clients,
                       coalesce_reads=args.coalesce_reads)
    cluster.quiesce()
    rc = 0
    try:
        cluster.check_invariants()
    except InvariantViolation as exc:
        print(f"CLUSTER INVARIANT: {exc}", file=sys.stderr)
        rc = 1
    stats = cluster.stats()
    what = (f"YCSB-{args.workload.upper()}" if args.mode == "ycsb"
            else "hash load")
    print(f"cluster {what} on {args.engine} x{stats['n_shards']} shards "
          f"x{args.replicas} replicas ({args.device}): "
          f"{rep.throughput:,.0f} ops/s over "
          f"{rep.sim_seconds * 1e3:.2f} sim-ms")
    rows = []
    for row in stats["shards"]:
        rows.append([
            row["shard_id"], row["leader_node"], row["replicas"],
            row["writes_routed"], row["reads_routed"], row["scans_routed"],
            round(row["data_bytes"] / 1e6, 2), row["acked_seq"],
            row["failovers"],
        ])
    print()
    print(format_table(
        ["shard", "leader", "repl", "writes", "reads", "scans",
         "MB", "acked", "failovers"],
        rows, title="per-shard"))
    imb = stats["load_imbalance"]
    print(f"\nimbalance: ops max/mean={imb['ops_max_over_mean']:.2f} "
          f"bytes max/mean={imb['bytes_max_over_mean']:.2f}")
    net = stats["network"]
    print(f"network: {net['messages']} messages, "
          f"{net['bytes_sent'] / 1e6:.2f} MB shipped")
    reb = stats["rebalance"]
    print(f"rebalance: {reb['splits']} splits, {reb['merges']} merges, "
          f"{reb['moved_bytes'] / 1e6:.2f} MB moved")
    for op, digest in sorted(stats["tail_latency"].items()):
        print(f"  {op:>7}: n={digest['count']:>7.0f} "
              f"p50={digest['p50'] * 1e6:9.1f}us "
              f"p99={digest['p99'] * 1e6:9.1f}us "
              f"max={digest['max'] * 1e3:9.2f}ms")
    for report in stats["failovers"]:
        print(f"failover: shard {report['shard']} node "
              f"{report['dead_node']} -> {report['promoted_node']} "
              f"(acked {report['acked_seq']}, recovered "
              f"{report['recovered_seq']})")
    if session is not None:
        if args.validate:
            problems = validate_chrome_trace(session.to_chrome())
            if problems:
                for p in problems:
                    print(f"TRACE SCHEMA: {p}", file=sys.stderr)
                rc = 1
            else:
                print("trace schema ok")
        if args.trace:
            session.write_chrome(args.trace)
            print(f"wrote cluster trace to {args.trace}")
        print()
        print(session.summary())
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(json.dumps(stats, sort_keys=True, separators=(",", ":")))
        print(f"wrote cluster report to {args.report}")
    cluster.close()
    return rc


def cmd_objstore(args) -> int:
    """Shared-storage cluster run: every shard mirrors to the object store."""
    import json
    from repro.cluster import (
        ClusterDB,
        ClusterOptions,
        NetworkOptions,
        attach_cluster_trace,
        parse_cluster_fault_spec,
    )
    from repro.common.errors import ConfigError, InvariantViolation
    from repro.obs import validate_chrome_trace
    from repro.objstore import ObjStoreOptions
    from repro.objstore.report import format_objstore_report
    _apply_sanitize(args)
    dev = HDD if args.device == "hdd" else SSD
    storage = StorageOptions(
        device=dev,
        page_cache_bytes=max(1, int(args.memory_mb * 1e6 / args.shards)))
    store_kwargs = {}
    if args.store_latency_us is not None:
        store_kwargs["latency_s"] = args.store_latency_us * 1e-6
    if args.store_bandwidth_mb is not None:
        store_kwargs["bandwidth"] = args.store_bandwidth_mb * 1e6
    cluster = ClusterDB(ClusterOptions(
        n_shards=args.shards, n_replicas=args.replicas, engine=args.engine,
        engine_options=_engine_options(args.engine, args.threads,
                                       **_scheduling_kw(args)),
        storage_options=storage, network=NetworkOptions(),
        objstore=ObjStoreOptions(**store_kwargs),
        objstore_retain_cuts=args.retain_cuts,
        compaction_offload=args.offload_compaction))
    session = attach_cluster_trace(cluster) if args.trace or args.validate \
        else None
    if args.faults:
        from repro.faults.plan import parse_fault_spec
        dev_spec, kills = parse_cluster_fault_spec(args.faults)
        cluster.arm_faults(
            parse_fault_spec(dev_spec) if dev_spec else None, kills)
    rep = hash_load(cluster, args.records, quiesce=False)
    if args.mode == "ycsb":
        spec = YCSB_WORKLOADS[args.workload.upper()]
        rep = run_ycsb(cluster, spec, args.ops, args.records,
                       clients=args.clients)
    cluster.flush()
    cluster.quiesce()
    rc = 0
    if args.bootstrap_follower is not None:
        boot = cluster.spawn_follower(args.bootstrap_follower,
                                      mode="objstore")
        print(f"follower bootstrap (shard {args.bootstrap_follower}): "
              f"cut {boot['cut_id']} @ seq {boot['bootstrap_seq']}, "
              f"{boot['objects_fetched']} objects / "
              f"{int(boot['store_bytes_down']) / 1e6:.2f} MB "  # type: ignore[call-overload]
              f"from shared storage, "
              f"{boot['wal_tail_records']} WAL tail records")
    try:
        cluster.check_invariants()
    except InvariantViolation as exc:
        print(f"CLUSTER INVARIANT: {exc}", file=sys.stderr)
        rc = 1
    stats = cluster.stats()
    what = (f"YCSB-{args.workload.upper()}" if args.mode == "ycsb"
            else "hash load")
    print(f"objstore {what} on {args.engine} x{stats['n_shards']} shards "
          f"x{args.replicas} replicas ({args.device}): "
          f"{rep.throughput:,.0f} ops/s over "
          f"{rep.sim_seconds * 1e3:.2f} sim-ms")
    print()
    print(format_objstore_report(stats["objstore"]))
    net = stats["network"]
    print(f"network: {net['messages']} messages, "
          f"{net['bytes_sent'] / 1e6:.2f} MB shipped")
    if args.as_of is not None:
        sample = cluster.scan(None, None, limit=8)
        shown = 0
        for key, _value in sample:
            try:
                got = cluster.get(key, as_of_cut=args.as_of)
            except ConfigError as exc:
                print(f"as-of read failed: {exc}", file=sys.stderr)
                rc = 1
                break
            print(f"  as-of cut {args.as_of}: key {key:#018x} -> {got}")
            shown += 1
        if not shown and not rc:
            print(f"  as-of cut {args.as_of}: no keys to sample")
    for report in stats["failovers"]:
        print(f"failover: shard {report['shard']} node "
              f"{report['dead_node']} -> {report['promoted_node']} "
              f"(acked {report['acked_seq']}, recovered "
              f"{report['recovered_seq']})")
    if session is not None:
        if args.validate:
            problems = validate_chrome_trace(session.to_chrome())
            if problems:
                for p in problems:
                    print(f"TRACE SCHEMA: {p}", file=sys.stderr)
                rc = 1
            else:
                print("trace schema ok")
        if args.trace:
            session.write_chrome(args.trace)
            print(f"wrote objstore cluster trace to {args.trace}")
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(json.dumps(stats, sort_keys=True, separators=(",", ":")))
        print(f"wrote objstore report to {args.report}")
    cluster.close()
    return rc


def cmd_info(args) -> int:
    from repro.bench.scale import RECORD_BYTES, scale_factor
    print(f"REPRO_SCALE = {scale_factor()}")
    print(f"record bytes = {RECORD_BYTES}")
    for name, setup in SETUPS.items():
        print(f"{name}: data {setup.data_bytes / 1e6:.2f} MB "
              f"({setup.n_records} records), "
              f"memory {setup.memory_bytes / 1e6:.2f} MB, "
              f"device {setup.device.name}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__,
                                formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("--engine", choices=ENGINES, default="iam")
        sp.add_argument("--device", choices=("ssd", "hdd"), default="ssd")
        sp.add_argument("--records", type=int, default=30_000)
        sp.add_argument("--memory-mb", type=float,
                        default=SSD_100G.memory_bytes / 1e6)
        sp.add_argument("--threads", type=int, default=1)
        sp.add_argument("--sanitize", action="store_true",
                        help="attach the runtime sanitizer to every DB")
        sp.add_argument("--trace", metavar="PATH", default=None,
                        help="trace the run; write Chrome trace JSON "
                             "(or JSONL when PATH ends in .jsonl)")
        sp.add_argument("--faults", metavar="SPEC", default=None,
                        help="inject deterministic transient device faults, "
                             "e.g. rate=0.01,seed=7 or rate=0.5,ops=500:600")
        scheduling(sp)

    def scheduling(sp):
        from repro.common.options import COMPACTION_SELECTORS, SCHEDULERS
        sp.add_argument("--scheduler", choices=SCHEDULERS, default="fair",
                        help="background pump order: fair per-class "
                             "device-time accounting or the legacy "
                             "activation-order loop")
        sp.add_argument("--compaction-selector", choices=COMPACTION_SELECTORS,
                        default="provider",
                        help="which eligible level compacts first")
        sp.add_argument("--legacy-gate", action="store_true",
                        help="pre-scheduler write admission (cliff-edge "
                             "slowdown bands, legacy pump order); "
                             "byte-identical compat mode")

    sp = sub.add_parser("load", help="hash-load records, report amplifications")
    common(sp)
    sp.add_argument("--sequential", action="store_true")
    sp.add_argument("--quiesce", action="store_true")
    sp.set_defaults(fn=cmd_load)

    sp = sub.add_parser("ycsb", help="run a YCSB workload")
    common(sp)
    sp.add_argument("--workload", choices=list("ABCDEFG") + list("abcdefg"),
                    default="A")
    sp.add_argument("--ops", type=int, default=3000)
    sp.set_defaults(fn=cmd_ycsb)

    sp = sub.add_parser(
        "trace", help="run a workload under the sim-time tracer")
    sp.add_argument("workload", choices=TRACE_WORKLOADS)
    sp.add_argument("--engine", choices=ENGINES, default="iam")
    sp.add_argument("--device", choices=("ssd", "hdd"), default="ssd")
    sp.add_argument("--records", type=int, default=30_000)
    sp.add_argument("--memory-mb", type=float,
                    default=SSD_100G.memory_bytes / 1e6)
    sp.add_argument("--threads", type=int, default=1)
    sp.add_argument("--sanitize", action="store_true",
                    help="attach the runtime sanitizer too")
    scheduling(sp)
    sp.add_argument("--ops", type=int, default=3000,
                    help="YCSB operation count (ycsb-* workloads)")
    sp.add_argument("--interval", type=float, default=None,
                    help="timeseries sample interval in sim seconds")
    sp.add_argument("--out", metavar="PATH", default=None,
                    help="write Chrome trace-event JSON (Perfetto-loadable)")
    sp.add_argument("--jsonl", metavar="PATH", default=None,
                    help="write the trace as JSON lines")
    sp.add_argument("--prom", metavar="PATH", default=None,
                    help="write a Prometheus text exposition of the final "
                         "metrics (enables per-op latency histograms)")
    sp.add_argument("--validate", action="store_true",
                    help="schema-check the Chrome trace; nonzero exit on error")
    sp.set_defaults(fn=cmd_trace)

    sp = sub.add_parser("compare", help="one load across engine configs")
    sp.add_argument("--engines", nargs="+",
                    default=["L", "R-1t", "A-1t", "I-1t"])
    sp.add_argument("--records", type=int, default=30_000)
    sp.add_argument("--setup", choices=list(SETUPS), default="ssd-100g")
    sp.set_defaults(fn=cmd_compare)

    sp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    sp.add_argument("name", choices=list(EXPERIMENTS))
    sp.add_argument("--profile", action="store_true",
                    help="cProfile the experiment (stats to stderr)")
    sp.add_argument("--sanitize", action="store_true",
                    help="attach the runtime sanitizer to every DB")
    sp.set_defaults(fn=cmd_experiment)

    sp = sub.add_parser(
        "perf", help="hot-path microbenchmarks (see `perf --help`)",
        add_help=False)
    sp.add_argument("perf_args", nargs=argparse.REMAINDER,
                    help="arguments for the perf suite, e.g. --quick --check")
    sp.set_defaults(fn=cmd_perf)

    sp = sub.add_parser(
        "stability",
        help="stability suite: windowed throughput, stall blame, tail "
             "latency (see `stability --help`)",
        add_help=False)
    sp.add_argument("stability_args", nargs=argparse.REMAINDER,
                    help="arguments for the stability suite, e.g. --check")
    sp.set_defaults(fn=cmd_stability)

    sp = sub.add_parser(
        "check", help="determinism lint + typing gate + sanitizer smoke",
        add_help=False)
    sp.add_argument("check_args", nargs=argparse.REMAINDER,
                    help="arguments for the check driver, e.g. --list-rules")
    sp.set_defaults(fn=cmd_check)

    sp = sub.add_parser(
        "faults",
        help="crash-point matrix: crash at every pipeline site, verify the "
             "durability contract after recovery")
    sp.add_argument("--engines", nargs="+", default=["iam", "leveldb"],
                    help="engines to run the matrix over")
    sp.add_argument("--ops", type=int, default=300,
                    help="workload operations per matrix cell")
    sp.add_argument("--per-site", type=int, default=1,
                    help="crash occurrences to test per reachable site")
    sp.add_argument("--seed", type=int, default=1)
    sp.add_argument("--torn", type=int, nargs="+", default=[0, 4],
                    help="torn-WAL-tail record counts to test")
    sp.add_argument("--no-sanitize", action="store_true",
                    help="skip the runtime sanitizer during the matrix")
    sp.add_argument("--out", metavar="PATH", default=None,
                    help="write the JSON report to PATH")
    sp.set_defaults(fn=cmd_faults)

    sp = sub.add_parser(
        "cluster",
        help="run a workload on a sharded, replicated multi-node cluster")
    sp.add_argument("mode", choices=("load", "ycsb"),
                    help="hash-load only, or hash-load then a YCSB phase")
    sp.add_argument("--shards", type=int, default=4)
    sp.add_argument("--replicas", type=int, default=2,
                    help="copies per shard, leader included")
    sp.add_argument("--workload", choices=list("ABCDEFG") + list("abcdefg"),
                    default="A", help="YCSB workload for the ycsb mode")
    sp.add_argument("--ops", type=int, default=3000,
                    help="YCSB operations after the load phase")
    sp.add_argument("--clients", type=int, default=1,
                    help="deterministically interleaved YCSB client streams")
    sp.add_argument("--coalesce-reads", action="store_true",
                    help="batch each round's point reads into one "
                         "scatter-gather multi_get through the router")
    sp.add_argument("--engine", choices=ENGINES, default="iam")
    sp.add_argument("--device", choices=("ssd", "hdd"), default="ssd")
    sp.add_argument("--records", type=int, default=30_000)
    sp.add_argument("--memory-mb", type=float,
                    default=SSD_100G.memory_bytes / 1e6,
                    help="total cluster memory, split evenly across shards")
    sp.add_argument("--threads", type=int, default=1)
    scheduling(sp)
    sp.add_argument("--net-latency-us", type=float, default=None,
                    help="per-message link latency in microseconds")
    sp.add_argument("--net-bandwidth-mb", type=float, default=None,
                    help="per-link bandwidth in MB/s")
    sp.add_argument("--split-mb", type=float, default=0.0,
                    help="split a shard when its data exceeds this many MB")
    sp.add_argument("--sanitize", action="store_true",
                    help="attach the runtime sanitizer to every replica")
    sp.add_argument("--faults", metavar="SPEC", default=None,
                    help="device faults plus scheduled leader kills, e.g. "
                         "kill=1:2000,rate=0.001,seed=7")
    sp.add_argument("--trace", metavar="PATH", default=None,
                    help="write the merged cluster Chrome trace to PATH")
    sp.add_argument("--validate", action="store_true",
                    help="validate the merged Chrome trace schema")
    sp.add_argument("--report", metavar="PATH", default=None,
                    help="write the deterministic JSON cluster report")
    sp.set_defaults(fn=cmd_cluster)

    sp = sub.add_parser(
        "objstore",
        help="run a cluster workload against the shared object-store tier")
    sp.add_argument("mode", choices=("load", "ycsb"),
                    help="hash-load only, or hash-load then a YCSB phase")
    sp.add_argument("--shards", type=int, default=2)
    sp.add_argument("--replicas", type=int, default=2,
                    help="copies per shard, leader included")
    sp.add_argument("--workload", choices=list("ABCDEFG") + list("abcdefg"),
                    default="A", help="YCSB workload for the ycsb mode")
    sp.add_argument("--ops", type=int, default=3000,
                    help="YCSB operations after the load phase")
    sp.add_argument("--clients", type=int, default=1,
                    help="deterministically interleaved YCSB client streams")
    sp.add_argument("--engine", choices=ENGINES, default="iam")
    sp.add_argument("--device", choices=("ssd", "hdd"), default="ssd")
    sp.add_argument("--records", type=int, default=30_000)
    sp.add_argument("--memory-mb", type=float,
                    default=SSD_100G.memory_bytes / 1e6,
                    help="total cluster memory, split evenly across shards")
    sp.add_argument("--threads", type=int, default=1)
    scheduling(sp)
    sp.add_argument("--store-latency", dest="store_latency_us", type=float,
                    default=None, metavar="US",
                    help="per-request object-store latency in microseconds "
                         "(0 = the byte-identical mirror mode)")
    sp.add_argument("--store-bandwidth-mb", type=float, default=None,
                    help="object-store bandwidth in MB/s")
    sp.add_argument("--retain-cuts", type=int, default=8,
                    help="manifest cuts retained for time travel before the "
                         "cleanup compactor truncates dead segments")
    sp.add_argument("--offload-compaction", action="store_true",
                    help="drain compaction device time on a shared offload "
                         "disk instead of each leader's own disk")
    sp.add_argument("--bootstrap-follower", type=int, default=None,
                    metavar="SHARD",
                    help="after the workload, spawn a brand-new follower for "
                         "this shard index, bootstrapped from shared storage")
    sp.add_argument("--as-of", dest="as_of", type=int, default=None,
                    metavar="CUT",
                    help="after the workload, sample time-travel reads at "
                         "this manifest cut id")
    sp.add_argument("--sanitize", action="store_true",
                    help="attach the runtime sanitizer to every replica")
    sp.add_argument("--faults", metavar="SPEC", default=None,
                    help="device faults plus scheduled leader kills, e.g. "
                         "kill=1:2000,rate=0.001,seed=7")
    sp.add_argument("--trace", metavar="PATH", default=None,
                    help="write the merged cluster Chrome trace to PATH")
    sp.add_argument("--validate", action="store_true",
                    help="validate the merged Chrome trace schema")
    sp.add_argument("--report", metavar="PATH", default=None,
                    help="write the deterministic JSON objstore report")
    sp.set_defaults(fn=cmd_objstore)

    sp = sub.add_parser("info", help="print the scaled configuration")
    sp.set_defaults(fn=cmd_info)
    return p


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # argparse.REMAINDER mis-parses leading options under a subparser, so the
    # perf suite (which owns its own argparse) is dispatched before parsing.
    if argv and argv[0] == "perf":
        return cmd_perf(argparse.Namespace(perf_args=list(argv[1:])))
    if argv and argv[0] == "stability":
        return cmd_stability(argparse.Namespace(stability_args=list(argv[1:])))
    if argv and argv[0] == "check":
        return cmd_check(argparse.Namespace(check_args=list(argv[1:])))
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
