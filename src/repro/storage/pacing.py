"""Token-bucket write pacing at the observed sustainable compaction rate.

Luo & Carey ("On Performance Stability in LSM-based Storage Systems",
PAPERS.md) show that cliff-edge write admission -- pace at 5% of device
bandwidth inside a slowdown band, stop hard past a trigger -- is what turns
background scheduling jitter into the p99.9 latency cliff.  Their fix, and
this module's, is *processing-rate* throttling: measure how fast the
background machinery actually absorbs user bytes (flush + compaction device
time per byte, over a recent window) and admit foreground writes smoothly at
that rate through a token bucket.  Delays become small and proportional
instead of 19x-overshooting band penalties, and the hard stop decays into a
rarely-hit backstop.

The pieces are pure math over the simulated clock (no engine imports), so
the engines' write gates stay thin and the properties are testable in
isolation:

* :func:`degraded_extra_delay_s` -- the clamped slowdown-delay computation
  shared by every gate.  On the realistic domain it reproduces the legacy
  float expression bit for bit (the ``legacy_gate=True`` byte-identity proof
  covers it); on pathological inputs (huge ``nbytes`` overflowing float
  conversion, catastrophic cancellation) it clamps instead of returning
  negative/zero/NaN delays.
* :class:`TokenBucketPacer` -- the bucket: capacity ``burst_bytes``,
  refilled at a caller-supplied rate on the sim clock; ``admit`` returns the
  delay (seconds) a write of ``nbytes`` must absorb before proceeding.
* :class:`RateEstimator` -- turns the pool's cumulative retired-debt
  counter and the metrics' user-byte counter into the sustainable ingest
  rate ``1 / (lambda + 1/bw)`` where ``lambda`` is background device-seconds
  per user byte over a sliding byte window.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

#: Hard ceiling on any single gate delay (sim seconds).  Realistic delays
#: are micro- to milliseconds; the cap only bounds pathological inputs
#: (e.g. ``nbytes`` near float overflow) so a clamped delay can never run
#: the simulated clock away.
MAX_GATE_DELAY_S = 60.0

#: Positive floor returned when a nonzero input cancels to a non-positive
#: delay in floating point -- "zero-on-nonzero" would let a degraded store
#: admit writes at full speed exactly when it must not.
MIN_GATE_DELAY_S = 1e-12

#: Sustainable-rate clamp floor as a fraction of device write bandwidth;
#: mirrors the fault gate's 1/256 degradation floor so pacing can never
#: choke writes harder than the worst-case degraded gate.
MIN_RATE_FRACTION = 1.0 / 256.0


def degraded_extra_delay_s(nbytes: int, bandwidth: float, frac: float) -> float:
    """Extra seconds to pace ``nbytes`` down to ``frac`` of ``bandwidth``.

    Evaluates the legacy expression ``nbytes/(bw*frac) - nbytes/bw`` exactly
    (so legacy-gate runs stay byte-identical), then guards the pathological
    domain: float-overflow on huge ``nbytes`` saturates at the delay cap,
    and NaN / negative / cancelled-to-zero results are re-derived via the
    cancellation-free form ``(nbytes/bw) * (1/frac - 1)`` and floored
    strictly above zero.  For ``nbytes <= 0`` or ``frac >= 1`` there is
    nothing to pace and the result is 0.0.
    """
    if nbytes <= 0 or frac >= 1.0 or frac <= 0.0 or bandwidth <= 0.0:
        return 0.0
    try:
        extra = nbytes / (bandwidth * frac) - nbytes / bandwidth
    except OverflowError:
        return MAX_GATE_DELAY_S
    except ZeroDivisionError:
        # bandwidth * frac underflowed to 0.0 (both subnormal-tiny): the
        # paced rate is effectively zero, so saturate at the cap.
        return MAX_GATE_DELAY_S
    if not (extra > 0.0):  # also catches NaN (comparisons are False)
        try:
            extra = (nbytes / bandwidth) * (1.0 / frac - 1.0)
        except OverflowError:
            return MAX_GATE_DELAY_S
    if not (extra > 0.0):
        return MIN_GATE_DELAY_S
    return extra if extra <= MAX_GATE_DELAY_S else MAX_GATE_DELAY_S


class TokenBucketPacer:
    """A byte token bucket refilled at a caller-supplied rate.

    ``admit(nbytes, now, rate)`` refills for the sim time elapsed since the
    last call, spends tokens for the write, and returns the delay needed to
    cover any deficit at ``rate``.  The caller is expected to advance the
    simulated clock by exactly the returned delay; the bucket accounts for
    that advance itself (the deficit is refilled by the delay, leaving the
    bucket empty), so admit -> advance -> admit composes correctly.
    """

    __slots__ = ("burst_bytes", "tokens", "last_now")

    def __init__(self, burst_bytes: float, now: float = 0.0) -> None:
        self.burst_bytes = max(1.0, float(burst_bytes))
        #: Start full: the first burst after idle is free, like RocksDB's
        #: delayed-write controller only engaging once backlog accumulates.
        self.tokens = self.burst_bytes
        self.last_now = now

    def refill(self, now: float, rate: float) -> None:
        """Accrue tokens for the sim time since the last interaction."""
        elapsed = now - self.last_now
        if elapsed > 0.0 and rate > 0.0:
            self.tokens = min(self.burst_bytes, self.tokens + elapsed * rate)
        self.last_now = now

    def admit(self, nbytes: int, now: float, rate: float) -> float:
        """Seconds the caller must delay before writing ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        self.refill(now, rate)
        try:
            need = float(nbytes)
        except OverflowError:
            # An int too large for a float can never fit any bucket; pace
            # it at the delay cap (the backstop gates will do the rest).
            self.tokens = 0.0
            self.last_now = now + MAX_GATE_DELAY_S
            return MAX_GATE_DELAY_S
        if need <= self.tokens:
            self.tokens -= need
            return 0.0
        if not (rate > 0.0):
            return 0.0
        deficit = need - self.tokens
        self.tokens = 0.0
        delay = deficit / rate
        if not (delay > 0.0):  # NaN / underflow on a genuine deficit
            delay = MIN_GATE_DELAY_S
        elif delay > MAX_GATE_DELAY_S:
            delay = MAX_GATE_DELAY_S
        # The caller advances the clock by ``delay``; that advance is the
        # refill that covers the deficit, so the bucket stays empty.
        self.last_now = now + delay
        return delay


class RateEstimator:
    """Sustainable ingest rate from the pool's retired-debt window.

    Samples ``(retired_debt_s, user_bytes)`` pairs (both cumulative
    counters) and estimates ``lambda`` = background device-seconds per user
    byte over the trailing ``window_bytes`` of user writes.  One user byte
    then costs ``1/bw`` seconds of foreground streaming plus ``lambda``
    seconds of background work, so the sustainable rate is
    ``1 / (lambda + 1/bw)`` -- clamped to ``[bw/256, bw]`` (the same floor
    as the fault-degradation gate).
    """

    __slots__ = ("bandwidth", "window_bytes", "_anchors")

    def __init__(self, bandwidth: float, window_bytes: int) -> None:
        if bandwidth <= 0.0:
            raise ValueError("bandwidth must be > 0")
        self.bandwidth = bandwidth
        self.window_bytes = max(1, int(window_bytes))
        self._anchors: Deque[Tuple[float, int]] = deque()

    def observe(self, retired_debt_s: float, user_bytes: int) -> None:
        """Record the current (cumulative) counters as a window anchor."""
        anchors = self._anchors
        if anchors and anchors[-1][1] == user_bytes:
            # No user progress since the last anchor: keep the newest debt
            # reading without growing the window.
            anchors[-1] = (retired_debt_s, user_bytes)
        else:
            anchors.append((retired_debt_s, user_bytes))
        while len(anchors) > 2 and user_bytes - anchors[1][1] >= self.window_bytes:
            anchors.popleft()

    def rate(self) -> float:
        """Sustainable bytes/second, clamped to ``[bw/256, bw]``."""
        bw = self.bandwidth
        anchors = self._anchors
        if len(anchors) < 2:
            return bw
        d_debt = anchors[-1][0] - anchors[0][0]
        d_bytes = anchors[-1][1] - anchors[0][1]
        if d_bytes <= 0 or d_debt <= 0.0:
            return bw
        lam = d_debt / d_bytes
        rate = 1.0 / (lam + 1.0 / bw)
        lo = bw * MIN_RATE_FRACTION
        if not (rate > lo):  # clamp NaN/negative to the floor too
            return lo
        return rate if rate < bw else bw
