"""The simulated storage substrate.

This package stands in for the paper's testbed hardware (SSD/HDD + ext4 + OS
page cache); see the substitution table in DESIGN.md.  It provides:

* :class:`~repro.storage.simdisk.SimClock` -- the virtual clock.
* :class:`~repro.storage.simdisk.SimDisk` -- a block device with seek/bandwidth
  accounting, a single service channel, and live-space tracking.
* :class:`~repro.storage.pagecache.PageCache` -- LRU page cache with a
  ``mincore``-style residency probe.
* :class:`~repro.storage.background.BackgroundPool` -- n-thread background job
  execution that consumes idle device time.
* :class:`~repro.storage.runtime.Runtime` -- the bundle handed to engines.
* :class:`~repro.storage.wal.WriteAheadLog` and
  :class:`~repro.storage.manifest.Manifest` -- durability primitives.
"""

from repro.storage.background import BackgroundJob, BackgroundPool
from repro.storage.manifest import Manifest
from repro.storage.pagecache import PageCache
from repro.storage.runtime import Runtime
from repro.storage.simdisk import SimClock, SimDisk, SimFile
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BackgroundJob",
    "BackgroundPool",
    "Manifest",
    "PageCache",
    "Runtime",
    "SimClock",
    "SimDisk",
    "SimFile",
    "WriteAheadLog",
]
