"""LRU page-cache model (the OS page cache of the paper's testbed).

Caches fixed-size blocks keyed by ``(file_id, block_no)``.  Blocks enter on
both reads and writes (write-back page cache), so freshly appended sequences
are resident -- the property IAM's mixed level exploits (§5.1.2).  The
``resident_bytes`` probe is the simulation's analogue of the paper's
``mincore`` sampling (§5.1.3).

Batch entry points (:meth:`PageCache.insert_many` / :meth:`touch_many` /
:meth:`touch_range`) let the runtime charge a whole appended sequence or read
run in one call instead of per-4KiB-block Python method calls; residency,
LRU order and the insertion/eviction counters stay byte-exact with the
per-block reference (:class:`repro.bench.reference.ReferencePageCache`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigError

BlockKey = Tuple[int, int]


class PageCache:
    """LRU cache of fixed-size blocks with per-file residency accounting."""

    def __init__(self, capacity_bytes: int, block_size: int) -> None:
        if capacity_bytes < 0:
            raise ConfigError("capacity_bytes must be >= 0")
        if block_size <= 0:
            raise ConfigError("block_size must be > 0")
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.max_blocks = capacity_bytes // block_size
        self._lru: "OrderedDict[BlockKey, None]" = OrderedDict()
        self._per_file: Dict[int, set] = {}
        #: Blocks exempt from eviction (§5.1.3 "forcible caching" of appended
        #: sequences).  Pinned blocks still count against capacity.
        self._pinned: set = set()
        self.insertions = 0
        self.evictions = 0
        #: Eviction-batch observer (trace hook); None when tracing is off, so
        #: the hot admission loop pays a single None check per batch.
        self.on_evictions: Optional[Callable[[int], None]] = None

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def used_bytes(self) -> int:
        return len(self._lru) * self.block_size

    # ------------------------------------------------------------------ probe
    def contains(self, file_id: int, block_no: int) -> bool:
        return (file_id, block_no) in self._lru

    def resident_blocks(self, file_id: int) -> int:
        blocks = self._per_file.get(file_id)
        return len(blocks) if blocks else 0

    def resident_bytes(self, file_id: int) -> int:
        """``mincore``-style probe: resident bytes of a file's blocks."""
        return self.resident_blocks(file_id) * self.block_size

    def total_resident_bytes(self) -> int:
        return self.used_bytes

    # ----------------------------------------------------------------- access
    def touch(self, file_id: int, block_no: int) -> bool:
        """Mark a block most-recently-used.  Returns True on hit."""
        key = (file_id, block_no)
        if key in self._lru:
            self._lru.move_to_end(key)
            return True
        return False

    def touch_many(self, file_id: int, block_nos: Iterable[int]) -> List[int]:
        """Touch a batch of blocks in order; returns the list of *misses*.

        Hits are promoted to most-recently-used exactly as per-block
        :meth:`touch` calls would; missing block numbers are returned (in
        input order) for the caller to fetch and :meth:`insert_many`.
        """
        lru = self._lru
        move_to_end = lru.move_to_end
        misses: List[int] = []
        append = misses.append
        for b in block_nos:
            key = (file_id, b)
            if key in lru:
                move_to_end(key)
            else:
                append(b)
        return misses

    def touch_range(self, file_id: int, first_block: int, n_blocks: int) -> int:
        """Touch ``n_blocks`` consecutive blocks; returns the hit count."""
        return n_blocks - len(self.touch_many(file_id,
                                              range(first_block, first_block + n_blocks)))

    def _evict_for_admission(self) -> None:
        """Make room for one new block, skipping pinned blocks explicitly.

        Scans from the LRU end: unpinned victims are evicted; pinned blocks
        are rotated to the MRU end and counted, so the scan is bounded by one
        pass over the cache.  If every resident block is pinned the new block
        is admitted *over* capacity (mlock-style overcommit -- the same
        behaviour ``pin_range`` itself relies on); it becomes the eviction
        victim of the next admission.
        """
        lru = self._lru
        max_blocks = self.max_blocks
        pinned = self._pinned
        pinned_rotations = 0
        evicted = 0
        while len(lru) >= max_blocks and pinned_rotations < len(lru):
            old_key, _ = lru.popitem(last=False)
            if old_key in pinned:
                lru[old_key] = None
                pinned_rotations += 1
                continue
            self.evictions += 1
            evicted += 1
            self._dec(old_key)
        if evicted and self.on_evictions is not None:
            self.on_evictions(evicted)

    def insert(self, file_id: int, block_no: int) -> None:
        """Insert (or refresh) one block, evicting LRU blocks as needed."""
        if self.max_blocks == 0:
            return
        key = (file_id, block_no)
        if key in self._lru:
            self._lru.move_to_end(key)
            return
        if len(self._lru) >= self.max_blocks:
            self._evict_for_admission()
        self._lru[key] = None
        blocks = self._per_file.get(file_id)
        if blocks is None:
            blocks = set()
            self._per_file[file_id] = blocks
        blocks.add(block_no)
        self.insertions += 1

    def insert_many(self, file_id: int, block_nos: Iterable[int]) -> None:
        """Insert a batch of blocks of one file in order.

        State-identical to per-block :meth:`insert` calls -- one interleaved
        pass, so hits are promoted and new blocks admitted (with their LRU
        evictions) in exactly the same order.  When the batch provably fits
        without eviction, the per-block capacity checks are skipped.
        """
        max_blocks = self.max_blocks
        if max_blocks == 0:
            return
        lru = self._lru
        move_to_end = lru.move_to_end
        per_file = self._per_file
        try:
            n = len(block_nos)  # type: ignore[arg-type]
        except TypeError:
            n = None
        if n is not None and len(lru) + n <= max_blocks:
            # Fast path: no eviction possible for this whole batch.
            blocks = per_file.get(file_id)
            if blocks is None:
                blocks = set()
                per_file[file_id] = blocks
            add = blocks.add
            admitted = 0
            for b in block_nos:
                key = (file_id, b)
                if key in lru:
                    move_to_end(key)
                else:
                    lru[key] = None
                    add(b)
                    admitted += 1
            self.insertions += admitted
            return
        evict = self._evict_for_admission
        for b in block_nos:
            key = (file_id, b)
            if key in lru:
                move_to_end(key)
                continue
            if len(lru) >= max_blocks:
                evict()
            lru[key] = None
            # Re-fetched per block: an eviction of this file's last resident
            # block drops the per-file set, so a cached reference goes stale.
            blocks = per_file.get(file_id)
            if blocks is None:
                blocks = set()
                per_file[file_id] = blocks
            blocks.add(b)
            self.insertions += 1

    def insert_range(self, file_id: int, first_block: int, n_blocks: int) -> None:
        self.insert_many(file_id, range(first_block, first_block + n_blocks))

    def insert_file_blocks(self, file_id: int, blocks: Iterable[int]) -> None:
        self.insert_many(file_id, blocks)

    # ---------------------------------------------------------------- pinning
    def pin_range(self, file_id: int, first_block: int, n_blocks: int) -> None:
        """Exempt blocks from eviction (§5.1.3 forcible caching).

        Blocks not currently resident are inserted first.  Pins are released
        by :meth:`unpin_file` or when the file is invalidated.
        """
        for b in range(first_block, first_block + n_blocks):
            self.insert(file_id, b)
            if self.contains(file_id, b):
                self._pinned.add((file_id, b))

    def unpin_file(self, file_id: int) -> int:
        """Release every pin on ``file_id``; returns the number released."""
        mine = [k for k in self._pinned if k[0] == file_id]
        for k in mine:
            self._pinned.discard(k)
        return len(mine)

    def pinned_blocks(self) -> int:
        return len(self._pinned)

    # ------------------------------------------------------------- invalidate
    def invalidate_file(self, file_id: int) -> int:
        """Drop every block of ``file_id`` (file deletion).  Returns count."""
        blocks = self._per_file.pop(file_id, None)
        if not blocks:
            return 0
        for block_no in blocks:
            self._lru.pop((file_id, block_no), None)
            self._pinned.discard((file_id, block_no))
        return len(blocks)

    def _dec(self, key: BlockKey) -> None:
        blocks = self._per_file.get(key[0])
        if blocks is not None:
            blocks.discard(key[1])
            if not blocks:
                del self._per_file[key[0]]
