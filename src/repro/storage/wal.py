"""Write-ahead log.

Every user write is appended to the log before entering the memtable (§5.2,
identical to LevelDB).  Appends are sequential device writes charged in the
foreground; WAL bytes are tracked separately because the paper's write
amplification numbers exclude the log (§6.2).

The log's *content* (the record tuples) survives a simulated crash -- it is
the durable source for recovery (:mod:`repro.db.recovery`).  After a memtable
flush becomes durable, the covered prefix is truncated.
"""

from __future__ import annotations

from typing import List

from repro.common.records import RecordTuple, SEQ, encoded_size
from repro.storage.runtime import Runtime


class WriteAheadLog:
    """Sequential log of record tuples on the simulated device."""

    def __init__(self, runtime: Runtime, key_size: int) -> None:
        self.runtime = runtime
        self.key_size = key_size
        self._file = runtime.create_file()
        self._records: List[RecordTuple] = []
        self.appended_records = 0

    @property
    def nbytes(self) -> int:
        return self._file.nbytes

    def __len__(self) -> int:
        return len(self._records)

    def append(self, rec: RecordTuple) -> float:
        """Append one record; returns the foreground write latency."""
        nbytes = encoded_size(rec, self.key_size)
        self._records.append(rec)
        self._file.grow(nbytes)
        self.runtime.metrics.add_wal_bytes(nbytes)
        self.appended_records += 1
        # Buffered sequential append: paced by bandwidth, never queued
        # behind compaction I/O (see SimDisk.fg_stream).
        return self.runtime.disk.fg_stream(nbytes_write=nbytes)

    def append_many(self, recs: List[RecordTuple]) -> float:
        """Group-commit: append a batch under one sequential write run."""
        if not recs:
            return 0.0
        nbytes = sum(encoded_size(r, self.key_size) for r in recs)
        self._records.extend(recs)
        self._file.grow(nbytes)
        self.runtime.metrics.add_wal_bytes(nbytes)
        self.appended_records += len(recs)
        return self.runtime.disk.fg_stream(nbytes_write=nbytes)

    def truncate_through(self, seq: int) -> None:
        """Discard log entries with sequence numbers <= ``seq``.

        Called once a memtable flush covering those records is durable.  The
        old log file is released and a fresh one started, as LevelDB does.
        """
        self._records = [r for r in self._records if r[SEQ] > seq]
        old = self._file
        self._file = self.runtime.create_file()
        remaining = sum(encoded_size(r, self.key_size) for r in self._records)
        if remaining:
            self._file.grow(remaining)
        self.runtime.delete_file(old)

    def replay(self) -> List[RecordTuple]:
        """Records that survive a crash (ordered by append time)."""
        return list(self._records)
