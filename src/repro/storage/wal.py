"""Write-ahead log.

Every user write is appended to the log before entering the memtable (§5.2,
identical to LevelDB).  Appends are sequential device writes charged in the
foreground; WAL bytes are tracked separately because the paper's write
amplification numbers exclude the log (§6.2).

The log's *content* (the record tuples) survives a simulated crash -- it is
the durable source for recovery (:mod:`repro.db.recovery`).  After a memtable
flush becomes durable, the covered prefix is truncated; the surviving suffix
is rewritten into a fresh file and that rewrite is charged like any other
WAL write (device time + ``add_wal_bytes``), as LevelDB's log rotation does.

A *torn tail* (``tear``) models the crash-time loss of un-synced records:
the kept prefix always snaps down to a group-commit boundary, so a batch is
either wholly present or wholly absent after recovery -- the durability
contract asserted by the crash-point matrix (:mod:`repro.faults.crash`).
"""

from __future__ import annotations

from typing import List

from repro.common.records import RecordTuple, SEQ, encoded_size
from repro.storage.runtime import Runtime


class WriteAheadLog:
    """Sequential log of record tuples on the simulated device."""

    def __init__(self, runtime: Runtime, key_size: int) -> None:
        self.runtime = runtime
        self.key_size = key_size
        self._file = runtime.create_file()
        self._records: List[RecordTuple] = []
        #: Record-count positions of group-commit boundaries: after each
        #: append/append_many the current length is a consistent cut.
        self._bounds: List[int] = []
        self.appended_records = 0

    @property
    def nbytes(self) -> int:
        return self._file.nbytes

    @property
    def file_id(self) -> int:
        return self._file.file_id

    def __len__(self) -> int:
        return len(self._records)

    def append(self, rec: RecordTuple) -> float:
        """Append one record; returns the foreground write latency."""
        nbytes = encoded_size(rec, self.key_size)
        self._records.append(rec)
        self._bounds.append(len(self._records))
        self._file.grow(nbytes)
        self.runtime.metrics.add_wal_bytes(nbytes)
        self.appended_records += 1
        # Buffered sequential append: paced by bandwidth, never queued
        # behind compaction I/O (see SimDisk.fg_stream).
        return self.runtime.disk.fg_stream(nbytes_write=nbytes)

    def append_many(self, recs: List[RecordTuple]) -> float:
        """Group-commit: append a batch under one sequential write run."""
        if not recs:
            return 0.0
        nbytes = sum(encoded_size(r, self.key_size) for r in recs)
        self._records.extend(recs)
        self._bounds.append(len(self._records))
        self._file.grow(nbytes)
        self.runtime.metrics.add_wal_bytes(nbytes)
        self.appended_records += len(recs)
        return self.runtime.disk.fg_stream(nbytes_write=nbytes)

    def truncate_through(self, seq: int) -> float:
        """Discard log entries with sequence numbers <= ``seq``.

        Called once a memtable flush covering those records is durable.  The
        old log file is released and a fresh one started, as LevelDB does.
        The surviving suffix is *rewritten* into the fresh file, and that
        rewrite is charged (device time and WAL bytes) -- it is real I/O,
        not free.  Returns the foreground latency of the rewrite.
        """
        dropped = 0
        while dropped < len(self._records) and self._records[dropped][SEQ] <= seq:
            dropped += 1
        self._records = self._records[dropped:]
        self._bounds = [b - dropped for b in self._bounds if b > dropped]
        old = self._file
        self._file = self.runtime.create_file()
        remaining = sum(encoded_size(r, self.key_size) for r in self._records)
        latency = 0.0
        if remaining:
            self._file.grow(remaining)
            self.runtime.metrics.add_wal_bytes(remaining)
            latency = self.runtime.disk.fg_stream(nbytes_write=remaining)
        self.runtime.delete_file(old)
        return latency

    def tear(self, drop_records: int) -> int:
        """Crash model: lose up to ``drop_records`` un-synced tail records.

        The keep-point snaps *down* to the last group-commit boundary, so no
        batch is ever half-lost.  No I/O is charged -- nothing is written at
        crash time; the surviving prefix simply moves to a fresh file (space
        accounting only).  Returns the number of records actually dropped.
        """
        if drop_records <= 0 or not self._records:
            return 0
        want_keep = max(0, len(self._records) - drop_records)
        keep = 0
        for b in self._bounds:
            if b <= want_keep:
                keep = b
            else:
                break
        dropped = len(self._records) - keep
        self._records = self._records[:keep]
        self._bounds = [b for b in self._bounds if b <= keep]
        old = self._file
        self._file = self.runtime.create_file()
        remaining = sum(encoded_size(r, self.key_size) for r in self._records)
        if remaining:
            self._file.grow(remaining)
        self.runtime.delete_file(old)
        return dropped

    def replay(self) -> List[RecordTuple]:
        """Records that survive a crash (ordered by append time)."""
        return list(self._records)
