"""The storage runtime bundle handed to every engine.

Bundles the clock, device, page cache, background pool and metrics of one DB
instance, and centralizes the charging conventions:

* Query block reads (:meth:`fg_read_blocks`) go through the page cache; each
  run of consecutive missing blocks costs one seek plus bandwidth and counts
  toward read amplification.
* Flush/compaction I/O is charged through :meth:`bg_write_run` /
  :meth:`bg_read_run`, which return device-time *debt* for a
  :class:`~repro.storage.background.BackgroundJob`; bytes are counted and
  cache blocks are populated immediately (write-back page cache).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.options import StorageOptions
from repro.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.storage.background import BackgroundJob, BackgroundPool
from repro.storage.pagecache import PageCache
from repro.storage.simdisk import SimClock, SimDisk, SimFile
from repro.check.effects.registry import effects

if TYPE_CHECKING:  # pragma: no cover
    from repro.common.options import FaultOptions
    from repro.faults.crash import CrashPoints
    from repro.faults.plan import FaultInjector
    from repro.objstore.store import SimObjectStore
    from repro.obs.sampler import TimeseriesSampler
    from repro.obs.tracer import Tracer

#: Objstore span ids live far above the background pool's job-id spans so
#: the two async-span families never collide within one tracer.
_OBJSTORE_SPAN_BASE = 1_000_000_000


class Runtime:
    """Storage stack of one DB instance."""

    def __init__(self, options: Optional[StorageOptions] = None, *,
                 background_threads: int = 1,
                 metrics: Optional[MetricsRegistry] = None,
                 clock: Optional[SimClock] = None) -> None:
        self.options = options if options is not None else StorageOptions()
        # ``clock`` lets several stacks share one timeline (the cluster layer
        # runs every shard/replica on a single simulated clock).
        self.clock = clock if clock is not None else SimClock()
        self.disk = SimDisk(self.options.device, self.clock)
        self.cache = PageCache(self.options.page_cache_bytes, self.options.block_size)
        self.pool = BackgroundPool(self.disk, background_threads)
        # Background I/O may run one chunk ahead of "now" (bandwidth sharing).
        self.pool.lookahead_s = (self.options.io_chunk_bytes
                                 / self.options.device.write_bandwidth)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.pool.metrics = self.metrics
        #: Trace sink; NULL_TRACER until :meth:`attach_tracer` swaps it.
        self.tracer: NullTracer = NULL_TRACER
        self._sampler: Optional["TimeseriesSampler"] = None
        #: Fault injector; None until :meth:`attach_faults` wires one in.
        self.faults: Optional["FaultInjector"] = None
        #: Crash-point scheduler; None until :meth:`arm_crash_points`.
        self.crash_points: Optional["CrashPoints"] = None
        #: Shared object store; None until :meth:`attach_objstore`.
        self.objstore: Optional["SimObjectStore"] = None
        self._objstore_span = _OBJSTORE_SPAN_BASE

    # ---------------------------------------------------------- observability
    def attach_tracer(self, tracer: "Tracer") -> None:
        """Route this stack's trace hooks into ``tracer`` (observation-only)."""
        self.tracer = tracer
        self.pool.tracer = tracer

        def on_evictions(n: int) -> None:
            tracer.instant("cache", "evict", blocks=n)

        self.cache.on_evictions = on_evictions

    def attach_sampler(self, sampler: "TimeseriesSampler") -> None:
        """Drive ``sampler`` from this runtime's per-operation pump."""
        self._sampler = sampler

    # -------------------------------------------------------- fault injection
    def attach_faults(self, options: "FaultOptions") -> "FaultInjector":
        """Arm deterministic transient-fault injection on this stack.

        Wires one :class:`~repro.faults.plan.FaultInjector` into both the
        device (foreground I/O retry loop) and the background pool (job
        activation faults).  Idempotent per options object; returns the
        injector for inspection.
        """
        from repro.faults.plan import FaultInjector

        injector = FaultInjector(options, self)
        self.faults = injector
        self.disk.faults = injector
        self.pool.injector = injector
        return injector

    def arm_crash_points(self, crash_points: Optional["CrashPoints"]) -> None:
        """Install (or clear, with None) the crash-point scheduler."""
        self.crash_points = crash_points
        self.pool.crash_points = crash_points

    # --------------------------------------------------------------- lifecycle
    @property
    def block_size(self) -> int:
        return self.options.block_size

    def now(self) -> float:
        return self.clock.now

    def pump(self) -> None:
        self.pool.pump()
        if self._sampler is not None:
            self._sampler.maybe_sample()

    def submit_job(self, name: str, start_fn: Callable[[], float], *,
                   high_priority: bool = False,
                   on_complete: Optional[Callable[[], None]] = None) -> BackgroundJob:
        return self.pool.submit(name, start_fn, high_priority=high_priority,
                                on_complete=on_complete)

    @effects("CLOCK_ADVANCE", "DISK_CHARGE", "SPAN_BEGIN", "SPAN_END", "STATE_MUTATE")
    def stall_on(self, job: BackgroundJob, reason: str) -> float:
        """Foreground wait for a background job; records the stall event.

        The pool records the structured reason/duration pair (and the trace
        instant); the legacy ``stall:<reason>`` event counter stays bumped.
        """
        elapsed = self.pool.wait_for(job, reason=reason)
        if elapsed > 0.0:
            self.metrics.bump(f"stall:{reason}")
        return elapsed

    def quiesce(self) -> float:
        """Finish all background work (end-of-run barrier)."""
        return self.pool.drain_all()

    # ------------------------------------------------------------- query reads
    @effects("CLOCK_ADVANCE", "DISK_CHARGE", "STATE_MUTATE")
    def fg_read_blocks(self, file_id: int, block_nos: Iterable[int]) -> float:
        """Read blocks for a query through the cache; returns elapsed time."""
        if isinstance(block_nos, range):
            n_requested = len(block_nos)
        else:
            block_nos = list(block_nos)
            n_requested = len(block_nos)
        misses: List[int] = self.cache.touch_many(file_id, block_nos)
        if not misses:
            self.metrics.add_query_io(seeks=0, hits=n_requested, misses=0)
            return 0.0
        # Group consecutive missing blocks into runs: one seek per run.
        runs = 1
        for prev, cur in zip(misses, misses[1:]):
            if cur != prev + 1:
                runs += 1
        nbytes = len(misses) * self.block_size
        elapsed = self.disk.fg_io(nbytes_read=nbytes, seeks=runs)
        self.cache.insert_many(file_id, misses)
        self.metrics.add_query_io(seeks=runs, hits=n_requested - len(misses),
                                  misses=len(misses))
        return elapsed

    # --------------------------------------------------------- compaction I/O
    @effects("DISK_CHARGE", "STATE_MUTATE")
    def bg_write_run(self, file: SimFile, nbytes: int, *, level: int,
                     first_block: int = 0, n_cache_blocks: Optional[int] = None) -> float:
        """Charge one sequential background write run; returns device debt.

        Grows the file, attributes the bytes to ``level`` for write
        amplification, and populates the page cache with the written data
        blocks -- appended sequences start out memory-resident.
        ``n_cache_blocks`` overrides the block count entered into the cache
        (data blocks only, when ``nbytes`` includes metadata).
        """
        if nbytes <= 0:
            return 0.0
        file.grow(nbytes)
        self.metrics.add_level_write(level, nbytes)
        self.disk.bg_count(nbytes_write=nbytes, seeks=1)
        if n_cache_blocks is None:
            n_cache_blocks = -(-nbytes // self.block_size)
        if n_cache_blocks > 0:
            self.cache.insert_range(file.file_id, first_block, n_cache_blocks)
        return self.disk.io_time(nbytes_write=nbytes, bulk_seeks=1)

    @effects("DISK_CHARGE", "STATE_MUTATE")
    def bg_read_run(self, file_id: int, nbytes: int, *,
                    resident_bytes: int = 0) -> float:
        """Charge a background (compaction) read; returns device debt.

        ``resident_bytes`` of the run are served from the page cache for free
        (the OS reads cached pages without touching the device).
        """
        if nbytes <= 0:
            return 0.0
        miss_bytes = max(0, nbytes - resident_bytes)
        self.metrics.add_compaction_read(nbytes)
        if miss_bytes == 0:
            return 0.0
        self.disk.bg_count(nbytes_read=miss_bytes, seeks=1)
        return self.disk.io_time(nbytes_read=miss_bytes, bulk_seeks=1)

    # ----------------------------------------------------------- object store
    def attach_objstore(self, store: "SimObjectStore") -> None:
        """Point this stack at a shared object store (idempotent)."""
        self.objstore = store

    def _objstore_or_raise(self) -> "SimObjectStore":
        if self.objstore is None:
            raise ConfigError("no object store attached to this runtime")
        return self.objstore

    def _objstore_span_id(self) -> int:
        self._objstore_span += 1
        return self._objstore_span

    @effects("CLOCK_ADVANCE", "OBJSTORE_CHARGE", "SPAN_BEGIN", "SPAN_END",
             "STATE_MUTATE")
    def objstore_put(self, name: str, nbytes: int) -> float:
        """Foreground object upload (manifest-log entries); elapsed time."""
        store = self._objstore_or_raise()
        tracer = self.tracer
        span = 0
        if tracer.enabled:
            span = self._objstore_span_id()
            tracer.begin("objstore", "objstore:put", span, obj=name,
                         nbytes=nbytes)
        elapsed, queued = store.put(name, nbytes)
        self.metrics.add_objstore_up(nbytes)
        self.metrics.bump("objstore:put")
        if queued > 0.0:
            self.metrics.add_stall("objstore-append", queued)
        if tracer.enabled:
            tracer.end("objstore", "objstore:put", span)
        return elapsed

    @effects("CLOCK_ADVANCE", "OBJSTORE_CHARGE", "SPAN_BEGIN", "SPAN_END",
             "STATE_MUTATE")
    def objstore_get(self, name: str) -> float:
        """Foreground object download (bootstrap/catch-up); elapsed time."""
        store = self._objstore_or_raise()
        nbytes = store.size_of(name)
        tracer = self.tracer
        span = 0
        if tracer.enabled:
            span = self._objstore_span_id()
            tracer.begin("objstore", "objstore:get", span, obj=name,
                         nbytes=nbytes)
        elapsed, queued = store.get(name)
        self.metrics.add_objstore_down(nbytes)
        self.metrics.bump("objstore:get")
        if queued > 0.0:
            self.metrics.add_stall("objstore-fetch", queued)
        if tracer.enabled:
            tracer.end("objstore", "objstore:get", span)
        return elapsed

    @effects("CLOCK_ADVANCE", "OBJSTORE_CHARGE", "SPAN_BEGIN", "SPAN_END",
             "STATE_MUTATE")
    def objstore_read_fill(self, nbytes: int, requests: int) -> float:
        """Charge ranged GETs filling the page cache (tiered reads)."""
        store = self._objstore_or_raise()
        tracer = self.tracer
        span = 0
        if tracer.enabled:
            span = self._objstore_span_id()
            tracer.begin("objstore", "objstore:get", span, nbytes=nbytes,
                         requests=requests)
        elapsed, queued = store.read_fill(nbytes, requests)
        self.metrics.add_objstore_down(nbytes)
        self.metrics.bump("objstore:get", requests)
        if queued > 0.0:
            self.metrics.add_stall("objstore-fetch", queued)
        if tracer.enabled:
            tracer.end("objstore", "objstore:get", span)
        return elapsed

    @effects("CLOCK_ADVANCE", "OBJSTORE_CHARGE", "SPAN_BEGIN", "SPAN_END",
             "STATE_MUTATE")
    def objstore_list(self, prefix: str) -> List[str]:
        """Foreground prefix listing (recovery, bootstrap discovery)."""
        store = self._objstore_or_raise()
        tracer = self.tracer
        span = 0
        if tracer.enabled:
            span = self._objstore_span_id()
            tracer.begin("objstore", "objstore:list", span, prefix=prefix)
        names, _ = store.list_prefix(prefix)
        self.metrics.bump("objstore:list")
        if tracer.enabled:
            tracer.end("objstore", "objstore:list", span, names=len(names))
        return names

    @effects("CLOCK_ADVANCE", "OBJSTORE_CHARGE", "STATE_MUTATE")
    def objstore_delete(self, name: str) -> float:
        """Foreground object delete (recovery orphan sweep); elapsed time."""
        store = self._objstore_or_raise()
        elapsed = store.delete(name)
        self.metrics.bump("objstore:delete")
        if self.tracer.enabled:
            self.tracer.instant("objstore", "objstore:delete", obj=name)
        return elapsed

    @effects("OBJSTORE_CHARGE", "STATE_MUTATE")
    def objstore_reserve_put(self, name: str, nbytes: int) -> float:
        """Background object upload (MSTable mirroring); returns its tail."""
        store = self._objstore_or_raise()
        tail = store.reserve_put(name, nbytes)
        self.metrics.add_objstore_up(nbytes)
        self.metrics.bump("objstore:put")
        if self.tracer.enabled:
            self.tracer.instant("objstore", "objstore:put", obj=name,
                                nbytes=nbytes, background=1)
        return tail

    @effects("OBJSTORE_CHARGE", "STATE_MUTATE")
    def objstore_reserve_delete(self, name: str) -> float:
        """Background object delete (tombstone cleanup); returns its tail."""
        store = self._objstore_or_raise()
        tail = store.reserve_delete(name)
        self.metrics.bump("objstore:delete")
        if self.tracer.enabled:
            self.tracer.instant("objstore", "objstore:delete", obj=name,
                                background=1)
        return tail

    # ------------------------------------------------------------------ files
    def create_file(self) -> SimFile:
        return self.disk.create_file()

    def delete_file(self, file: SimFile) -> None:
        self.cache.invalidate_file(file.file_id)
        self.disk.delete_file(file)

    # ---------------------------------------------------------------- reports
    def space_used_bytes(self) -> int:
        return self.disk.live_bytes

    def io_report(self) -> Tuple[int, int, int]:
        """(bytes_read, bytes_written, seeks) device totals."""
        return (self.disk.bytes_read, self.disk.bytes_written, self.disk.seeks)
