"""Simulated block device and virtual clock.

The device models exactly the two parameters the paper's analysis depends on:
seek cost and sequential bandwidth (§2.1: LSM substitutes sequential I/O for
random I/O).  All I/O -- foreground (user queries, WAL appends, stalls) and
background (flush/compaction jobs) -- serializes through one channel tracked
by ``busy_until``:

* *Foreground* I/O starts at ``max(now, busy_until)``; the gap is queueing
  delay and surfaces as tail latency when compactions saturate the device.
* *Background* work (see :mod:`repro.storage.background`) only consumes device
  time in the past-idle window up to "now", so it can never starve foreground
  traffic, but it does push ``busy_until`` forward and delay it -- the paper's
  "writes might saturate disk bandwidth and block user queries".

Space accounting is separate from time: :class:`SimFile` tracks live bytes
(MSTable holes are sparse and cost nothing, §4.1).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.check.diagnostics import invariant_error
from repro.common.options import DeviceProfile


class SimClock:
    """Monotonic virtual clock shared by one DB instance."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise invariant_error("clock-monotonic",
                                  "clock cannot go backwards", dt=dt)
        self.now += dt


class SimFile:
    """A file on the simulated device.  Tracks live bytes only."""

    __slots__ = ("file_id", "nbytes", "deleted", "_disk")

    def __init__(self, file_id: int, disk: "SimDisk") -> None:
        self.file_id = file_id
        self.nbytes = 0
        self.deleted = False
        self._disk = disk

    def grow(self, nbytes: int) -> None:
        """Add live bytes to the file (space accounting only)."""
        if self.deleted:
            raise invariant_error("file-lifecycle", "grow on a deleted file",
                                  file=self.file_id, nbytes=nbytes)
        if nbytes < 0:
            raise invariant_error("file-lifecycle", "file growth must be >= 0",
                                  file=self.file_id, nbytes=nbytes)
        self.nbytes += nbytes
        self._disk.live_bytes += nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimFile(id={self.file_id}, nbytes={self.nbytes})"


class SimDisk:
    """The simulated device: time, byte counters, and file space."""

    def __init__(self, profile: DeviceProfile, clock: Optional[SimClock] = None) -> None:
        self.profile = profile
        self.clock = clock if clock is not None else SimClock()
        #: Timestamp until which the device channel is committed.
        self.busy_until = 0.0
        self.files: Dict[int, SimFile] = {}
        self._next_file_id = 1
        #: Optional fault injector (repro.faults.plan.FaultInjector); when set,
        #: every foreground request first runs its retry loop.
        self.faults: Optional[object] = None
        #: Total live bytes across all files (space-usage numerator).
        self.live_bytes = 0
        # Device counters.
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0
        self.seeks = 0

    # ------------------------------------------------------------------ files
    def create_file(self) -> SimFile:
        f = SimFile(self._next_file_id, self)
        self.files[f.file_id] = f
        self._next_file_id += 1
        return f

    def delete_file(self, f: SimFile) -> None:
        if f.deleted:
            return
        f.deleted = True
        self.live_bytes -= f.nbytes
        del self.files[f.file_id]

    # ------------------------------------------------------------- io costing
    def io_time(self, *, nbytes_read: int = 0, nbytes_write: int = 0,
                seeks: int = 0, bulk_seeks: int = 0) -> float:
        """Device service time for a batch of I/O.

        ``seeks`` are query-path random I/Os; ``bulk_seeks`` are the cheaper
        run repositionings of flush/compaction streams (see DeviceProfile).
        """
        t = seeks * self.profile.seek_time_s + bulk_seeks * self.profile.bulk_seek_time_s
        if nbytes_read:
            t += nbytes_read / self.profile.read_bandwidth
        if nbytes_write:
            t += nbytes_write / self.profile.write_bandwidth
        return t

    def _count(self, nbytes_read: int, nbytes_write: int, seeks: int) -> None:
        if nbytes_read:
            self.bytes_read += nbytes_read
            self.read_ops += 1
        if nbytes_write:
            self.bytes_written += nbytes_write
            self.write_ops += 1
        self.seeks += seeks

    # ------------------------------------------------------------- foreground
    def fg_io(self, *, nbytes_read: int = 0, nbytes_write: int = 0, seeks: int = 0) -> float:
        """Perform foreground I/O: wait for the channel, advance the clock.

        Returns the elapsed simulated time (queueing delay + service).
        """
        if self.faults is not None:
            self.faults.on_foreground_io(self)  # type: ignore[attr-defined]
        service = self.io_time(nbytes_read=nbytes_read, nbytes_write=nbytes_write, seeks=seeks)
        start = max(self.clock.now, self.busy_until)
        end = start + service
        self.busy_until = end
        elapsed = end - self.clock.now
        self.clock.now = end
        self._count(nbytes_read, nbytes_write, seeks)
        return elapsed

    def fg_stream(self, *, nbytes_write: int = 0, nbytes_read: int = 0) -> float:
        """Foreground *streaming* I/O: paced by bandwidth, not queued.

        Models buffered sequential writes (the WAL: absorbed by the page
        cache and streamed out, never waiting behind compaction I/O).  The
        clock advances by the transfer time only; ``busy_until`` is not
        touched, so the un-throttled writer races compaction exactly as a
        LevelDB client does -- backpressure comes solely from the engine
        gates (slowdown / stop / memtable rotation), which is where the
        paper's bursts and stalls originate (§6.2).
        """
        if self.faults is not None:
            self.faults.on_foreground_io(self)  # type: ignore[attr-defined]
        service = self.io_time(nbytes_read=nbytes_read, nbytes_write=nbytes_write)
        self.clock.now += service
        self._count(nbytes_read, nbytes_write, 0)
        return service

    # ------------------------------------------------------------- background
    def bg_grant(self, not_before: float, want_s: float,
                 lookahead_s: float = 0.0) -> float:
        """Grant up to ``want_s`` seconds of device time to background work.

        Time is granted inside ``[max(busy_until, not_before), now +
        lookahead]``: jobs cannot run before they were submitted, but they
        may fill the channel a bounded ``lookahead_s`` ahead of "now" -- the
        in-flight background I/O a real device interleaves with foreground
        traffic.  Foreground ops queue behind ``busy_until``, so bandwidth is
        shared and compaction pressure surfaces as foreground queueing delay
        ("writes might saturate disk bandwidth and block user queries", §1).
        """
        start = max(self.busy_until, not_before)
        horizon = self.clock.now + lookahead_s
        if start >= horizon:
            return 0.0
        granted = min(want_s, horizon - start)
        self.busy_until = start + granted
        return granted

    def bg_count(self, *, nbytes_read: int = 0, nbytes_write: int = 0, seeks: int = 0) -> None:
        """Record background I/O volume (time is handled via bg_grant)."""
        self._count(nbytes_read, nbytes_write, seeks)

    # ----------------------------------------------------------- synchronous
    def sync_drain(self, service_s: float) -> float:
        """Consume device time synchronously (a stall): the clock jumps to the
        completion of ``service_s`` seconds of work queued behind ``busy_until``.

        Returns the elapsed simulated time experienced by the stalled caller.
        """
        if service_s < 0:
            raise invariant_error("device-time",
                                  "sync_drain needs service_s >= 0",
                                  service_s=service_s)
        start = max(self.clock.now, self.busy_until)
        end = start + service_s
        self.busy_until = end
        elapsed = end - self.clock.now
        self.clock.now = end
        return elapsed

    # -------------------------------------------------------------- reporting
    @property
    def utilization_window(self) -> float:
        """Fraction of elapsed time the device has been busy so far."""
        if self.clock.now <= 0:
            return 0.0
        return min(1.0, self.busy_until / self.clock.now) if self.busy_until > 0 else 0.0
