"""Background job execution (flush and compaction threads).

The paper compares single-threaded LevelDB against multi-threaded RocksDB and
IamDB ("LevelDB does not support parallel background compaction while IamDB
does as RocksDB", §6).  We model ``n`` background threads as up to ``n`` jobs
making *concurrent progress*; each job owes a device-time debt (the reads and
writes of its I/O plan) that the pool drains out of the device's idle past
time, round-robin across active jobs.

Two properties matter for fidelity:

* **Lazy activation.** A job's structural effect (its ``start_fn``, which
  mutates the tree and returns the debt) runs only when a thread picks the
  job up.  Compaction *demand* is therefore expressed through a ``provider``
  callback consulted whenever a thread goes idle -- exactly how LevelDB's
  single background thread works.  Under write pressure the provider is
  consulted too rarely, levels overflow their thresholds, and the paper's
  "serious data overflows" (§6.2) emerge instead of being scripted.
* **Synchronous waits.** :meth:`BackgroundPool.wait_for` drains the device
  until a given job completes -- the memtable-rotation and L0-stop stalls
  that produce LevelDB's multi-second maximum latencies (§6.2).

Flush jobs are submitted with ``high_priority=True`` and activate before any
queued compaction, mirroring LevelDB/RocksDB flush priority.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional

from repro.common.errors import InvariantViolation
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.storage.simdisk import SimDisk

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics import MetricsRegistry

PENDING = 0
ACTIVE = 1
DONE = 2

#: start_fn applies the job's structural effect and returns its device debt.
StartFn = Callable[[], float]
#: provider() offers the next compaction job when a thread goes idle.
Provider = Callable[[], Optional["BackgroundJob"]]


class BackgroundJob:
    """A unit of background work: structural effect + device-time debt."""

    __slots__ = ("name", "start_fn", "debt_s", "debt_total", "not_before",
                 "state", "on_complete", "job_id")

    def __init__(self, name: str, start_fn: StartFn,
                 on_complete: Optional[Callable[[], None]] = None) -> None:
        self.name = name
        self.start_fn = start_fn
        self.debt_s = 0.0
        #: Debt at activation (debt_s counts down as the pool drains it).
        self.debt_total = 0.0
        self.not_before = 0.0
        self.state = PENDING
        self.on_complete = on_complete
        #: Deterministic id assigned at submission (0 = never pooled);
        #: keys the tracer's begin/end span pair.
        self.job_id = 0

    @property
    def done(self) -> bool:
        return self.state == DONE


class BackgroundPool:
    """Up to ``threads`` concurrently progressing background jobs."""

    def __init__(self, disk: SimDisk, threads: int = 1) -> None:
        if threads < 1:
            raise InvariantViolation("threads must be >= 1")
        self.disk = disk
        self.threads = threads
        self.active: List[BackgroundJob] = []
        self.queue: Deque[BackgroundJob] = deque()
        self.provider: Optional[Provider] = None
        self.completed_jobs = 0
        #: How far past "now" background work may fill the device channel
        #: (one in-flight I/O burst); set by Runtime from the chunk size.
        self.lookahead_s = 0.0
        #: Trace sink (NULL_TRACER = disabled); swapped by Runtime.attach_tracer.
        self.tracer: NullTracer = NULL_TRACER
        #: Structured-stall recorder; wired by Runtime (None in bare pools).
        self.metrics: Optional["MetricsRegistry"] = None
        self._next_job_id = 1

    def set_provider(self, provider: Optional[Provider]) -> None:
        """Register the engine's compaction-picking callback."""
        self.provider = provider

    # ----------------------------------------------------------------- submit
    def submit(self, name: str, start_fn: StartFn, *, high_priority: bool = False,
               on_complete: Optional[Callable[[], None]] = None) -> BackgroundJob:
        job = BackgroundJob(name, start_fn, on_complete)
        if self.tracer.enabled:
            self._assign_id(job)
            self.tracer.instant("job", "job-queued", job=job.name, id=job.job_id,
                                high_priority=high_priority)
        if high_priority:
            self.queue.appendleft(job)
        else:
            self.queue.append(job)
        self._fill_threads()
        return job

    def _assign_id(self, job: BackgroundJob) -> None:
        if job.job_id == 0:
            job.job_id = self._next_job_id
            self._next_job_id += 1

    @property
    def pending_debt_s(self) -> float:
        """Unpaid device time across *active* jobs (queued jobs have no debt yet)."""
        return sum(j.debt_s for j in self.active)

    @property
    def busy(self) -> bool:
        return bool(self.active or self.queue)

    # ------------------------------------------------------------- activation
    def _activate(self, job: BackgroundJob) -> None:
        job.state = ACTIVE
        job.not_before = max(self.disk.busy_until, 0.0)
        job.debt_s = job.start_fn()
        if job.debt_s < 0:
            raise InvariantViolation(f"job {job.name} returned negative debt")
        job.debt_total = job.debt_s
        if self.tracer.enabled:
            # Span opens before a zero-debt job retires, so every begin is
            # balanced by exactly one end even for instant jobs.
            self._assign_id(job)
            self.tracer.begin("job", job.name, job.job_id, debt_s=job.debt_s)
        self.active.append(job)
        if job.debt_s <= 0.0:
            self._retire(job)

    def _fill_threads(self) -> None:
        """Activate queued work, then ask the provider, while threads idle."""
        while len(self.active) < self.threads and self.queue:
            self._activate(self.queue.popleft())
        if self.provider is not None:
            while len(self.active) < self.threads and not self.queue:
                job = self.provider()
                if job is None:
                    break
                self._activate(job)

    # ------------------------------------------------------------------- pump
    def pump(self) -> None:
        """Drain active-job debt from device idle time up to "now"."""
        disk = self.disk
        while True:
            self._fill_threads()
            if not self.active:
                return
            progressed = False
            for job in list(self.active):
                granted = disk.bg_grant(job.not_before, job.debt_s, self.lookahead_s)
                if granted > 0.0:
                    progressed = True
                    job.debt_s -= granted
                    job.not_before = disk.busy_until
                    if job.debt_s <= 1e-12:
                        job.debt_s = 0.0
                        self._retire(job)
            if not progressed:
                return

    def _retire(self, job: BackgroundJob) -> None:
        if job in self.active:
            self.active.remove(job)
        job.state = DONE
        self.completed_jobs += 1
        if self.tracer.enabled:
            # The end mirrors the begin's id; on_complete runs after so any
            # follow-up submissions trace strictly inside causal order.
            self.tracer.end("job", job.name, job.job_id, debt_s=job.debt_total)
        if job.on_complete is not None:
            job.on_complete()

    # ---------------------------------------------------------------- waiting
    def wait_for(self, job: BackgroundJob, *,
                 reason: Optional[str] = None) -> float:
        """Stall until ``job`` completes; returns elapsed simulated time.

        When the wait actually blocked (elapsed > 0), the stall is recorded
        as structured data -- reason, duration -- in the attached metrics
        registry, and as a trace instant when tracing is enabled.
        """
        elapsed = 0.0
        guard = 0
        while not job.done:
            guard += 1
            if guard > 1_000_000:
                raise InvariantViolation(f"wait_for({job.name}) did not converge")
            self._fill_threads()
            if job.state == ACTIVE:
                elapsed += self._drain_one(job)
            elif self.active:
                # Jobs holding the threads must finish before ours activates.
                elapsed += self._drain_one(self.active[0])
            else:
                raise InvariantViolation(f"job {job.name} pending but no thread busy")
        if elapsed > 0.0:
            why = reason if reason is not None else f"wait:{job.name}"
            if self.metrics is not None:
                self.metrics.add_stall(why, elapsed)
            if self.tracer.enabled:
                self.tracer.instant("stall", "stall", reason=why,
                                    duration_s=elapsed)
        return elapsed

    def drain_all(self) -> float:
        """Synchronously finish every pending job (end-of-run barrier)."""
        elapsed = 0.0
        while True:
            self._fill_threads()
            if not self.active:
                if self.queue:
                    raise InvariantViolation("queued jobs but no free thread")
                return elapsed
            elapsed += self._drain_one(self.active[0])

    def drain_queue_only(self) -> float:
        """Finish submitted jobs without consulting the provider."""
        elapsed = 0.0
        provider, self.provider = self.provider, None
        try:
            while self.active or self.queue:
                self._fill_threads()
                if self.active:
                    elapsed += self._drain_one(self.active[0])
        finally:
            self.provider = provider
        return elapsed

    def step_drain(self) -> float:
        """Synchronously finish the head active job (stall helper).

        Fills idle threads first so pending/provided work can activate.
        Returns the elapsed simulated time (0.0 when nothing is running).
        """
        self._fill_threads()
        if not self.active:
            return 0.0
        return self._drain_one(self.active[0])

    def _drain_one(self, job: BackgroundJob) -> float:
        elapsed = self.disk.sync_drain(job.debt_s)
        job.debt_s = 0.0
        self._retire(job)
        return elapsed
