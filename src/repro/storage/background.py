"""Background job execution (flush and compaction threads).

The paper compares single-threaded LevelDB against multi-threaded RocksDB and
IamDB ("LevelDB does not support parallel background compaction while IamDB
does as RocksDB", §6).  We model ``n`` background threads as up to ``n`` jobs
making *concurrent progress*; each job owes a device-time debt (the reads and
writes of its I/O plan) that the pool drains out of the device's idle past
time, round-robin across active jobs.

Two properties matter for fidelity:

* **Lazy activation.** A job's structural effect (its ``start_fn``, which
  mutates the tree and returns the debt) runs only when a thread picks the
  job up.  Compaction *demand* is therefore expressed through a ``provider``
  callback consulted whenever a thread goes idle -- exactly how LevelDB's
  single background thread works.  Under write pressure the provider is
  consulted too rarely, levels overflow their thresholds, and the paper's
  "serious data overflows" (§6.2) emerge instead of being scripted.
* **Synchronous waits.** :meth:`BackgroundPool.wait_for` drains the device
  until a given job completes -- the memtable-rotation and L0-stop stalls
  that produce LevelDB's multi-second maximum latencies (§6.2).

Flush jobs are submitted with ``high_priority=True`` and activate before any
queued compaction, mirroring LevelDB/RocksDB flush priority.  Within the
high-priority class order is FIFO: a later memtable must never flush before
an earlier one (recovery correctness depends on flush order matching
sequence order).

Fault injection (see :mod:`repro.faults`) hooks job activation: a faulted
activation attempt re-queues the job with exponential backoff; after
``max_retries`` attempts a compaction *fails* (its ``on_complete`` runs so
the engine can re-pick it later) while a flush is re-queued after a longer
pause -- flushes hold the only copy of the immutable memtable and are never
dropped.  Repeated give-ups raise ``failed_streak``, which the engines'
write gates translate into pacing (graceful degradation, not crash).

Two schedulers drain active-job debt (``scheduler`` attribute):

* ``"fair"`` (default) -- weighted fair queueing between the *flush* and
  *compaction* classes.  Each class accumulates drained device seconds; the
  pump offers idle time to jobs in ascending class virtual time
  (``drained_s / weight``, flushes weighted heavier), ties broken by
  activation order -- so within the flush class the order is still strictly
  FIFO.  A burst of compaction debt can no longer starve a flush of device
  idle (Luo & Carey's fair I/O allocation between flushes and compactions).
* ``"legacy"`` -- the original pure round-robin over activation order,
  preserved verbatim for the ``legacy_gate=True`` byte-identity proof.

The pool also keeps a cumulative retired-debt counter (``bg_drained_s``)
that the engines' token-bucket pacers read to estimate the sustainable
ingest rate (see :mod:`repro.storage.pacing`).

**Compaction offload** (shared-storage clusters): when ``offload_disk``
is set, compaction-class jobs drain their device debt against that disk
instead of the node's own -- the merge runs on a dedicated compaction
node against shared storage, so local device idle stays available for
flushes and queries.  Flushes always stay local (they persist the only
copy of the memtable).  With ``offload_disk`` left ``None`` every code
path is byte-identical to the pre-offload pool.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional

from repro.common.errors import InvariantViolation
from repro.obs.tracer import NULL_TRACER, NullTracer
from repro.storage.simdisk import SimDisk
from repro.check.effects.registry import effects

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.crash import CrashPoints
    from repro.faults.plan import FaultInjector
    from repro.metrics import MetricsRegistry

PENDING = 0
ACTIVE = 1
DONE = 2

#: start_fn applies the job's structural effect and returns its device debt.
StartFn = Callable[[], float]
#: provider() offers the next compaction job when a thread goes idle.
Provider = Callable[[], Optional["BackgroundJob"]]

#: Fair-share weights per job class: flushes get twice the device share of
#: compactions (a stalled flush blocks the foreground write path directly,
#: a lagging compaction only builds future debt).
CLASS_WEIGHTS = {"flush": 2.0, "compaction": 1.0}

#: Largest single drain grant (device seconds) while *both* classes hold
#: active jobs.  Without a quantum the first job in fair order swallows all
#: available idle time in one grant and fairness never gets to arbitrate;
#: with one class active there is nothing to arbitrate and grants stay
#: unchunked (identical to the legacy pump for the single-threaded
#: configurations the stability suite runs).
FAIR_QUANTUM_S = 0.002


class BackgroundJob:
    """A unit of background work: structural effect + device-time debt."""

    __slots__ = ("name", "start_fn", "debt_s", "debt_total", "not_before",
                 "state", "on_complete", "job_id", "high_priority",
                 "retries", "retry_at", "failed", "seq")

    def __init__(self, name: str, start_fn: StartFn,
                 on_complete: Optional[Callable[[], None]] = None) -> None:
        self.name = name
        self.start_fn = start_fn
        self.debt_s = 0.0
        #: Debt at activation (debt_s counts down as the pool drains it).
        self.debt_total = 0.0
        self.not_before = 0.0
        self.state = PENDING
        self.on_complete = on_complete
        #: Deterministic id assigned at submission (0 = never pooled);
        #: keys the tracer's begin/end span pair.
        self.job_id = 0
        #: Flush-class job (set by submit; provider jobs are compactions).
        self.high_priority = False
        #: Fault-injection bookkeeping: activation attempts so far, earliest
        #: sim-time of the next attempt, and the terminal give-up flag.
        self.retries = 0
        self.retry_at = 0.0
        self.failed = False
        #: Activation order (assigned by the pool); the fair scheduler's
        #: within-class tie-break, so flush order stays strictly FIFO.
        self.seq = 0

    @property
    def klass(self) -> str:
        """Fair-share accounting class ("flush" or "compaction")."""
        return "flush" if self.high_priority else "compaction"

    @property
    def done(self) -> bool:
        return self.state == DONE


class BackgroundPool:
    """Up to ``threads`` concurrently progressing background jobs."""

    def __init__(self, disk: SimDisk, threads: int = 1) -> None:
        if threads < 1:
            raise InvariantViolation("threads must be >= 1")
        self.disk = disk
        self.threads = threads
        self.active: List[BackgroundJob] = []
        self.queue: Deque[BackgroundJob] = deque()
        self.provider: Optional[Provider] = None
        self.completed_jobs = 0
        #: How far past "now" background work may fill the device channel
        #: (one in-flight I/O burst); set by Runtime from the chunk size.
        self.lookahead_s = 0.0
        #: Trace sink (NULL_TRACER = disabled); swapped by Runtime.attach_tracer.
        self.tracer: NullTracer = NULL_TRACER
        #: Structured-stall recorder; wired by Runtime (None in bare pools).
        self.metrics: Optional["MetricsRegistry"] = None
        self._next_job_id = 1
        #: Fault injector (None = clean device); wired by Runtime.attach_faults.
        self.injector: Optional["FaultInjector"] = None
        #: Crash-point scheduler (None = no crash sites armed).
        self.crash_points: Optional["CrashPoints"] = None
        #: Consecutive job give-ups with no successful retirement in between;
        #: engines read this to escalate their write gates.
        self.failed_streak = 0
        #: Total jobs that exhausted their retries (monotonic).
        self.failed_jobs = 0
        #: Debt-draining scheduler: "fair" (weighted per-class device-time
        #: accounting) or "legacy" (pure round-robin).  Engines set this
        #: from ``TreeOptions.scheduler`` via ``_init_scheduling``.
        self.scheduler = "fair"
        #: Cumulative retired background debt in device seconds -- the
        #: pacers' sustainable-rate signal (monotonic, sim-clock units).
        self.bg_drained_s = 0.0
        #: Drained device seconds per fair-share class (monotonic).
        self.class_drained_s = {"flush": 0.0, "compaction": 0.0}
        self._next_seq = 1
        #: Optional dedicated device for compaction-class debt (the
        #: shared-storage "compaction offload" mode); None = all debt
        #: drains on the node's own disk, byte-identical to the
        #: pre-offload pool.
        self.offload_disk: Optional[SimDisk] = None

    def _drain_disk(self, job: BackgroundJob) -> SimDisk:
        """The device one job's debt drains against (offload aware)."""
        if self.offload_disk is not None and not job.high_priority:
            return self.offload_disk
        return self.disk

    def set_provider(self, provider: Optional[Provider]) -> None:
        """Register the engine's compaction-picking callback."""
        self.provider = provider

    # ----------------------------------------------------------------- submit
    def submit(self, name: str, start_fn: StartFn, *, high_priority: bool = False,
               on_complete: Optional[Callable[[], None]] = None) -> BackgroundJob:
        job = BackgroundJob(name, start_fn, on_complete)
        if self.tracer.enabled:
            self._assign_id(job)
            self.tracer.instant("job", "job-queued", job=job.name, id=job.job_id,
                                high_priority=high_priority)
        self._enqueue(job, high_priority=high_priority)
        self._fill_threads()
        return job

    def _enqueue(self, job: BackgroundJob, *, high_priority: bool,
                 front: bool = False) -> None:
        """Priority insert that stays FIFO *within* each priority class.

        A plain ``appendleft`` for high-priority jobs would run two queued
        flushes LIFO -- a later memtable flushing before an earlier one --
        so high-priority jobs are inserted after any high-priority entries
        already queued, and before the first normal-priority entry.

        ``front=True`` restores a *re-queued* job's place at the head of
        its priority segment: a faulted flush was popped from the front of
        the flush class, so every flush still queued is younger and must
        stay behind it.
        """
        job.high_priority = high_priority
        if high_priority:
            idx = 0
            if not front:
                for queued in self.queue:
                    if not queued.high_priority:
                        break
                    idx += 1
            self.queue.insert(idx, job)
        else:
            self.queue.append(job)

    def _assign_id(self, job: BackgroundJob) -> None:
        if job.job_id == 0:
            job.job_id = self._next_job_id
            self._next_job_id += 1

    @property
    def pending_debt_s(self) -> float:
        """Unpaid device time across *active* jobs (queued jobs have no debt yet)."""
        return sum(j.debt_s for j in self.active)

    @property
    def busy(self) -> bool:
        return bool(self.active or self.queue)

    # ------------------------------------------------------------- activation
    @effects("SPAN_BEGIN", "SPAN_END", "STATE_MUTATE")
    def _activate(self, job: BackgroundJob) -> None:
        if self.injector is not None and self.injector.job_attempt_fails(job):
            self._job_fault(job)
            return
        job.state = ACTIVE
        job.seq = self._next_seq
        self._next_seq += 1
        job.not_before = max(self._drain_disk(job).busy_until, 0.0)
        job.debt_s = job.start_fn()
        if job.debt_s < 0:
            raise InvariantViolation(f"job {job.name} returned negative debt")
        job.debt_total = job.debt_s
        if self.tracer.enabled:
            # Span opens before a zero-debt job retires, so every begin is
            # balanced by exactly one end even for instant jobs.
            self._assign_id(job)
            self.tracer.begin("job", job.name, job.job_id, debt_s=job.debt_s)
        self.active.append(job)
        if self.crash_points is not None:
            # The structural effect has run but none of the job's I/O debt
            # has drained: a crash here loses the in-flight output.
            self.crash_points.reached(
                "mid-flush" if job.high_priority else "post-compact")
        if job.debt_s <= 0.0:
            self._retire(job)

    def _job_fault(self, job: BackgroundJob) -> None:
        """A faulted activation attempt: back off, give up, or re-queue."""
        if self.injector is None:
            raise InvariantViolation("job fault without an injector")
        opts = self.injector.options
        job.retries += 1
        if self.metrics is not None:
            self.metrics.bump("fault:job-fault")
        if self.tracer.enabled:
            self._assign_id(job)
            self.tracer.instant("fault", "job-fault", job=job.name,
                                id=job.job_id, retries=job.retries)
        now = self.disk.clock.now
        if job.retries <= opts.max_retries:
            backoff = min(opts.backoff_base_s * (2.0 ** (job.retries - 1)),
                          opts.backoff_max_s)
            job.retry_at = now + backoff
            self._enqueue(job, high_priority=job.high_priority,
                          front=job.high_priority and self.scheduler != "legacy")
            return
        # Retries exhausted.
        self.failed_streak += 1
        self.failed_jobs += 1
        self.injector.giveups += 1
        if job.high_priority:
            # Flushes hold the only copy of the immutable memtable: never
            # dropped, re-queued after a longer pause instead.
            job.retries = 0
            job.retry_at = now + opts.giveup_backoff_s
            if self.metrics is not None:
                self.metrics.bump("fault:flush-requeue")
            if self.tracer.enabled:
                self.tracer.instant("fault", "flush-requeue", job=job.name,
                                    id=job.job_id)
            self._enqueue(job, high_priority=True,
                          front=self.scheduler != "legacy")
            return
        job.failed = True
        job.state = DONE
        if self.metrics is not None:
            self.metrics.bump("fault:job-giveup")
        if self.tracer.enabled:
            self.tracer.instant("fault", "job-giveup", job=job.name,
                                id=job.job_id)
        if job.on_complete is not None:
            # Lets the engine clear its busy marker and re-pick the
            # compaction through the provider -- failed work re-queues.
            job.on_complete()

    def _pop_ready(self) -> Optional[BackgroundJob]:
        """Next queued job whose backoff has expired (FIFO otherwise).

        Under the fair scheduler a flush whose backoff has not expired
        *blocks every later flush*: recovery correctness needs memtables
        on disk in sequence order, so a re-queued flush must not be
        overtaken by a younger one (compactions may still proceed).  The
        legacy scheduler keeps the original any-ready-job pick for the
        byte-identity proof.
        """
        if self.injector is None:
            return self.queue.popleft() if self.queue else None
        now = self.disk.clock.now
        for i, job in enumerate(self.queue):
            if not self._eligible_now(job, i):
                continue
            if job.retry_at <= now:
                del self.queue[i]
                return job
        return None

    def _eligible_now(self, job: BackgroundJob, index: int) -> bool:
        """Whether queue[index] may activate next (flush-head blocking).

        Under the fair scheduler only the *first* queued flush is eligible;
        younger flushes wait behind it even through its fault backoff.
        Compactions are always eligible, and the legacy scheduler keeps the
        original any-job pick.
        """
        if not job.high_priority or self.scheduler == "legacy":
            return True
        return not any(self.queue[i].high_priority for i in range(index))

    def _queue_ready(self) -> bool:
        if self.injector is None:
            return bool(self.queue)
        now = self.disk.clock.now
        return any(job.retry_at <= now and self._eligible_now(job, i)
                   for i, job in enumerate(self.queue))

    @effects("CLOCK_ADVANCE", "STATE_MUTATE")
    def _sleep_until_ready(self) -> Optional[float]:
        """Advance the clock to the earliest *eligible* queued retry; None
        when there is nothing to wait for (no injector or empty queue)."""
        if self.injector is None or not self.queue:
            return None
        now = self.disk.clock.now
        target = min(job.retry_at for i, job in enumerate(self.queue)
                     if self._eligible_now(job, i))
        if target <= now:
            return 0.0
        self.disk.clock.advance(target - now)
        return target - now

    def _fill_threads(self) -> None:
        """Activate queued work, then ask the provider, while threads idle."""
        while len(self.active) < self.threads and self.queue:
            job = self._pop_ready()
            if job is None:
                break
            self._activate(job)
        if self.provider is not None:
            while len(self.active) < self.threads and not self._queue_ready():
                job = self.provider()
                if job is None:
                    break
                self._activate(job)

    # ------------------------------------------------------------------- pump
    def pump(self) -> None:
        """Drain active-job debt from device idle time up to "now"."""
        if self.scheduler == "legacy":
            self._pump_legacy()
            return
        while True:
            self._fill_threads()
            if not self.active:
                return
            progressed = False
            contested = len({j.klass for j in self.active}) > 1
            for job in self._fair_order():
                if job.state != ACTIVE:
                    continue
                disk = self._drain_disk(job)
                ask = min(job.debt_s, FAIR_QUANTUM_S) if contested else job.debt_s
                granted = disk.bg_grant(job.not_before, ask, self.lookahead_s)
                if granted > 0.0:
                    progressed = True
                    job.debt_s -= granted
                    job.not_before = disk.busy_until
                    self._account_drain(job, granted)
                    if job.debt_s <= 1e-12:
                        job.debt_s = 0.0
                        self._retire(job)
            if not progressed:
                return

    def _pump_legacy(self) -> None:
        """The original pure round-robin pump (legacy_gate byte identity)."""
        while True:
            self._fill_threads()
            if not self.active:
                return
            progressed = False
            for job in list(self.active):
                disk = self._drain_disk(job)
                granted = disk.bg_grant(job.not_before, job.debt_s, self.lookahead_s)
                if granted > 0.0:
                    progressed = True
                    job.debt_s -= granted
                    job.not_before = disk.busy_until
                    self._account_drain(job, granted)
                    if job.debt_s <= 1e-12:
                        job.debt_s = 0.0
                        self._retire(job)
            if not progressed:
                return

    def _fair_order(self) -> List[BackgroundJob]:
        """Active jobs in weighted-fair drain order.

        Ascending class virtual time (drained seconds over class weight) --
        the class that has consumed the least weighted device share drains
        first -- with activation order as the tie-break, which keeps the
        flush class strictly FIFO.
        """
        vtime = {cls: self.class_drained_s[cls] / CLASS_WEIGHTS[cls]
                 for cls in CLASS_WEIGHTS}
        return sorted(self.active, key=lambda j: (vtime[j.klass], j.seq))

    def _account_drain(self, job: BackgroundJob, drained_s: float) -> None:
        """Attribute ``drained_s`` of retired debt to the job's class."""
        self.bg_drained_s += drained_s
        self.class_drained_s[job.klass] += drained_s

    @effects("SPAN_END", "STATE_MUTATE")
    def _retire(self, job: BackgroundJob) -> None:
        if job in self.active:
            self.active.remove(job)
        job.state = DONE
        self.completed_jobs += 1
        self.failed_streak = 0
        if self.tracer.enabled:
            # The end mirrors the begin's id; on_complete runs after so any
            # follow-up submissions trace strictly inside causal order.
            self.tracer.end("job", job.name, job.job_id, debt_s=job.debt_total)
        if job.on_complete is not None:
            job.on_complete()

    # ---------------------------------------------------------------- waiting
    def wait_for(self, job: BackgroundJob, *,
                 reason: Optional[str] = None) -> float:
        """Stall until ``job`` completes; returns elapsed simulated time.

        When the wait actually blocked (elapsed > 0), the stall is recorded
        as structured data -- reason, duration -- in the attached metrics
        registry, and as a trace instant when tracing is enabled.
        """
        elapsed = 0.0
        guard = 0
        while not job.done:
            guard += 1
            if guard > 1_000_000:
                raise InvariantViolation(f"wait_for({job.name}) did not converge")
            self._fill_threads()
            if job.state == ACTIVE:
                elapsed += self._drain_one(job)
            elif self.active:
                # Jobs holding the threads must finish before ours activates.
                elapsed += self._drain_one(self.active[0])
            else:
                slept = self._sleep_until_ready()
                if slept is None:
                    raise InvariantViolation(
                        f"job {job.name} pending but no thread busy")
                elapsed += slept
        if elapsed > 0.0:
            why = reason if reason is not None else f"wait:{job.name}"
            if self.metrics is not None:
                self.metrics.add_stall(why, elapsed)
            if self.tracer.enabled:
                self.tracer.instant("stall", "stall", reason=why,
                                    duration_s=elapsed)
        return elapsed

    def drain_all(self) -> float:
        """Synchronously finish every pending job (end-of-run barrier)."""
        elapsed = 0.0
        while True:
            self._fill_threads()
            if not self.active:
                if self.queue:
                    slept = self._sleep_until_ready()
                    if slept is None:
                        raise InvariantViolation("queued jobs but no free thread")
                    elapsed += slept
                    continue
                return elapsed
            elapsed += self._drain_one(self.active[0])

    def drain_queue_only(self) -> float:
        """Finish submitted jobs without consulting the provider."""
        elapsed = 0.0
        provider, self.provider = self.provider, None
        try:
            while self.active or self.queue:
                self._fill_threads()
                if self.active:
                    elapsed += self._drain_one(self.active[0])
                elif self.queue:
                    slept = self._sleep_until_ready()
                    if slept is None:
                        raise InvariantViolation(
                            "queued jobs but no free thread")
                    elapsed += slept
        finally:
            self.provider = provider
        return elapsed

    def step_drain(self) -> float:
        """Synchronously finish the head active job (stall helper).

        Fills idle threads first so pending/provided work can activate.
        Returns the elapsed simulated time (0.0 when nothing is running).
        """
        self._fill_threads()
        if not self.active:
            slept = self._sleep_until_ready()
            if slept is None:
                return 0.0
            self._fill_threads()
            if not self.active:
                return slept
            return slept + self._drain_one(self.active[0])
        return self._drain_one(self.active[0])

    # --------------------------------------------------------------- crashing
    @effects("SPAN_END", "STATE_MUTATE")
    def abandon_all(self) -> int:
        """Hard-crash model: drop every in-flight and queued job on the floor.

        Active jobs have already applied their structural effect; the caller
        (``IamDB.crash_and_recover``) rolls that back by restoring the last
        manifest checkpoint.  Synthetic span ends keep the tracer balanced
        for jobs whose begin was already emitted.  Returns the number of
        jobs abandoned.
        """
        n = len(self.active) + len(self.queue)
        for job in self.active:
            job.state = DONE
            job.failed = True
            job.debt_s = 0.0
            if self.tracer.enabled:
                self.tracer.end("job", job.name, job.job_id, aborted=True)
        for job in self.queue:
            job.state = DONE
            job.failed = True
        self.active.clear()
        self.queue.clear()
        self.failed_streak = 0
        return n

    def _drain_one(self, job: BackgroundJob) -> float:
        self._account_drain(job, job.debt_s)
        disk = self._drain_disk(job)
        elapsed = disk.sync_drain(job.debt_s)
        job.debt_s = 0.0
        self._retire(job)
        return elapsed
