"""Manifest: durable metadata of the tree structure.

LevelDB persists version edits to a MANIFEST file; LSA additionally relies on
cheap metadata-only "move down" operations (§4.2.1), which are manifest edits
rather than data rewrites.  The simulated manifest stores an opaque
checkpoint object (the engine's serialized structure) plus an edit counter,
and charges a small sequential write per edit.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.storage.runtime import Runtime

#: Charged bytes per manifest edit (a version-edit record is tiny).
EDIT_BYTES = 64


class Manifest:
    """Durable structure metadata for one DB instance."""

    def __init__(self, runtime: Runtime) -> None:
        self.runtime = runtime
        self._file = runtime.create_file()
        self._checkpoint: Optional[Any] = None
        self.edits = 0
        #: Optional durable mirror (an ``ObjStoreTier``): when set, every
        #: checkpoint is also appended to the shared manifest log.  Duck
        #: typed -- anything with ``on_checkpoint(state)`` -- so the
        #: storage layer stays import-free of :mod:`repro.objstore`.
        self.mirror: Optional[Any] = None

    def log_edit(self) -> float:
        """Charge one metadata edit; returns the foreground latency."""
        self.edits += 1
        self._file.grow(EDIT_BYTES)
        return self.runtime.disk.fg_stream(nbytes_write=EDIT_BYTES)

    def checkpoint(self, state: Any) -> None:
        """Store the engine's durable structure snapshot.

        ``state`` must be an *owned* snapshot -- pure data, no references to
        live engine structure.  The manifest stores it verbatim; if a caller
        hands over live objects, post-checkpoint mutations would leak into
        what :meth:`restore` returns and recovery would see a future it
        should not know about.  Engines honour this by returning pure-data
        snapshots from ``checkpoint_state()`` (tuples of block metadata, not
        node/table objects); ``tests/test_wal_manifest.py`` pins it down.

        With a :attr:`mirror` attached the same owned state is appended to
        the shared manifest log (sharing the reference is safe for the
        same reason storing it verbatim is).
        """
        self._checkpoint = state
        if self.mirror is not None:
            self.mirror.on_checkpoint(state)

    def restore(self) -> Optional[Any]:
        """The last checkpointed structure (None before the first one)."""
        return self._checkpoint

    @property
    def nbytes(self) -> int:
        return self._file.nbytes

    @property
    def file_id(self) -> int:
        return self._file.file_id
