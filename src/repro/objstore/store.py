"""Simulated shared object store on the cluster's sim clock.

The store models a disaggregated blob service (S3-style): a flat namespace
of **immutable** objects behind a single high-bandwidth channel with
per-request latency.  Requests queue FIFO on a ``busy_until`` horizon
exactly like :class:`~repro.storage.simdisk.SimDisk`'s single channel and
:class:`~repro.cluster.network.SimNetwork`'s links, so store traffic and
local disk I/O interleave on the one shared timeline.

Two charging modes mirror the storage runtime's foreground/background
split:

* :meth:`SimObjectStore.put` / :meth:`get` / :meth:`list_prefix` /
  :meth:`delete` -- foreground requests.  The caller waits: the shared
  clock advances past queueing behind earlier requests plus the request's
  own service time (``latency_s`` + bytes/bandwidth).
* :meth:`reserve_put` / :meth:`reserve_delete` -- background requests
  (MSTable mirroring, tombstone cleanup).  The channel is reserved FIFO
  but the clock does not move; the returned duration is the transfer's
  tail, and later foreground requests queue behind it -- uploads overlap
  foreground work the way compactions overlap queries.

Objects are write-once: a second ``put`` of a live name is an
:class:`~repro.common.errors.InvariantViolation`.  Growing local files
(IAM/LSA nodes append sequences in place) therefore mirror under
*size-versioned* names -- a new object per (file, size) version, with the
stale version tombstoned -- which is how the manifest log keeps every
referenced object immutable (IceDB's append-only design, SNIPPETS.md §1).

The zero store (``ObjStoreOptions.zero()``) has no latency, infinite
bandwidth and no framing: every request takes exactly 0 simulated seconds
and never advances the clock, which is what makes an objstore-mirrored DB
byte-identical to a bare one (``tests/test_objstore_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, InvariantViolation
from repro.storage.simdisk import SimClock
from repro.check.effects.registry import effects

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.plan import FaultInjector

#: Default channel bandwidth: 1 GiB/s (a fat pipe to the blob service,
#: slower than the 2 GiB/s cluster fabric, faster than one SSD's
#: sequential stream -- the store is remote but wide).
DEFAULT_BANDWIDTH = float(1024**3)

#: Default per-request latency: 2ms first-byte (S3-ish within a region,
#: ~40x a local SSD seek, so request *count* matters more than bytes).
DEFAULT_LATENCY_S = 2e-3

#: Default fixed framing/metadata overhead per request (HTTP + auth).
DEFAULT_REQUEST_BYTES = 256


@dataclass(frozen=True)
class ObjStoreOptions:
    """Service parameters of the simulated object store."""

    #: Per-request first-byte latency, in seconds.
    latency_s: float = DEFAULT_LATENCY_S
    #: Channel bandwidth in bytes/second (``float("inf")`` = free bytes).
    bandwidth: float = DEFAULT_BANDWIDTH
    #: Fixed framing overhead added to every request's payload.
    request_bytes: int = DEFAULT_REQUEST_BYTES

    def __post_init__(self) -> None:
        if self.latency_s < 0.0:
            raise ConfigError("objstore latency_s must be >= 0")
        if not self.bandwidth > 0.0:
            raise ConfigError("objstore bandwidth must be > 0")
        if self.request_bytes < 0:
            raise ConfigError("objstore request_bytes must be >= 0")

    @staticmethod
    def zero() -> "ObjStoreOptions":
        """The free store: zero latency, infinite bandwidth, no framing."""
        return ObjStoreOptions(latency_s=0.0, bandwidth=float("inf"),
                               request_bytes=0)


class _StoredObject:
    """One immutable object: size plus the sim time its upload lands."""

    __slots__ = ("nbytes", "created_at", "ready_at")

    def __init__(self, nbytes: int, created_at: float, ready_at: float) -> None:
        self.nbytes = nbytes
        self.created_at = created_at
        self.ready_at = ready_at


class SimObjectStore:
    """Immutable put/get/list/delete blob store, one FIFO channel."""

    def __init__(self, clock: SimClock,
                 options: Optional[ObjStoreOptions] = None) -> None:
        self.clock = clock
        self.options = options if options is not None else ObjStoreOptions()
        #: Live objects by name.  The mapping *is* the durable state: what
        #: survives a simulated process crash is exactly what is in here
        #: (the store is a separate service; node crashes do not touch it).
        self.objects: Dict[str, _StoredObject] = {}
        #: Single-channel FIFO horizon (sim time the channel is busy
        #: through), shared by foreground and background requests.
        self._busy_until = 0.0
        #: Fault injector; None = no transient request faults.
        self.faults: Optional["FaultInjector"] = None
        # Request counters for the report / sampler.
        self.puts = 0
        self.gets = 0
        self.lists = 0
        self.deletes = 0
        self.bytes_up = 0
        self.bytes_down = 0

    # ------------------------------------------------------------------ model
    def service_time(self, nbytes: int, requests: int = 1) -> float:
        """Latency + transfer time of ``requests`` requests of ``nbytes``."""
        t = requests * self.options.latency_s
        total = nbytes + requests * self.options.request_bytes
        if total > 0:
            t += total / self.options.bandwidth
        return t

    def _enqueue(self, nbytes: int, requests: int = 1) -> Tuple[float, float]:
        """Reserve the channel FIFO; returns (start, end) sim times."""
        service = self.service_time(nbytes, requests)
        start = self._busy_until
        if start < self.clock.now:
            start = self.clock.now
        end = start + service
        self._busy_until = end
        return start, end

    def _fg_request(self, nbytes: int, requests: int = 1) -> Tuple[float, float]:
        """Foreground request: advance the clock; (elapsed, queued)."""
        if self.faults is not None:
            self.faults.on_objstore_request(self)
        start, end = self._enqueue(nbytes, requests)
        now = self.clock.now
        queued = start - now
        elapsed = end - now
        if elapsed > 0.0:
            self.clock.advance(elapsed)
        return elapsed, (queued if queued > 0.0 else 0.0)

    # ------------------------------------------------------------- foreground
    @effects("CLOCK_ADVANCE", "OBJSTORE_CHARGE", "STATE_MUTATE")
    def put(self, name: str, nbytes: int) -> Tuple[float, float]:
        """Upload one immutable object synchronously; (elapsed, queued).

        The caller waits for the upload to land (manifest-log entries are
        written this way: the cut is durable when the call returns).
        """
        if name in self.objects:
            raise InvariantViolation(
                f"objstore put of existing object {name!r} (objects are "
                f"immutable; version the name instead)")
        elapsed, queued = self._fg_request(nbytes)
        self.puts += 1
        self.bytes_up += nbytes
        self.objects[name] = _StoredObject(nbytes, self.clock.now,
                                           self.clock.now)
        return elapsed, queued

    @effects("CLOCK_ADVANCE", "OBJSTORE_CHARGE", "STATE_MUTATE")
    def get(self, name: str) -> Tuple[float, float]:
        """Download one object synchronously; returns (elapsed, queued).

        The single FIFO channel already orders a get behind any in-flight
        background upload, so an object reserved earlier is always fully
        landed by the time a later get's service window starts.
        """
        obj = self.objects.get(name)
        if obj is None:
            raise InvariantViolation(f"objstore get of missing object {name!r}")
        elapsed, queued = self._fg_request(obj.nbytes)
        self.gets += 1
        self.bytes_down += obj.nbytes
        return elapsed, queued

    @effects("CLOCK_ADVANCE", "OBJSTORE_CHARGE", "STATE_MUTATE")
    def read_fill(self, nbytes: int, requests: int) -> Tuple[float, float]:
        """Charge a ranged read of ``nbytes`` in ``requests`` GETs.

        Serves page-cache fills from the store (tiered reads): each run of
        consecutive missing blocks costs one ranged request, mirroring how
        :meth:`~repro.storage.runtime.Runtime.fg_read_blocks` charges one
        seek per run.  Returns (elapsed, queued).
        """
        if nbytes <= 0 or requests <= 0:
            return 0.0, 0.0
        elapsed, queued = self._fg_request(nbytes, requests)
        self.gets += requests
        self.bytes_down += nbytes
        return elapsed, queued

    @effects("CLOCK_ADVANCE", "OBJSTORE_CHARGE", "STATE_MUTATE")
    def list_prefix(self, prefix: str) -> Tuple[List[str], float]:
        """List live object names under ``prefix``, sorted; (names, elapsed)."""
        elapsed, _ = self._fg_request(0)
        self.lists += 1
        names = sorted(n for n in self.objects if n.startswith(prefix))
        return names, elapsed

    @effects("CLOCK_ADVANCE", "OBJSTORE_CHARGE", "STATE_MUTATE")
    def delete(self, name: str) -> float:
        """Delete one object synchronously; returns the elapsed sim time."""
        if name not in self.objects:
            raise InvariantViolation(
                f"objstore delete of missing object {name!r}")
        elapsed, _ = self._fg_request(0)
        self.deletes += 1
        del self.objects[name]
        return elapsed

    # ------------------------------------------------------------- background
    def reserve_put(self, name: str, nbytes: int) -> float:
        """Reserve a background upload; returns its tail, clock untouched.

        The object is visible immediately with ``ready_at`` at the end of
        its channel window; because the channel is one FIFO, every later
        request -- including a follower's bootstrap get -- starts after the
        upload lands.  Used for mirroring flushed/compacted MSTables.
        """
        if name in self.objects:
            raise InvariantViolation(
                f"objstore put of existing object {name!r} (objects are "
                f"immutable; version the name instead)")
        _, end = self._enqueue(nbytes)
        self.puts += 1
        self.bytes_up += nbytes
        self.objects[name] = _StoredObject(nbytes, self.clock.now, end)
        return end - self.clock.now

    def reserve_delete(self, name: str) -> float:
        """Reserve a background delete (tombstone cleanup); returns its tail."""
        if name not in self.objects:
            raise InvariantViolation(
                f"objstore delete of missing object {name!r}")
        _, end = self._enqueue(0)
        self.deletes += 1
        del self.objects[name]
        return end - self.clock.now

    # ------------------------------------------------------------- inspection
    def exists(self, name: str) -> bool:
        return name in self.objects

    def size_of(self, name: str) -> int:
        """Size in bytes of a live object (raises if missing)."""
        obj = self.objects.get(name)
        if obj is None:
            raise InvariantViolation(f"objstore size_of missing object {name!r}")
        return obj.nbytes

    @property
    def live_bytes(self) -> int:
        return sum(obj.nbytes for obj in self.objects.values())

    @property
    def requests(self) -> int:
        return self.puts + self.gets + self.lists + self.deletes

    def snapshot(self) -> Dict[str, object]:
        """Deterministic counter dump for the cluster report."""
        return {
            "objects": len(self.objects),
            "live_bytes": self.live_bytes,
            "puts": self.puts,
            "gets": self.gets,
            "lists": self.lists,
            "deletes": self.deletes,
            "bytes_up": self.bytes_up,
            "bytes_down": self.bytes_down,
            "requests": self.requests,
        }
