"""Shared-storage tier: a simulated object store + log of manifests.

See :mod:`repro.objstore.store` (the store), :mod:`repro.objstore.manifestlog`
(IceDB-style append-only manifest log) and :mod:`repro.objstore.tiering`
(checkpoint mirroring, follower bootstrap, time travel).
"""

from repro.objstore.manifestlog import ManifestCut, SharedManifestLog
from repro.objstore.store import ObjStoreOptions, SimObjectStore
from repro.objstore.tiering import (AsOfReader, ObjStoreTier,
                                    bootstrap_from_store, open_as_of)

__all__ = [
    "AsOfReader",
    "ManifestCut",
    "ObjStoreOptions",
    "ObjStoreTier",
    "SharedManifestLog",
    "SimObjectStore",
    "bootstrap_from_store",
    "open_as_of",
]
