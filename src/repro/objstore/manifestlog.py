"""Append-only log of manifest cuts on the shared object store.

Reproduces IceDB's log-of-manifests design (SNIPPETS.md §1): instead of a
mutable MANIFEST file, the durable metadata is an append-only sequence of
immutable **log entry objects**, one per checkpoint cut.  Each entry
models an NDJSON segment with a metadata header, a schema line, one file
marker per live data object, and one tombstone line per object version
the cut supersedes.  Readers (follower bootstrap, time travel) list the
log prefix and replay entries; writers never coordinate -- an entry is
durable iff its object exists.

Because every entry is a single immutable object written with one
synchronous put, **torn log tails snap to whole entries by construction**:
a crash mid-append leaves either the previous log (entry object absent)
or the full new entry -- never a half-parsed line.  Data objects uploaded
for a cut that never landed are unreferenced and swept by
:meth:`SharedManifestLog.recover`.

Garbage collection is reachability-based and therefore recomputable after
any crash: an object (log segment or data object) is dead when no *live*
cut references it.  The tombstone-cleanup compactor
(:meth:`SharedManifestLog.cleanup`, driven by
:class:`~repro.objstore.tiering.ObjStoreTier`) deletes dead objects with
background requests on the store's own channel -- deliberately *not* via
the shared :class:`~repro.storage.background.BackgroundPool`, whose job
activation fires crash points and reorders provider consultation; store
housekeeping must not perturb the local engine's schedule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.objstore.store import SimObjectStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.runtime import Runtime

#: Modeled size of one entry's metadata header line (cut id, seq, counts).
CUT_HEADER_BYTES = 96
#: Modeled size of the schema line (IceDB entries carry the table schema).
SCHEMA_BYTES = 48
#: Modeled size of one live-file marker line (name, size, level hints).
FILE_MARKER_BYTES = 72
#: Modeled size of one tombstone line (superseded object version).
TOMBSTONE_BYTES = 40

#: Default number of recent cuts retained for time travel; older cuts
#: become dead log segments for the cleanup compactor.
DEFAULT_RETAIN_CUTS = 8


class ManifestCut:
    """One durable checkpoint cut: a whole log entry, never partial."""

    __slots__ = ("cut_id", "seq", "state", "files", "tombstones",
                 "log_object", "entry_bytes")

    def __init__(self, cut_id: int, seq: int, state: Any,
                 files: Tuple[str, ...], tombstones: Tuple[str, ...],
                 log_object: str, entry_bytes: int) -> None:
        self.cut_id = cut_id
        #: Sequence number the cut covers (flushed-through seq).
        self.seq = seq
        #: The owned pure-data engine checkpoint (``{"engine":..., "seq":...}``,
        #: exactly what :class:`~repro.storage.manifest.Manifest` stores).
        self.state = state
        #: Names of the data objects holding the cut's live files.
        self.files = files
        #: Object versions this cut superseded (informational; GC is
        #: reachability-based, see module docstring).
        self.tombstones = tombstones
        #: Name of the log entry object carrying this cut.
        self.log_object = log_object
        self.entry_bytes = entry_bytes


def entry_bytes(n_files: int, n_tombstones: int) -> int:
    """Modeled encoded size of one log entry."""
    return (CUT_HEADER_BYTES + SCHEMA_BYTES + n_files * FILE_MARKER_BYTES
            + n_tombstones * TOMBSTONE_BYTES)


class SharedManifestLog:
    """Append-only manifest log under one store prefix (one shard)."""

    def __init__(self, store: SimObjectStore, prefix: str, *,
                 retain_cuts: int = DEFAULT_RETAIN_CUTS) -> None:
        self.store = store
        self.prefix = prefix
        self.retain_cuts = retain_cuts
        #: Live cuts, ascending cut id (the retained time-travel window).
        self._cuts: List[ManifestCut] = []
        #: Durable entry payloads by log object name -- the decoded contents
        #: of every log object still in the store (live *and* dead segments;
        #: a dead segment's payload is dropped once its object is deleted).
        self._segments: Dict[str, ManifestCut] = {}
        self._next_cut_id = 1

    # ----------------------------------------------------------------- append
    def append_cut(self, runtime: "Runtime", *, seq: int, state: Any,
                   files: Tuple[str, ...],
                   tombstones: Tuple[str, ...]) -> ManifestCut:
        """Append one whole cut entry with a synchronous foreground put.

        Durable when this returns; a crash before the put leaves the log
        exactly at the previous cut.  Cuts pushed out of the retention
        window stay in the store as dead segments until :meth:`cleanup`.
        """
        cut_id = self._next_cut_id
        self._next_cut_id += 1
        name = f"{self.prefix}log/{cut_id:08d}"
        nbytes = entry_bytes(len(files), len(tombstones))
        runtime.objstore_put(name, nbytes)
        cut = ManifestCut(cut_id, seq, state, files, tombstones, name, nbytes)
        self._segments[name] = cut
        self._cuts.append(cut)
        while len(self._cuts) > self.retain_cuts:
            self._cuts.pop(0)
        return cut

    # ----------------------------------------------------------------- lookup
    @property
    def cuts(self) -> List[ManifestCut]:
        """Live (retained) cuts, ascending cut id; do not mutate."""
        return self._cuts

    def latest_cut(self) -> Optional[ManifestCut]:
        return self._cuts[-1] if self._cuts else None

    def cut(self, cut_id: int) -> Optional[ManifestCut]:
        """The retained cut with exactly ``cut_id``, or None."""
        for c in self._cuts:
            if c.cut_id == cut_id:
                return c
        return None

    # --------------------------------------------------------------- cleanup
    def gc_candidates(self) -> List[str]:
        """Objects no live cut references (dead segments + stale versions).

        Recomputed from reachability every time, so the set is correct
        after any crash: an object is garbage iff it is known to the log
        (a segment, or referenced by one) but unreachable from the
        retained cuts.
        """
        keep = {c.log_object for c in self._cuts}
        for c in self._cuts:
            keep.update(c.files)
        known = set()
        for cut in self._segments.values():
            known.add(cut.log_object)
            known.update(cut.files)
        return sorted(n for n in known - keep if self.store.exists(n))

    def cleanup(self, runtime: "Runtime") -> int:
        """Delete dead objects with background requests; returns the count.

        Requests reserve the store's FIFO channel without moving the clock
        (the compactor runs behind foreground traffic); entry payloads of
        deleted segments are forgotten, which is what *truncating* a dead
        log segment means in this model.
        """
        victims = self.gc_candidates()
        for name in victims:
            runtime.objstore_reserve_delete(name)
        if victims:
            live = {c.log_object for c in self._cuts}
            self._segments = {n: c for n, c in self._segments.items()
                              if n in live}
        return len(victims)

    # --------------------------------------------------------------- recovery
    def recover(self, runtime: "Runtime") -> Dict[str, int]:
        """Rebuild the live cut list from store contents; sweep orphans.

        The store survives a node crash (it is a separate service), so the
        authoritative state is whatever objects exist: present log
        segments become the cut list (whole entries by construction), and
        objects referenced by *no* present segment -- data uploaded for a
        cut whose entry never landed -- are swept with foreground deletes.
        """
        listed = runtime.objstore_list(self.prefix)
        present = set(listed)
        segs = sorted((c for n, c in self._segments.items() if n in present),
                      key=lambda c: c.cut_id)
        self._segments = {c.log_object: c for c in segs}
        self._cuts = list(segs)
        while len(self._cuts) > self.retain_cuts:
            self._cuts.pop(0)
        keep = set(self._segments)
        for c in segs:
            keep.update(c.files)
        orphans = [n for n in listed if n not in keep]
        for name in orphans:
            runtime.objstore_delete(name)
        return {"cuts": len(self._cuts), "orphans_swept": len(orphans)}

    # ------------------------------------------------------------- inspection
    def verify(self) -> List[str]:
        """Structural problems (empty list = healthy), for invariant sweeps.

        Checks the whole-entry property observable after any crash: cut
        ids strictly ascend, every retained cut's entry object exists, and
        every data object a retained cut references exists in the store.
        """
        problems: List[str] = []
        prev_id = 0
        for c in self._cuts:
            if c.cut_id <= prev_id:
                problems.append(
                    f"cut ids not ascending: {c.cut_id} after {prev_id}")
            prev_id = c.cut_id
            if not self.store.exists(c.log_object):
                problems.append(f"live cut {c.cut_id} entry object missing: "
                                f"{c.log_object}")
            for name in c.files:
                if not self.store.exists(name):
                    problems.append(
                        f"cut {c.cut_id} references missing object {name}")
        return problems

    def snapshot(self) -> Dict[str, object]:
        """Deterministic summary for reports."""
        latest = self.latest_cut()
        return {
            "prefix": self.prefix,
            "cuts": len(self._cuts),
            "segments": len(self._segments),
            "latest_cut_id": latest.cut_id if latest is not None else 0,
            "latest_seq": latest.seq if latest is not None else 0,
        }
