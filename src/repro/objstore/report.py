"""Formatting helpers for shared-storage telemetry (observation-only).

Rolls :meth:`~repro.objstore.store.SimObjectStore.snapshot` and
:meth:`~repro.objstore.manifestlog.SharedManifestLog.snapshot` dicts into a
compact summary dict and a human-readable report block for the CLI.  The
whole module is observation-only by registry prefix (see
``repro.check.effects.registry.OBSERVATION_ONLY_PREFIXES``): it reads
snapshots, it never touches the clock, a device, or the store itself.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence


def _mib(nbytes: object) -> float:
    return float(int(nbytes)) / (1024.0 * 1024.0)  # type: ignore[arg-type]


def objstore_summary(store_snapshot: Mapping[str, Any],
                     log_snapshots: Sequence[Mapping[str, Any]] = (),
                     ) -> Dict[str, Any]:
    """One JSON-able roll-up of a store snapshot plus its manifest logs."""
    logs: List[Dict[str, Any]] = []
    for log in log_snapshots:
        logs.append({
            "prefix": log.get("prefix", ""),
            "live_cuts": int(log.get("cuts", 0)),  # type: ignore[arg-type]
            "segments": int(log.get("segments", 0)),  # type: ignore[arg-type]
            "latest_cut_id": int(log.get("latest_cut_id", 0)),
            "latest_seq": int(log.get("latest_seq", 0)),
        })
    return {
        "objects": int(store_snapshot.get("objects", 0)),
        "live_bytes": int(store_snapshot.get("live_bytes", 0)),
        "requests": int(store_snapshot.get("requests", 0)),
        "puts": int(store_snapshot.get("puts", 0)),
        "gets": int(store_snapshot.get("gets", 0)),
        "lists": int(store_snapshot.get("lists", 0)),
        "deletes": int(store_snapshot.get("deletes", 0)),
        "bytes_up": int(store_snapshot.get("bytes_up", 0)),
        "bytes_down": int(store_snapshot.get("bytes_down", 0)),
        "manifest_logs": logs,
    }


def format_objstore_report(summary: Mapping[str, Any]) -> str:
    """Render an :func:`objstore_summary` dict as an aligned text block."""
    lines = [
        "object store:",
        f"  objects       {summary.get('objects', 0):>10}"
        f"  ({_mib(summary.get('live_bytes', 0)):.2f} MiB live)",
        f"  requests      {summary.get('requests', 0):>10}"
        f"  (put {summary.get('puts', 0)}, get {summary.get('gets', 0)},"
        f" list {summary.get('lists', 0)},"
        f" delete {summary.get('deletes', 0)})",
        f"  bytes up      {_mib(summary.get('bytes_up', 0)):>10.2f} MiB",
        f"  bytes down    {_mib(summary.get('bytes_down', 0)):>10.2f} MiB",
    ]
    raw_logs = summary.get("manifest_logs", ())
    if isinstance(raw_logs, (list, tuple)):
        for log in raw_logs:
            if not isinstance(log, Mapping):
                continue
            lines.append(
                f"  log {str(log.get('prefix', '')):<12}"
                f" cut {log.get('latest_cut_id', 0)}"
                f" @ seq {log.get('latest_seq', 0)}"
                f" ({log.get('live_cuts', 0)} live /"
                f" {log.get('segments', 0)} segments)")
    return "\n".join(lines)
