"""Tiering: mirror local LSM state to the object store; read it back.

Three consumers of :class:`~repro.objstore.manifestlog.SharedManifestLog`:

* :class:`ObjStoreTier` -- attached to a (leader) DB, it mirrors every
  :class:`~repro.storage.manifest.Manifest` checkpoint durably to the
  store: background uploads of new/changed MSTable files (size-versioned
  immutable objects), then one synchronous log-entry put, then -- every
  ``cleanup_interval`` cuts -- the tombstone-cleanup compactor.  The local
  write path is untouched: with a zero-latency store the mirrored run is
  byte-identical to a bare one.
* :func:`bootstrap_from_store` -- point a fresh DB at the latest cut:
  fetch the entry + data objects (foreground gets, charged to the new
  node), restore the engine structure locally, adopt the cut's seq.  The
  leader then only ships the unflushed WAL tail.
* :class:`AsOfReader` -- time travel: restore an older retained cut into
  a scratch engine whose page-cache misses fill **from the store** at
  store latency (:class:`AsOfRuntime`), so historical reads cost what a
  disaggregated reader pays.

Crash sites (see :data:`repro.faults.crash.CRASH_SITES`): uploads land
before ``pre-objstore-log``; the cut entry lands between
``pre-objstore-log`` and ``post-objstore-log``; cleanup deletes happen
after ``mid-objstore-cleanup``.  A crash at any of them leaves the log on
a whole-entry boundary; :meth:`SharedManifestLog.recover` sweeps data
objects whose cut never landed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.options import StorageOptions
from repro.common.records import KIND, DELETE, Key, VALUE, Value
from repro.metrics import MetricsRegistry
from repro.objstore.manifestlog import ManifestCut, SharedManifestLog
from repro.objstore.store import SimObjectStore
from repro.storage.runtime import Runtime
from repro.storage.simdisk import SimClock
from repro.check.effects.registry import effects

if TYPE_CHECKING:  # pragma: no cover
    from repro.db.iamdb import IamDB

#: Run the tombstone-cleanup compactor every this many cuts.
DEFAULT_CLEANUP_INTERVAL = 4


class ObjStoreTier:
    """Mirrors one DB's manifest checkpoints to the shared store."""

    def __init__(self, db: "IamDB", log: SharedManifestLog, *,
                 node_tag: str = "n0",
                 cleanup_interval: int = DEFAULT_CLEANUP_INTERVAL) -> None:
        self.db = db
        self.log = log
        self.store = log.store
        #: Name prefix distinguishing this node's uploads (object names
        #: must be globally unique; after a failover the new leader
        #: mirrors under its own tag, so versions never collide).
        self.node_tag = node_tag
        self.cleanup_interval = cleanup_interval
        #: file_id -> (object name, mirrored nbytes).  IAM/LSA node files
        #: grow in place, so an unchanged size means the mirrored version
        #: is current; a grown file gets a new size-versioned object.
        self.mirrored: Dict[int, Tuple[str, int]] = {}
        self._cuts_since_cleanup = 0
        db.runtime.attach_objstore(self.store)
        db.manifest.mirror = self

    # -------------------------------------------------------------- lifecycle
    def detach(self) -> None:
        """Stop mirroring (the manifest keeps working locally)."""
        if self.db.manifest.mirror is self:
            self.db.manifest.mirror = None

    def _crash_point(self, site: str) -> None:
        cp = self.db.runtime.crash_points
        if cp is not None:
            cp.reached(site)

    # ------------------------------------------------------------ mirror path
    def on_checkpoint(self, state: Any) -> None:
        """Mirror one manifest checkpoint durably (manifest hook).

        Runs synchronously inside :meth:`Manifest.checkpoint`: data-object
        uploads are background reserves on the store channel (the clock
        does not move), the log entry is one foreground put, and the
        cleanup compactor fires every ``cleanup_interval`` cuts.
        """
        db = self.db
        runtime = db.runtime
        disk_files = runtime.disk.files
        live: Dict[int, int] = {}
        for fid in sorted(db.engine.live_file_ids()):
            f = disk_files.get(fid)
            if f is not None:
                live[fid] = f.nbytes
        tombstones: List[str] = []
        for fid in sorted(live):
            nbytes = live[fid]
            prev = self.mirrored.get(fid)
            if prev is not None and prev[1] == nbytes:
                continue
            name = f"{self.log.prefix}{self.node_tag}/obj/{fid:08d}.{nbytes}"
            runtime.objstore_reserve_put(name, nbytes)
            if prev is not None:
                tombstones.append(prev[0])
            self.mirrored[fid] = (name, nbytes)
        for fid in sorted(set(self.mirrored) - set(live)):
            tombstones.append(self.mirrored.pop(fid)[0])
        self._crash_point("pre-objstore-log")
        files = tuple(sorted(name for name, _ in self.mirrored.values()))
        self.log.append_cut(runtime, seq=int(state["seq"]), state=state,
                            files=files, tombstones=tuple(sorted(tombstones)))
        self._crash_point("post-objstore-log")
        self._cuts_since_cleanup += 1
        if self._cuts_since_cleanup >= self.cleanup_interval:
            self._cuts_since_cleanup = 0
            if self.log.gc_candidates():
                self._crash_point("mid-objstore-cleanup")
                n = self.log.cleanup(runtime)
                runtime.metrics.bump("objstore:cleanup", n)
                if runtime.tracer.enabled:
                    runtime.tracer.instant("objstore", "objstore:cleanup",
                                           deleted=n)

    # --------------------------------------------------------------- recovery
    def recover(self) -> Dict[str, int]:
        """Resync after the owning DB crash-recovered.

        Local recovery rebuilt every table onto fresh files, so the
        mirror map restarts empty (next checkpoint re-uploads under new
        names; superseded versions expire with their cuts), and the log
        resyncs from store contents, sweeping objects whose cut never
        landed.
        """
        self.mirrored = {}
        self._cuts_since_cleanup = 0
        return self.log.recover(self.db.runtime)


# ------------------------------------------------------------------ bootstrap
def bootstrap_from_store(db: "IamDB", log: SharedManifestLog) -> Dict[str, int]:
    """Restore a fresh DB from the latest manifest cut; returns a report.

    Fetches the cut entry and every referenced data object with foreground
    gets charged to ``db``'s runtime (the new node pays the transfer), then
    rebuilds the engine structure on the node's own disk and adopts the
    cut's sequence number.  The caller ships only WAL records with
    ``seq > report["seq"]`` afterwards -- the flushed prefix never crosses
    the leader's network link.
    """
    runtime = db.runtime
    runtime.attach_objstore(log.store)
    cut = log.latest_cut()
    if cut is None:
        return {"cut_id": 0, "seq": 0, "objects": 0, "bytes_down": 0}
    bytes_down = log.store.size_of(cut.log_object)
    runtime.objstore_get(cut.log_object)
    for name in cut.files:
        bytes_down += log.store.size_of(name)
        runtime.objstore_get(name)
    state = cut.state
    db.engine.restore_state(state["engine"])
    db.manifest.checkpoint(state)
    db.manifest.edits += 1
    db._seq = cut.seq
    return {"cut_id": cut.cut_id, "seq": cut.seq, "objects": len(cut.files),
            "bytes_down": bytes_down}


# ---------------------------------------------------------------- time travel
class AsOfRuntime(Runtime):
    """A scratch runtime whose query reads fill the cache from the store.

    Used by :class:`AsOfReader`: a historical cut's data lives only in the
    object store, so every page-cache miss is a ranged GET charged at
    store latency (one request per run of consecutive missing blocks,
    mirroring the one-seek-per-run convention of the local read path).
    """

    @effects("CLOCK_ADVANCE", "OBJSTORE_CHARGE", "STATE_MUTATE",
             "SPAN_BEGIN", "SPAN_END")
    def fg_read_blocks(self, file_id: int, block_nos: Iterable[int]) -> float:
        if isinstance(block_nos, range):
            n_requested = len(block_nos)
        else:
            block_nos = list(block_nos)
            n_requested = len(block_nos)
        misses: List[int] = self.cache.touch_many(file_id, block_nos)
        if not misses:
            self.metrics.add_query_io(seeks=0, hits=n_requested, misses=0)
            return 0.0
        runs = 1
        for prev, cur in zip(misses, misses[1:]):
            if cur != prev + 1:
                runs += 1
        nbytes = len(misses) * self.block_size
        elapsed = self.objstore_read_fill(nbytes, runs)
        self.cache.insert_many(file_id, misses)
        self.metrics.add_query_io(seeks=runs, hits=n_requested - len(misses),
                                  misses=len(misses))
        return elapsed


class AsOfReader:
    """Read-only view of one retained manifest cut (time travel).

    Restores the cut's engine structure into a scratch
    :class:`AsOfRuntime` on the shared clock; point reads then behave
    exactly like reads against the historical tree, with all I/O served
    from the object store.  Readers are cheap to cache per cut -- the cut
    is immutable, so the restored structure never goes stale.
    """

    def __init__(self, log: SharedManifestLog, cut: ManifestCut, *,
                 engine: str, engine_options: Any = None,
                 storage_options: Optional[StorageOptions] = None,
                 clock: Optional[SimClock] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        from repro.db.iamdb import _engine_factory
        self.cut = cut
        self.seq = cut.seq
        self.runtime = AsOfRuntime(storage_options, metrics=metrics,
                                   clock=clock)
        self.runtime.attach_objstore(log.store)
        # One foreground get replays the cut entry itself; table blocks
        # stream in lazily through the page cache as reads touch them.
        self.runtime.objstore_get(cut.log_object)
        self.engine = _engine_factory(engine, engine_options, self.runtime)
        self.engine.restore_state(cut.state["engine"])

    def get(self, key: Key) -> Optional[Value]:
        """Newest value of ``key`` as of the cut, or None."""
        rec, _ = self.engine.get(key, None)
        if rec is None or rec[KIND] == DELETE:
            return None
        value: Value = rec[VALUE]
        return value


def open_as_of(log: SharedManifestLog, cut_id: int, *, engine: str,
               engine_options: Any = None,
               storage_options: Optional[StorageOptions] = None,
               clock: Optional[SimClock] = None,
               metrics: Optional[MetricsRegistry] = None) -> AsOfReader:
    """Open an :class:`AsOfReader` at ``cut_id`` (raises if not retained)."""
    cut = log.cut(cut_id)
    if cut is None:
        retained = [c.cut_id for c in log.cuts]
        raise ConfigError(
            f"as_of_cut={cut_id} is not a retained manifest cut "
            f"(retained: {retained})")
    return AsOfReader(log, cut, engine=engine, engine_options=engine_options,
                      storage_options=storage_options, clock=clock,
                      metrics=metrics)
