"""LSA/IAM tree nodes and level bookkeeping (§4.1).

A node owns a key range ``[range_lo, range_hi]`` (inclusive) and an MSTable
holding its sequences; an *empty* node (just flushed) keeps its range but has
no table.  Within a level, node ranges are disjoint and sorted -- a point
read touches at most one node per level.

Parenting rule: a node in ``L_{i+1}`` is the child of the ``L_i`` node with
the greatest ``range_lo`` that is <= the child's ``range_lo`` (the first node
when none qualifies).  This makes child assignment a contiguous partition of
the lower level driven purely by range boundaries, so the paper's
range-adjustment operations (flush rebalancing §4.2.1, combine adoption
§4.2.3) are boundary moves with no pointer surgery.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

import numpy as np

from repro.common.errors import InvariantViolation
from repro.common.records import KEY, Key, RecordTuple
from repro.storage.runtime import Runtime
from repro.table.mstable import MSTable


class LsaNode:
    """One tree node: key range + (possibly empty) MSTable."""

    __slots__ = ("range_lo", "range_hi", "table")

    def __init__(self, range_lo: Key, range_hi: Key,
                 table: Optional[MSTable] = None) -> None:
        if range_hi < range_lo:
            raise InvariantViolation(f"bad node range [{range_lo!r}, {range_hi!r}]")
        self.range_lo = range_lo
        self.range_hi = range_hi
        self.table = table

    # ------------------------------------------------------------- properties
    @property
    def is_empty(self) -> bool:
        return self.table is None or self.table.n_sequences == 0

    @property
    def nbytes(self) -> int:
        return 0 if self.table is None else self.table.data_bytes

    @property
    def n_sequences(self) -> int:
        return 0 if self.table is None else self.table.n_sequences

    @property
    def data_min_key(self) -> Optional[Key]:
        return None if self.is_empty else self.table.min_key

    @property
    def data_max_key(self) -> Optional[Key]:
        return None if self.is_empty else self.table.max_key

    def covers(self, key: Key) -> bool:
        return self.range_lo <= key <= self.range_hi

    def overlaps(self, lo: Key, hi: Key) -> bool:
        return not (self.range_hi < lo or self.range_lo > hi)

    # ----------------------------------------------------------------- ranges
    def extend_range(self, lo: Key, hi: Key) -> None:
        """Widen the range to cover appended records (paper §4.2.1)."""
        if lo < self.range_lo:
            self.range_lo = lo
        if hi > self.range_hi:
            self.range_hi = hi

    def check_range_covers_data(self) -> None:
        if not self.is_empty:
            if not (self.range_lo <= self.table.min_key
                    and self.table.max_key <= self.range_hi):
                raise InvariantViolation(
                    f"node range [{self.range_lo!r}, {self.range_hi!r}] does not "
                    f"cover data [{self.table.min_key!r}, {self.table.max_key!r}]")

    # ------------------------------------------------------------------- I/O
    def drop_table(self) -> None:
        """Release the node's file (after its data moved down)."""
        if self.table is not None:
            self.table.delete()
            self.table = None

    def ensure_table(self, runtime: Runtime, *, key_size: int, bloom_bits_per_key: int) -> MSTable:
        if self.table is None or self.table.deleted:
            self.table = MSTable(runtime, key_size=key_size,
                                 bloom_bits_per_key=bloom_bits_per_key)
        return self.table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LsaNode([{self.range_lo!r},{self.range_hi!r}], "
                f"seqs={self.n_sequences}, bytes={self.nbytes})")


# --------------------------------------------------------------------- levels
def level_find_node(level: List[LsaNode], key: Key) -> Optional[LsaNode]:
    """The unique node whose range covers ``key``, if any."""
    idx = bisect.bisect_right(level, key, key=lambda n: n.range_lo) - 1
    if idx >= 0 and level[idx].range_hi >= key:
        return level[idx]
    return None


def level_route_many(level: List[LsaNode], keys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`level_find_node` over a uint64 key batch.

    One ``searchsorted`` over the level's range fences routes every key at
    once; returns per-key node indexes with -1 for keys no node covers.
    Raises TypeError/ValueError/OverflowError when node ranges are not
    uint64-representable (callers fall back to the scalar bisect).
    """
    n = len(level)
    los = np.fromiter((nd.range_lo for nd in level), dtype=np.uint64, count=n)
    his = np.fromiter((nd.range_hi for nd in level), dtype=np.uint64, count=n)
    idx = np.searchsorted(los, keys, side="right").astype(np.intp) - 1
    valid = (idx >= 0) & (his[np.maximum(idx, 0)] >= keys)
    return np.where(valid, idx, -1)


def level_insert_sorted(level: List[LsaNode], node: LsaNode) -> None:
    """Insert keeping the level sorted; rejects range overlap."""
    idx = bisect.bisect_right(level, node.range_lo, key=lambda n: n.range_lo)
    if idx > 0 and level[idx - 1].range_hi >= node.range_lo:
        raise InvariantViolation(
            f"insert overlaps left neighbour: {level[idx - 1]!r} vs {node!r}")
    if idx < len(level) and level[idx].range_lo <= node.range_hi:
        raise InvariantViolation(
            f"insert overlaps right neighbour: {level[idx]!r} vs {node!r}")
    level.insert(idx, node)


def level_overlapping(level: List[LsaNode], lo: Optional[Key],
                      hi: Optional[Key]) -> List[LsaNode]:
    """Nodes whose ranges intersect [lo, hi] (inclusive; None bounds open)."""
    if not level:
        return []
    start = 0
    if lo is not None:
        start = bisect.bisect_right(level, lo, key=lambda n: n.range_lo) - 1
        if start < 0 or level[start].range_hi < lo:
            start += 1
    out = []
    for node in level[start:]:
        if hi is not None and node.range_lo > hi:
            break
        out.append(node)
    return out


def children_slice(parents: List[LsaNode], kids: List[LsaNode],
                   parent_idx: int) -> Tuple[int, int]:
    """Index range [i, j) of ``kids`` parented to ``parents[parent_idx]``.

    Uses the contains-lo rule: a kid belongs to the last parent whose
    ``range_lo`` <= the kid's ``range_lo`` (the first parent otherwise).
    """
    if not kids:
        return (0, 0)
    lo_bound = parents[parent_idx].range_lo
    if parent_idx == 0:
        i = 0
    else:
        i = bisect.bisect_left(kids, lo_bound, key=lambda n: n.range_lo)
    if parent_idx == len(parents) - 1:
        j = len(kids)
    else:
        nxt = parents[parent_idx + 1].range_lo
        j = bisect.bisect_left(kids, nxt, key=lambda n: n.range_lo)
    return (i, j)


def children_of(parents: List[LsaNode], kids: List[LsaNode],
                parent_idx: int) -> List[LsaNode]:
    i, j = children_slice(parents, kids, parent_idx)
    return kids[i:j]


def count_children(parents: List[LsaNode], kids: List[LsaNode], parent_idx: int) -> int:
    i, j = children_slice(parents, kids, parent_idx)
    return j - i


def partition_records(records: List[RecordTuple], children: List[LsaNode],
                      *, leaf: bool, child_weights: Optional[List[int]] = None,
                      ) -> List[List[RecordTuple]]:
    """Partition a sorted run among children (§4.2.1 rules).

    In-range records go to the covering child.  Out-of-range records go to
    the *closest* child at the leaf level, and to the adjacent child with the
    fewer children (``child_weights``) at internal levels -- ties and
    non-numeric keys fall back to the left child.
    """
    n = len(children)
    if n == 0:
        raise InvariantViolation("partition_records needs at least one child")
    parts: List[List[RecordTuple]] = [[] for _ in range(n)]
    if n == 1:
        parts[0] = list(records)
        return parts
    los = [c.range_lo for c in children]
    for rec in records:
        key = rec[KEY]
        idx = bisect.bisect_right(los, key) - 1
        if idx < 0:
            parts[0].append(rec)
            continue
        if key <= children[idx].range_hi or idx == n - 1:
            parts[idx].append(rec)
            continue
        # Gap between children[idx] and children[idx+1].
        left, right = children[idx], children[idx + 1]
        if leaf:
            choice = idx if _closer_to_left(key, left.range_hi, right.range_lo) else idx + 1
        else:
            if child_weights is not None and child_weights[idx + 1] < child_weights[idx]:
                choice = idx + 1
            else:
                choice = idx
        parts[choice].append(rec)
    return parts


def _closer_to_left(key: Key, left_hi: Key, right_lo: Key) -> bool:
    try:
        return (key - left_hi) <= (right_lo - key)
    except TypeError:
        return True
