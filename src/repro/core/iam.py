"""The Integrated Append/Merge-tree (§5).

IAM is LSA with a per-level append/merge policy (§5.1):

* **appending levels** (``level < m``) -- flushes append, exactly as LSA;
  their data is small and cached, so multiple sequences cost no disk seeks.
* **mixed level** (``level == m``) -- a child receiving data is merged to a
  single sequence once it already holds ``k`` sequences, appended otherwise
  (Figure 5); merges happen every k-th arrival, so the per-flush write
  amplification is t/2k + 1 (§5.3.1).
* **merging levels** (``level > m``) -- every arrival merges, keeping one
  sequence per node, so scans cost at most one seek per level (the same read
  amplification as LSM, §5.3.2).

``m`` and ``k`` come from ``IamOptions.fixed_m/fixed_k`` or are retuned from
Eq. (1)/(2) every ``retune_interval`` flushes and at every tree deepening.
With ``m=1, k=1`` IAM degenerates into LSM behaviour; with ``m > n`` into LSA
(§1: "with proper user configuration").
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.options import IamOptions
from repro.common.records import RecordTuple
from repro.core.lsa import LsaTree
from repro.core.node import LsaNode
from repro.core.tuning import tune_m_k
from repro.table.block import Sequence
from repro.storage.runtime import Runtime
from repro.check.effects.registry import observation_only


class IamTree(LsaTree):
    """Integrated Append/Merge-tree engine."""

    name = "iam"

    def __init__(self, options: IamOptions, runtime: Runtime) -> None:
        super().__init__(options, runtime)
        self.options: IamOptions = options
        self.m = options.fixed_m if options.fixed_m is not None else 1
        self.k = options.fixed_k if options.fixed_k is not None else 1
        self._flushes_since_tune = 0
        if options.fixed_m is None or options.fixed_k is None:
            self.retune()

    # ----------------------------------------------------------------- policy
    def _should_merge_internal(self, level: int, child: LsaNode) -> bool:
        if level > self.m:
            return True
        if level == self.m:
            return child.n_sequences >= self.k
        return False

    def _should_merge_leaf(self, child: LsaNode) -> bool:
        if self.n > self.m:
            return True
        if self.n == self.m and child.n_sequences >= self.k:
            return True
        return child.nbytes >= self.options.node_capacity

    def _merge_internal_child(self, level: int, child: LsaNode,
                              part: List[RecordTuple]) -> float:
        # Tag the mixed level's k-bound merges (§5.1.2): the child reached
        # its k-th sequence and collapses back to one.
        if level == self.m and self.runtime.tracer.enabled:
            self._trace("compaction", "merge:mixed", level=level, k=self.k,
                        seqs=child.n_sequences)
        return super()._merge_internal_child(level, child, part)

    def _after_append(self, level: int, child: LsaNode, seq: Sequence) -> None:
        """§5.1.3 forcible caching: pin appended sequences up to the mixed
        level so scans take at most one disk seek per level."""
        if self.options.pin_appended_sequences and level <= self.m:
            self.runtime.cache.pin_range(child.table.file_id,
                                         seq.first_block, seq.n_blocks)

    # ----------------------------------------------------------------- tuning
    def memory_budget(self) -> int:
        """Cache bytes reserved for appended sequences (M~ in Eq. 2)."""
        return int(self.runtime.cache.capacity_bytes
                   * self.options.memory_budget_fraction)

    def retune(self) -> None:
        """Recompute (m, k) from current level sizes (Eq. 1-2)."""
        opts = self.options
        if opts.fixed_m is not None and opts.fixed_k is not None:
            self.m, self.k = opts.fixed_m, opts.fixed_k
            return
        m, k = tune_m_k(self.level_data_bytes(), self.n, self.memory_budget(),
                        fanout=opts.fanout, k_max=opts.k_max)
        if opts.fixed_m is not None:
            m = opts.fixed_m
        if opts.fixed_k is not None:
            k = opts.fixed_k
        if (m, k) != (self.m, self.k):
            self.runtime.metrics.bump("retune")
            self._trace("tuning", "retune", m=m, k=k,
                        prev_m=self.m, prev_k=self.k)
        self.m, self.k = m, k

    def _ingest(self, records: List[RecordTuple]) -> float:
        self._flushes_since_tune += 1
        if self._flushes_since_tune >= self.options.retune_interval:
            self._flushes_since_tune = 0
            self.retune()
        return super()._ingest(records)

    def _on_deepen(self) -> None:
        self.retune()

    # ------------------------------------------------------------- inspection
    def level_class(self, level: int) -> str:
        """"appending", "mixed" or "merging" (§5.1)."""
        if level < self.m:
            return "appending"
        if level == self.m:
            return "mixed"
        return "merging"

    @observation_only
    def describe(self) -> Dict[str, object]:
        d = super().describe()
        d["engine"] = self.name
        d["m"] = self.m
        d["k"] = self.k
        d["level_classes"] = {i: self.level_class(i) for i in range(1, self.n + 1)}
        return d

    def policy_debt(self) -> int:
        """Nodes currently over their level's sequence bound.

        Metadata-only move-downs can carry multi-sequence nodes into the
        mixed/merging levels (that is the point: no rewrite); the policy
        merges them on their first arrival.  This counts the not-yet-healed
        nodes -- it should stay small and must never grow monotonically.
        """
        debt = 0
        for level in range(1, self.n + 1):
            bound = None
            if level > self.m:
                bound = 1
            elif level == self.m:
                bound = self.k
            if bound is None:
                continue
            debt += sum(1 for node in self.levels[level] if node.n_sequences > bound)
        return debt
