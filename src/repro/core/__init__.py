"""The paper's contribution: the LSA-tree and IAM-tree engines.

* :class:`~repro.core.lsa.LsaTree` -- the Log-Structured Append-tree (§4).
* :class:`~repro.core.iam.IamTree` -- the Integrated Append/Merge-tree (§5).
* :mod:`repro.core.tuning` -- the m/k tuner (Eq. 1-2).
* :class:`~repro.core.engine.EngineBase` -- the engine interface shared with
  the baseline LSM implementations in :mod:`repro.lsm`.
"""

from repro.core.engine import EngineBase
from repro.core.iam import IamTree
from repro.core.lsa import LsaTree
from repro.core.tuning import tune_m_k

__all__ = ["EngineBase", "IamTree", "LsaTree", "tune_m_k"]
