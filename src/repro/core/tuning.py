"""Mixed-level tuning: choosing m and k (§5.1.3, Eq. 1-2).

The mixed level ``Lm`` is the first level whose nodes cannot be fully cached.
Given per-level data sizes ``D_j``, the average appended-sequence footprint
of the mixed level with parameter ``k`` is (Eq. 1)::

    S_{m,k} = D_m * (k - 1) / t

and (m, k) must satisfy (Eq. 2)::

    sum_{j<m} D_j + S_{m,k} <= M~

where ``M~`` is the memory budget reserved for appended sequences -- the
cache size M by default; the paper notes M/2 as a conservative option that
leaves room for merge-generated sequences (``memory_budget_fraction``).  Larger
m and k mean less merging, so the tuner returns the largest feasible m, then
the largest feasible k.  ``m = n + 1`` means every level appends (the LSA
degenerate case); ``(1, 1)`` merges everywhere (the LSM degenerate case).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.errors import ConfigError


def appended_sequences_bytes(d_m: int, k: int, t: int) -> float:
    """Eq. (1): expected bytes of appended sequences in the mixed level."""
    if k < 1:
        raise ConfigError("k must be >= 1")
    return d_m * (k - 1) / t


def tune_m_k(level_sizes: Dict[int, int], n_levels: int, memory_budget: int,
             *, fanout: int, k_max: int) -> Tuple[int, int]:
    """Largest (m, k) satisfying Eq. (2); m wins ties over k.

    ``level_sizes`` maps level index -> data bytes (the paper's D_j).
    Returns ``(n_levels + 1, 1)`` when everything fits (pure appends) and
    ``(1, 1)`` when nothing does (pure merging).
    """
    if n_levels < 1:
        return (1, 1)
    if memory_budget < 0:
        raise ConfigError("memory_budget must be >= 0")
    prefix = 0
    prefixes = {1: 0}
    for j in range(1, n_levels + 1):
        prefix += level_sizes.get(j, 0)
        prefixes[j + 1] = prefix
    for m in range(n_levels + 1, 0, -1):
        below = prefixes.get(m, prefixes[n_levels + 1])
        if below > memory_budget:
            continue
        if m == n_levels + 1:
            return (m, 1)
        d_m = level_sizes.get(m, 0)
        for k in range(k_max, 0, -1):
            if below + appended_sequences_bytes(d_m, k, fanout) <= memory_budget:
                return (m, k)
    return (1, 1)
