"""The Log-Structured Append-tree (§4).

LSA compacts with appends: a memtable flush partitions its run among the
target level's nodes and *appends* each part as a new sequence, so every
user byte is written roughly once per on-disk level (Eq. 3).  Three
operations maintain the structure:

* **flush** (§4.2.1) -- move a full node's data to its children; with no
  children the node itself moves down by a metadata edit (the sequential-
  write fast path); at the leaf level full children are merged and re-split
  into nodes of the initial size ``Ct/5`` (Figure 4).
* **split** (§4.2.2) -- a full node with ``2t`` children rewrites itself into
  two half nodes, bounding the worst write case (Table 2).
* **combine** (§4.2.3) -- when a level exceeds its ``t^i`` node budget, the
  candidate with the smallest covered-children count ``Tcn <= 3t`` flushes
  its data down and disappears; neighbours adopt its children evenly.

The subclass hook pair ``_should_merge_internal`` / ``_should_merge_leaf``
is what IAM overrides (§5): LSA never merges internally and merges a leaf
child only once it is full.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, Iterator, List, Optional, Set, Tuple, cast

import numpy as np

from repro.common.errors import InvariantViolation
from repro.common.options import LsaOptions
from repro.common.records import KEY, Key, RecordTuple, encoded_size
from repro.core.engine import EngineBase
from repro.core.node import (
    LsaNode,
    children_of,
    children_slice,
    count_children,
    level_find_node,
    level_insert_sorted,
    level_overlapping,
    level_route_many,
    partition_records,
)
from repro.table.scan import chain_stream
from repro.storage.background import BackgroundJob
from repro.storage.runtime import Runtime
from repro.table.block import Sequence
from repro.table.merge import merge_runs
from repro.table.mstable import MSTable
from repro.check.effects.registry import observation_only


class LsaTree(EngineBase):
    """Log-Structured Append-tree engine."""

    name = "lsa"

    def __init__(self, options: LsaOptions, runtime: Runtime) -> None:
        super().__init__(runtime)
        self.options = options
        #: levels[0] is unused (L0 is the memtable, held by the DB wrapper);
        #: levels[1..n] are the on-disk levels, n == leaf.
        self.levels: List[List[LsaNode]] = [[], []]
        self.n = 1
        self.flushes = 0
        self.splits = 0
        self.combines = 0
        self.move_downs = 0
        self.appends = 0
        self.merges = 0
        #: Largest child fan-out any flush actually wrote into -- the paper's
        #: "worst write case" metric (Table 2); splits keep it near 2t.
        self.max_flush_fanout = 0
        self._init_scheduling(options)

    # ------------------------------------------------------------------ write
    @property
    def memtable_capacity(self) -> int:
        return self.options.node_capacity

    def submit_flush(self, records: List[RecordTuple], nbytes: int) -> BackgroundJob:
        def start() -> float:
            return self._ingest(records)

        return self.runtime.submit_job("lsa-ingest", start, high_priority=True)

    def pick_background_job(self) -> Optional[BackgroundJob]:
        # All structural work happens inside the flush job; LSA has no
        # standing compaction demand.
        return None

    # ----------------------------------------------------------------- ingest
    def _ingest(self, records: List[RecordTuple]) -> float:
        """Flush one memtable run (the L0 node) into the tree."""
        debt = self._ensure_structure()
        self.flushes += 1
        lo, hi = records[0][KEY], records[-1][KEY]
        if self.runtime.tracer.enabled:
            self._trace("flush", "flush", records=len(records))
        # The L0 node's children are the L1 nodes overlapping the run's span
        # (§4.1); with no children (sequential writes) the run moves down as
        # a brand-new node and is written to disk exactly once.
        debt += self._flush_into(
            1, lambda: level_overlapping(self.levels[1], lo, hi), records)
        self._sanitize("flush")
        return debt

    def _ensure_structure(self) -> float:
        """Pre-processing (§4.2.3): deepen on leaf overflow, then combine."""
        opts = self.options
        debt = 0.0
        while len(self.levels[self.n]) >= opts.level_node_threshold(self.n):
            self.n += 1
            self.levels.append([])
            self.runtime.metrics.bump("deepen")
            self._trace("structure", "deepen", n_levels=self.n)
            self._on_deepen()
        for i in range(1, self.n):
            guard = 0
            while len(self.levels[i]) > opts.level_node_threshold(i):
                guard += 1
                if guard > 10_000:
                    raise InvariantViolation(f"combine loop at L{i} did not converge")
                debt += self._combine_one(i)
        return debt

    def _on_deepen(self) -> None:
        """Subclass hook: the tree grew a level (IAM retunes m)."""

    # ------------------------------------------------------------- flush core
    def _flush_into(self, target_level: int, children_fn: Callable[[], List[LsaNode]],
                    records: List[RecordTuple]) -> float:
        """Partition ``records`` among ``children_fn()`` nodes at ``target_level``.

        Resolves the flush preconditions first (§4.2.1): at an internal
        target, every full child is flushed -- or split when it already has
        ``2t`` children -- before any data lands.
        """
        opts = self.options
        debt = 0.0
        if target_level < self.n:
            guard = 0
            while True:
                guard += 1
                if guard > 10_000:
                    raise InvariantViolation("full-children resolution did not converge")
                kids = children_fn()
                full = [k for k in kids if k.nbytes >= opts.node_capacity]
                if not full:
                    break
                child = full[0]
                if self._count_children_of(target_level, child) >= opts.split_children_threshold:
                    debt += self._split_node(target_level, child)
                else:
                    debt += self._flush_node(target_level, child)
        kids = children_fn()
        if not kids:
            return debt + self._create_node_from_run(target_level, records)
        if len(kids) > self.max_flush_fanout:
            self.max_flush_fanout = len(kids)
        leaf = target_level == self.n
        weights = None
        if not leaf:
            weights = [self._count_children_of(target_level, k) for k in kids]
        parts = partition_records(records, kids, leaf=leaf, child_weights=weights)
        for child, part in zip(list(kids), parts):
            if not part:
                continue
            debt += self._place_part(target_level, child, part)
        return debt

    def _place_part(self, level: int, child: LsaNode, part: List[RecordTuple]) -> float:
        leaf = level == self.n
        if leaf:
            if self._should_merge_leaf(child):
                return self._merge_leaf_child(child, part)
        else:
            if self._should_merge_internal(level, child):
                return self._merge_internal_child(level, child, part)
        return self._append_to_child(level, child, part)

    # ------------------------------------------------------------ policy hooks
    def _should_merge_internal(self, level: int, child: LsaNode) -> bool:
        return False  # LSA: appends only (IAM overrides, §5.1).

    def _should_merge_leaf(self, child: LsaNode) -> bool:
        return child.nbytes >= self.options.node_capacity  # full child (Fig. 4)

    # -------------------------------------------------------------- placement
    def _append_to_child(self, level: int, child: LsaNode, part: List[RecordTuple]) -> float:
        table = child.ensure_table(self.runtime, key_size=self.options.key_size,
                                   bloom_bits_per_key=self.options.bloom_bits_per_key)
        seq, debt = table.append_sequence(part, level=level)
        child.extend_range(part[0][KEY], part[-1][KEY])
        self.appends += 1
        self.runtime.metrics.bump("append")
        if self.runtime.tracer.enabled:
            self._trace("compaction", "append", level=level,
                        seqs=child.n_sequences, records=len(part))
        self._after_append(level, child, seq)
        return debt

    def _after_append(self, level: int, child: LsaNode, seq: Sequence) -> None:
        """Subclass hook: a sequence was appended to ``child`` (IAM pins)."""

    def _merge_internal_child(self, level: int, child: LsaNode,
                              part: List[RecordTuple]) -> float:
        """Rewrite an internal child as a single sequence (IAM's merge)."""
        debt = 0.0
        runs: List[List[RecordTuple]] = [part]
        if not child.is_empty:
            debt += child.table.compaction_read_debt()
            runs.extend(s.records for s in child.table.sequences)
        merged = merge_runs(runs, drop_tombstones=False,
                            snapshots=self.snapshots_provider())
        child.drop_table()
        table = child.ensure_table(self.runtime, key_size=self.options.key_size,
                                   bloom_bits_per_key=self.options.bloom_bits_per_key)
        _, d = table.append_sequence(merged, level=level)
        debt += d
        child.extend_range(merged[0][KEY], merged[-1][KEY])
        self.merges += 1
        self.runtime.metrics.bump("merge:internal")
        if self.runtime.tracer.enabled:
            self._trace("compaction", "merge:internal", level=level,
                        runs=len(runs), records=len(merged))
        self._sanitize("merge")
        return debt

    def _merge_leaf_child(self, child: LsaNode, part: List[RecordTuple]) -> float:
        """Merge a leaf child with its assigned records (Figure 4).

        The merged output replaces the child: split into fresh nodes of the
        initial size ``Ct/5`` when it exceeds ``Ct``, kept whole otherwise.
        """
        opts = self.options
        level = self.n
        debt = 0.0
        runs: List[List[RecordTuple]] = [part]
        if not child.is_empty:
            debt += child.table.compaction_read_debt()
            runs.extend(s.records for s in child.table.sequences)
        merged = merge_runs(runs, drop_tombstones=True,
                            snapshots=self.snapshots_provider())
        lst = self.levels[level]
        lst.pop(self._node_index(level, child))  # bisect-based removal
        child.drop_table()
        if merged:
            total = sum(encoded_size(r, opts.key_size) for r in merged)
            chunk_bytes = opts.leaf_initial_bytes if total >= opts.node_capacity else total
            for chunk in self._split_run(merged, chunk_bytes):
                node = LsaNode(chunk[0][KEY], chunk[-1][KEY])
                table = node.ensure_table(self.runtime, key_size=opts.key_size,
                                          bloom_bits_per_key=opts.bloom_bits_per_key)
                _, d = table.append_sequence(chunk, level=level)
                debt += d
                level_insert_sorted(lst, node)
        self.merges += 1
        self.runtime.metrics.bump("merge:leaf")
        if self.runtime.tracer.enabled:
            self._trace("compaction", "merge:leaf", level=level,
                        runs=len(runs), records=len(merged))
        self._sanitize("merge")
        return debt

    def _split_run(self, records: List[RecordTuple],
                   max_bytes: int) -> Iterator[List[RecordTuple]]:
        key_size = self.options.key_size
        chunk: List[RecordTuple] = []
        acc = 0
        for rec in records:
            sz = encoded_size(rec, key_size)
            if acc + sz > max_bytes and chunk and chunk[-1][KEY] != rec[KEY]:
                yield chunk
                chunk = []
                acc = 0
            chunk.append(rec)
            acc += sz
        if chunk:
            yield chunk

    def _create_node_from_run(self, level: int, records: List[RecordTuple]) -> float:
        """A run with no children becomes a new node (sequential fast path)."""
        node = LsaNode(records[0][KEY], records[-1][KEY])
        table = node.ensure_table(self.runtime, key_size=self.options.key_size,
                                  bloom_bits_per_key=self.options.bloom_bits_per_key)
        _, debt = table.append_sequence(records, level=level)
        level_insert_sorted(self.levels[level], node)
        self.runtime.metrics.bump("new_node")
        return debt

    # ------------------------------------------------------------- node flush
    def _node_index(self, level: int, node: LsaNode) -> int:
        lst = self.levels[level]
        idx = bisect.bisect_right(lst, node.range_lo, key=lambda x: x.range_lo) - 1
        if idx < 0 or lst[idx] is not node:
            # Ranges may share range_lo transiently; fall back to a scan.
            idx = lst.index(node)
        return idx

    def _count_children_of(self, level: int, node: LsaNode) -> int:
        if level >= self.n:
            return 0
        idx = self._node_index(level, node)
        return count_children(self.levels[level], self.levels[level + 1], idx)

    def _flush_node(self, level: int, node: LsaNode, *, destroy: bool = False) -> float:
        """Move a node's data to level+1 (§4.2.1); optionally destroy it."""
        if level >= self.n:
            raise InvariantViolation("leaf nodes are merged, never flushed")
        lst = self.levels[level]
        kids_lst = self.levels[level + 1]
        idx = self._node_index(level, node)
        # Data placement uses *overlap*-based children (§4.1: a child is a
        # next-level node whose range overlaps the parent's): any record of
        # this node that falls inside an existing next-level range must land
        # in exactly that node, or ranges would overlap within the level.
        over = level_overlapping(kids_lst, node.range_lo, node.range_hi)
        if not over:
            # Metadata-only move down (sequential-write fast path).
            lst.pop(idx)
            level_insert_sorted(kids_lst, node)
            self.move_downs += 1
            self.runtime.metrics.bump("move_down")
            self._trace("compaction", "move-down", level=level,
                        to_level=level + 1)
            return 0.0

        def kids_fn() -> List[LsaNode]:
            return level_overlapping(self.levels[level + 1],
                                     node.range_lo, node.range_hi)

        debt = 0.0
        if not node.is_empty:
            debt += node.table.compaction_read_debt()
            runs = [s.records for s in node.table.sequences]
            records = merge_runs(runs, drop_tombstones=False,
                                 snapshots=self.snapshots_provider())
            node.drop_table()
            if records:
                debt += self._flush_into(level + 1, kids_fn, records)
        if destroy:
            self._remove_and_adopt(level, node)
        else:
            self._rebalance_with_siblings(level, node)
        return debt

    # ------------------------------------------------------------------ split
    def _split_node(self, level: int, node: LsaNode) -> float:
        """Rewrite a full node with >= 2t children into two halves (§4.2.2)."""
        lst = self.levels[level]
        idx = self._node_index(level, node)
        kids = children_of(lst, self.levels[level + 1], idx) if level < self.n else []
        if len(kids) < 2:
            raise InvariantViolation("split needs at least two children")
        # Boundary candidates must fall strictly inside the node's range:
        # the first node of a level can own children whose range_lo lies left
        # of its own range_lo, which would produce an invalid half.
        mid = len(kids) // 2
        candidates = [(abs(i - mid), i) for i in range(1, len(kids))
                      if node.range_lo < kids[i].range_lo <= node.range_hi]
        if not candidates:
            # No valid cut point: fall back to a plain flush of the node.
            return self._flush_node(level, node)
        _, h = min(candidates)
        boundary = kids[h].range_lo

        debt = 0.0
        records: List[RecordTuple] = []
        if not node.is_empty:
            debt += node.table.compaction_read_debt()
            records = merge_runs([s.records for s in node.table.sequences],
                                 drop_tombstones=False,
                                 snapshots=self.snapshots_provider())
        cut = bisect.bisect_left(records, boundary, key=lambda r: r[KEY])
        rec_a, rec_b = records[:cut], records[cut:]

        a_hi = kids[h - 1].range_lo
        if rec_a and rec_a[-1][KEY] > a_hi:
            a_hi = rec_a[-1][KEY]
        if a_hi < node.range_lo:  # kids[h-1] may lie left of the node's range
            a_hi = node.range_lo
        node_a = LsaNode(node.range_lo, a_hi)
        node_b = LsaNode(boundary, max(node.range_hi, boundary))

        node.drop_table()
        lst.pop(idx)
        # The node is gone but its halves are not yet inserted: a crash here
        # loses the in-flight rewrite (recovered from the checkpoint + WAL).
        self._crash_point("mid-split")
        opts = self.options
        for new_node, recs in ((node_a, rec_a), (node_b, rec_b)):
            if recs:
                table = new_node.ensure_table(self.runtime, key_size=opts.key_size,
                                              bloom_bits_per_key=opts.bloom_bits_per_key)
                _, d = table.append_sequence(recs, level=level)
                debt += d
            level_insert_sorted(lst, new_node)
        self.splits += 1
        self.runtime.metrics.bump("split")
        self._trace("structure", "split", level=level)
        self._sanitize("split")
        return debt

    # ---------------------------------------------------------------- combine
    def _combine_one(self, level: int) -> float:
        """Destroy one node of an over-budget level (§4.2.3)."""
        lst = self.levels[level]
        if len(lst) < 3:
            # Degenerate: flush-and-destroy the last node.
            victim = lst[-1]
        else:
            kids_lst = self.levels[level + 1]
            limit = self.options.combine_tcn_factor * self.options.fanout
            best_ok = None  # smallest Tcn among candidates with Tcn <= 3t
            best_any = None  # fallback: smallest Tcn overall
            for idx in range(1, len(lst) - 1):
                i0, _ = children_slice(lst, kids_lst, idx - 1)
                _, j1 = children_slice(lst, kids_lst, idx + 1)
                tcn = j1 - i0
                if best_any is None or tcn < best_any[0]:
                    best_any = (tcn, idx)
                if tcn <= limit and (best_ok is None or tcn < best_ok[0]):
                    best_ok = (tcn, idx)
            chosen = best_ok if best_ok is not None else best_any
            victim = lst[chosen[1]]
        self.combines += 1
        self.runtime.metrics.bump("combine")
        self._trace("structure", "combine", level=level)
        debt = self._flush_node(level, victim, destroy=True)
        self._crash_point("mid-combine")
        self._sanitize("combine")
        return debt

    def _remove_and_adopt(self, level: int, node: LsaNode) -> None:
        """Remove a combined node; neighbours adopt its children evenly."""
        lst = self.levels[level]
        idx = self._node_index(level, node)
        if level < self.n:
            i, j = children_slice(lst, self.levels[level + 1], idx)
            gap_kids = self.levels[level + 1][i:j]
        else:
            gap_kids = []
        lst.pop(idx)
        # After the pop, lst[idx-1] is the left neighbour and lst[idx] (if it
        # exists) the right one.  Give the right neighbour the second half of
        # the orphaned children by moving its range_lo left (§4.2.3: "the
        # ranges of the two neighbors extend evenly").
        if gap_kids and idx < len(lst):
            right = lst[idx]
            h = len(gap_kids) // 2
            new_lo = gap_kids[h].range_lo
            data_min = right.data_min_key
            left_hi = lst[idx - 1].range_hi if idx > 0 else None
            if ((data_min is None or new_lo <= data_min)
                    and (left_hi is None or left_hi < new_lo)
                    and new_lo < right.range_lo):
                right.range_lo = new_lo

    # ------------------------------------------------------------- rebalance
    def _rebalance_with_siblings(self, level: int, node: LsaNode) -> None:
        """Even out child counts with adjacent siblings after a flush.

        The flushed node is empty, so its boundary can move freely (§4.2.1:
        "its key range usually remains unchanged but may be reduced").
        """
        if level >= self.n:
            return
        lst = self.levels[level]
        idx = self._node_index(level, node)
        if idx > 0:
            self._balance_boundary(level, idx - 1, idx)
            idx = self._node_index(level, node)
        if idx < len(lst) - 1:
            self._balance_boundary(level, idx, idx + 1)

    def _balance_boundary(self, level: int, left_idx: int, right_idx: int) -> None:
        """Move the boundary between two adjacent siblings to even out their
        child counts, respecting each node's own data span."""
        lst = self.levels[level]
        kids_lst = self.levels[level + 1]
        left, right = lst[left_idx], lst[right_idx]
        li, lj = children_slice(lst, kids_lst, left_idx)
        ri, rj = children_slice(lst, kids_lst, right_idx)
        c_left, c_right = lj - li, rj - ri
        if abs(c_left - c_right) < 2 or (c_left + c_right) < 2:
            return
        combined = kids_lst[li:rj]
        h = len(combined) // 2
        if h == 0 or h >= len(combined):
            return
        new_b = combined[h].range_lo
        # Feasibility: the new boundary must respect both nodes' data spans
        # and keep ranges disjoint and ordered.
        left_data_max = left.data_max_key
        right_data_min = right.data_min_key
        if left_data_max is not None and left_data_max >= new_b:
            return
        if right_data_min is not None and right_data_min < new_b:
            return
        if new_b <= left.range_lo:
            return
        # Shrink/extend so that left.range_hi < new_b == right.range_lo.
        new_left_hi = combined[h - 1].range_lo
        if left_data_max is not None and left_data_max > new_left_hi:
            new_left_hi = left_data_max
        if new_left_hi < left.range_lo:
            new_left_hi = left.range_lo
        if not (new_left_hi < new_b):
            return
        if right_idx < len(lst) - 1 and new_b >= lst[right_idx + 1].range_lo:
            return
        left.range_hi = new_left_hi
        right.range_lo = new_b
        if right.range_hi < new_b:
            right.range_hi = new_b
        self.runtime.metrics.bump("rebalance")

    # ------------------------------------------------------------------- read
    def get(self, key: Key,
            snapshot: Optional[int] = None) -> Tuple[Optional[RecordTuple], float]:
        latency = 0.0
        for level in range(1, self.n + 1):
            node = level_find_node(self.levels[level], key)
            if node is None or node.is_empty:
                continue
            rec, lat = node.table.get(key, snapshot)
            latency += lat
            if rec is not None:
                return rec, latency
        return None, latency

    def multi_get(self, keys, snapshot: Optional[int] = None,
                  ) -> Tuple[List[Optional[RecordTuple]], List[float]]:
        """Vectorized batched point lookup (charge-identical to the loop).

        Phase A plans every key's walk CPU-side: one ``searchsorted`` over
        the level's node fences routes the whole batch, and each touched
        node's :meth:`MSTable.plan_gets` resolves outcomes over the cached
        sequence key columns and batched Bloom probes -- no device I/O.
        Phase B replays each key's planned ``(file_id, blocks)`` charges in
        request order, which is exactly the charge sequence the scalar
        :meth:`get` loop issues, so the simulated clock, page cache and
        metrics end bit-identical.  Non-integer keys fall back to the
        scalar loop before any charge is issued.
        """
        n = len(keys)
        if n == 0:
            return [], []
        try:
            key_arr = np.asarray(keys, dtype=np.uint64)
            if key_arr.shape != (n,):
                raise TypeError("keys must be a flat sequence")
        except (OverflowError, TypeError, ValueError):
            return super().multi_get(keys, snapshot)
        results: List[Optional[RecordTuple]] = [None] * n
        probes: List[List[Tuple[int, range]]] = [[] for _ in range(n)]
        counters = [0, 0]  # [bloom_probes, bloom_negatives]
        live = list(range(n))
        try:
            for level in range(1, self.n + 1):
                if not live:
                    break
                lvl = self.levels[level]
                if not lvl:
                    continue
                live_arr = np.fromiter(live, dtype=np.intp, count=len(live))
                routed = level_route_many(lvl, key_arr[live_arr])
                buckets: Dict[int, List[int]] = {}
                for off, node_idx in enumerate(routed.tolist()):
                    if node_idx >= 0:
                        buckets.setdefault(node_idx, []).append(live[off])
                resolved: Set[int] = set()
                for node_idx in sorted(buckets):
                    node = lvl[node_idx]
                    if node.is_empty:
                        continue
                    members = buckets[node_idx]
                    left = node.table.plan_gets(key_arr, members, snapshot,
                                                probes, results, counters)
                    if len(left) != len(members):
                        resolved.update(set(members) - set(left))
                if resolved:
                    live = [g for g in live if g not in resolved]
        except (OverflowError, TypeError, ValueError):
            # Non-uint64 fences or record keys: nothing was charged yet, so
            # the scalar loop reproduces the trajectory from scratch.
            return super().multi_get(keys, snapshot)
        return results, self._replay_probe_plans(probes, counters)

    @observation_only
    def scan_plan(self, lo_key: Optional[Key],
                  hi_key: Optional[Key]) -> List[object]:
        """Batched scan streams: one node chain per level, cursor order."""
        plan: List[object] = []
        for level in range(1, self.n + 1):
            nodes = [nd for nd in level_overlapping(self.levels[level], lo_key, hi_key)
                     if not nd.is_empty]
            if nodes:
                plan.append(chain_stream(self.runtime,
                                         [nd.table for nd in nodes],
                                         lo_key, hi_key))
        return plan

    def scan_runs(self, lo_key: Optional[Key],
                  hi_key: Optional[Key]) -> Tuple[List[List[RecordTuple]], float]:
        runs: List[List[RecordTuple]] = []
        latency = 0.0
        for level in range(1, self.n + 1):
            for node in level_overlapping(self.levels[level], lo_key, hi_key):
                if node.is_empty:
                    continue
                node_runs, lat = node.table.read_range(lo_key, hi_key)
                latency += lat
                runs.extend(node_runs)
        return runs, latency

    def scan_cursors(self, lo_key: Optional[Key],
                     hi_key: Optional[Key]) -> List[Iterator[RecordTuple]]:
        cursors = []
        for level in range(1, self.n + 1):
            nodes = [nd for nd in level_overlapping(self.levels[level], lo_key, hi_key)
                     if not nd.is_empty]
            if nodes:
                cursors.append(self._level_cursor(nodes, lo_key, hi_key))
        return cursors

    @staticmethod
    def _level_cursor(nodes: List[LsaNode], lo_key: Optional[Key],
                      hi_key: Optional[Key]) -> Iterator[RecordTuple]:
        for node in nodes:
            yield from node.table.cursor(lo_key, hi_key)

    # ------------------------------------------------------------- inspection
    def level_data_bytes(self) -> Dict[int, int]:
        return {i: sum(node.nbytes for node in self.levels[i])
                for i in range(1, self.n + 1)}

    def level_node_counts(self) -> Dict[int, int]:
        return {i: len(self.levels[i]) for i in range(1, self.n + 1)}

    def max_children(self) -> int:
        """Largest child count of any node (worst-write-case indicator)."""
        worst = 0
        for level in range(1, self.n):
            parents = self.levels[level]
            kids = self.levels[level + 1]
            for idx in range(len(parents)):
                i, j = children_slice(parents, kids, idx)
                worst = max(worst, j - i)
        return worst

    def max_sequences_per_node(self) -> int:
        return max((node.n_sequences
                    for level in self.levels for node in level), default=0)

    @observation_only
    def check_invariants(self) -> None:
        for i in range(1, self.n + 1):
            lst = self.levels[i]
            for a, b in zip(lst, lst[1:]):
                if not a.range_hi < b.range_lo:
                    raise InvariantViolation(
                        f"L{i} ranges overlap/unsorted: {a!r} vs {b!r}")
            for node in lst:
                node.check_range_covers_data()
        for extra in self.levels[self.n + 1:]:
            if extra:
                raise InvariantViolation("nodes beyond the leaf level")

    @observation_only
    def describe(self) -> Dict[str, object]:
        return {
            "engine": self.name,
            "n_levels": self.n,
            "levels": {i: {"nodes": len(self.levels[i]),
                           "bytes": sum(nd.nbytes for nd in self.levels[i]),
                           "max_seqs": max((nd.n_sequences for nd in self.levels[i]),
                                           default=0)}
                       for i in range(1, self.n + 1)},
            "flushes": self.flushes,
            "splits": self.splits,
            "combines": self.combines,
            "move_downs": self.move_downs,
            "appends": self.appends,
            "merges": self.merges,
        }

    # --------------------------------------------------------------- recovery
    def checkpoint_state(self) -> object:
        """Owned pure-data snapshot: (range_lo, range_hi, table snapshot|None)
        per node -- no live node/table references (see Manifest.checkpoint)."""
        return {
            "n": self.n,
            "levels": [
                [(node.range_lo, node.range_hi,
                  node.table.snapshot() if node.table is not None else None)
                 for node in lvl]
                for lvl in self.levels
            ],
        }

    def restore_state(self, state: object) -> None:
        for lvl in self.levels:
            for node in lvl:
                node.drop_table()
        if state is None:
            self.n = 1
            self.levels = [[], []]
            return
        sdict = cast(Dict[str, Any], state)
        self.n = sdict["n"]
        levels: List[List[LsaNode]] = []
        for lvl in sdict["levels"]:
            nodes: List[LsaNode] = []
            for lo, hi, snap in lvl:
                node = LsaNode(lo, hi)
                if snap is not None:
                    node.table = MSTable.from_snapshot(self.runtime, snap)
                nodes.append(node)
            levels.append(nodes)
        self.levels = levels

    def live_file_ids(self) -> Set[int]:
        return {node.table.file_id
                for lvl in self.levels for node in lvl
                if node.table is not None and not node.table.deleted}
