"""Engine interface shared by LSA/IAM and the baseline LSM engines.

An engine owns the on-disk structure.  The DB wrapper (:mod:`repro.db`) owns
the WAL and memtable and hands full memtables over through
:meth:`EngineBase.submit_flush`; everything below that line -- compaction
scheduling, reads, invariants -- is the engine's business.

Scheduling contract: the engine registers itself as the background pool's
*provider*; whenever a background thread goes idle the pool asks
:meth:`EngineBase.pick_background_job` for the next compaction.  Structural
mutation happens when a job activates (see :mod:`repro.storage.background`).
"""

from __future__ import annotations

import abc
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.records import Key, RecordTuple
from repro.storage.background import BackgroundJob
from repro.storage.pacing import (
    RateEstimator,
    TokenBucketPacer,
    degraded_extra_delay_s,
)
from repro.storage.runtime import Runtime
from repro.check.effects.registry import effects, observation_only

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.sanitizer import Sanitizer
    from repro.common.options import TreeOptions

#: Callable returning the live snapshot sequence numbers (for merge GC).
SnapshotProvider = Callable[[], Sequence[int]]

#: Token-bucket burst capacity as a fraction of the memtable; a quarter
#: memtable absorbs ordinary write bursts without engaging the pacer.
PACER_BURST_FRACTION = 0.25

#: Absolute burst cap in bytes.  A large burst lets L0 overshoot well past
#: the pressure point before any delay bites (the structure degrades, reads
#: slow down, windowed throughput swings); a dozen-write allowance is enough
#: to forgive blips while still braking the moment pressure persists.
PACER_BURST_BYTES = 1024.0

#: Sustainable-rate estimation window in memtables of user bytes.
PACER_WINDOW_MEMTABLES = 8


class EngineBase(abc.ABC):
    """Common surface of every storage engine in this repo."""

    name: str = "engine"

    def __init__(self, runtime: Runtime) -> None:
        self.runtime = runtime
        self.snapshots_provider: SnapshotProvider = tuple
        #: Optional runtime sanitizer (attached by the DB wrapper when the
        #: debug layer is enabled; see :mod:`repro.check.sanitizer`).
        self.sanitizer: Optional["Sanitizer"] = None
        # Scheduling defaults (legacy-compatible) until the engine calls
        # :meth:`_init_scheduling` with its options.
        self.legacy_gate = False
        self.compaction_selector = "provider"
        self._pacer: Optional[TokenBucketPacer] = None
        self._rate_estimator: Optional[RateEstimator] = None
        self._eligible_since: Dict[int, int] = {}
        self._eligible_tick = 0
        runtime.pool.set_provider(self.pick_background_job)

    def _init_scheduling(self, options: "TreeOptions") -> None:
        """Wire the options' scheduler/pacer/selector choices into the stack.

        Called by each engine's constructor after its options are set (the
        pacer sizes its burst from :attr:`memtable_capacity`).  With
        ``legacy_gate=True`` everything collapses to the pre-scheduler
        behavior: legacy pump, provider selection, no token bucket.
        """
        pool = self.runtime.pool
        self.legacy_gate = options.legacy_gate
        if options.legacy_gate:
            pool.scheduler = "legacy"
            self.compaction_selector = "provider"
            self._pacer = None
            self._rate_estimator = None
            return
        pool.scheduler = options.scheduler
        self.compaction_selector = options.compaction_selector
        bandwidth = self.runtime.options.device.write_bandwidth
        capacity = max(1, self.memtable_capacity)
        burst = min(capacity * PACER_BURST_FRACTION, PACER_BURST_BYTES)
        self._pacer = TokenBucketPacer(burst, now=self.runtime.clock.now)
        self._rate_estimator = RateEstimator(
            bandwidth, window_bytes=PACER_WINDOW_MEMTABLES * capacity)

    @observation_only
    def _sanitize(self, event: str) -> None:
        """Run the structural sanitizer after ``event``, when attached."""
        if self.sanitizer is not None:
            self.sanitizer.after_structural_event(self, event)

    def _trace(self, cat: str, name: str, **args: object) -> None:
        """Emit a structural trace instant when tracing is enabled.

        Hot call sites should guard on ``self.runtime.tracer.enabled`` before
        building kwargs; this helper re-checks so cold sites can call it
        unconditionally.
        """
        tracer = self.runtime.tracer
        if tracer.enabled:
            tracer.instant(cat, name, **args)

    def _crash_point(self, site: str) -> None:
        """Fire the crash-point scheduler at an engine-internal site."""
        cp = self.runtime.crash_points
        if cp is not None:
            cp.reached(site)

    @effects("CLOCK_ADVANCE", "STATE_MUTATE")
    def _fault_gate(self, nbytes: int) -> float:
        """Degradation pacing while background jobs keep failing.

        Each consecutive job give-up (``pool.failed_streak``) halves the
        write rate, floored at 1/256 of device bandwidth: under a failing
        device the store slows down instead of crashing or running the
        structure unboundedly far past its thresholds.  Returns the added
        latency (0.0 on the clean path).
        """
        streak = self.runtime.pool.failed_streak
        if streak <= 0 or nbytes <= 0:
            return 0.0
        frac = max(2.0 ** -min(streak, 8), 1.0 / 256.0)
        bw = self.runtime.options.device.write_bandwidth
        extra = degraded_extra_delay_s(nbytes, bw, frac)
        if extra <= 0.0:
            return 0.0
        self.runtime.clock.advance(extra)
        self.runtime.metrics.bump("slowdown:fault-degraded")
        self.runtime.metrics.add_gate_delay("fault-degraded", extra)
        self._trace("gate", "fault-degraded", streak=streak, delay_s=extra)
        return extra

    def _pace_pressure(self) -> bool:
        """True when background backlog warrants pacing foreground writes.

        The base heuristic engages only when work is actually queued behind
        the running jobs (the pool cannot keep up) -- engines with richer
        structural signals (L0 file counts, pending compaction debt)
        override this with their own pressure test.  Kept deliberately
        conservative: token-bucket delays are accounted as gate delays, so
        over-engaging the pacer would itself show up as instability.
        """
        return bool(self.runtime.pool.queue)

    def _pace_rate(self, sustainable: float) -> float:
        """Admission rate for the token bucket given the estimator's rate.

        The base policy admits at the observed sustainable rate.  Engines
        with graded structural pressure (L0 distance to the stop trigger,
        debt over the soft limit) override this to *ramp*: brake gently at
        the first sign of pressure and approach the sustainable rate only
        as the structure nears its hard limit, so there is no single point
        where admission falls off a cliff.
        """
        return sustainable

    @effects("CLOCK_ADVANCE", "STATE_MUTATE")
    def _token_pace(self, nbytes: int) -> float:
        """Token-bucket admission at the observed sustainable ingest rate.

        Replaces the legacy cliff-edge slowdown bands: instead of jumping
        from full speed to ``delayed_write_fraction`` of bandwidth past a
        trigger, writes are paced smoothly at the rate the background
        machinery has recently proven it can absorb
        (:class:`repro.storage.pacing.RateEstimator`).  Only engages while
        :meth:`_pace_pressure` reports backlog; otherwise the bucket just
        refills.  Returns the added latency (0.0 on the clean path).
        """
        pacer = self._pacer
        estimator = self._rate_estimator
        if pacer is None or estimator is None or nbytes <= 0:
            return 0.0
        pool = self.runtime.pool
        metrics = self.runtime.metrics
        estimator.observe(pool.bg_drained_s, metrics.user_bytes)
        rate = self._pace_rate(estimator.rate())
        now = self.runtime.clock.now
        if not self._pace_pressure():
            pacer.refill(now, rate)
            return 0.0
        delay = pacer.admit(nbytes, now, rate)
        if delay <= 0.0:
            return 0.0
        # The advance opens idle device time that the next pump() converts
        # into background progress via bg_grant: pacing *is* compaction
        # headroom, not dead waiting.
        self.runtime.clock.advance(delay)
        metrics.bump("pace:token-bucket")
        metrics.add_gate_delay("pace:token-bucket", delay)
        self._trace("gate", "pace:token-bucket", delay_s=delay, rate=rate)
        return delay

    def _select_level(self, candidates: Sequence[Tuple[int, float, int]],
                      ) -> Optional[int]:
        """Apply the configured compaction selector to eligible levels.

        ``candidates`` holds ``(level, score, overdue_bytes)`` for every
        level whose score crossed its threshold.  Returns the chosen level,
        or None for ``provider`` order (caller keeps its historical pick).

        * ``oldest-first``: the level that has been continuously eligible
          the longest (starvation-proof; ages tracked per level).
        * ``greedy-largest-debt``: the level with the most bytes over its
          threshold (drains the biggest backlog first).
        """
        if not candidates or self.compaction_selector == "provider":
            return None
        if self.compaction_selector == "greedy-largest-debt":
            return max(candidates, key=lambda c: (c[2], c[1], -c[0]))[0]
        # oldest-first: age levels from the moment they become eligible;
        # a level that drops below threshold loses its age.
        live = {c[0] for c in candidates}
        for level in [lv for lv in self._eligible_since if lv not in live]:
            del self._eligible_since[level]
        for level in sorted(live):
            if level not in self._eligible_since:
                self._eligible_since[level] = self._eligible_tick
                self._eligible_tick += 1
        return min(live, key=lambda lv: (self._eligible_since[lv], lv))

    def _reset_selector_state(self) -> None:
        """Forget selector aging (crash-restore rebuilds the structure)."""
        self._eligible_since.clear()
        self._eligible_tick = 0

    # ------------------------------------------------------------------ write
    @property
    @abc.abstractmethod
    def memtable_capacity(self) -> int:
        """Bytes after which the DB rotates the memtable (Ct / write_buffer)."""

    @abc.abstractmethod
    def submit_flush(self, records: List[RecordTuple], nbytes: int) -> BackgroundJob:
        """Schedule the flush of a full (immutable) memtable."""

    def write_gate(self, nbytes: int) -> float:
        """Apply engine-specific slowdowns/stops before a user write.

        ``nbytes`` is the write's encoded size (slowdowns pace by bytes).
        Returns the simulated latency spent gated (0.0 when unobstructed).
        """
        lat = self._fault_gate(nbytes)
        lat += self._token_pace(nbytes)
        return lat

    # ------------------------------------------------------------- background
    @abc.abstractmethod
    def pick_background_job(self) -> Optional[BackgroundJob]:
        """Offer the next compaction job, or None when nothing is demanded."""

    def quiesce(self) -> float:
        """Finish all background work; returns elapsed simulated time."""
        return self.runtime.pool.drain_all()

    # ------------------------------------------------------------------- read
    @abc.abstractmethod
    def get(self, key: Key, snapshot: Optional[int] = None) -> Tuple[Optional[RecordTuple], float]:
        """Newest visible on-disk version of ``key``; (record|None, latency)."""

    def multi_get(self, keys: Sequence[Key], snapshot: Optional[int] = None,
                  ) -> Tuple[List[Optional[RecordTuple]], List[float]]:
        """Batched :meth:`get`: ([record|None, ...], [latency, ...]).

        The base implementation is the scalar loop, so it is trivially
        charge-identical to a caller looping :meth:`get`.  Engines override
        it with vectorized planners that replay the same device charges in
        the same order (see :meth:`repro.core.lsa.LsaTree.multi_get`).
        Latencies are measured as per-key simulated-clock deltas.
        """
        clock = self.runtime.clock
        results: List[Optional[RecordTuple]] = []
        latencies: List[float] = []
        for key in keys:
            t0 = clock.now
            rec, _ = self.get(key, snapshot)
            results.append(rec)
            latencies.append(clock.now - t0)
        return results, latencies

    def _replay_probe_plans(self, probes: List[List[Tuple[int, range]]],
                            counters: List[int]) -> List[float]:
        """Phase B of a planned batch lookup: issue the per-key charges.

        ``probes[g]`` holds key ``g``'s planned ``(file_id, blocks)`` reads
        in scalar walk order; replaying them key by key, in request order,
        reproduces the scalar loop's device/cache/clock trajectory exactly.
        Returns per-key simulated latencies (clock deltas).
        """
        fg = self.runtime.fg_read_blocks
        clock = self.runtime.clock
        latencies = [0.0] * len(probes)
        for g, plist in enumerate(probes):
            if plist:
                t0 = clock.now
                for fid, blocks in plist:
                    fg(fid, blocks)
                latencies[g] = clock.now - t0
        if counters[0]:
            self.runtime.metrics.add_bloom_probes(counters[0], counters[1])
        return latencies

    @observation_only
    def scan_plan(self, lo_key: Optional[Key],
                  hi_key: Optional[Key]) -> Optional[List[object]]:
        """Stream plan for the batched scan assembler, or None.

        None means "unsupported": the DB falls back to the scalar
        heap-merge path over :meth:`scan_cursors`.  Engines that support
        batched scans return a list of :mod:`repro.table.scan` stream
        states, one per independently-seeking component, in the same order
        as :meth:`scan_cursors`.
        """
        return None

    @abc.abstractmethod
    def scan_runs(self, lo_key: Optional[Key],
                  hi_key: Optional[Key]) -> Tuple[List[List[RecordTuple]], float]:
        """Eagerly-read sorted runs covering [lo, hi] (tests/diagnostics)."""

    @abc.abstractmethod
    def scan_cursors(self, lo_key: Optional[Key],
                     hi_key: Optional[Key]) -> List[Iterable[RecordTuple]]:
        """Lazily-charging sorted iterators covering [lo, hi] (inclusive).

        One iterator per independently-seeking component (each L0 file, each
        deeper level); the DB's merging iterator combines them.  I/O is
        charged -- with read-ahead -- as records are consumed, so a
        limit-bounded scan pays only for what it reads.
        """

    # ------------------------------------------------------------- inspection
    @abc.abstractmethod
    def level_data_bytes(self) -> Dict[int, int]:
        """Live data bytes per level (the paper's D_j)."""

    @observation_only
    @abc.abstractmethod
    def check_invariants(self) -> None:
        """Raise InvariantViolation when the structure is inconsistent."""

    @observation_only
    @abc.abstractmethod
    def describe(self) -> Dict[str, object]:
        """Structure digest for reports and tests."""

    # --------------------------------------------------------------- recovery
    @abc.abstractmethod
    def checkpoint_state(self) -> object:
        """Durable structure snapshot for the manifest.

        Must be an *owned*, pure-data snapshot: no references to live nodes,
        tables or level lists (the manifest stores it verbatim, so aliasing
        would leak post-checkpoint mutations into recovery).
        """

    @abc.abstractmethod
    def restore_state(self, state: object) -> None:
        """Rebuild the structure from a manifest checkpoint.

        ``state`` is what :meth:`checkpoint_state` returned, or None to
        reset the engine to its pristine (empty) structure -- the crash
        path before any checkpoint exists.  Implementations release the
        files of the structure they replace; output files of abandoned
        in-flight jobs are swept separately by the DB's orphan collector.
        """

    @abc.abstractmethod
    def live_file_ids(self) -> set:
        """File ids referenced by the current structure (orphan-GC keep set)."""
