"""Engine interface shared by LSA/IAM and the baseline LSM engines.

An engine owns the on-disk structure.  The DB wrapper (:mod:`repro.db`) owns
the WAL and memtable and hands full memtables over through
:meth:`EngineBase.submit_flush`; everything below that line -- compaction
scheduling, reads, invariants -- is the engine's business.

Scheduling contract: the engine registers itself as the background pool's
*provider*; whenever a background thread goes idle the pool asks
:meth:`EngineBase.pick_background_job` for the next compaction.  Structural
mutation happens when a job activates (see :mod:`repro.storage.background`).
"""

from __future__ import annotations

import abc
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.common.records import Key, RecordTuple
from repro.storage.background import BackgroundJob
from repro.storage.runtime import Runtime
from repro.check.effects.registry import effects, observation_only

if TYPE_CHECKING:  # pragma: no cover
    from repro.check.sanitizer import Sanitizer

#: Callable returning the live snapshot sequence numbers (for merge GC).
SnapshotProvider = Callable[[], Sequence[int]]


class EngineBase(abc.ABC):
    """Common surface of every storage engine in this repo."""

    name: str = "engine"

    def __init__(self, runtime: Runtime) -> None:
        self.runtime = runtime
        self.snapshots_provider: SnapshotProvider = tuple
        #: Optional runtime sanitizer (attached by the DB wrapper when the
        #: debug layer is enabled; see :mod:`repro.check.sanitizer`).
        self.sanitizer: Optional["Sanitizer"] = None
        runtime.pool.set_provider(self.pick_background_job)

    @observation_only
    def _sanitize(self, event: str) -> None:
        """Run the structural sanitizer after ``event``, when attached."""
        if self.sanitizer is not None:
            self.sanitizer.after_structural_event(self, event)

    def _trace(self, cat: str, name: str, **args: object) -> None:
        """Emit a structural trace instant when tracing is enabled.

        Hot call sites should guard on ``self.runtime.tracer.enabled`` before
        building kwargs; this helper re-checks so cold sites can call it
        unconditionally.
        """
        tracer = self.runtime.tracer
        if tracer.enabled:
            tracer.instant(cat, name, **args)

    def _crash_point(self, site: str) -> None:
        """Fire the crash-point scheduler at an engine-internal site."""
        cp = self.runtime.crash_points
        if cp is not None:
            cp.reached(site)

    @effects("CLOCK_ADVANCE", "STATE_MUTATE")
    def _fault_gate(self, nbytes: int) -> float:
        """Degradation pacing while background jobs keep failing.

        Each consecutive job give-up (``pool.failed_streak``) halves the
        write rate, floored at 1/256 of device bandwidth: under a failing
        device the store slows down instead of crashing or running the
        structure unboundedly far past its thresholds.  Returns the added
        latency (0.0 on the clean path).
        """
        streak = self.runtime.pool.failed_streak
        if streak <= 0 or nbytes <= 0:
            return 0.0
        frac = max(2.0 ** -min(streak, 8), 1.0 / 256.0)
        bw = self.runtime.options.device.write_bandwidth
        extra = nbytes / (bw * frac) - nbytes / bw
        if extra <= 0.0:
            return 0.0
        self.runtime.clock.advance(extra)
        self.runtime.metrics.bump("slowdown:fault-degraded")
        self.runtime.metrics.add_gate_delay("fault-degraded", extra)
        self._trace("gate", "fault-degraded", streak=streak, delay_s=extra)
        return extra

    # ------------------------------------------------------------------ write
    @property
    @abc.abstractmethod
    def memtable_capacity(self) -> int:
        """Bytes after which the DB rotates the memtable (Ct / write_buffer)."""

    @abc.abstractmethod
    def submit_flush(self, records: List[RecordTuple], nbytes: int) -> BackgroundJob:
        """Schedule the flush of a full (immutable) memtable."""

    def write_gate(self, nbytes: int) -> float:
        """Apply engine-specific slowdowns/stops before a user write.

        ``nbytes`` is the write's encoded size (slowdowns pace by bytes).
        Returns the simulated latency spent gated (0.0 when unobstructed).
        """
        return self._fault_gate(nbytes)

    # ------------------------------------------------------------- background
    @abc.abstractmethod
    def pick_background_job(self) -> Optional[BackgroundJob]:
        """Offer the next compaction job, or None when nothing is demanded."""

    def quiesce(self) -> float:
        """Finish all background work; returns elapsed simulated time."""
        return self.runtime.pool.drain_all()

    # ------------------------------------------------------------------- read
    @abc.abstractmethod
    def get(self, key: Key, snapshot: Optional[int] = None) -> Tuple[Optional[RecordTuple], float]:
        """Newest visible on-disk version of ``key``; (record|None, latency)."""

    def multi_get(self, keys: Sequence[Key], snapshot: Optional[int] = None,
                  ) -> Tuple[List[Optional[RecordTuple]], List[float]]:
        """Batched :meth:`get`: ([record|None, ...], [latency, ...]).

        The base implementation is the scalar loop, so it is trivially
        charge-identical to a caller looping :meth:`get`.  Engines override
        it with vectorized planners that replay the same device charges in
        the same order (see :meth:`repro.core.lsa.LsaTree.multi_get`).
        Latencies are measured as per-key simulated-clock deltas.
        """
        clock = self.runtime.clock
        results: List[Optional[RecordTuple]] = []
        latencies: List[float] = []
        for key in keys:
            t0 = clock.now
            rec, _ = self.get(key, snapshot)
            results.append(rec)
            latencies.append(clock.now - t0)
        return results, latencies

    def _replay_probe_plans(self, probes: List[List[Tuple[int, range]]],
                            counters: List[int]) -> List[float]:
        """Phase B of a planned batch lookup: issue the per-key charges.

        ``probes[g]`` holds key ``g``'s planned ``(file_id, blocks)`` reads
        in scalar walk order; replaying them key by key, in request order,
        reproduces the scalar loop's device/cache/clock trajectory exactly.
        Returns per-key simulated latencies (clock deltas).
        """
        fg = self.runtime.fg_read_blocks
        clock = self.runtime.clock
        latencies = [0.0] * len(probes)
        for g, plist in enumerate(probes):
            if plist:
                t0 = clock.now
                for fid, blocks in plist:
                    fg(fid, blocks)
                latencies[g] = clock.now - t0
        if counters[0]:
            self.runtime.metrics.add_bloom_probes(counters[0], counters[1])
        return latencies

    @observation_only
    def scan_plan(self, lo_key: Optional[Key],
                  hi_key: Optional[Key]) -> Optional[List[object]]:
        """Stream plan for the batched scan assembler, or None.

        None means "unsupported": the DB falls back to the scalar
        heap-merge path over :meth:`scan_cursors`.  Engines that support
        batched scans return a list of :mod:`repro.table.scan` stream
        states, one per independently-seeking component, in the same order
        as :meth:`scan_cursors`.
        """
        return None

    @abc.abstractmethod
    def scan_runs(self, lo_key: Optional[Key],
                  hi_key: Optional[Key]) -> Tuple[List[List[RecordTuple]], float]:
        """Eagerly-read sorted runs covering [lo, hi] (tests/diagnostics)."""

    @abc.abstractmethod
    def scan_cursors(self, lo_key: Optional[Key],
                     hi_key: Optional[Key]) -> List[Iterable[RecordTuple]]:
        """Lazily-charging sorted iterators covering [lo, hi] (inclusive).

        One iterator per independently-seeking component (each L0 file, each
        deeper level); the DB's merging iterator combines them.  I/O is
        charged -- with read-ahead -- as records are consumed, so a
        limit-bounded scan pays only for what it reads.
        """

    # ------------------------------------------------------------- inspection
    @abc.abstractmethod
    def level_data_bytes(self) -> Dict[int, int]:
        """Live data bytes per level (the paper's D_j)."""

    @observation_only
    @abc.abstractmethod
    def check_invariants(self) -> None:
        """Raise InvariantViolation when the structure is inconsistent."""

    @observation_only
    @abc.abstractmethod
    def describe(self) -> Dict[str, object]:
        """Structure digest for reports and tests."""

    # --------------------------------------------------------------- recovery
    @abc.abstractmethod
    def checkpoint_state(self) -> object:
        """Durable structure snapshot for the manifest.

        Must be an *owned*, pure-data snapshot: no references to live nodes,
        tables or level lists (the manifest stores it verbatim, so aliasing
        would leak post-checkpoint mutations into recovery).
        """

    @abc.abstractmethod
    def restore_state(self, state: object) -> None:
        """Rebuild the structure from a manifest checkpoint.

        ``state`` is what :meth:`checkpoint_state` returned, or None to
        reset the engine to its pristine (empty) structure -- the crash
        path before any checkpoint exists.  Implementations release the
        files of the structure they replace; output files of abandoned
        in-flight jobs are swept separately by the DB's orphan collector.
        """

    @abc.abstractmethod
    def live_file_ids(self) -> set:
        """File ids referenced by the current structure (orphan-GC keep set)."""
