"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An option value is invalid or a combination of options is inconsistent."""


class CorruptionError(ReproError):
    """Simulated on-disk state failed an integrity check."""


class InvariantViolation(ReproError):
    """An internal structural invariant was broken (always a bug)."""


class TransientIOError(ReproError):
    """A simulated device request failed transiently (fault injection).

    Raised by the fault injector against a single I/O attempt; callers retry
    with backoff, so user code only observes it once retries are exhausted.
    """


class StoreClosedError(ReproError):
    """Operation attempted on a closed database."""
