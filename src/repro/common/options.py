"""Configuration dataclasses for the storage substrate and every engine.

Default sizes follow the paper's configuration (§6.1) scaled down by
``SCALE_BYTES`` = 1/4096 (1 paper-GB -> 0.25 sim-MB); see DESIGN.md.  All the
*ratios* the paper's behaviour depends on -- ``data / Ct``, the fanout ``t``,
``memory / data`` -- are preserved exactly, so tree depth, node counts and the
mixed-level index come out the same as in the paper's testbed.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import ConfigError

#: Scale factor applied to the paper's byte sizes (1 paper-GB -> 0.25 sim-MB).
SCALE_BYTES = 1.0 / 4096.0

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def paper_bytes(nbytes: float) -> int:
    """Scale a byte size quoted in the paper down to simulation scale."""
    return max(1, int(nbytes * SCALE_BYTES))


@dataclass(frozen=True)
class DeviceProfile:
    """Latency/bandwidth model of a storage device -- at simulation scale.

    Because the simulation scales data volume by 1/4096 but record/block
    sizes only by 1/4, one seek constant cannot preserve both of the paper's
    regimes.  Each profile therefore carries two (see DESIGN.md):

    * ``seek_time_s`` -- charged per random *query* I/O run.  Scaled by the
      record-size factor (1/4) so point reads stay seek-dominated exactly as
      on the real device (HDD reads ~ms, SSD reads ~tens of us).
    * ``bulk_seek_time_s`` -- charged per *bulk* (flush/compaction) run.
      Scaled by the volume factor (1/4096) so the seek:transfer ratio of a
      compaction run matches the paper's testbed (seeks cost ~9% of an
      append pass on HDD, ~0% on SSD -- the "worst write case" lever).
    """

    name: str
    seek_time_s: float
    bulk_seek_time_s: float
    read_bandwidth: float  # bytes / second
    write_bandwidth: float  # bytes / second

    def __post_init__(self) -> None:
        if self.seek_time_s < 0 or self.bulk_seek_time_s < 0:
            raise ConfigError("seek times must be >= 0")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ConfigError("bandwidths must be > 0")


#: Intel DC S3710-class SATA SSD (paper's SSD testbed); real seek 0.1 ms.
SSD = DeviceProfile(name="ssd", seek_time_s=0.0001 / 4, bulk_seek_time_s=0.0001 / 4096,
                    read_bandwidth=500 * MIB, write_bandwidth=400 * MIB)

#: 10k-RPM enterprise HDD (paper's HDD testbed); real seek 8 ms.
HDD = DeviceProfile(name="hdd", seek_time_s=0.008 / 4, bulk_seek_time_s=0.008 / 4096,
                    read_bandwidth=150 * MIB, write_bandwidth=150 * MIB)


@dataclass(frozen=True)
class StorageOptions:
    """Options of the simulated storage stack shared by all engines."""

    device: DeviceProfile = SSD
    #: OS page-cache capacity in bytes (the paper's "memory size").
    page_cache_bytes: int = paper_bytes(16 * GIB)
    #: Cache block granularity; the paper uses 4 KiB blocks at full scale.
    block_size: int = 1024
    #: Device I/O chunk used when background jobs stream data.
    io_chunk_bytes: int = 16 * KIB

    def __post_init__(self) -> None:
        if self.page_cache_bytes < 0:
            raise ConfigError("page_cache_bytes must be >= 0")
        if self.block_size <= 0:
            raise ConfigError("block_size must be > 0")
        if self.io_chunk_bytes <= 0:
            raise ConfigError("io_chunk_bytes must be > 0")


@dataclass(frozen=True)
class FaultOptions:
    """Deterministic transient-fault injection plan (see repro.faults).

    Faults are decided per I/O attempt from a seeded hash plus explicit
    windows, so two runs with the same options and workload fail (and
    recover) identically.  ``rate`` must stay below 1.0: windows terminate
    on their own (op windows are consumed, time windows are escaped by
    backoff), but an always-failing device would retry forever.
    """

    #: Seed of the per-attempt fault hash (splitmix64).
    seed: int = 1
    #: Probability in [0, 1) that any single I/O attempt fails.
    rate: float = 0.0
    #: Half-open [lo, hi) windows of global I/O-attempt indices that fail.
    op_windows: Tuple[Tuple[int, int], ...] = ()
    #: Half-open [lo, hi) sim-time windows (seconds) during which attempts fail.
    time_windows: Tuple[Tuple[float, float], ...] = ()
    #: Attempts per foreground I/O / background activation before giving up.
    max_retries: int = 6
    #: First retry backoff (seconds); doubles per retry up to backoff_max_s.
    backoff_base_s: float = 0.0005
    backoff_max_s: float = 0.05
    #: Re-queue delay after a flush job exhausts its retries (flushes are
    #: never dropped -- they hold the only copy of the immutable memtable).
    giveup_backoff_s: float = 0.2

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate < 1.0):
            raise ConfigError("fault rate must be in [0, 1)")
        for lo, hi in self.op_windows:
            if lo < 0 or hi <= lo:
                raise ConfigError("op_windows entries need 0 <= lo < hi")
        for tlo, thi in self.time_windows:
            if tlo < 0 or thi <= tlo:
                raise ConfigError("time_windows entries need 0 <= lo < hi")
        if self.max_retries < 1:
            raise ConfigError("max_retries must be >= 1")
        if self.backoff_base_s <= 0:
            raise ConfigError("backoff_base_s must be > 0")
        if self.backoff_max_s < self.backoff_base_s:
            raise ConfigError("backoff_max_s must be >= backoff_base_s")
        if self.giveup_backoff_s <= 0:
            raise ConfigError("giveup_backoff_s must be > 0")

    @property
    def enabled(self) -> bool:
        return bool(self.rate > 0.0 or self.op_windows or self.time_windows)


#: Background pool schedulers (see repro.storage.background).
SCHEDULERS = ("fair", "legacy")

#: Compaction selection policies (see EngineBase.pick_background_job).
COMPACTION_SELECTORS = ("provider", "oldest-first", "greedy-largest-debt")


@dataclass(frozen=True)
class TreeOptions:
    """Options common to every tree engine."""

    #: Fixed key width charged per record (paper: 16-byte YCSB-style keys).
    key_size: int = 16
    #: Bloom-filter bits per record (paper: 14 -> ~0.2% false-positive rate).
    bloom_bits_per_key: int = 14
    #: Number of background compaction/flush threads (paper: 1 or 4).
    background_threads: int = 1
    #: Compatibility switch: True restores the pre-scheduler write admission
    #: (cliff-edge slowdown bands, pure round-robin pump) byte for byte --
    #: proven by tests/test_legacy_gate.py -- and forces ``scheduler`` /
    #: ``compaction_selector`` to their legacy values.
    legacy_gate: bool = False
    #: Background pool scheduler: "fair" drains flush vs compaction debt by
    #: weighted per-class device-time accounting; "legacy" is the original
    #: pure round-robin pump.
    scheduler: str = "fair"
    #: Compaction picking policy: "provider" keeps each engine's native
    #: score order; "oldest-first" prefers the level waiting longest;
    #: "greedy-largest-debt" prefers the level with the most overdue bytes.
    compaction_selector: str = "provider"

    def __post_init__(self) -> None:
        if self.key_size <= 0:
            raise ConfigError("key_size must be > 0")
        if self.bloom_bits_per_key < 0:
            raise ConfigError("bloom_bits_per_key must be >= 0")
        if self.background_threads < 1:
            raise ConfigError("background_threads must be >= 1")
        if self.scheduler not in SCHEDULERS:
            raise ConfigError(f"unknown scheduler {self.scheduler!r}; "
                              f"choose from {SCHEDULERS}")
        if self.compaction_selector not in COMPACTION_SELECTORS:
            raise ConfigError(
                f"unknown compaction_selector {self.compaction_selector!r}; "
                f"choose from {COMPACTION_SELECTORS}")


@dataclass(frozen=True)
class LsmOptions(TreeOptions):
    """LevelDB/RocksDB-style leveled-LSM configuration (paper §6.1).

    Paper values: memtable 128 MB, file size 64 MB, level thresholds 640 MB,
    6.4 GB, 64 GB ... growing by 10.  ``style`` selects LevelDB behaviour
    (overflow-tolerant, hard stalls) or RocksDB behaviour (eager compaction,
    slowdown-based stall control).
    """

    memtable_bytes: int = paper_bytes(128 * MIB)
    file_bytes: int = paper_bytes(64 * MIB)
    level1_bytes: int = paper_bytes(640 * MIB)
    level_size_multiplier: int = 10
    max_levels: int = 7
    l0_compaction_trigger: int = 4
    l0_slowdown_trigger: int = 8
    l0_stop_trigger: int = 12
    #: "leveldb" or "rocksdb"
    style: str = "leveldb"
    #: RocksDB-style soft limit on estimated pending compaction debt (bytes);
    #: writes are delayed when exceeded.  0 disables (LevelDB behaviour).
    pending_compaction_soft_bytes: int = 0
    #: While in a slowdown band, user writes are paced to this fraction of
    #: the device's write bandwidth (RocksDB's delayed_write_rate; LevelDB's
    #: 1 ms sleep per write behaves like a much harsher pace).  Scale-free.
    delayed_write_fraction: float = 0.05

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.memtable_bytes <= 0 or self.file_bytes <= 0:
            raise ConfigError("memtable_bytes and file_bytes must be > 0")
        if self.level1_bytes < self.file_bytes:
            raise ConfigError("level1_bytes must be >= file_bytes")
        if self.level_size_multiplier < 2:
            raise ConfigError("level_size_multiplier must be >= 2")
        if not (0 < self.l0_compaction_trigger <= self.l0_slowdown_trigger <= self.l0_stop_trigger):
            raise ConfigError("require 0 < trigger <= slowdown <= stop for L0")
        if not (0.0 < self.delayed_write_fraction <= 1.0):
            raise ConfigError("delayed_write_fraction must be in (0, 1]")
        if self.style not in ("leveldb", "rocksdb"):
            raise ConfigError(f"unknown LSM style {self.style!r}")

    def level_target_bytes(self, level: int) -> int:
        """Size threshold of level ``level`` (level >= 1)."""
        if level < 1:
            raise ConfigError("leveled thresholds start at L1")
        return self.level1_bytes * (self.level_size_multiplier ** (level - 1))

    @staticmethod
    def leveldb(**kw: object) -> "LsmOptions":
        return LsmOptions(style="leveldb", **kw)

    @staticmethod
    def rocksdb(**kw: object) -> "LsmOptions":
        defaults = dict(
            style="rocksdb",
            pending_compaction_soft_bytes=paper_bytes(8 * GIB),
            l0_slowdown_trigger=20,
            l0_stop_trigger=36,
            delayed_write_fraction=0.1,
        )
        defaults.update(kw)
        return LsmOptions(**defaults)


@dataclass(frozen=True)
class LsaOptions(TreeOptions):
    """LSA-tree configuration (§4).

    ``node_capacity`` is the paper's ``Ct`` (128 MB); ``fanout`` is ``t``
    (node-count threshold of level i is ``t**i``); a node splits when its
    child count reaches ``2 * fanout``; merge-generated leaf children start at
    ``Ct / leaf_split_factor`` (paper: Ct/5).
    """

    node_capacity: int = paper_bytes(128 * MIB)
    fanout: int = 10
    leaf_split_factor: int = 5
    #: Candidate filter for combine: Tcn <= combine_tcn_factor * t (paper: 3).
    combine_tcn_factor: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node_capacity <= 0:
            raise ConfigError("node_capacity must be > 0")
        if self.fanout < 2:
            raise ConfigError("fanout must be >= 2")
        if self.leaf_split_factor < 1:
            raise ConfigError("leaf_split_factor must be >= 1")
        if self.combine_tcn_factor < 1:
            raise ConfigError("combine_tcn_factor must be >= 1")

    @property
    def split_children_threshold(self) -> int:
        return 2 * self.fanout

    @property
    def leaf_initial_bytes(self) -> int:
        return max(1, self.node_capacity // self.leaf_split_factor)

    def level_node_threshold(self, level: int) -> int:
        """Node-count threshold ``t**i`` of internal level ``level``."""
        if level < 1:
            raise ConfigError("on-disk levels start at L1")
        return self.fanout**level


@dataclass(frozen=True)
class IamOptions(LsaOptions):
    """IAM-tree configuration (§5) = LSA plus the append/merge policy.

    ``fixed_m`` / ``fixed_k`` pin the mixed level and its sequence bound; when
    either is None the tree tunes them from page-cache residency via Eq. (1)
    and (2), reserving ``memory_budget_fraction`` of the cache for appended
    sequences (the paper suggests M/2).
    """

    fixed_m: Optional[int] = None
    fixed_k: Optional[int] = None
    #: Upper bound for the tuned k.  Each extra sequence at the mixed level
    #: saves merges but costs scans a(nother) potential seek when appended
    #: sequences fall out of cache; the paper's tuned configurations land
    #: around k = 2-4 (Tables 3/4).
    k_max: int = 4
    #: Fraction of the page cache reserved for appended sequences in Eq. (2);
    #: the paper uses M by default and suggests M/2 as a conservative option.
    memory_budget_fraction: float = 1.0
    #: Re-run the m/k tuner every this many memtable flushes.
    retune_interval: int = 8
    #: §5.1.3 "forcible caching": pin appended sequences of the appending and
    #: mixed levels in the page cache so scans pay at most one seek per
    #: level even under cold read traffic.  Off by default (the paper
    #: prefers the flexible hotter-data-first strategy).
    pin_appended_sequences: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fixed_m is not None and self.fixed_m < 1:
            raise ConfigError("fixed_m must be >= 1")
        if self.fixed_k is not None and self.fixed_k < 1:
            raise ConfigError("fixed_k must be >= 1")
        if self.k_max < 1:
            raise ConfigError("k_max must be >= 1")
        if not (0.0 < self.memory_budget_fraction <= 1.0):
            raise ConfigError("memory_budget_fraction must be in (0, 1]")
        if self.retune_interval < 1:
            raise ConfigError("retune_interval must be >= 1")

    def as_lsa(self) -> "IamOptions":
        """The LSA degenerate case: mixed level beyond the tree, pure appends."""
        return dataclasses.replace(self, fixed_m=10**9, fixed_k=1)

    def as_lsm(self) -> "IamOptions":
        """The LSM degenerate case: every on-disk level merges (m=1, k=1)."""
        return dataclasses.replace(self, fixed_m=1, fixed_k=1)
