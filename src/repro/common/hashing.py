"""64-bit mixing shared by Bloom filters, workloads and the LSM-trie.

``splitmix64`` is a bijective finalizer over the 64-bit integers: unique,
well-spread outputs for distinct inputs.  The workload generators use it to
turn ordered insert counters into collision-free unordered keys (the YCSB
hash load, §6.2); the LSM-trie uses it as its placement hash.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

MASK64 = 0xFFFFFFFFFFFFFFFF


def splitmix64(x: int) -> int:
    """Scalar splitmix64 finalizer (bijective on 64-bit integers)."""
    z = (x + 0x9E3779B97F4A7C15) & MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return z ^ (z >> 31)


def splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 over a uint64 array; bit-identical to the scalar."""
    z = x + np.uint64(0x9E3779B97F4A7C15)  # uint64 arithmetic wraps = & MASK64
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def splitmix64_many(xs: Union[Sequence[int], np.ndarray]) -> List[int]:
    """Batch splitmix64 over integers; returns plain Python ints.

    The workload generators call this with whole key chunks instead of
    mixing one counter at a time; outputs equal ``[splitmix64(x) for x in
    xs]`` exactly (``tests/test_hashing.py`` asserts it).
    """
    arr = np.asarray(xs, dtype=np.uint64)
    return splitmix64_array(arr).tolist()
