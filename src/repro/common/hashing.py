"""64-bit mixing shared by Bloom filters, workloads and the LSM-trie.

``splitmix64`` is a bijective finalizer over the 64-bit integers: unique,
well-spread outputs for distinct inputs.  The workload generators use it to
turn ordered insert counters into collision-free unordered keys (the YCSB
hash load, §6.2); the LSM-trie uses it as its placement hash.
"""

from __future__ import annotations

MASK64 = 0xFFFFFFFFFFFFFFFF


def splitmix64(x: int) -> int:
    """Scalar splitmix64 finalizer (bijective on 64-bit integers)."""
    z = (x + 0x9E3779B97F4A7C15) & MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return z ^ (z >> 31)
