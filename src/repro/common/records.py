"""The record model shared by every engine.

A *record* is the unit stored by memtables, WALs, SSTables and MSTables.  For
speed the hot paths treat records as plain 4-tuples

    ``(key, seq, kind, value)``

* ``key``   -- any totally-ordered Python value; the engines and workloads use
  fixed-width integers, which sort the same as their big-endian byte encoding.
* ``seq``   -- global MVCC sequence number (monotonically increasing per DB).
* ``kind``  -- :data:`PUT` or :data:`DELETE` (a tombstone).
* ``value`` -- either real ``bytes`` (small values through the public API) or
  an ``int`` meaning a *synthetic* payload of that many bytes.  The workload
  generators use synthetic payloads: the simulation accounts for every byte
  moved without shuffling payload content around (see DESIGN.md).

Index constants :data:`KEY`, :data:`SEQ`, :data:`KIND`, :data:`VALUE` document
tuple positions for hot loops.  :class:`Record` is a NamedTuple with the same
layout for readable call sites and tests -- a ``Record`` *is* a valid record
tuple.

Sort order: within a sorted run records are ordered by ``(key asc, seq desc)``
so the newest version of a key comes first.  :func:`sort_key` produces that
ordering for :func:`sorted` / ``heapq``.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Sequence, Tuple, Union

PUT = 0
DELETE = 1

#: A record key: any totally-ordered Python value.  The workloads use
#: fixed-width integers, tests also use bytes/str; ``Any`` is the honest
#: static type -- ordering is a runtime contract, not a structural one.
Key = Any

KEY = 0
SEQ = 1
KIND = 2
VALUE = 3
#: Backwards-compatible alias (the field used to be the value *size*).
VSIZE = VALUE

#: Fixed per-record metadata overhead charged when encoding: 8 bytes of
#: sequence number, 1 byte of kind, 4 bytes of length framing.
RECORD_OVERHEAD = 13

Value = Union[int, bytes]
RecordTuple = Tuple[object, int, int, Value]


class Record(NamedTuple):
    """Readable record wrapper; layout-compatible with the raw 4-tuple."""

    key: object
    seq: int
    kind: int
    value: Value

    @property
    def is_tombstone(self) -> bool:
        return self.kind == DELETE


def value_nbytes(value: Value) -> int:
    """Payload size in bytes of a real or synthetic value."""
    return value if type(value) is int else len(value)


def make_put(key: Key, seq: int, value: Value) -> RecordTuple:
    """Build a PUT record tuple (``value``: bytes, or int = synthetic size)."""
    return (key, seq, PUT, value)


def make_delete(key: Key, seq: int) -> RecordTuple:
    """Build a DELETE (tombstone) record tuple."""
    return (key, seq, DELETE, 0)


def record_overhead() -> int:
    """Per-record encoding overhead in bytes (seq + kind + framing)."""
    return RECORD_OVERHEAD


def encoded_size(rec: RecordTuple, key_size: int) -> int:
    """Encoded on-disk size of ``rec`` given a fixed key width."""
    v = rec[VALUE]
    return key_size + (v if type(v) is int else len(v)) + RECORD_OVERHEAD


def encoded_size_many(recs: Sequence[RecordTuple], key_size: int) -> int:
    """Total encoded size of a batch of records."""
    fixed = key_size + RECORD_OVERHEAD
    total = fixed * len(recs)
    for rec in recs:
        v = rec[VALUE]
        total += v if type(v) is int else len(v)
    return total


def sort_key(rec: RecordTuple) -> Tuple[Key, int]:
    """Sort key producing (key asc, seq desc) order."""
    return (rec[KEY], -rec[SEQ])


def is_sorted_run(recs: Sequence[RecordTuple]) -> bool:
    """True when ``recs`` is a valid sorted run: (key asc, seq desc), no dup (key, seq)."""
    for a, b in zip(recs, recs[1:]):
        if a[KEY] > b[KEY]:
            return False
        if a[KEY] == b[KEY] and a[SEQ] <= b[SEQ]:
            return False
    return True
