"""YCSB workload definitions A-G (§6.3-§6.5).

The paper evaluates YCSB's six standard workloads plus a seventh:

========= =============================== =========== =================
workload  mix                             distribution scan length
========= =============================== =========== =================
A         50% read / 50% update           zipfian     --
B         95% read / 5% update            zipfian     --
C         100% read                       zipfian     --
D         95% read / 5% insert            latest      --
E         95% scan / 5% insert            zipfian     uniform 0-100
F         50% read / 50% read-mod-write   zipfian     --
G         95% scan / 5% update            zipfian     uniform 0-10,000
========= =============================== =========== =================

Keys follow the hash-load convention (``permute64(item)``); scans start at a
chosen item's key and read the next N records in key order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.common.errors import ConfigError
from repro.db.iamdb import IamDB
from repro.workloads.distributions import (
    LatestChooser,
    ScrambledZipfian,
    UniformChooser,
    permute64,
)


@dataclass(frozen=True)
class YcsbSpec:
    """One YCSB workload: operation mix + key distribution."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    rmw: float = 0.0
    distribution: str = "zipfian"  # zipfian | latest | uniform
    max_scan_len: int = 0

    def __post_init__(self) -> None:
        total = self.read + self.update + self.insert + self.scan + self.rmw
        if abs(total - 1.0) > 1e-9:
            raise ConfigError(f"workload {self.name}: op mix sums to {total}")
        if self.distribution not in ("zipfian", "latest", "uniform"):
            raise ConfigError(f"unknown distribution {self.distribution!r}")
        if self.scan > 0 and self.max_scan_len <= 0:
            raise ConfigError("scan workloads need max_scan_len > 0")


YCSB_WORKLOADS: Dict[str, YcsbSpec] = {
    "A": YcsbSpec("A", read=0.5, update=0.5),
    "B": YcsbSpec("B", read=0.95, update=0.05),
    "C": YcsbSpec("C", read=1.0),
    "D": YcsbSpec("D", read=0.95, insert=0.05, distribution="latest"),
    "E": YcsbSpec("E", scan=0.95, insert=0.05, max_scan_len=100),
    "F": YcsbSpec("F", read=0.5, rmw=0.5),
    "G": YcsbSpec("G", scan=0.95, update=0.05, max_scan_len=10_000),
}


def build_op_stream(db: IamDB, spec: YcsbSpec, n_ops: int, n_records: int, *,
                    seed: int, value_size: int, client: int = 0,
                    key_offset: int = 0,
                    insert_state: Optional[Dict[str, int]] = None,
                    ) -> Iterator[Callable[[], None]]:
    """Yield ``n_ops`` zero-argument operations implementing ``spec``.

    The RNG is seeded per (seed, workload): back-to-back workloads on one
    store must not replay each other's key sequence (which would read
    entirely from page cache and inflate throughput).

    Multi-client runs give each client its own stream: ``client`` salts the
    RNG (client 0 keeps the single-client seed string, so its stream is
    unchanged), ``key_offset`` rotates the client's item space so clients
    hit different key neighborhoods, and ``insert_state`` shares the
    inserted-item counter so concurrent inserts never collide on a key.
    """
    if client == 0:
        rng = random.Random(f"{seed}:{spec.name}")
    else:
        rng = random.Random(f"{seed}:{spec.name}:c{client}")
    if spec.distribution == "zipfian":
        chooser = ScrambledZipfian(n_records, rng)
    elif spec.distribution == "uniform":
        chooser = UniformChooser(n_records, rng)
    else:
        chooser = LatestChooser(n_records, rng)

    state = insert_state if insert_state is not None else {"inserted": n_records}

    def key_of(item: int) -> int:
        # The client's key-space rotation applies to the loaded item space
        # only; freshly inserted items (>= n_records) keep their global ids
        # so the latest-distribution reads still find them.
        if key_offset and item < n_records:
            item = (item + key_offset) % n_records
        return permute64(item)

    def do_read() -> None:
        db.get(key_of(chooser.sample()))

    def do_update() -> None:
        db.put(key_of(chooser.sample()), value_size)

    def do_insert() -> None:
        item = state["inserted"]
        state["inserted"] += 1
        if isinstance(chooser, LatestChooser):
            chooser.advance()
        db.put(key_of(item), value_size)

    def do_scan() -> None:
        start = key_of(chooser.sample())
        length = rng.randrange(1, spec.max_scan_len + 1)
        db.scan(start, None, limit=length)

    def do_rmw() -> None:
        key = key_of(chooser.sample())
        db.get(key)
        db.put(key, value_size)

    thresholds = []
    acc = 0.0
    for frac, fn in ((spec.read, do_read), (spec.update, do_update),
                     (spec.insert, do_insert), (spec.scan, do_scan),
                     (spec.rmw, do_rmw)):
        if frac > 0:
            acc += frac
            thresholds.append((acc, fn))

    for _ in range(n_ops):
        u = rng.random()
        for bound, fn in thresholds:
            if u <= bound:
                yield fn
                break
        else:  # floating-point edge: fall through to the last op type
            yield thresholds[-1][1]


def build_descriptor_stream(spec: YcsbSpec, n_ops: int, n_records: int, *,
                            seed: int, client: int = 0, key_offset: int = 0,
                            insert_state: Optional[Dict[str, int]] = None,
                            ) -> Iterator[Tuple]:
    """Yield ``n_ops`` operation *descriptors* instead of bound closures.

    Same RNG discipline as :func:`build_op_stream` (identical seeding, same
    draw order per client), but each op comes out as a data tuple --
    ``("read", key)``, ``("update", key)``, ``("insert", key)``,
    ``("scan", start_key, length)`` or ``("rmw", key)`` -- with every random
    draw made at generation time.  This is what the read-coalescing runner
    consumes: it needs to *see* a round's reads before executing anything,
    so it can batch them into one ``multi_get`` per round.
    """
    if client == 0:
        rng = random.Random(f"{seed}:{spec.name}")
    else:
        rng = random.Random(f"{seed}:{spec.name}:c{client}")
    if spec.distribution == "zipfian":
        chooser = ScrambledZipfian(n_records, rng)
    elif spec.distribution == "uniform":
        chooser = UniformChooser(n_records, rng)
    else:
        chooser = LatestChooser(n_records, rng)

    state = insert_state if insert_state is not None else {"inserted": n_records}

    def key_of(item: int) -> int:
        if key_offset and item < n_records:
            item = (item + key_offset) % n_records
        return permute64(item)

    def gen_read() -> Tuple:
        return ("read", key_of(chooser.sample()))

    def gen_update() -> Tuple:
        return ("update", key_of(chooser.sample()))

    def gen_insert() -> Tuple:
        item = state["inserted"]
        state["inserted"] += 1
        if isinstance(chooser, LatestChooser):
            chooser.advance()
        return ("insert", key_of(item))

    def gen_scan() -> Tuple:
        start = key_of(chooser.sample())
        length = rng.randrange(1, spec.max_scan_len + 1)
        return ("scan", start, length)

    def gen_rmw() -> Tuple:
        return ("rmw", key_of(chooser.sample()))

    thresholds = []
    acc = 0.0
    for frac, fn in ((spec.read, gen_read), (spec.update, gen_update),
                     (spec.insert, gen_insert), (spec.scan, gen_scan),
                     (spec.rmw, gen_rmw)):
        if frac > 0:
            acc += frac
            thresholds.append((acc, fn))

    for _ in range(n_ops):
        u = rng.random()
        for bound, fn in thresholds:
            if u <= bound:
                yield fn()
                break
        else:
            yield thresholds[-1][1]()
