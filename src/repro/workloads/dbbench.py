"""db_bench-style workloads (§6.2, §6.6, §6.7).

* ``hash_load``   -- YCSB's default load: unordered unique keys (no updates).
* ``fill_seq``    -- ordered inserts (db_bench fillseq).
* ``fill_random`` -- random keys *with* collisions (updates happen).
* ``overwrite``   -- updates over an existing key space only.
* ``read_seq``    -- one full-database scan (db_bench readseq).
* ``read_random`` -- uniform point reads.

Each returns a :class:`~repro.workloads.runner.WorkloadReport`.  Keys are
integers; values are synthetic payloads of ``value_size`` bytes.

Keys are produced in chunks of :data:`KEYGEN_CHUNK` via the vectorized
``permute64_many`` mixer rather than one ``permute64`` call per operation.
Random item draws still come one at a time from the seeded ``random.Random``,
so every workload issues *exactly* the same key sequence as the per-op
implementation did -- only the Python-level mixing work is batched.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.db.iamdb import IamDB
from repro.workloads.distributions import permute64_many
from repro.workloads.runner import WorkloadReport, finish_report, latency_marks

DEFAULT_VALUE_SIZE = 256

#: Keys generated per vectorized chunk (amortizes the numpy round trip
#: without holding a large key buffer alive).
KEYGEN_CHUNK = 8192


def hash_load(db: IamDB, n_records: int, *, value_size: int = DEFAULT_VALUE_SIZE,
              quiesce: bool = True, name: str = "hash-load") -> WorkloadReport:
    """Insert ``n_records`` unique unordered keys (the paper's load, §6.2)."""
    t0 = db.runtime.clock.now
    marks = latency_marks(db)
    put = db.put
    for start in range(0, n_records, KEYGEN_CHUNK):
        stop = min(start + KEYGEN_CHUNK, n_records)
        for key in permute64_many(range(start, stop)):
            put(key, value_size)
    if quiesce:
        db.quiesce()
    return finish_report(db, name, n_records, t0, marks)


def fill_seq(db: IamDB, n_records: int, *, value_size: int = DEFAULT_VALUE_SIZE,
             quiesce: bool = True) -> WorkloadReport:
    """Insert ``n_records`` strictly increasing keys (db_bench fillseq)."""
    t0 = db.runtime.clock.now
    marks = latency_marks(db)
    put = db.put
    for i in range(n_records):
        put(i, value_size)
    if quiesce:
        db.quiesce()
    return finish_report(db, "fillseq", n_records, t0, marks)


def fill_random(db: IamDB, n_records: int, *, value_size: int = DEFAULT_VALUE_SIZE,
                seed: int = 1, quiesce: bool = True) -> WorkloadReport:
    """Insert random keys drawn from a space of ``n_records`` (has updates)."""
    rng = random.Random(seed)
    t0 = db.runtime.clock.now
    marks = latency_marks(db)
    put = db.put
    randrange = rng.randrange
    for start in range(0, n_records, KEYGEN_CHUNK):
        chunk = min(KEYGEN_CHUNK, n_records - start)
        items = [randrange(n_records) for _ in range(chunk)]
        for key in permute64_many(items):
            put(key, value_size)
    if quiesce:
        db.quiesce()
    return finish_report(db, "fillrandom", n_records, t0, marks)


def overwrite(db: IamDB, n_ops: int, n_records: int, *,
              value_size: int = DEFAULT_VALUE_SIZE, seed: int = 2,
              quiesce: bool = True) -> WorkloadReport:
    """Update existing keys uniformly (db_bench overwrite; space test §6.7)."""
    rng = random.Random(seed)
    t0 = db.runtime.clock.now
    marks = latency_marks(db)
    put = db.put
    randrange = rng.randrange
    for start in range(0, n_ops, KEYGEN_CHUNK):
        chunk = min(KEYGEN_CHUNK, n_ops - start)
        items = [randrange(n_records) for _ in range(chunk)]
        for key in permute64_many(items):
            put(key, value_size)
    if quiesce:
        db.quiesce()
    return finish_report(db, "overwrite", n_ops, t0, marks)


def read_seq(db: IamDB, *, limit: Optional[int] = None) -> WorkloadReport:
    """Scan the whole database in order (db_bench readseq, §6.6)."""
    t0 = db.runtime.clock.now
    marks = latency_marks(db)
    rows = db.scan(None, None, limit=limit)
    return finish_report(db, "readseq", len(rows), t0, marks)


def read_random(db: IamDB, n_ops: int, n_records: int, *,
                seed: int = 3) -> WorkloadReport:
    """Uniform point reads over a hash-loaded key space."""
    rng = random.Random(seed)
    t0 = db.runtime.clock.now
    marks = latency_marks(db)
    get = db.get
    randrange = rng.randrange
    for start in range(0, n_ops, KEYGEN_CHUNK):
        chunk = min(KEYGEN_CHUNK, n_ops - start)
        items = [randrange(n_records) for _ in range(chunk)]
        for key in permute64_many(items):
            get(key)
    return finish_report(db, "readrandom", n_ops, t0, marks)
