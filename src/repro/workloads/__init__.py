"""Workload generators and runners (YCSB A-G and db_bench, §6.1)."""

from repro.workloads.distributions import (
    LatestChooser,
    ScrambledZipfian,
    UniformChooser,
    ZipfianGenerator,
    permute64,
)
from repro.workloads.dbbench import (
    fill_random,
    fill_seq,
    hash_load,
    overwrite,
    read_random,
    read_seq,
)
from repro.workloads.runner import WorkloadReport, run_ycsb
from repro.workloads.ycsb import YCSB_WORKLOADS, YcsbSpec

__all__ = [
    "LatestChooser",
    "ScrambledZipfian",
    "UniformChooser",
    "ZipfianGenerator",
    "permute64",
    "fill_random",
    "fill_seq",
    "hash_load",
    "overwrite",
    "read_random",
    "read_seq",
    "WorkloadReport",
    "run_ycsb",
    "YCSB_WORKLOADS",
    "YcsbSpec",
]
