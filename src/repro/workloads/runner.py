"""Workload reports and the YCSB operation runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, TYPE_CHECKING

from repro.db.iamdb import IamDB

if TYPE_CHECKING:  # cycle-free: ycsb imports this module's report types
    from repro.workloads.ycsb import YcsbSpec


@dataclass
class WorkloadReport:
    """Outcome of one workload phase against one DB instance."""

    name: str
    engine: str
    ops: int
    sim_seconds: float
    #: Operations per simulated second (the paper's IOPS/throughput axis).
    throughput: float
    write_amplification: float
    per_level_write_amplification: Dict[int, float]
    space_used_bytes: int
    #: Per-op-type tail digests: {"insert": {"p50":..,"p99":..,"max":..}, ...}
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    def p99(self, op: str) -> float:
        return self.latency.get(op, {}).get("p99", 0.0)

    def max_latency(self, op: str) -> float:
        return self.latency.get(op, {}).get("max", 0.0)

    def row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "workload": self.name,
            "engine": self.engine,
            "ops": self.ops,
            "sim_s": round(self.sim_seconds, 4),
            "ops_per_s": round(self.throughput, 1),
            "WA": round(self.write_amplification, 3),
            "space_MB": round(self.space_used_bytes / 1e6, 3),
        }


def latency_marks(db: IamDB) -> Dict[str, int]:
    """Per-op sample counts, for windowed latency reporting."""
    return {op: rec.count for op, rec in db.metrics.latency.items()}


def finish_report(db: IamDB, name: str, ops: int, t0: float,
                  marks: Optional[Dict[str, int]] = None) -> WorkloadReport:
    """Build a report for the window since simulated time ``t0``.

    ``marks`` (from :func:`latency_marks`) restricts latency digests to the
    samples recorded during this window.
    """
    sim = db.runtime.clock.now - t0
    marks = marks or {}
    latency = {}
    for op, rec in db.metrics.latency.items():
        summary = rec.window_summary(marks.get(op, 0))
        if summary["count"]:
            latency[op] = summary
    return WorkloadReport(
        name=name,
        engine=db.engine.name,
        ops=ops,
        sim_seconds=sim,
        throughput=(ops / sim) if sim > 0 else 0.0,
        write_amplification=db.write_amplification(),
        per_level_write_amplification=db.per_level_write_amplification(),
        space_used_bytes=db.space_used_bytes(),
        latency=latency,
        extra={"stats": db.stats()},
    )


def run_ycsb(db: IamDB, spec: "YcsbSpec", n_ops: int, n_records: int, *, seed: int = 11,
             value_size: int = 256, clients: int = 1,
             coalesce_reads: bool = False) -> WorkloadReport:
    """Run ``n_ops`` operations of a YCSB workload spec (see ycsb.py).

    ``n_records`` is the loaded record count; keys are ``permute64(item)``
    as produced by :func:`repro.workloads.dbbench.hash_load`.

    ``clients > 1`` models concurrent front-end clients deterministically:
    each client gets its own seeded op stream with a rotated key-space
    offset (client c starts at item ``c * n_records // clients``) and the
    requests interleave round-robin, one op per client per turn.  The total
    op count stays ``n_ops``; ``clients=1`` is byte-identical to the
    original single-stream runner.

    ``coalesce_reads`` models a batching front door: each round-robin
    turn's point reads are grouped into one :meth:`multi_get` call (one
    batched op against a cluster router that fans out per shard), executed
    before the round's remaining ops run in client order.  Read-modify-
    write stays atomic (never split across the batch).  Coalescing changes
    timing by design -- fewer RPCs for the same logical ops -- so it is a
    performance mode, not an equivalence-preserving one.
    """
    from repro.workloads.ycsb import build_op_stream  # cycle-free local import

    if clients < 1:
        raise ValueError("clients must be >= 1")
    t0 = db.runtime.clock.now
    marks = latency_marks(db)
    ops = 0
    if coalesce_reads:
        ops = _run_coalesced(db, spec, n_ops, n_records, seed=seed,
                             value_size=value_size, clients=clients)
        return finish_report(db, spec.name, ops, t0, marks)
    if clients == 1:
        stream = build_op_stream(db, spec, n_ops, n_records, seed=seed,
                                 value_size=value_size)
        for op in stream:
            op()
            ops += 1
        return finish_report(db, spec.name, ops, t0, marks)
    # Shared insert counter: concurrent clients never collide on a new key.
    insert_state = {"inserted": n_records}
    streams = []
    for c in range(clients):
        client_ops = (n_ops - c + clients - 1) // clients
        streams.append(build_op_stream(
            db, spec, client_ops, n_records, seed=seed,
            value_size=value_size, client=c,
            key_offset=(c * n_records) // clients,
            insert_state=insert_state))
    live = list(streams)
    while live:
        finished = []
        for stream in live:
            op = next(stream, None)
            if op is None:
                finished.append(stream)
                continue
            op()
            ops += 1
        for stream in finished:
            live.remove(stream)
    return finish_report(db, spec.name, ops, t0, marks)


def _run_coalesced(db: IamDB, spec: "YcsbSpec", n_ops: int, n_records: int, *, seed: int,
                   value_size: int, clients: int) -> int:
    """Round-robin execution with per-round point reads batched.

    Each round drains one descriptor per live client; the round's reads
    coalesce into a single ``db.multi_get`` (fired first), then the other
    ops run in client order.  Returns the logical op count.
    """
    from repro.workloads.ycsb import build_descriptor_stream

    insert_state = {"inserted": n_records}
    streams = []
    for c in range(clients):
        client_ops = (n_ops - c + clients - 1) // clients
        streams.append(build_descriptor_stream(
            spec, client_ops, n_records, seed=seed, client=c,
            key_offset=(c * n_records) // clients if clients > 1 else 0,
            insert_state=insert_state))
    ops = 0
    live = list(streams)
    while live:
        finished = []
        reads = []
        deferred = []
        for stream in live:
            desc = next(stream, None)
            if desc is None:
                finished.append(stream)
                continue
            if desc[0] == "read":
                reads.append(desc[1])
            else:
                deferred.append(desc)
            ops += 1
        if reads:
            db.multi_get(reads)
        for desc in deferred:
            kind = desc[0]
            if kind == "update" or kind == "insert":
                db.put(desc[1], value_size)
            elif kind == "scan":
                db.scan(desc[1], None, limit=desc[2])
            else:  # rmw: read-modify-write stays atomic
                db.get(desc[1])
                db.put(desc[1], value_size)
        for stream in finished:
            live.remove(stream)
    return ops
