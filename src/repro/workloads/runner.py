"""Workload reports and the YCSB operation runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.db.iamdb import IamDB


@dataclass
class WorkloadReport:
    """Outcome of one workload phase against one DB instance."""

    name: str
    engine: str
    ops: int
    sim_seconds: float
    #: Operations per simulated second (the paper's IOPS/throughput axis).
    throughput: float
    write_amplification: float
    per_level_write_amplification: Dict[int, float]
    space_used_bytes: int
    #: Per-op-type tail digests: {"insert": {"p50":..,"p99":..,"max":..}, ...}
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    def p99(self, op: str) -> float:
        return self.latency.get(op, {}).get("p99", 0.0)

    def max_latency(self, op: str) -> float:
        return self.latency.get(op, {}).get("max", 0.0)

    def row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        return {
            "workload": self.name,
            "engine": self.engine,
            "ops": self.ops,
            "sim_s": round(self.sim_seconds, 4),
            "ops_per_s": round(self.throughput, 1),
            "WA": round(self.write_amplification, 3),
            "space_MB": round(self.space_used_bytes / 1e6, 3),
        }


def latency_marks(db: IamDB) -> Dict[str, int]:
    """Per-op sample counts, for windowed latency reporting."""
    return {op: rec.count for op, rec in db.metrics.latency.items()}


def finish_report(db: IamDB, name: str, ops: int, t0: float,
                  marks: Optional[Dict[str, int]] = None) -> WorkloadReport:
    """Build a report for the window since simulated time ``t0``.

    ``marks`` (from :func:`latency_marks`) restricts latency digests to the
    samples recorded during this window.
    """
    sim = db.runtime.clock.now - t0
    marks = marks or {}
    latency = {}
    for op, rec in db.metrics.latency.items():
        summary = rec.window_summary(marks.get(op, 0))
        if summary["count"]:
            latency[op] = summary
    return WorkloadReport(
        name=name,
        engine=db.engine.name,
        ops=ops,
        sim_seconds=sim,
        throughput=(ops / sim) if sim > 0 else 0.0,
        write_amplification=db.write_amplification(),
        per_level_write_amplification=db.per_level_write_amplification(),
        space_used_bytes=db.space_used_bytes(),
        latency=latency,
        extra={"stats": db.stats()},
    )


def run_ycsb(db: IamDB, spec, n_ops: int, n_records: int, *, seed: int = 11,
             value_size: int = 256) -> WorkloadReport:
    """Run ``n_ops`` operations of a YCSB workload spec (see ycsb.py).

    ``n_records`` is the loaded record count; keys are ``permute64(item)``
    as produced by :func:`repro.workloads.dbbench.hash_load`.
    """
    from repro.workloads.ycsb import build_op_stream  # cycle-free local import

    t0 = db.runtime.clock.now
    marks = latency_marks(db)
    stream = build_op_stream(db, spec, n_ops, n_records, seed=seed,
                             value_size=value_size)
    ops = 0
    for op in stream:
        op()
        ops += 1
    return finish_report(db, spec.name, ops, t0, marks)
