"""Key distributions used by the YCSB workloads.

Implements the standard YCSB generators: uniform, zipfian (Gray et al.'s
rejection-free method with theta = 0.99), scrambled zipfian (hash-spread hot
keys) and "latest" (zipfian over recency, for workload D).  ``permute64``
is the bijective mixer used to turn ordered insert counters into the
collision-free unordered keys of a *hash load* (§6.2).

Every generator also offers a chunked ``sample_many(k)``: the random draws
still come one by one from the (stateful) ``random.Random`` so the sampled
sequence is *identical* to ``k`` scalar ``sample()`` calls, but the
arithmetic that turns draws into items -- the zipfian power transform and
the 64-bit scramble -- runs vectorized over the whole chunk with numpy.
``permute64_many`` is the chunked mixer for hash-load key generation.
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

from repro.common.errors import ConfigError
from repro.common.hashing import splitmix64, splitmix64_array, splitmix64_many

#: Bijective 64-bit mixer: unique, unordered keys for hash loads (§6.2).
permute64 = splitmix64

#: Chunked mixer: ``permute64_many(range(i, j)) == [permute64(x) for x in ...]``.
permute64_many = splitmix64_many


class UniformChooser:
    """Uniform item chooser over [0, n)."""

    def __init__(self, n: int, rng: random.Random) -> None:
        if n <= 0:
            raise ConfigError("n must be > 0")
        self.n = n
        self.rng = rng

    def sample(self) -> int:
        return self.rng.randrange(self.n)

    def sample_many(self, k: int) -> List[int]:
        """``k`` samples; consumes the RNG exactly like ``k`` sample() calls."""
        randrange = self.rng.randrange
        n = self.n
        return [randrange(n) for _ in range(k)]


class ZipfianGenerator:
    """YCSB's ZipfianGenerator: ranks 0 (hottest) .. n-1, theta = 0.99."""

    def __init__(self, n: int, rng: random.Random, theta: float = 0.99) -> None:
        if n <= 0:
            raise ConfigError("n must be > 0")
        if not (0.0 < theta < 1.0):
            raise ConfigError("theta must be in (0, 1)")
        self.n = n
        self.rng = rng
        self.theta = theta
        self.zeta_n = self._zeta(n, theta)
        self.zeta2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = ((1.0 - (2.0 / n) ** (1.0 - theta))
                    / (1.0 - self.zeta2 / self.zeta_n))

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return float(np.sum(np.arange(1, n + 1, dtype=np.float64) ** -theta))

    def sample(self) -> int:
        u = self.rng.random()
        uz = u * self.zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.n * ((self.eta * u - self.eta + 1.0) ** self.alpha))

    def sample_many(self, k: int) -> List[int]:
        """``k`` ranks with the power transform vectorized over the chunk.

        The uniform draws are taken serially from ``self.rng`` (identical
        stream to ``k`` sample() calls); the IEEE-double transform matches
        the scalar path bit for bit (asserted by ``tests/test_distributions``).
        """
        rng_random = self.rng.random
        us = np.fromiter((rng_random() for _ in range(k)),
                         dtype=np.float64, count=k)
        uz = us * self.zeta_n
        ranks = (self.n * ((self.eta * us - self.eta + 1.0) ** self.alpha)
                 ).astype(np.int64)
        ranks[uz < 1.0 + 0.5 ** self.theta] = 1
        ranks[uz < 1.0] = 0
        return ranks.tolist()


class ScrambledZipfian:
    """Zipfian popularity spread over the item space by hashing (YCSB)."""

    def __init__(self, n: int, rng: random.Random, theta: float = 0.99) -> None:
        self.n = n
        self._zipf = ZipfianGenerator(n, rng, theta)

    def sample(self) -> int:
        return permute64(self._zipf.sample()) % self.n

    def sample_many(self, k: int) -> List[int]:
        ranks = np.asarray(self._zipf.sample_many(k), dtype=np.uint64)
        return (splitmix64_array(ranks) % np.uint64(self.n)).tolist()


class LatestChooser:
    """YCSB "latest" distribution: recent inserts are hottest (workload D).

    ``max_item`` must be advanced as the workload inserts new records.
    """

    def __init__(self, n: int, rng: random.Random, theta: float = 0.99) -> None:
        self.max_item = n
        self.rng = rng
        self.theta = theta
        self._zipf = ZipfianGenerator(n, rng, theta)

    def advance(self) -> None:
        self.max_item += 1

    def sample(self) -> int:
        rank = self._zipf.sample() % self.max_item
        return self.max_item - 1 - rank

    def sample_many(self, k: int) -> List[int]:
        """``k`` samples at the *current* ``max_item`` (no advances between)."""
        max_item = self.max_item
        ranks = np.asarray(self._zipf.sample_many(k), dtype=np.int64)
        return (max_item - 1 - ranks % max_item).tolist()


def zipfian_pmf_head(n: int, theta: float, k: int) -> float:
    """Probability mass of the k hottest ranks (testing aid)."""
    zeta_n = ZipfianGenerator._zeta(n, theta)
    return sum(1.0 / (i ** theta) for i in range(1, k + 1)) / zeta_n
