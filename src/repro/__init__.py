"""repro: IamDB -- a reproduction of "On Integration of Appends and Merges in
Log-Structured Merge Trees" (Gong, He, Gong, Lei; ICPP 2019).

Public surface:

* :class:`repro.db.IamDB` -- the key-value store (engines: ``iam``, ``lsa``,
  ``leveldb``, ``rocksdb``, ``flsm``).
* :mod:`repro.common.options` -- configuration (:class:`IamOptions`,
  :class:`LsmOptions`, :class:`StorageOptions`, device profiles).
* :mod:`repro.workloads` -- YCSB A-G and db_bench workload generators.
* :mod:`repro.analysis` -- the paper's closed-form amplification model.
* :mod:`repro.bench` -- the experiment harness regenerating every table and
  figure (see DESIGN.md / EXPERIMENTS.md).
"""

from repro.common.options import (
    HDD,
    SSD,
    DeviceProfile,
    IamOptions,
    LsaOptions,
    LsmOptions,
    StorageOptions,
)
from repro.db import IamDB, Snapshot

__version__ = "1.0.0"

__all__ = [
    "HDD",
    "SSD",
    "DeviceProfile",
    "IamDB",
    "IamOptions",
    "LsaOptions",
    "LsmOptions",
    "Snapshot",
    "StorageOptions",
    "__version__",
]
