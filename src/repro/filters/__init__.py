"""Probabilistic filters."""

from repro.filters.bloom import BloomFilter

__all__ = ["BloomFilter"]
