"""Bloom filters (Bloom, 1970) over integer keys.

Every sorted sequence in an SSTable/MSTable carries one (§2.1, §5.2): point
reads skip sequences whose filter rejects the key.  The paper allocates 14
bits per record for a ~0.2% false-positive rate (§5.3.2).

Implementation: a numpy bit array with ``k`` derived hash probes produced by
double hashing over two splitmix64-style mixes -- fully deterministic, no
Python-level per-bit loops on the build path (`add_many` is vectorized).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.common.errors import ConfigError

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer; input/output uint64 arrays."""
    z = (x + np.uint64(0x9E3779B97F4A7C15)) & _MASK64
    z = ((z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK64
    z = ((z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK64
    return z ^ (z >> np.uint64(31))


_M64 = 0xFFFFFFFFFFFFFFFF


def _splitmix64_scalar(x: int) -> int:
    """Scalar splitmix64, bit-identical to the vectorized version."""
    z = (x + 0x9E3779B97F4A7C15) & _M64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _M64
    return z ^ (z >> 31)


class BloomFilter:
    """Fixed-size Bloom filter sized at build time from the key count."""

    __slots__ = ("n_bits", "n_hashes", "_bits")

    def __init__(self, n_keys: int, bits_per_key: int) -> None:
        if n_keys < 0:
            raise ConfigError("n_keys must be >= 0")
        if bits_per_key < 0:
            raise ConfigError("bits_per_key must be >= 0")
        n_bits = max(64, n_keys * bits_per_key)
        self.n_bits = n_bits
        # Optimal probe count k = ln(2) * bits/key, clamped like LevelDB.
        self.n_hashes = max(1, min(30, int(round(math.log(2) * bits_per_key)))) if bits_per_key else 0
        self._bits = np.zeros((n_bits + 63) // 64, dtype=np.uint64)

    @property
    def nbytes(self) -> int:
        return self._bits.nbytes

    def _probes(self, keys: np.ndarray) -> Iterable[np.ndarray]:
        """Yield one bit-index array per hash function (double hashing)."""
        h1 = _splitmix64(keys)
        h2 = _splitmix64(keys ^ np.uint64(0xA5A5A5A5A5A5A5A5)) | np.uint64(1)
        n_bits = np.uint64(self.n_bits)
        for i in range(self.n_hashes):
            yield ((h1 + np.uint64(i) * h2) & _MASK64) % n_bits

    def add_many(self, keys: Sequence[int]) -> None:
        """Insert a batch of integer keys (vectorized).

        All ``k * n`` probe indices are produced as one broadcast matrix and
        scattered with a single ``bitwise_or.at`` -- bit-identical to probing
        key by key, but without per-probe small-array round trips (sequence
        builds dominate flush/compaction wall-clock at simulation scale).
        """
        if self.n_hashes == 0 or len(keys) == 0:
            return
        try:
            arr = np.asarray(keys, dtype=np.uint64)
        except (OverflowError, TypeError, ValueError):
            # Out-of-range / negative keys: mask into 64 bits element-wise.
            arr = np.fromiter((k & _M64 for k in keys), dtype=np.uint64,
                              count=len(keys))
        h1 = _splitmix64(arr)
        h2 = _splitmix64(arr ^ np.uint64(0xA5A5A5A5A5A5A5A5)) | np.uint64(1)
        steps = np.arange(self.n_hashes, dtype=np.uint64)[:, None]
        # uint64 arithmetic wraps, matching the & _MASK64 of the scalar probe.
        idx = ((h1 + steps * h2) % np.uint64(self.n_bits)).ravel()
        np.bitwise_or.at(self._bits, (idx >> np.uint64(6)).astype(np.intp),
                         np.uint64(1) << (idx & np.uint64(63)))

    def might_contain(self, key: int) -> bool:
        """False means the key is definitely absent."""
        if self.n_hashes == 0:
            return True
        k = key & _M64
        h1 = _splitmix64_scalar(k)
        h2 = _splitmix64_scalar(k ^ 0xA5A5A5A5A5A5A5A5) | 1
        n_bits = self.n_bits
        bits = self._bits
        for i in range(self.n_hashes):
            idx = ((h1 + i * h2) & _M64) % n_bits
            if not (int(bits[idx >> 6]) >> (idx & 63)) & 1:
                return False
        return True

    def contains_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`might_contain` over a uint64 key array.

        Returns a bool array; bit-identical to probing key by key (same
        double-hashing probe sequence), but all ``k * n`` bit gathers happen
        as one broadcast, which is what makes batched point reads cheap.
        """
        arr = np.asarray(keys, dtype=np.uint64)
        if self.n_hashes == 0 or arr.size == 0:
            return np.ones(arr.shape, dtype=bool)
        h1 = _splitmix64(arr)
        h2 = _splitmix64(arr ^ np.uint64(0xA5A5A5A5A5A5A5A5)) | np.uint64(1)
        steps = np.arange(self.n_hashes, dtype=np.uint64)[:, None]
        # uint64 arithmetic wraps, matching the & _MASK64 of the scalar probe.
        idx = (h1 + steps * h2) % np.uint64(self.n_bits)
        words = self._bits[(idx >> np.uint64(6)).astype(np.intp)]
        probe = (words >> (idx & np.uint64(63))) & np.uint64(1)
        return probe.all(axis=0)

    @staticmethod
    def build(keys: Sequence[int], bits_per_key: int) -> "BloomFilter":
        f = BloomFilter(len(keys), bits_per_key)
        f.add_many(keys)
        return f

    def expected_fpr(self, n_keys: int) -> float:
        """Theoretical false-positive rate after inserting ``n_keys`` keys."""
        if self.n_hashes == 0:
            return 1.0
        k = self.n_hashes
        return (1.0 - math.exp(-k * n_keys / self.n_bits)) ** k
